//! Cross-crate pipeline tests: powersim → thermal → dtm, and thermal ↔
//! refsim consistency, exercised through the public `hotiron` API.

use hotiron::dtm::placement;
use hotiron::prelude::*;

#[test]
fn full_closed_loop_pipeline_runs() {
    let plan = library::ev6();
    let model = ThermalModel::new(
        plan.clone(),
        Package::AirSink(AirSinkPackage::paper_default().with_r_convec(0.3)),
        ModelConfig::paper_default().with_grid(8, 8),
    )
    .expect("model");
    let cpu = SyntheticCpu::new(
        uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
        workload::gcc(),
        5,
    );
    let sensors = SensorArray::uniform_grid(4, plan.width(), plan.height(), 9);
    let dtm = ThresholdDtm::new(90.0, 88.0, 0.5, 3e-3);
    let mut cl = ClosedLoop::new(&model, cpu, sensors, dtm);
    let report = cl.run(600).expect("loop runs");
    assert_eq!(report.times.len(), 600);
    assert!(report.true_max.iter().all(|t| *t > 45.0 && *t < 200.0));
}

#[test]
fn compact_and_refsim_agree_on_uniform_die() {
    // The Fig 2 scenario at coarse resolution through the public API.
    let plan = library::uniform_die(0.02, 0.02);
    let model = ThermalModel::new(
        plan.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default()),
        ModelConfig::paper_default().with_grid(16, 16),
    )
    .expect("model");
    let power = PowerMap::from_pairs(&plan, [("die", 200.0)]).expect("power");
    let compact = model.steady_state(&power).expect("steady");

    let sim = RefSim::new(RefSimConfig::paper_validation().with_grid(16, 16, 3, 4));
    let field = sim.solve_steady(&sim.uniform_power(200.0), 30_000);

    let compact_mean = compact.average_celsius() + 273.15;
    let rel = (compact_mean - field.mean()).abs() / (field.mean() - 318.15);
    assert!(rel < 0.25, "mean steady temperatures differ by {rel:.3}");
}

#[test]
fn ir_workflow_camera_blurs_and_inversion_recovers() {
    // A miniature end-to-end IR study: simulate, image, invert.
    let plan = library::multicore(2, 2, 0.016, 0.016);
    let model = ThermalModel::new(
        plan.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default()),
        ModelConfig::paper_default().with_grid(12, 12),
    )
    .expect("model");
    let truth = PowerMap::from_vec(&plan, vec![3.0, 5.0, 4.0, 2.0]);
    let sol = model.steady_state(&truth).expect("steady");

    // Image through the camera: blur must not destroy the inversion badly.
    let cam = IrCamera::new(1.0 / 30.0, 0.2e-3);
    let m = model.mapping();
    let frame = cam.capture(&sol.celsius_grid(), 12, 12, m.cell_width(), m.cell_height());
    let observed_kelvin: Vec<f64> = frame.iter().map(|c| c + 273.15).collect();

    let inv = PowerInverter::new(&model).expect("basis");
    let est = inv.invert(&observed_kelvin).expect("inversion");
    let est_total: f64 = est.iter().sum();
    assert!((est_total - truth.total()).abs() < 0.1 * truth.total(), "total power {est_total}");
    // Ranking preserved despite blur.
    let max_i = est.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("cores").0;
    assert_eq!(max_i, 1, "hottest-core identification survives the optics: {est:?}");
}

#[test]
fn sensor_budget_depends_on_package() {
    let plan = library::ev6();
    let cpu = SyntheticCpu::new(
        uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
        workload::gcc(),
        42,
    );
    let power = PowerMap::from_vec(&plan, cpu.simulate(4_000).average());
    let cfg = ModelConfig::paper_default().with_grid(16, 16);
    let air =
        ThermalModel::new(plan.clone(), Package::AirSink(AirSinkPackage::paper_default()), cfg)
            .expect("model");
    let oil = ThermalModel::new(
        plan.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default()),
        cfg,
    )
    .expect("model");
    let sa = air.steady_state(&power).expect("steady");
    let so = oil.steady_state(&power).expect("steady");
    for m in [2usize, 4] {
        let ea = placement::grid_under_read(&sa, m, plan.width(), plan.height());
        let eo = placement::grid_under_read(&so, m, plan.width(), plan.height());
        assert!(eo >= ea - 0.05, "m={m}: oil {eo} vs air {ea}");
    }
}

#[test]
fn flp_round_trip_preserves_model_results() {
    // Serialize the EV6 floorplan to .flp text, parse it back, and verify
    // the thermal model produces identical temperatures.
    let plan = library::ev6();
    let text = hotiron::floorplan::parser::to_flp(&plan);
    let plan2 = hotiron::floorplan::parser::parse_flp(&text).expect("parses");
    let power = PowerMap::from_pairs(&plan, [("IntReg", 3.0)]).expect("power");
    let cfg = ModelConfig::paper_default().with_grid(12, 12);
    let pkg = Package::OilSilicon(OilSiliconPackage::paper_default());
    let a = ThermalModel::new(plan, pkg, cfg).expect("model a");
    let b = ThermalModel::new(plan2, pkg, cfg).expect("model b");
    let ta = a.steady_state(&power).expect("steady").block("IntReg");
    let tb = b.steady_state(&power).expect("steady").block("IntReg");
    assert!((ta - tb).abs() < 1e-6, "{ta} vs {tb}");
}

#[test]
fn compact_air_sink_agrees_with_stack_refsim() {
    // Independent validation of the AIR-SINK package path (our extension
    // beyond the paper's oil-only ANSYS check): a resolved 3-D stack with
    // masked plate extents vs the compact ring-node model.
    use hotiron::refsim::{StackSim, StackSimConfig};
    let plan = library::uniform_die(0.02, 0.02);
    let model = ThermalModel::new(
        plan.clone(),
        Package::AirSink(AirSinkPackage::paper_default().with_r_convec(1.0)),
        ModelConfig::paper_default().with_grid(16, 16),
    )
    .expect("model");
    let power = PowerMap::from_pairs(&plan, [("die", 50.0)]).expect("power");
    let compact = model.steady_state(&power).expect("steady");

    let sim = StackSim::new(StackSimConfig::air_sink_validation(1.0));
    let p = sim.uniform_die_power(50.0);
    let (ref_mean, ref_max) = sim.solve_steady(&p, 30_000);

    let compact_mean = compact.average_celsius() + 273.15;
    let rel = (compact_mean - ref_mean).abs() / (ref_mean - 318.15);
    assert!(rel < 0.10, "mean rise mismatch {rel:.3}: {compact_mean} vs {ref_mean}");
    let compact_max = compact.max_celsius() + 273.15;
    let rel_max = (compact_max - ref_max).abs() / (ref_max - 318.15);
    assert!(rel_max < 0.12, "max rise mismatch {rel_max:.3}");
}

#[test]
fn pipeline_cpu_drives_the_thermal_model() {
    // End-to-end with the cycle-approximate engine: pipeline counters →
    // power trace → transient thermal simulation.
    use hotiron::powersim::{pipeline::PipelineCpu, program};
    let plan = library::ev6();
    let cpu = PipelineCpu::new(
        uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
        program::gcc_program(),
        3,
    );
    let (trace, counters) = cpu.simulate(600);
    assert_eq!(trace.len(), 600);
    let ipc = counters.iter().map(|c| c.ipc()).sum::<f64>() / 600.0;
    assert!(ipc > 0.5, "pipeline must make progress: IPC {ipc}");

    let model = ThermalModel::new(
        plan.clone(),
        Package::AirSink(AirSinkPackage::paper_default().with_r_convec(0.3)),
        ModelConfig::paper_default().with_grid(8, 8),
    )
    .expect("model");
    let mut sim = model.transient(trace.dt());
    sim.init_steady(&PowerMap::from_vec(&plan, trace.average())).expect("init");
    let t0 = sim.solution().block("IntReg");
    for i in 0..trace.len() {
        let p = PowerMap::from_vec(&plan, trace.sample(i).to_vec());
        sim.run(&p, trace.dt()).expect("step");
    }
    let t1 = sim.solution().block("IntReg");
    // Started at the steady state of the average: the trace's excursions
    // keep it within a few kelvin.
    assert!((t1 - t0).abs() < 5.0, "bounded oscillation: {t0} → {t1}");
    assert!(t1 > 45.0);
}

#[test]
fn block_and_grid_models_agree_on_flow_direction_ordering() {
    // The fast block-mode model reproduces the Fig 11 directional ordering
    // of IntReg that the grid model (and the paper) show.
    use hotiron::thermal::BlockModel;
    let plan = library::ev6();
    let cpu = SyntheticCpu::new(
        uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
        workload::gcc(),
        42,
    );
    let power = PowerMap::from_vec(&plan, cpu.simulate(4_000).average());
    let i = plan.block_index("IntReg").unwrap();
    let block_t = |dir| {
        let bm = BlockModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default().with_direction(dir)),
            0.5e-3,
            318.15,
        );
        bm.steady_celsius(&power).unwrap()[i]
    };
    let grid_t = |dir| {
        let m = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default().with_direction(dir)),
            ModelConfig::paper_default().with_grid(16, 16),
        )
        .unwrap();
        m.steady_state(&power).unwrap().block("IntReg")
    };
    use FlowDirection::*;
    for (a, b) in
        [(BottomToTop, LeftToRight), (LeftToRight, RightToLeft), (RightToLeft, TopToBottom)]
    {
        assert!(block_t(a) > block_t(b), "block model: {a:?} hotter than {b:?}");
        assert!(grid_t(a) > grid_t(b), "grid model: {a:?} hotter than {b:?}");
    }
}
