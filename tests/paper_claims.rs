//! End-to-end checks of the paper's six contribution claims (§1), each run
//! through the public `hotiron` API at reduced fidelity.

use hotiron::prelude::*;

const GRID: usize = 16;

fn ev6_gcc_power(plan: &Floorplan) -> PowerMap {
    let cpu = SyntheticCpu::new(
        uarch::ev6_units(plan).expect("ev6 units align to the floorplan"),
        workload::gcc(),
        42,
    );
    PowerMap::from_vec(plan, cpu.simulate(8_000).average())
}

fn model(plan: &Floorplan, pkg: Package) -> ThermalModel {
    ThermalModel::new(plan.clone(), pkg, ModelConfig::paper_default().with_grid(GRID, GRID))
        .expect("model builds")
}

/// Claim 3: same overall Rconv, drastically different steady-state
/// distribution (max temperature and gradient).
#[test]
fn claim3_same_rconv_different_steady_state() {
    let plan = library::ev6();
    let power = ev6_gcc_power(&plan);
    let air = model(&plan, Package::AirSink(AirSinkPackage::paper_default().with_r_convec(1.0)));
    let oil = model(
        &plan,
        Package::OilSilicon(OilSiliconPackage::paper_default().with_target_r_convec(1.0)),
    );
    let sa = air.steady_state(&power).expect("steady");
    let so = oil.steady_state(&power).expect("steady");
    // Average temperatures comparable (same Rconv)…
    assert!(
        (sa.average_celsius() - so.average_celsius()).abs() < 15.0,
        "averages should be in the same ballpark: {} vs {}",
        sa.average_celsius(),
        so.average_celsius()
    );
    // …but the oil hot spot is far hotter and the gradient much larger.
    assert!(so.max_celsius() > sa.max_celsius() + 20.0);
    assert!(so.gradient() > 3.0 * sa.gradient());
}

/// Claim 4 (first half): OIL-SILICON has a much slower short-term transient
/// response — after a power pulse ends, AIR recovers much faster.
#[test]
fn claim4_oil_short_term_response_slower() {
    let plan = library::ev6();
    let pulse = PowerMap::from_pairs(&plan, [("IntReg", 4.0)]).expect("power");
    let idle = PowerMap::zeros(&plan);

    let relative_recovery = |pkg: Package| -> f64 {
        let m = model(&plan, pkg);
        let mut sim = m.transient(2.5e-4);
        sim.init_steady(&pulse).expect("init");
        let t0 = sim.solution().block("IntReg");
        // 3 ms of power-off (the paper's AIR recovery scale).
        sim.run(&idle, 3e-3).expect("run");
        let t1 = sim.solution().block("IntReg");
        (t0 - t1) / (t0 - 45.0)
    };
    let air =
        relative_recovery(Package::AirSink(AirSinkPackage::paper_default().with_r_convec(1.0)));
    let oil = relative_recovery(Package::OilSilicon(
        OilSiliconPackage::paper_default().with_target_r_convec(1.0),
    ));
    assert!(
        air > 2.0 * oil,
        "after 3 ms off, AIR must have shed far more of its rise: {air:.3} vs {oil:.3}"
    );
}

/// Claim 4 (second half): OIL-SILICON has a *faster long-term* response —
/// warmup from ambient reaches steady state sooner.
#[test]
fn claim4_oil_long_term_warmup_faster() {
    let plan = library::ev6();
    let power = PowerMap::from_pairs(&plan, [("Icache", 16.0)]).expect("power");

    let settle_fraction = |pkg: Package| -> f64 {
        let m = model(&plan, pkg);
        let steady = m.steady_state(&power).expect("steady").block("Icache");
        let mut sim = m.transient(0.05);
        sim.run(&power, 2.0).expect("run");
        (sim.solution().block("Icache") - 45.0) / (steady - 45.0)
    };
    let air = settle_fraction(Package::AirSink(AirSinkPackage::paper_default().with_r_convec(1.0)));
    let oil = settle_fraction(Package::OilSilicon(
        OilSiliconPackage::paper_default().with_target_r_convec(1.0),
    ));
    assert!(oil > 0.9, "oil nearly settled after 2 s: {oil:.3}");
    assert!(air < 0.7, "air still warming after 2 s: {air:.3}");
}

/// Claim 5: oil flow direction changes across-chip distribution and can move
/// the steady-state hot spot.
#[test]
fn claim5_flow_direction_moves_hot_spot() {
    let plan = library::ev6();
    let power = ev6_gcc_power(&plan);
    let hottest = |dir: FlowDirection| -> String {
        let m = model(
            &plan,
            Package::OilSilicon(OilSiliconPackage::paper_default().with_direction(dir)),
        );
        m.steady_state(&power).expect("steady").hottest_block().0.to_owned()
    };
    let b2t = hottest(FlowDirection::BottomToTop);
    let t2b = hottest(FlowDirection::TopToBottom);
    assert_eq!(b2t, "IntReg");
    assert_ne!(t2b, "IntReg", "top-to-bottom flow must dethrone IntReg");
}

/// Claim 2 / Fig 5: the secondary path matters under oil, not under air.
#[test]
fn claim2_secondary_path_asymmetry() {
    let plan = library::athlon64();
    let cpu = SyntheticCpu::new(
        uarch::athlon64_units(&plan).expect("athlon64 units align to the floorplan"),
        workload::gcc(),
        7,
    );
    let power = PowerMap::from_vec(&plan, cpu.simulate(6_000).average());

    let hot = |pkg: Package| model(&plan, pkg).steady_state(&power).expect("steady").max_celsius();
    let oil_with = hot(Package::OilSilicon(
        OilSiliconPackage::paper_default().with_secondary(SecondaryPath::for_oil_rig()),
    ));
    let oil_without = hot(Package::OilSilicon(OilSiliconPackage::paper_default()));
    // A production heatsink is far better than the rig's 1.0 K/W.
    let air_with = hot(Package::AirSink(
        AirSinkPackage::paper_default()
            .with_r_convec(0.3)
            .with_secondary(SecondaryPath::for_air_system()),
    ));
    let air_without = hot(Package::AirSink(AirSinkPackage::paper_default().with_r_convec(0.3)));

    assert!(oil_without - oil_with > 5.0, "oil: {oil_without} vs {oil_with}");
    assert!((air_without - air_with).abs() < 2.0, "air: {air_without} vs {air_with}");
}

/// Claim 6 consequence (§5.2): with a 0.1 °C sensing resolution, both
/// packages demand sampling intervals around tens of microseconds.
#[test]
fn claim6_sensing_interval_microseconds() {
    use hotiron_bench::{arch, Fidelity};
    let t = arch::sensing(Fidelity::Fast);
    let rise = &t.rows[0].values;
    assert!(rise[0] > 0.05, "air must move measurably in 3 ms: {rise:?}");
    let interval = &t.rows[1].values;
    assert!(interval[0] < 20_000.0, "air sampling interval sub-20ms: {interval:?}");
}
