//! Property-based tests of the core invariants, spanning crates.

use hotiron::prelude::*;
use hotiron::thermal::cholesky::LdlFactor;
use hotiron::thermal::sparse::TripletMatrix;
use proptest::prelude::*;

/// A random tiling floorplan: an n x m grid of blocks with random row/col
/// spans drawn from cut points, guaranteeing exact cover and no overlap.
fn tiling_floorplan(cuts_x: Vec<f64>, cuts_y: Vec<f64>) -> Floorplan {
    let mut xs = vec![0.0];
    xs.extend(cuts_x);
    xs.push(1.0);
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let mut ys = vec![0.0];
    ys.extend(cuts_y);
    ys.push(1.0);
    ys.sort_by(f64::total_cmp);
    ys.dedup();
    let scale = 0.016;
    let mut blocks = Vec::new();
    for i in 0..xs.len() - 1 {
        for j in 0..ys.len() - 1 {
            let w = (xs[i + 1] - xs[i]) * scale;
            let h = (ys[j + 1] - ys[j]) * scale;
            if w > 1e-6 && h > 1e-6 {
                blocks.push(Block::new(format!("b{i}_{j}"), w, h, xs[i] * scale, ys[j] * scale));
            }
        }
    }
    Floorplan::new(blocks).expect("tiling is valid")
}

prop_compose! {
    fn arb_cuts()(v in proptest::collection::vec(0.05f64..0.95, 0..4)) -> Vec<f64> {
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Spreading block power over grid cells conserves total power for any
    /// tiling floorplan and any grid resolution.
    #[test]
    fn grid_mapping_conserves_power(
        cx in arb_cuts(),
        cy in arb_cuts(),
        rows in 2usize..24,
        cols in 2usize..24,
        scale in 0.1f64..10.0,
    ) {
        let plan = tiling_floorplan(cx, cy);
        let mapping = GridMapping::new(&plan, rows, cols);
        let powers: Vec<f64> = (0..plan.len()).map(|i| scale * (i as f64 + 1.0)).collect();
        let cells = mapping.spread_block_values(&powers);
        let total: f64 = cells.iter().sum();
        let expect: f64 = powers.iter().sum();
        prop_assert!((total - expect).abs() < 1e-9 * expect.max(1.0));
        // Every cell of a full tiling is covered.
        for c in 0..mapping.cell_count() {
            let f: f64 = mapping.coverage(c).iter().map(|cc| cc.fraction).sum();
            prop_assert!((f - 1.0).abs() < 1e-6);
        }
    }

    /// Steady state: heat out equals heat in, for random power splits and
    /// both package families.
    #[test]
    fn steady_energy_balance(
        p_core in 0.5f64..8.0,
        p_cache in 0.0f64..12.0,
        air in proptest::bool::ANY,
    ) {
        let plan = library::ev6();
        let pkg = if air {
            Package::AirSink(AirSinkPackage::paper_default())
        } else {
            Package::OilSilicon(OilSiliconPackage::paper_default())
        };
        let model = ThermalModel::new(
            plan.clone(),
            pkg,
            ModelConfig::paper_default().with_grid(8, 8),
        ).expect("model");
        let power = PowerMap::from_pairs(&plan, [("IntReg", p_core), ("L2", p_cache)])
            .expect("power");
        let sol = model.steady_state(&power).expect("steady");
        let amb = model.ambient();
        let q_out: f64 = sol
            .state()
            .iter()
            .zip(model.circuit().ambient_conductance())
            .map(|(t, g)| g * (t - amb))
            .sum();
        let q_in = power.total();
        prop_assert!((q_out - q_in).abs() < 1e-4 * q_in.max(1.0),
            "in {q_in} vs out {q_out}");
    }

    /// The steady-state operator is linear: solution(a+b) = solution(a) +
    /// solution(b) - ambient offset.
    #[test]
    fn steady_state_superposition(pa in 0.5f64..5.0, pb in 0.5f64..5.0) {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(8, 8),
        ).expect("model");
        let map_a = PowerMap::from_pairs(&plan, [("IntReg", pa)]).expect("a");
        let map_b = PowerMap::from_pairs(&plan, [("Dcache", pb)]).expect("b");
        let map_ab = PowerMap::from_pairs(&plan, [("IntReg", pa), ("Dcache", pb)]).expect("ab");
        let sa = model.steady_state(&map_a).expect("steady a");
        let sb = model.steady_state(&map_b).expect("steady b");
        let sab = model.steady_state(&map_ab).expect("steady ab");
        let amb = 45.0;
        for name in ["IntReg", "Dcache", "L2", "FPMap"] {
            let lhs = sab.block(name) - amb;
            let rhs = (sa.block(name) - amb) + (sb.block(name) - amb);
            prop_assert!((lhs - rhs).abs() < 1e-4 * lhs.abs().max(1.0),
                "{name}: {lhs} vs {rhs}");
        }
    }

    /// Monotonicity: scaling all powers up heats every block.
    #[test]
    fn more_power_is_hotter_everywhere(base in 0.5f64..4.0, factor in 1.1f64..3.0) {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(8, 8),
        ).expect("model");
        let p1 = PowerMap::from_pairs(&plan, [("IntReg", base), ("L2", base)]).expect("p1");
        let p2 = p1.scaled(factor);
        let s1 = model.steady_state(&p1).expect("steady 1");
        let s2 = model.steady_state(&p2).expect("steady 2");
        for (a, b) in s1.block_celsius().iter().zip(s2.block_celsius()) {
            prop_assert!(b >= *a - 1e-9);
        }
    }

    /// Transient solutions stay within physical bounds: never below ambient
    /// under heating from ambient, never above the steady state of the same
    /// power (for monotone step inputs).
    #[test]
    fn transient_bounded_by_steady(p in 1.0f64..10.0, steps in 2usize..12) {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(8, 8),
        ).expect("model");
        let power = PowerMap::from_pairs(&plan, [("Icache", p)]).expect("power");
        let steady = model.steady_state(&power).expect("steady");
        let mut sim = model.transient(0.02);
        for _ in 0..steps {
            sim.run(&power, 0.02).expect("step");
            let sol = sim.solution();
            prop_assert!(sol.min_celsius() >= 45.0 - 1e-6);
            prop_assert!(sol.max_celsius() <= steady.max_celsius() + 1e-3);
        }
    }

    /// The sparse LDLᵀ factorization round-trips `A·x` for random SPD RC
    /// networks: every node is grounded (strict diagonal dominance, hence
    /// positive definite), edges form a ring plus pseudo-random chords.
    #[test]
    fn ldlt_roundtrips_spd_rc_networks(
        n in 3usize..32,
        edge_g in proptest::collection::vec(0.05f64..20.0, 64..65),
        ground_g in proptest::collection::vec(0.01f64..5.0, 32..33),
        x_vals in proptest::collection::vec(-10.0f64..10.0, 32..33),
    ) {
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.stamp_grounded_conductance(i, ground_g[i]);
            t.stamp_conductance(i, (i + 1) % n, edge_g[i]);
        }
        // Pseudo-random chords from the remaining conductance values.
        for (k, &g) in edge_g[n..].iter().enumerate() {
            let a = (k * 5 + 1) % n;
            let b = (k * 11 + 3) % n;
            if a != b {
                t.stamp_conductance(a, b, g);
            }
        }
        let a = t.to_csr();
        let f = LdlFactor::factor(&a).expect("grounded RC network is SPD");
        let x: Vec<f64> = x_vals[..n].to_vec();
        let b = a.mul_vec(&x);
        let x_rec = f.solve(&b);
        for (orig, rec) in x.iter().zip(&x_rec) {
            prop_assert!((orig - rec).abs() < 1e-8, "{orig} vs {rec}");
        }
    }

    /// Power traces: decimation preserves the time-average exactly on
    /// whole groups.
    #[test]
    fn trace_decimation_preserves_average(
        vals in proptest::collection::vec(0.0f64..20.0, 8..64),
        factor in 1usize..4,
    ) {
        let usable = (vals.len() / factor) * factor;
        let mut t = PowerTrace::new(1e-6, 1);
        for v in &vals[..usable] {
            t.push(&[*v]);
        }
        let d = t.decimate(factor);
        let a1 = t.average()[0];
        let a2 = d.average()[0];
        prop_assert!((a1 - a2).abs() < 1e-9, "{a1} vs {a2}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Rotation invariance of the whole model: rotating the floorplan 90°
    /// CCW while rotating the flow direction the same way must leave every
    /// block temperature unchanged (square grid).
    #[test]
    fn oil_model_is_rotation_invariant(p_int in 1.0f64..5.0, p_d in 1.0f64..6.0) {
        use FlowDirection::*;
        let plan = library::ev6();
        let rotated = plan.rotated_90();
        let power = PowerMap::from_pairs(&plan, [("IntReg", p_int), ("Dcache", p_d)])
            .expect("power");
        let rotated_power =
            PowerMap::from_pairs(&rotated, [("IntReg", p_int), ("Dcache", p_d)]).expect("power");
        // LeftToRight rotates (CCW) into BottomToTop.
        for (dir, rdir) in [(LeftToRight, BottomToTop), (TopToBottom, LeftToRight)] {
            let m1 = ThermalModel::new(
                plan.clone(),
                Package::OilSilicon(OilSiliconPackage::paper_default().with_direction(dir)),
                ModelConfig::paper_default().with_grid(12, 12),
            ).expect("model");
            let m2 = ThermalModel::new(
                rotated.clone(),
                Package::OilSilicon(OilSiliconPackage::paper_default().with_direction(rdir)),
                ModelConfig::paper_default().with_grid(12, 12),
            ).expect("model");
            let t1 = m1.steady_state(&power).expect("steady");
            let t2 = m2.steady_state(&rotated_power).expect("steady");
            for name in ["IntReg", "Dcache", "L2", "FPMap", "Icache"] {
                let (a, b) = (t1.block(name), t2.block(name));
                prop_assert!((a - b).abs() < 1e-6, "{name} under {dir:?}: {a} vs {b}");
            }
        }
    }
}
