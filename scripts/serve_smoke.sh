#!/usr/bin/env bash
# End-to-end smoke test of the serving daemon: build release, start
# hotiron-serve on an ephemeral port, drive it with loadgen for a few
# seconds, then assert the run was clean:
#
#   - zero protocol errors (loadgen exits 2 otherwise; re-checked from the
#     report JSON),
#   - non-zero circuit-cache hits (the request mix repeats scenarios, so a
#     cold cache must warm up),
#   - at least one spectral-path solve (the mix pins a share of requests to
#     the qualifying scenario with solver=spectral),
#   - a clean drain (the --shutdown ack reports draining and the daemon
#     process exits by itself, printing its "drained" line).
#
# The latency-histogram report lands at $SERVE_SMOKE_OUT/latency-histogram.json
# (default target/serve-smoke), which CI uploads as an artifact.
#
# Environment:
#   SERVE_SMOKE_SECONDS  loadgen run length in seconds (default 5)
#   SERVE_SMOKE_RATE     open-loop arrival rate in req/s (default 200)
#   SERVE_SMOKE_OUT      output directory (default target/serve-smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${SERVE_SMOKE_OUT:-target/serve-smoke}"
SECS="${SERVE_SMOKE_SECONDS:-5}"
RATE="${SERVE_SMOKE_RATE:-200}"
REPORT="$OUT/latency-histogram.json"

mkdir -p "$OUT"
echo "==> build (release)"
cargo build --release -p hotiron-serve

echo "==> start daemon"
target/release/serve --addr 127.0.0.1:0 > "$OUT/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# The daemon prints one readiness line once the listener is bound; the OS
# picked the port, so read the line back to learn the address.
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^hotiron-serve listening on \([0-9.:]*\).*/\1/p' "$OUT/serve.log" 2>/dev/null || true)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "serve_smoke: daemon never printed its readiness line" >&2
  cat "$OUT/serve.log" >&2
  exit 1
fi
echo "==> daemon ready on $ADDR"

# Board probe: one multi-die board solve must answer 200 through the
# multigrid path (boards are spectrally ineligible, so mg-cg is the
# board-scale solver the daemon is expected to route to). Runs before the
# main loadgen pass because that pass shuts the daemon down.
echo "==> board probe (board-duo, solver=multigrid)"
PROBE=$(target/release/loadgen --addr "$ADDR" --probe board-duo --probe-solver multigrid)
echo "    $PROBE"
case "$PROBE" in
  *"code=200"*"method=mg-cg"*) ;;
  *)
    echo "serve_smoke: board probe did not answer 200 via mg-cg: $PROBE" >&2
    exit 1
    ;;
esac

# loadgen exits 0 only when every frame round-tripped cleanly and the
# --shutdown ack confirmed the drain; --stats embeds the daemon's own
# counters in the report for the assertions below.
echo "==> loadgen ${SECS}s @ ${RATE} req/s"
target/release/loadgen --addr "$ADDR" --rate "$RATE" --seconds "$SECS" \
  --spectral-share 0.1 --stats --shutdown --out "$REPORT"

# Clean drain: the daemon must exit on its own after the shutdown ack.
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "serve_smoke: daemon still running after drain" >&2
  exit 1
fi
trap - EXIT
if ! grep -q "hotiron-serve drained" "$OUT/serve.log"; then
  echo "serve_smoke: daemon exited without its drained line" >&2
  cat "$OUT/serve.log" >&2
  exit 1
fi

# Report assertions. The loadgen section renders before the server section,
# so the first match of each key is the client-side count.
field() {
  sed -n "s/.*\"$1\": *\([0-9][0-9]*\).*/\1/p" "$REPORT" | head -n1
}
PROTOCOL_ERRORS=$(field protocol_errors)
TRANSPORT_ERRORS=$(field transport_errors)
CACHE_HITS=$(field cache_hits)
SENT=$(field sent)
OK=$(field ok)
SPECTRAL=$(field spectral)
echo "==> report: sent=$SENT ok=$OK protocol_errors=$PROTOCOL_ERRORS transport_errors=$TRANSPORT_ERRORS cache_hits=$CACHE_HITS spectral=$SPECTRAL"
if [ -z "$PROTOCOL_ERRORS" ] || [ "$PROTOCOL_ERRORS" -ne 0 ]; then
  echo "serve_smoke: protocol errors in report ($PROTOCOL_ERRORS)" >&2
  exit 1
fi
if [ -z "$TRANSPORT_ERRORS" ] || [ "$TRANSPORT_ERRORS" -ne 0 ]; then
  echo "serve_smoke: transport errors in report ($TRANSPORT_ERRORS)" >&2
  exit 1
fi
if [ -z "$CACHE_HITS" ] || [ "$CACHE_HITS" -eq 0 ]; then
  echo "serve_smoke: no circuit-cache hits — coalescing/caching broken" >&2
  exit 1
fi
if [ -z "$SPECTRAL" ] || [ "$SPECTRAL" -eq 0 ]; then
  echo "serve_smoke: no spectral-path solves — solver override broken" >&2
  exit 1
fi
echo "serve_smoke: PASS ($OK/$SENT ok, $CACHE_HITS cache hits, $SPECTRAL spectral, clean drain)"
