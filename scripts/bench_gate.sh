#!/usr/bin/env bash
# Perf-regression gate over the solver and serving benchmarks.
#
# Runs `cargo bench -p hotiron-bench --bench solvers` and
# `cargo bench -p hotiron-serve --bench serve_throughput` with
# HOTIRON_BENCH_JSON set, which makes each harness dump its benchmark
# medians (ns/iter) as JSON; the two files are merged into one array and
# every benchmark is compared against the checked-in baseline
# (scripts/BENCH_solvers.baseline.json). Benchmarks that also report a
# `p99_ns` tail latency (the serve bench does) are gated on it too, as a
# synthetic "<name> [p99]" row. The gate fails when any gated metric is
# more than BENCH_GATE_THRESHOLD percent (default 20) slower than its
# baseline, or when a baseline benchmark is missing from the new results.
# New benchmarks absent from the baseline only warn. `--update` refreshes
# median and p99 columns alike (it rewrites the merged raw JSON).
#
# Usage:
#   bash scripts/bench_gate.sh              # run benches, compare vs baseline
#   bash scripts/bench_gate.sh --update     # run benches, refresh the baseline
#   bash scripts/bench_gate.sh --self-test  # verify the gate logic itself
#
# Environment:
#   BENCH_GATE_THRESHOLD  allowed regression in percent (default 20)
#   BENCH_GATE_RESULTS    path to an existing results JSON; skips the bench
#                         run and compares that file (used by --self-test and
#                         for re-checking a saved CI artifact)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/BENCH_solvers.baseline.json
THRESHOLD="${BENCH_GATE_THRESHOLD:-20}"

# Prints "name<TAB>median_ns" lines from a results JSON (one object per line,
# as written by compat-criterion's finalize()). Objects that carry a
# "p99_ns" field additionally emit a "name [p99]<TAB>p99_ns" row, so tail
# latency is gated by the same comparison as the median. The two sed
# expressions are mutually exclusive per line: once the first (with p99)
# rewrites the pattern space, the second no longer matches it.
parse() {
  sed -n \
    -e 's/.*"name": *"\([^"]*\)".*"median_ns": *\([0-9.][0-9.]*\).*"p99_ns": *\([0-9.][0-9.]*\).*/\1\t\2\n\1 [p99]\t\3/p' \
    -e 's/.*"name": *"\([^"]*\)".*"median_ns": *\([0-9.][0-9.]*\).*/\1\t\2/p' \
    "$1"
}

# compare BASELINE_FILE NEW_FILE -> exit 0 iff no benchmark regressed.
compare() {
  local base_file=$1 new_file=$2
  parse "$base_file" > /tmp/bench_gate_base.$$
  parse "$new_file" > /tmp/bench_gate_new.$$
  trap 'rm -f /tmp/bench_gate_base.$$ /tmp/bench_gate_new.$$' RETURN

  if ! [ -s /tmp/bench_gate_base.$$ ]; then
    echo "bench_gate: no benchmarks parsed from baseline $base_file" >&2
    return 1
  fi
  if ! [ -s /tmp/bench_gate_new.$$ ]; then
    echo "bench_gate: no benchmarks parsed from results $new_file" >&2
    return 1
  fi

  awk -F'\t' -v threshold="$THRESHOLD" '
    NR == FNR { base[$1] = $2; next }
    { new[$1] = $2 }
    END {
      fail = 0
      for (name in base) {
        if (!(name in new)) {
          printf "MISSING  %-45s (in baseline, not in results)\n", name
          fail = 1
          continue
        }
        limit = base[name] * (1 + threshold / 100)
        ratio = 100 * (new[name] / base[name] - 1)
        if (new[name] > limit) {
          printf "FAIL     %-45s %12.1f ns vs baseline %12.1f ns (%+.1f%% > +%s%%)\n", \
                 name, new[name], base[name], ratio, threshold
          fail = 1
        } else {
          printf "ok       %-45s %12.1f ns vs baseline %12.1f ns (%+.1f%%)\n", \
                 name, new[name], base[name], ratio
        }
      }
      for (name in new) {
        if (!(name in base)) {
          printf "NEW      %-45s %12.1f ns (not in baseline; run --update)\n", name, new[name]
        }
      }
      exit fail
    }
  ' /tmp/bench_gate_base.$$ /tmp/bench_gate_new.$$
}

# Prints the multigrid-vs-CG speedup table from the steady_large benches:
# each steady_mg_* entry paired with its steady_cg_* comparator (same grid,
# same package, same tolerance). Also appended to $GITHUB_STEP_SUMMARY when
# set, so the CI run page shows the headline numbers.
speedup_table() {
  local file=$1 table
  table=$(parse "$file" | sort | awk -F'\t' '
    { all[$1] = $2; if ($1 ~ /steady_mg_/) order[n++] = $1 }
    END {
      if (n == 0) exit 0
      print "| bench | mg-cg (ms) | jacobi-cg (ms) | speedup |"
      print "|---|---|---|---|"
      for (i = 0; i < n; i++) {
        name = order[i]
        pair = name
        sub(/_mg_/, "_cg_", pair)
        if (pair in all)
          printf "| %s | %.2f | %.2f | %.1fx |\n", \
                 name, all[name] / 1e6, all[pair] / 1e6, all[pair] / all[name]
        else
          printf "| %s | %.2f | - | - |\n", name, all[name] / 1e6
      }
    }')
  if [ -n "$table" ]; then
    echo
    echo "multigrid vs Jacobi-PCG (same operator, same 1e-9 tolerance):"
    echo "$table"
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
      { echo "### Multigrid vs Jacobi-PCG"; echo; echo "$table"; } >> "$GITHUB_STEP_SUMMARY"
    fi
  fi
}

# Strips the surrounding [ ] and trailing commas, leaving one bare JSON
# object per line — the common denominator for merging result files.
strip_array() {
  sed -e '/^\[[[:space:]]*$/d' -e '/^\][[:space:]]*$/d' -e 's/,[[:space:]]*$//' "$1"
}

run_benches() {
  local out solvers serve
  # Absolute path: cargo runs the bench binaries from the package directory.
  case "$1" in
    /*) out=$1 ;;
    *) out="$(pwd)/$1" ;;
  esac
  solvers=$(mktemp /tmp/BENCH_part_solvers.XXXXXX.json)
  serve=$(mktemp /tmp/BENCH_part_serve.XXXXXX.json)
  HOTIRON_BENCH_JSON="$solvers" cargo bench -p hotiron-bench --bench solvers
  HOTIRON_BENCH_JSON="$serve" cargo bench -p hotiron-serve --bench serve_throughput
  if ! [ -s "$solvers" ] || ! [ -s "$serve" ]; then
    echo "bench_gate: a bench run produced no JSON ($solvers / $serve)" >&2
    exit 1
  fi
  # Merge the two arrays into one, re-adding commas on all but the last line.
  {
    echo "["
    { strip_array "$solvers"; strip_array "$serve"; } | sed '$!s/$/,/'
    echo "]"
  } > "$out"
  rm -f "$solvers" "$serve"
}

self_test() {
  local tmp base new
  tmp=$(mktemp -d)
  base="$tmp/base.json"
  new="$tmp/new.json"
  cat > "$base" <<'EOF'
[
{"name": "steady/oil_cg/64", "median_ns": 1000000.0},
{"name": "transient_1000_steps_32x32_oil/ldlt_factorize_once", "median_ns": 2000000.0}
]
EOF
  # Identical results must pass.
  cp "$base" "$new"
  if ! compare "$base" "$new" > /dev/null; then
    echo "self-test FAILED: identical results did not pass" >&2
    rm -rf "$tmp"; exit 1
  fi
  # A 25% slowdown on one bench must fail at the default 20% threshold.
  cat > "$new" <<'EOF'
[
{"name": "steady/oil_cg/64", "median_ns": 1250000.0},
{"name": "transient_1000_steps_32x32_oil/ldlt_factorize_once", "median_ns": 2000000.0}
]
EOF
  if compare "$base" "$new" > /dev/null; then
    echo "self-test FAILED: 25% regression passed the gate" >&2
    rm -rf "$tmp"; exit 1
  fi
  # A missing benchmark must fail.
  cat > "$new" <<'EOF'
[
{"name": "steady/oil_cg/64", "median_ns": 1000000.0}
]
EOF
  if compare "$base" "$new" > /dev/null; then
    echo "self-test FAILED: missing benchmark passed the gate" >&2
    rm -rf "$tmp"; exit 1
  fi
  # A p99_ns column must be parsed into its own gated "[p99]" row.
  cat > "$base" <<'EOF'
[
{"name": "serve/throughput", "median_ns": 2500000.0, "p99_ns": 4000000.0}
]
EOF
  if [ "$(parse "$base" | wc -l)" -ne 2 ]; then
    echo "self-test FAILED: p99_ns row not split out by parse" >&2
    rm -rf "$tmp"; exit 1
  fi
  # Steady median but a 50% worse tail must fail: p99 is gated too.
  cat > "$new" <<'EOF'
[
{"name": "serve/throughput", "median_ns": 2500000.0, "p99_ns": 6000000.0}
]
EOF
  if compare "$base" "$new" > /dev/null; then
    echo "self-test FAILED: 50% p99 regression passed the gate" >&2
    rm -rf "$tmp"; exit 1
  fi
  # Identical median and p99 must pass.
  cp "$base" "$new"
  if ! compare "$base" "$new" > /dev/null; then
    echo "self-test FAILED: identical p99 results did not pass" >&2
    rm -rf "$tmp"; exit 1
  fi
  # The speedup table must pair each mg bench with its cg comparator and
  # leave unpaired entries dashed.
  cat > "$new" <<'EOF'
[
{"name": "steady_large/steady_mg_128x128_oil", "median_ns": 20000000.0},
{"name": "steady_large/steady_cg_128x128_oil", "median_ns": 100000000.0},
{"name": "steady_large/steady_mg_256x256_oil", "median_ns": 80000000.0}
]
EOF
  if ! speedup_table "$new" | grep -q "5.0x"; then
    echo "self-test FAILED: speedup table missing the 5.0x pair" >&2
    rm -rf "$tmp"; exit 1
  fi
  if ! speedup_table "$new" | grep "256x256" | grep -q -- "-"; then
    echo "self-test FAILED: unpaired mg bench not dashed" >&2
    rm -rf "$tmp"; exit 1
  fi
  rm -rf "$tmp"
  echo "bench_gate self-test passed"
}

case "${1:-}" in
  --self-test)
    self_test
    ;;
  --update)
    run_benches "$BASELINE"
    echo "baseline updated: $BASELINE"
    speedup_table "$BASELINE"
    ;;
  "")
    if [ -n "${BENCH_GATE_RESULTS:-}" ]; then
      results="$BENCH_GATE_RESULTS"
    else
      results=$(mktemp /tmp/BENCH_solvers.XXXXXX.json)
      run_benches "$results"
    fi
    if ! [ -f "$BASELINE" ]; then
      echo "bench_gate: no baseline at $BASELINE; run 'bash scripts/bench_gate.sh --update'" >&2
      exit 1
    fi
    echo "bench_gate: comparing $results vs $BASELINE (threshold +${THRESHOLD}%)"
    if compare "$BASELINE" "$results"; then
      speedup_table "$results"
      echo "bench_gate: PASS"
    else
      echo "bench_gate: FAIL — at least one benchmark regressed more than ${THRESHOLD}%" >&2
      exit 1
    fi
    ;;
  *)
    echo "usage: bench_gate.sh [--update|--self-test]" >&2
    exit 2
    ;;
esac
