#!/usr/bin/env bash
# The full local gate: workspace audit, formatting, lints, docs, release
# build, tests. CI (.github/workflows/ci.yml) runs these same steps, split
# across jobs.
set -euo pipefail
cd "$(dirname "$0")/.."

# Discover the workspace from cargo metadata rather than a hardcoded crate
# list, and fail if any crates/*/ or compat/*/ directory with a Cargo.toml
# is not actually a member — the glob in the root manifest should make that
# impossible, and this catches the ways it silently stops being true
# (an `exclude` entry, a nested manifest, a renamed directory).
echo "==> workspace membership audit (cargo metadata)"
manifests=$(cargo metadata --no-deps --format-version 1 \
  | tr ',' '\n' | sed -n 's/.*"manifest_path": *"\([^"]*\)".*/\1/p')
echo "$manifests" | sed "s|^$(pwd)/|    |"
missing=0
for m in crates/*/Cargo.toml compat/*/Cargo.toml; do
  [ -f "$m" ] || continue
  if ! printf '%s\n' "$manifests" | grep -Fqx "$(pwd)/$m"; then
    echo "NOT A WORKSPACE MEMBER: $m" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "check: crate directories exist outside the workspace (see above)" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
