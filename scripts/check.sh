#!/usr/bin/env bash
# The full local gate: formatting, lints, docs, release build, tests.
# CI (.github/workflows/ci.yml) runs these same steps, split across jobs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
