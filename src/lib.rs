//! # hotiron
//!
//! A reproduction of Huang et al., *"Differentiating the Roles of IR
//! Measurement and Simulation for Power and Temperature-Aware Design"*
//! (ISPASS 2009), as a production-quality Rust workspace.
//!
//! The paper's question: an IR thermal camera needs the heatsink removed and
//! an IR-transparent oil flowed over the bare die (**OIL-SILICON**) — how
//! does that rig's thermal behavior differ from the real package
//! (**AIR-SINK**), and what does the difference do to DTM design, sensor
//! placement, and power reverse-engineering?
//!
//! This crate re-exports the five sub-crates:
//!
//! | crate | role |
//! |---|---|
//! | [`floorplan`] | die floorplans (EV6, Athlon64), `.flp` parsing, grid mapping |
//! | [`thermal`] | the modified HotSpot: RC model, oil flow, secondary path, solvers |
//! | [`refsim`] | independent fine-grid 3-D finite-volume solver (the ANSYS stand-in) |
//! | [`powersim`] | synthetic SimpleScalar/Wattch power traces |
//! | [`dtm`] | sensors, IR camera, DTM policies, placement, power inversion |
//!
//! # Quick start
//!
//! ```
//! use hotiron::prelude::*;
//!
//! let plan = library::ev6();
//! let model = ThermalModel::new(
//!     plan.clone(),
//!     Package::OilSilicon(OilSiliconPackage::paper_default()),
//!     ModelConfig::paper_default().with_grid(16, 16),
//! )?;
//! let power = PowerMap::from_pairs(&plan, [("IntReg", 2.0)])?;
//! let sol = model.steady_state(&power)?;
//! assert_eq!(sol.hottest_block().0, "IntReg");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use hotiron_dtm as dtm;
pub use hotiron_floorplan as floorplan;
pub use hotiron_powersim as powersim;
pub use hotiron_refsim as refsim;
pub use hotiron_thermal as thermal;

/// The most common imports in one place.
pub mod prelude {
    pub use hotiron_dtm::{
        ClosedLoop, DtmPolicy, DvfsDtm, IrCamera, PackageTranslator, PowerInverter, Sensor,
        SensorArray, ThresholdDtm,
    };
    pub use hotiron_floorplan::{library, Block, Floorplan, GridMapping};
    pub use hotiron_powersim::{
        engine::SyntheticCpu, pipeline::PipelineCpu, program, trace::PowerTrace, uarch, workload,
        LeakageModel,
    };
    pub use hotiron_refsim::{OilModel, RefSim, RefSimConfig};
    pub use hotiron_thermal::{
        units, AirSinkPackage, BlockModel, FlowDirection, LaminarFlow, ModelConfig,
        OilSiliconPackage, Package, PowerMap, SecondaryPath, Solution, ThermalModel,
    };
}
