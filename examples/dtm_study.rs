//! DTM design study (§5.1): run the same gcc workload in closed loop under
//! both packages and compare how dynamic thermal management behaves.
//!
//! Run with: `cargo run --release --example dtm_study`

use hotiron::prelude::*;

fn run_loop(pkg: Package, trigger: f64, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let plan = library::ev6();
    let model =
        ThermalModel::new(plan.clone(), pkg, ModelConfig::paper_default().with_grid(16, 16))?;
    let cpu = SyntheticCpu::new(
        uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
        workload::gcc(),
        42,
    );
    // §5.2's sensing setup: 60 µs interval, 0.1 °C resolution.
    let sensors = SensorArray::new(
        vec![
            Sensor::ideal("IntReg", 8.7e-3, 15.2e-3),
            Sensor::ideal("IntExec", 10.2e-3, 15.2e-3),
            Sensor::ideal("Dcache", 9.5e-3, 11.1e-3),
            Sensor::ideal("LdStQ", 9.5e-3, 13.2e-3),
        ],
        60e-6,
        0.1,
        1,
    );
    let dtm = ThresholdDtm::new(trigger, trigger - 2.0, 0.5, 3e-3);
    let mut cl = ClosedLoop::new(&model, cpu, sensors, dtm);
    let report = cl.run(12_000)?;

    let peak = report.true_max.iter().cloned().fold(f64::MIN, f64::max);
    println!("{label}:");
    println!("  trigger threshold      {trigger:.1} °C");
    println!("  peak true temperature  {peak:.1} °C");
    println!("  DTM engagements        {}", report.dtm_stats.engagements);
    println!("  time throttled         {:.1} %", 100.0 * report.throttled_fraction());
    println!("  effective performance  {:.3}", report.performance());
    println!("  missed violations      {}", report.dtm_stats.missed_violations);
    println!("  max heating rate       {:.1} °C/ms", report.max_heating_rate() / 1e3);
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Closed-loop DTM on EV6/gcc, 12 000 samples (~40 ms), Rconv = 0.3 K/W\n");
    // Thresholds sit a few degrees above each package's typical hot-spot
    // temperature, as a designer would set them.
    run_loop(
        Package::AirSink(AirSinkPackage::paper_default().with_r_convec(0.3)),
        82.0,
        "AIR-SINK (normal operation)",
    )?;
    run_loop(
        Package::OilSilicon(OilSiliconPackage::paper_default().with_target_r_convec(0.3)),
        160.0,
        "OIL-SILICON (IR measurement rig)",
    )?;
    println!(
        "OIL-SILICON's slower short-term response keeps the die in transient\n\
         phases longer, so each DTM engagement lasts longer and costs more\n\
         performance — tuning DTM on the IR rig mis-tunes it for the product."
    );
    Ok(())
}
