//! The paper's §6 future-work goal, working end to end: take an
//! OIL-SILICON "IR measurement", reverse-engineer the power map, and
//! predict what the same chip does inside its real AIR-SINK package.
//!
//! Run with: `cargo run --release --example package_translation`

use hotiron::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = library::ev6();
    let cfg = ModelConfig::paper_default().with_grid(24, 24);

    // The measurement rig and the product package.
    let rig = ThermalModel::new(
        plan.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default()),
        cfg,
    )?;
    let product = ThermalModel::new(
        plan.clone(),
        Package::AirSink(AirSinkPackage::paper_default().with_r_convec(1.0)),
        cfg,
    )?;

    // A gcc run "measured" in the rig (we only get the oil-rig field).
    let cpu = SyntheticCpu::new(
        uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
        workload::gcc(),
        42,
    );
    let truth = PowerMap::from_vec(&plan, cpu.simulate(8_000).average());
    let measured = rig.steady_state(&truth)?;

    // Translate: invert to power, re-simulate in the product package.
    let translator = PackageTranslator::new(&rig, &product)?;
    let recovered = translator.recover_power(measured.silicon_cells())?;
    let predicted = translator.translate_steady(measured.silicon_cells())?;
    let direct = product.steady_state(&truth)?; // ground truth for comparison

    println!("recovered power {:.2} W (truth {:.2} W)\n", recovered.total(), truth.total());
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>9}",
        "block", "rig (°C)", "translated", "direct sim", "error"
    );
    println!("{:-<60}", "");
    let tm = measured.block_celsius();
    let tp = predicted.block_celsius();
    let td = direct.block_celsius();
    for (i, b) in plan.iter().enumerate() {
        println!(
            "{:<10} {:>12.1} {:>12.2} {:>12.2} {:>9.3}",
            b.name(),
            tm[i],
            tp[i],
            td[i],
            tp[i] - td[i]
        );
    }
    println!(
        "\nThe raw rig temperatures are up to {:.0} K away from the product\n\
         package's reality; the translated prediction lands within {:.2} K.\n\
         Measurement and simulation are complementary — the paper's thesis.",
        tm.iter().zip(&td).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max),
        tp.iter().zip(&td).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max),
    );
    Ok(())
}
