//! A virtual IR measurement lab: image an Athlon64-class die through the
//! oil rig, the way Mesa-Martinez et al. did for the paper's Fig 4 — then
//! show what the camera's frame rate and optics do to the recording.
//!
//! Run with: `cargo run --release --example ir_lab`

use hotiron::prelude::*;

const SHADES: &[u8] = b" .:-=+*#%@";

fn ascii_map(grid: &[f64], rows: usize, cols: usize) -> String {
    let max = grid.iter().cloned().fold(f64::MIN, f64::max);
    let min = grid.iter().cloned().fold(f64::MAX, f64::min);
    let mut out = String::new();
    // Print top row first (row index grows upward on the die).
    for r in (0..rows).rev() {
        for c in 0..cols {
            let v = grid[r * cols + c];
            let t = if max > min { (v - min) / (max - min) } else { 0.0 };
            let i = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[i] as char);
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = library::athlon64();
    let cfg = ModelConfig::paper_default().with_grid(40, 40);

    // The IR rig: oil over bare silicon, secondary path through the board
    // (included in what the camera sees, per the paper's §3.2 validation).
    let rig = Package::OilSilicon(
        OilSiliconPackage::paper_default().with_secondary(SecondaryPath::for_oil_rig()),
    );
    let model = ThermalModel::new(plan.clone(), rig, cfg)?;

    // Average power of a flat-out run on the synthetic Athlon.
    let cpu = SyntheticCpu::new(
        uarch::athlon64_units(&plan).expect("athlon64 units align to the floorplan"),
        workload::gcc(),
        7,
    );
    let power = PowerMap::from_vec(&plan, cpu.simulate(6_000).average());
    println!("Athlon64-class die, {:.1} W total, oil rig @ 10 m/s\n", power.total());

    let sol = model.steady_state(&power)?;
    println!("Ground-truth steady thermal map ({} x {} grid):", 40, 40);
    print!("{}", ascii_map(&sol.celsius_grid(), 40, 40));
    println!(
        "\nhottest: {} at {:.1} °C | coolest: {} at {:.1} °C",
        sol.hottest_block().0,
        sol.hottest_block().1,
        sol.coolest_block().0,
        sol.coolest_block().1
    );

    // What the camera actually records: optics blur the map.
    let cam = IrCamera::typical();
    let m = model.mapping();
    let frame = cam.capture(&sol.celsius_grid(), 40, 40, m.cell_width(), m.cell_height());
    println!("\nThrough the IR camera ({}mm PSF):", cam.psf_sigma * 1e3);
    print!("{}", ascii_map(&frame, 40, 40));
    let t_peak = sol.celsius_grid().iter().cloned().fold(f64::MIN, f64::max);
    let c_peak = frame.iter().cloned().fold(f64::MIN, f64::max);
    println!("\noptical smearing hides {:.1} K of the peak", t_peak - c_peak);

    // Secondary-path sanity check (the paper's Fig 5a).
    let no_secondary = ThermalModel::new(
        plan.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default()),
        cfg,
    )?;
    let sol_ns = no_secondary.steady_state(&power)?;
    println!(
        "\nWithout modeling the secondary heat path the predicted hot spot \
         would read {:.1} °C instead of {:.1} °C ({:+.1} K error) — Fig 5(a).",
        sol_ns.hottest_block().1,
        sol.hottest_block().1,
        sol_ns.hottest_block().1 - sol.hottest_block().1,
    );
    Ok(())
}
