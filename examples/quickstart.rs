//! Quickstart: solve the same EV6 die running `gcc` under both cooling
//! configurations and print a side-by-side comparison — the paper's core
//! claim in one screen of output.
//!
//! Run with: `cargo run --release --example quickstart`

use hotiron::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = library::ev6();
    let cfg = ModelConfig::paper_default().with_grid(32, 32);

    // Average gcc power from the synthetic Wattch pipeline.
    let cpu = SyntheticCpu::new(
        uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
        workload::gcc(),
        42,
    );
    let trace = cpu.simulate(8_000);
    let power = PowerMap::from_vec(&plan, trace.average());
    println!("EV6 running gcc: total power {:.1} W\n", power.total());

    // The same die, two packages, same case-to-ambient resistance.
    let air = ThermalModel::new(
        plan.clone(),
        Package::AirSink(AirSinkPackage::paper_default().with_r_convec(1.0)),
        cfg,
    )?;
    let oil = ThermalModel::new(
        plan.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default().with_target_r_convec(1.0)),
        cfg,
    )?;

    let sa = air.steady_state(&power)?;
    let so = oil.steady_state(&power)?;

    println!("{:<12} {:>12} {:>12}", "metric", "AIR-SINK", "OIL-SILICON");
    println!("{:-<38}", "");
    println!("{:<12} {:>12.1} {:>12.1}", "Tmax (°C)", sa.max_celsius(), so.max_celsius());
    println!("{:<12} {:>12.1} {:>12.1}", "Tmin (°C)", sa.min_celsius(), so.min_celsius());
    println!("{:<12} {:>12.1} {:>12.1}", "Tavg (°C)", sa.average_celsius(), so.average_celsius());
    println!("{:<12} {:>12.1} {:>12.1}", "ΔT (K)", sa.gradient(), so.gradient());
    println!("{:<12} {:>12} {:>12}", "hottest", sa.hottest_block().0, so.hottest_block().0);

    println!("\nPer-block temperatures (°C):");
    println!("{:<10} {:>9} {:>12}", "block", "AIR-SINK", "OIL-SILICON");
    let ta = sa.block_celsius();
    let to = so.block_celsius();
    for (i, b) in plan.iter().enumerate() {
        println!("{:<10} {:>9.1} {:>12.1}", b.name(), ta[i], to[i]);
    }

    println!(
        "\nSame average power and same Rconv, yet OIL-SILICON's hot spot is \
         {:.0} K hotter and its gradient {:.1}x larger — why IR measurements \
         alone cannot drive temperature-aware design.",
        so.max_celsius() - sa.max_celsius(),
        so.gradient() / sa.gradient()
    );
    Ok(())
}
