//! Sensor placement and power reverse-engineering artifacts (§5.3–5.4).
//!
//! 1. How many uniformly-placed sensors does each package need for a given
//!    worst-case under-read?
//! 2. If each core of a homogeneous multi-core burns the *same* power, what
//!    does a flow-direction-unaware inversion of the IR map report?
//!
//! Run with: `cargo run --release --example sensor_placement`

use hotiron::dtm::placement;
use hotiron::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = library::ev6();
    let cpu = SyntheticCpu::new(
        uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
        workload::gcc(),
        42,
    );
    let power = PowerMap::from_vec(&plan, cpu.simulate(8_000).average());
    let cfg = ModelConfig::paper_default().with_grid(32, 32);

    let air = ThermalModel::new(
        plan.clone(),
        Package::AirSink(AirSinkPackage::paper_default().with_r_convec(1.0)),
        cfg,
    )?;
    let oil = ThermalModel::new(
        plan.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default().with_target_r_convec(1.0)),
        cfg,
    )?;
    let sa = air.steady_state(&power)?;
    let so = oil.steady_state(&power)?;

    println!("Sensor-grid under-read (true Tmax − best sensor reading), °C:\n");
    println!("{:<14} {:>9} {:>12}", "sensor grid", "AIR-SINK", "OIL-SILICON");
    for m in [1usize, 2, 3, 4, 6, 8] {
        println!(
            "{:<14} {:>9.2} {:>12.2}",
            format!("{m} x {m}"),
            placement::grid_under_read(&sa, m, 0.016, 0.016),
            placement::grid_under_read(&so, m, 0.016, 0.016),
        );
    }
    for budget in [2.0, 1.0] {
        let na = placement::sensors_needed(&sa, budget, 0.016, 0.016, 20);
        let no = placement::sensors_needed(&so, budget, 0.016, 0.016, 20);
        println!(
            "\nsensors needed for ≤{budget:.0} °C error: AIR-SINK {:?}, OIL-SILICON {:?}",
            na, no
        );
    }
    println!(
        "\nsingle-sensor misplacement error at 2 mm offset: AIR {:.2} °C, OIL {:.2} °C",
        placement::misplacement_error(&sa, 2e-3),
        placement::misplacement_error(&so, 2e-3),
    );

    // --- Part 2: the §5.4 inversion artifact -----------------------------
    println!("\n----------------------------------------------------------");
    println!("Power inversion artifact: 4 cores, equal 4 W each, oil left→right\n");
    let mc = library::multicore(4, 1, 0.02, 0.01);
    let mc_cfg = ModelConfig::paper_default().with_grid(16, 32);
    let real = ThermalModel::new(
        mc.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default()),
        mc_cfg,
    )?;
    let assumed = ThermalModel::new(
        mc.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default().with_uniform_h()),
        mc_cfg,
    )?;
    let truth = PowerMap::from_vec(&mc, vec![4.0; 4]);
    let observed = real.steady_state(&truth)?;
    let inverter = PowerInverter::new(&assumed)?;
    let estimated = inverter.invert(observed.silicon_cells())?;

    println!("{:<10} {:>8} {:>22}", "core", "true W", "estimated W (no dir.)");
    for (i, b) in mc.iter().enumerate() {
        println!("{:<10} {:>8.2} {:>22.2}", b.name(), truth.values()[i], estimated[i]);
    }
    println!(
        "\nDownstream cores sit in warmer oil, look hotter to the camera, and\n\
         a direction-unaware inversion hands them phantom watts — the artifact\n\
         Hamann et al. correct for (§5.4)."
    );
    Ok(())
}
