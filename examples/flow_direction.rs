//! Oil-flow direction study (the paper's Fig 11): steady-state EV6
//! temperatures under the four flow directions. The hottest unit flips from
//! IntReg to Dcache when the flow enters from the top edge.
//!
//! Run with: `cargo run --release --example flow_direction`

use hotiron::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = library::ev6();
    let cpu = SyntheticCpu::new(
        uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
        workload::gcc(),
        42,
    );
    let power = PowerMap::from_vec(&plan, cpu.simulate(8_000).average());

    println!("EV6 / gcc ({:.1} W) under 10 m/s oil, four flow directions\n", power.total());
    print!("{:<10}", "unit");
    for d in FlowDirection::ALL {
        print!(" {:>15}", d.label());
    }
    println!();
    println!("{:-<74}", "");

    let mut solutions = Vec::new();
    for dir in FlowDirection::ALL {
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default().with_direction(dir)),
            ModelConfig::paper_default().with_grid(32, 32),
        )?;
        solutions.push(model.steady_state(&power)?.block_celsius());
    }

    for (i, b) in plan.iter().enumerate() {
        print!("{:<10}", b.name());
        for sol in &solutions {
            print!(" {:>15.2}", sol[i]);
        }
        println!();
    }

    println!();
    for (dir, sol) in FlowDirection::ALL.iter().zip(&solutions) {
        let (bi, t) = sol.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty");
        println!("hottest under {:<15}: {} ({:.2} °C)", dir.label(), plan.blocks()[bi].name(), t);
    }
    println!(
        "\nA sensor placed at IntReg because of a top-to-bottom IR run would\n\
         miss the real hot spot in any other orientation — and vice versa (§5.4)."
    );
    Ok(())
}
