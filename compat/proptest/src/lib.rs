//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the [`proptest!`], [`prop_compose!`] and [`prop_assert!`] macros,
//! range and [`collection::vec`] strategies, [`bool::ANY`], and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics match real proptest closely enough for the suite: each test
//! runs `cases` deterministic random cases (seeded from the test name) and
//! reports the first failing case's message. There is no shrinking — a
//! failure prints the sampled values' debug formatting via the assertion
//! message instead.

use std::fmt;
use std::ops::Range;

/// Deterministic SplitMix64 stream used to sample strategy values.
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seeds the stream from a test name (stable across runs).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name keeps runs reproducible without RNG deps.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { x: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

/// Strategy produced by [`prop_compose!`] and usable for ad-hoc closures.
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
    /// Wraps a sampling closure.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    /// Samples vectors whose length is uniform in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean, equiprobable.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case (produced by the `prop_assert!` family).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_compose, proptest, ProptestConfig, Strategy,
    };
}

/// Property-style assertion: records a failure instead of panicking so the
/// harness can attach the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first so clippy lints on the caller's expression (e.g.
        // `neg_cmp_op_on_partial_ord`) don't fire on the macro's negation.
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Defines a named strategy function, mirroring proptest's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)
        ($($arg:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                $body
            })
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn small_even()(n in 0usize..50) -> usize { n * 2 }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..2.5, n in 3usize..7) {
            prop_assert!((1.5..2.5).contains(&x), "{x}");
            prop_assert!((3..7).contains(&n), "{n}");
        }

        #[test]
        fn composed_strategies_apply_map(n in small_even()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_strategy_obeys_size(v in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn bool_any_samples_both(flag in crate::bool::ANY) {
            // Just exercise the strategy; both values are legal.
            let _ = flag;
        }
    }

    #[test]
    fn runs_the_generated_tests() {
        ranges_stay_in_bounds();
        composed_strategies_apply_map();
        vec_strategy_obeys_size();
        bool_any_samples_both();
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0, "x = {x} is never above 2");
            }
        }
        always_fails();
    }
}
