//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the workloads and sensor models require
//! (the workspace never relies on the exact stream of the real `StdRng`).

use std::ops::Range;

/// Types that can be drawn uniformly from their full domain (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types `gen_range` can sample from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * f64::sample(rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(usize, u64, u32, u16, u8);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0,1], got {p}");
        f64::sample(self) < p
    }
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Deterministic xoshiro256++ generator (the stand-in for `rand`'s
/// `StdRng`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&v));
            let n = r.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "{hits}");
    }
}
