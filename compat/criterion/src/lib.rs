//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. Bench targets compile and run with `cargo bench`, timing each
//! benchmark with a calibrated iteration count and printing
//! `name: median time/iter (min .. max over samples)` — no plotting, no
//! statistics machinery, no external deps.

use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Results recorded by every `run_benchmark` call, for the optional JSON
/// export ([`finalize`]): `(label, median seconds per iteration)`.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Writes every benchmark's median to the file named by the
/// `HOTIRON_BENCH_JSON` environment variable (no-op when unset), as a JSON
/// array of `{"name": ..., "median_ns": ...}` objects, one per line — the
/// input format of `scripts/bench_gate.sh`. Called by [`criterion_main!`]
/// after all groups have run.
pub fn finalize() {
    let Ok(path) = std::env::var("HOTIRON_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let results = RESULTS.lock().expect("results lock");
    let mut out = String::from("[\n");
    for (i, (name, median)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"median_ns\": {:.1}}}{comma}\n",
            name.replace('\\', "\\\\").replace('"', "\\\""),
            median * 1e9
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write bench JSON to {path}: {e}");
    } else {
        println!("bench medians written to {path}");
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), samples: 20 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, 20, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.samples, &mut f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Calibrate: grow the iteration count until one sample costs >= 5 ms
    // (or a single iteration is already slower than that).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
    RESULTS.lock().expect("results lock").push((label.to_owned(), median));
    println!(
        "bench {label:<40} {:>12} /iter  ({} .. {}, {} samples x {} iters)",
        format_time(median),
        format_time(min),
        format_time(max),
        samples,
        iters
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Collects benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group, mirroring criterion. After all groups
/// finish, medians are exported as JSON when `HOTIRON_BENCH_JSON` is set
/// (see [`finalize`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn bencher_times_work() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn finalize_writes_json_medians() {
        let path = std::env::temp_dir().join(format!("hotiron_bench_{}.json", std::process::id()));
        RESULTS.lock().unwrap().push(("json/probe".into(), 1.5e-6));
        std::env::set_var("HOTIRON_BENCH_JSON", &path);
        finalize();
        std::env::remove_var("HOTIRON_BENCH_JSON");
        let s = std::fs::read_to_string(&path).expect("json written");
        let _ = std::fs::remove_file(&path);
        assert!(s.trim_start().starts_with('['), "{s}");
        assert!(s.contains("\"name\": \"json/probe\""), "{s}");
        assert!(s.contains("\"median_ns\": 1500.0"), "{s}");
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(3e-9).ends_with("ns"));
        assert!(format_time(3e-6).ends_with("µs"));
        assert!(format_time(3e-3).ends_with("ms"));
        assert!(format_time(3.0).ends_with('s'));
    }
}
