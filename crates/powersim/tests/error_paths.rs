//! Error paths of the trace and microarchitecture layers: every rejected
//! input must produce a `TraceError`/`UarchError` (or parse message) that
//! names the offending block, so a broken workload description is
//! diagnosable from the experiment runner's failure line alone.

use hotiron_floorplan::library;
use hotiron_powersim::trace::TraceError;
use hotiron_powersim::uarch::{athlon64_units, ev6_units, UarchError, UnitClass, UnitSpec};
use hotiron_powersim::PowerTrace;

#[test]
fn trace_constructors_name_the_unknown_block() {
    let plan = library::ev6();

    let err = PowerTrace::square_wave(&plan, "NotABlock", 2.0, 0.01, 0.01, 1e-3, 0.05)
        .expect_err("unknown block must be rejected");
    assert_eq!(err, TraceError { block: "NotABlock".to_owned() });
    assert_eq!(err.to_string(), "unknown block `NotABlock`");

    // Handoff reports the *first* unknown name, even in second position.
    let err = PowerTrace::handoff(&plan, "IntReg", "FPMangle", 2.0, 0.01, 1e-3, 0.05)
        .expect_err("unknown handoff target must be rejected");
    assert_eq!(err.block, "FPMangle");
}

#[test]
fn ptrace_parse_errors_name_block_and_line() {
    let plan = library::ev6();
    let valid = PowerTrace::square_wave(&plan, "IntReg", 2.0, 0.01, 0.01, 1e-3, 0.01)
        .expect("valid trace")
        .to_ptrace(&plan);

    // Unknown column header.
    let bad_header = valid.replacen("IntReg", "IntRogue", 1);
    let err = PowerTrace::from_ptrace(&plan, &bad_header, 1e-3).expect_err("bad header");
    assert!(err.contains("unknown block `IntRogue`"), "{err}");

    // Malformed value: the message must name the column's block and line.
    let mut lines: Vec<&str> = valid.lines().collect();
    let intreg_col = lines[0].split_whitespace().position(|n| n == "IntReg").expect("column");
    let row2: Vec<&str> = lines[2].split_whitespace().collect();
    let corrupted: String = row2
        .iter()
        .enumerate()
        .map(|(i, v)| if i == intreg_col { "2.0.0" } else { *v })
        .collect::<Vec<_>>()
        .join("\t");
    lines[2] = &corrupted;
    let err = PowerTrace::from_ptrace(&plan, &lines.join("\n"), 1e-3).expect_err("malformed value");
    assert!(
        err.contains("bad value `2.0.0`")
            && err.contains("block `IntReg`")
            && err.contains("line 3"),
        "message must name value, block and line: {err}"
    );

    // Short row: names the line and the expected width.
    let short = format!("{}\n{}\n1.0 2.0\n", lines[0], lines[1]);
    let err = PowerTrace::from_ptrace(&plan, &short, 1e-3).expect_err("short row");
    assert!(err.contains("short row at line 3"), "{err}");
    assert!(err.contains(&format!("{} blocks", plan.len())), "{err}");

    // Column-count mismatch against the floorplan.
    let err = PowerTrace::from_ptrace(&plan, "IntReg\n1.0\n", 1e-3).expect_err("missing columns");
    assert!(err.contains(&format!("floorplan has {} blocks", plan.len())), "{err}");
}

#[test]
fn uarch_errors_name_the_offending_unit() {
    let ev6 = library::ev6();
    let athlon = library::athlon64();

    // Cross-floorplan misuse must fail loudly in either direction (the
    // count check fires first when the block counts differ).
    assert!(ev6_units(&athlon).is_err(), "EV6 units on an Athlon plan");
    assert!(athlon64_units(&ev6).is_err(), "Athlon units on an EV6 plan");

    // A unit naming a block the plan lacks: the message carries the name.
    let mut units = ev6_units(&ev6).expect("matching floorplan");
    units[0].name = "IntRogue".to_owned();
    let err = hotiron_powersim::uarch::align_to_plan(&ev6, units)
        .expect_err("unknown unit name must be rejected");
    assert_eq!(err, UarchError::MissingBlock("IntRogue".to_owned()));
    assert_eq!(err.to_string(), "floorplan lacks block `IntRogue`");

    // Count mismatch reports both sizes.
    let one = vec![UnitSpec::new("IntReg", UnitClass::IntExec, 1.0, 0.1)];
    let err = hotiron_powersim::uarch::align_to_plan(&ev6, one).expect_err("count mismatch");
    assert_eq!(err, UarchError::CountMismatch(1, ev6.len()));
    assert_eq!(err.to_string(), format!("1 unit specs for {} floorplan blocks", ev6.len()));

    // Duplicate unit names are rejected before any mapping happens.
    let dupes: Vec<UnitSpec> =
        (0..ev6.len()).map(|_| UnitSpec::new("IntReg", UnitClass::IntExec, 1.0, 0.1)).collect();
    let err = hotiron_powersim::uarch::align_to_plan(&ev6, dupes).expect_err("duplicates");
    assert_eq!(err, UarchError::DuplicateUnit("IntReg".to_owned()));
}
