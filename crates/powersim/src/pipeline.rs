//! A cycle-approximate out-of-order pipeline.
//!
//! This is the heart of the SimpleScalar substitution: instead of asserting
//! per-unit activity levels, a small 4-wide out-of-order machine executes a
//! synthetic instruction stream drawn from a [`ProgramProfile`], and the
//! activities *emerge* from pipeline events — fetches, issues, cache
//! accesses, mispredict flushes, memory stalls. Power is then the same
//! Wattch-style `leakage + activity x peak` per unit.
//!
//! The model (deliberately EV6-flavored):
//!
//! * fetch width 4, blocked by I-cache misses and mispredict redirects;
//! * a reorder buffer of 80 entries, in-order commit, width 4;
//! * instruction latencies: int 1, fp 4, load 3 (L1 hit), branch 1;
//! * L1 miss → +12 cycles; L2 miss → +250 cycles (memory);
//! * mispredict → 12-cycle front-end flush.

use crate::program::ProgramProfile;
use crate::trace::PowerTrace;
use crate::uarch::{UnitClass, UnitSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

const FETCH_WIDTH: usize = 4;
const COMMIT_WIDTH: usize = 4;
const ROB_SIZE: usize = 80;
const L1_MISS_PENALTY: u64 = 12;
const L2_MISS_PENALTY: u64 = 250;
const MISPREDICT_PENALTY: u64 = 12;
const FP_LATENCY: u64 = 4;
const LOAD_LATENCY: u64 = 3;

/// Cycle-level counters accumulated over one power sample.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleCounters {
    /// Cycles in the sample.
    pub cycles: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Integer operations executed.
    pub int_ops: u64,
    /// FP operations executed.
    pub fp_ops: u64,
    /// Memory operations executed.
    pub mem_ops: u64,
    /// Branches executed.
    pub branches: u64,
    /// L1 data misses.
    pub l1d_misses: u64,
    /// L2 misses (memory accesses).
    pub l2_misses: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
}

impl SampleCounters {
    /// Instructions per cycle over the sample.
    pub fn ipc(&self) -> f64 {
        self.committed as f64 / self.cycles.max(1) as f64
    }

    /// Per-class activity levels in `[0, 1]` derived from the counters.
    ///
    /// Events per cycle are normalized by an *effective capacity* per class
    /// (Wattch-style): the throughput at which the class's units run at
    /// full switching activity. Calibrated so the pipeline and the
    /// phase-based generator ([`crate::engine`]) agree on gcc's block
    /// powers.
    pub fn activity(&self, class: UnitClass) -> f64 {
        let cycles = self.cycles.max(1) as f64;
        let per_cap = |n: u64, cap: f64| (n as f64 / cycles / cap).clamp(0.0, 1.0);
        match class {
            UnitClass::Fetch => per_cap(self.fetched, 2.2),
            UnitClass::Schedule => per_cap(self.committed, 2.0),
            UnitClass::IntExec => per_cap(self.int_ops + self.branches, 1.2),
            UnitClass::FpExec => per_cap(self.fp_ops, 0.7),
            UnitClass::LoadStore => per_cap(self.mem_ops, 0.85),
            UnitClass::L2 => per_cap(self.l1d_misses, 0.05),
            UnitClass::Clock => 1.0,
            UnitClass::Other => 0.3,
            UnitClass::Blank => 0.0,
        }
    }
}

/// An in-flight instruction: the cycle its result is ready.
#[derive(Debug, Clone, Copy)]
struct RobEntry {
    ready_at: u64,
}

/// The cycle-approximate CPU.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::library;
/// use hotiron_powersim::pipeline::PipelineCpu;
/// use hotiron_powersim::{program, uarch};
///
/// let plan = library::ev6();
/// let cpu = PipelineCpu::new(uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"), program::gcc_program(), 7);
/// let (trace, counters) = cpu.simulate(100);
/// assert_eq!(trace.len(), 100);
/// let ipc = counters.iter().map(|c| c.ipc()).sum::<f64>() / 100.0;
/// assert!(ipc > 0.3 && ipc < 4.0, "plausible IPC, got {ipc}");
/// ```
#[derive(Debug, Clone)]
pub struct PipelineCpu {
    units: Vec<UnitSpec>,
    program: ProgramProfile,
    seed: u64,
    /// Cycles per power sample (the paper's 10 K).
    pub sample_cycles: u64,
    /// Clock frequency, Hz (3 GHz: 10 K cycles ≈ 3.33 µs).
    pub frequency: f64,
}

impl PipelineCpu {
    /// Creates the CPU.
    ///
    /// # Panics
    ///
    /// Panics if `units` is empty.
    pub fn new(units: Vec<UnitSpec>, program: ProgramProfile, seed: u64) -> Self {
        assert!(!units.is_empty(), "need units");
        Self { units, program, seed, sample_cycles: 10_000, frequency: 3.0e9 }
    }

    /// The unit specs.
    pub fn units(&self) -> &[UnitSpec] {
        &self.units
    }

    /// Runs `n_samples` x `sample_cycles` cycles; returns the power trace
    /// and the per-sample counters.
    pub fn simulate(&self, n_samples: usize) -> (PowerTrace, Vec<SampleCounters>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dt = self.sample_cycles as f64 / self.frequency;
        let mut trace = PowerTrace::new(dt, self.units.len());
        let mut all_counters = Vec::with_capacity(n_samples);

        let mut cycle: u64 = 0;
        let mut rob: VecDeque<RobEntry> = VecDeque::with_capacity(ROB_SIZE);
        // Cycle until which the front-end is stalled (mispredict or i-miss).
        let mut frontend_stalled_until: u64 = 0;

        for _ in 0..n_samples {
            let mut c = SampleCounters { cycles: self.sample_cycles, ..Default::default() };
            for _ in 0..self.sample_cycles {
                let phase = self.program.phase_at(cycle);
                // Commit: retire up to COMMIT_WIDTH ready instructions.
                let mut committed = 0;
                while committed < COMMIT_WIDTH {
                    match rob.front() {
                        Some(e) if e.ready_at <= cycle => {
                            rob.pop_front();
                            committed += 1;
                        }
                        _ => break,
                    }
                }
                c.committed += committed as u64;

                // Fetch/dispatch: blocked by redirects and a full ROB.
                if cycle >= frontend_stalled_until {
                    // I-cache miss stalls the whole fetch group.
                    if rng.gen_bool(phase.l1i_miss) {
                        frontend_stalled_until = cycle + L1_MISS_PENALTY;
                    } else {
                        let room = ROB_SIZE - rob.len();
                        let group = FETCH_WIDTH.min(room);
                        for _ in 0..group {
                            c.fetched += 1;
                            let r: f64 = rng.gen();
                            let mix = phase.mix;
                            let (lat, kind) = if r < mix.int_ops {
                                (1, 0)
                            } else if r < mix.int_ops + mix.fp_ops {
                                (FP_LATENCY, 1)
                            } else if r < mix.int_ops + mix.fp_ops + mix.loads + mix.stores {
                                // Memory op: latency depends on the caches.
                                let mut lat = LOAD_LATENCY;
                                if rng.gen_bool(phase.l1d_miss) {
                                    c.l1d_misses += 1;
                                    lat += L1_MISS_PENALTY;
                                    if rng.gen_bool(phase.l2_miss) {
                                        c.l2_misses += 1;
                                        lat += L2_MISS_PENALTY;
                                    }
                                }
                                (lat, 2)
                            } else {
                                (1, 3)
                            };
                            match kind {
                                0 => c.int_ops += 1,
                                1 => c.fp_ops += 1,
                                2 => c.mem_ops += 1,
                                _ => {
                                    c.branches += 1;
                                    if rng.gen_bool(phase.mispredict) {
                                        c.mispredicts += 1;
                                        frontend_stalled_until = cycle + MISPREDICT_PENALTY;
                                    }
                                }
                            }
                            rob.push_back(RobEntry { ready_at: cycle + lat });
                            if frontend_stalled_until > cycle {
                                break; // mispredict ends the fetch group
                            }
                        }
                    }
                }
                cycle += 1;
            }
            // Power from emergent activities.
            let sample: Vec<f64> =
                self.units.iter().map(|u| u.power(c.activity(u.class))).collect();
            trace.push(&sample);
            all_counters.push(c);
        }
        (trace, all_counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program;
    use crate::uarch;
    use hotiron_floorplan::library;

    fn cpu(profile: ProgramProfile) -> PipelineCpu {
        let plan = library::ev6();
        PipelineCpu::new(
            uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            profile,
            99,
        )
    }

    #[test]
    fn deterministic_per_seed() {
        let a = cpu(program::gcc_program()).simulate(50);
        let b = cpu(program::gcc_program()).simulate(50);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn gcc_ipc_is_plausible() {
        let (_, counters) = cpu(program::gcc_program()).simulate(200);
        let ipc: f64 = counters.iter().map(|c| c.ipc()).sum::<f64>() / 200.0;
        assert!(ipc > 0.6 && ipc < 3.0, "gcc IPC {ipc}");
    }

    #[test]
    fn mcf_is_memory_bound_and_slower() {
        let (_, gcc) = cpu(program::gcc_program()).simulate(200);
        let (_, mcf) = cpu(program::mcf_program()).simulate(200);
        let ipc = |cs: &[SampleCounters]| cs.iter().map(|c| c.ipc()).sum::<f64>() / cs.len() as f64;
        assert!(ipc(&mcf) < 0.7 * ipc(&gcc), "mcf {} must crawl vs gcc {}", ipc(&mcf), ipc(&gcc));
        // And hammer the L2 harder per instruction.
        let l2_per_kinst = |cs: &[SampleCounters]| {
            let misses: u64 = cs.iter().map(|c| c.l1d_misses).sum();
            let insts: u64 = cs.iter().map(|c| c.committed).sum();
            misses as f64 / insts.max(1) as f64 * 1000.0
        };
        assert!(l2_per_kinst(&mcf) > 3.0 * l2_per_kinst(&gcc));
    }

    #[test]
    fn art_burns_fp_power() {
        let plan = library::ev6();
        let fp_idx = plan.block_index("FPMul").unwrap();
        let int_idx = plan.block_index("IntExec").unwrap();
        let (t_art, _) = cpu(program::art_program()).simulate(200);
        let (t_gcc, _) = cpu(program::gcc_program()).simulate(200);
        let a = t_art.average();
        let g = t_gcc.average();
        // Compare dynamic power (leakage floors both).
        let plan2 = library::ev6();
        let fp_leak =
            uarch::ev6_units(&plan2).expect("ev6 units align to the floorplan")[fp_idx].leakage;
        let dyn_art = a[fp_idx] - fp_leak;
        let dyn_gcc = (g[fp_idx] - fp_leak).max(1e-6);
        assert!(dyn_art > 3.0 * dyn_gcc, "art FP dyn {dyn_art} vs gcc {dyn_gcc}");
        assert!(g[int_idx] > a[int_idx], "gcc INT hotter than art INT");
    }

    #[test]
    fn pipeline_and_phase_generator_agree_on_totals() {
        // The two power-generation paths should land in the same ballpark
        // for gcc (they are calibrated to the same unit peaks).
        let plan = library::ev6();
        let (t_pipe, _) = cpu(program::gcc_program()).simulate(2_000);
        let phase_cpu = crate::engine::SyntheticCpu::new(
            uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            crate::workload::gcc(),
            99,
        );
        let t_phase = phase_cpu.simulate(2_000);
        let total_pipe: f64 = t_pipe.average().iter().sum();
        let total_phase: f64 = t_phase.average().iter().sum();
        let rel = (total_pipe - total_phase).abs() / total_phase;
        assert!(rel < 0.30, "pipeline {total_pipe} W vs phase model {total_phase} W");
    }

    #[test]
    fn counters_are_internally_consistent() {
        let (_, counters) = cpu(program::gcc_program()).simulate(100);
        for c in &counters {
            let typed = c.int_ops + c.fp_ops + c.mem_ops + c.branches;
            assert_eq!(typed, c.fetched, "every fetched instruction has a type");
            assert!(c.l1d_misses <= c.mem_ops);
            assert!(c.l2_misses <= c.l1d_misses);
            assert!(c.mispredicts <= c.branches);
            assert!(c.ipc() <= COMMIT_WIDTH as f64);
        }
    }

    #[test]
    fn sample_period_matches_paper() {
        let c = cpu(program::gcc_program());
        let dt = c.sample_cycles as f64 / c.frequency;
        assert!((dt - 3.333e-6).abs() < 1e-8);
    }
}
