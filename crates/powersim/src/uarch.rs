//! Microarchitectural unit power descriptors (the Wattch role).

use hotiron_floorplan::Floorplan;
use std::fmt;

/// A unit-spec set does not line up with the target floorplan.
///
/// Returned instead of panicking so a unit/floorplan mismatch is a
/// reportable failure under the experiment fan-out runner rather than a
/// crashed worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UarchError {
    /// A unit names a block the floorplan does not have.
    MissingBlock(String),
    /// Two units name the same block.
    DuplicateUnit(String),
    /// The number of units differs from the number of blocks; fields are
    /// `(units, blocks)`.
    CountMismatch(usize, usize),
}

impl fmt::Display for UarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingBlock(name) => write!(f, "floorplan lacks block `{name}`"),
            Self::DuplicateUnit(name) => write!(f, "duplicate unit spec for `{name}`"),
            Self::CountMismatch(units, blocks) => {
                write!(f, "{units} unit specs for {blocks} floorplan blocks")
            }
        }
    }
}

impl std::error::Error for UarchError {}

/// Functional class of a unit; workload phases set one activity level per
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitClass {
    /// Instruction fetch, I-cache, branch prediction, ITB.
    Fetch,
    /// Rename/map and issue queues.
    Schedule,
    /// Integer execution and register file.
    IntExec,
    /// Floating-point execution, registers, queues.
    FpExec,
    /// Load/store queue, D-cache, DTB.
    LoadStore,
    /// L2 cache.
    L2,
    /// Clock distribution (activity ≈ 1 whenever not gated).
    Clock,
    /// Pads, controllers, I/O: weak activity coupling.
    Other,
    /// Blank silicon: leakage only.
    Blank,
}

/// One functional unit's power model: `P = leakage + activity x peak_dynamic`.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSpec {
    /// Block name (must exist in the floorplan).
    pub name: String,
    /// Functional class.
    pub class: UnitClass,
    /// Peak dynamic power at activity 1.0, W.
    pub peak_dynamic: f64,
    /// Leakage at the reference temperature, W.
    pub leakage: f64,
}

impl UnitSpec {
    /// Creates a unit spec.
    ///
    /// # Panics
    ///
    /// Panics if powers are negative or non-finite.
    pub fn new(name: impl Into<String>, class: UnitClass, peak_dynamic: f64, leakage: f64) -> Self {
        assert!(peak_dynamic.is_finite() && peak_dynamic >= 0.0, "peak dynamic must be >= 0");
        assert!(leakage.is_finite() && leakage >= 0.0, "leakage must be >= 0");
        Self { name: name.into(), class, peak_dynamic, leakage }
    }

    /// Power at a given activity in `[0, 1]` and reference temperature, W.
    pub fn power(&self, activity: f64) -> f64 {
        self.leakage + self.peak_dynamic * activity.clamp(0.0, 1.0)
    }
}

/// Exponential temperature dependence of leakage,
/// `L(T) = L(T_ref) · exp(β·(T − T_ref))` — the feedback loop the paper's
/// §6 lists as a complication for reconciling packages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    /// Exponential sensitivity, 1/K (≈0.02–0.04 for 90–130 nm nodes).
    pub beta: f64,
    /// Reference temperature, K.
    pub t_ref: f64,
}

impl LeakageModel {
    /// A 130 nm-class model: β = 0.025/K around 60 °C.
    pub fn node_130nm() -> Self {
        Self { beta: 0.025, t_ref: 333.15 }
    }

    /// Leakage multiplier at temperature `t` kelvin.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = hotiron_powersim::LeakageModel::node_130nm();
    /// assert!((m.factor(333.15) - 1.0).abs() < 1e-12);
    /// assert!(m.factor(353.15) > 1.5); // +20 K → >1.5x leakage
    /// ```
    pub fn factor(&self, t: f64) -> f64 {
        (self.beta * (t - self.t_ref)).exp()
    }
}

fn unit(name: &str, class: UnitClass, peak: f64, leak: f64) -> UnitSpec {
    UnitSpec::new(name, class, peak, leak)
}

/// EV6-class unit power model matched to [`hotiron_floorplan::library::ev6`].
///
/// Average powers under the `gcc` workload land near the block averages the
/// HotSpot/Wattch literature reports for the EV6: integer cluster dominant,
/// FP cluster nearly idle, ~40–50 W total.
///
/// # Errors
///
/// Returns [`UarchError`] if the floorplan lacks any of the expected EV6
/// block names.
pub fn ev6_units(plan: &Floorplan) -> Result<Vec<UnitSpec>, UarchError> {
    // Peaks back-calculated so gcc-average *power densities* land in the
    // Fig 11 ordering: IntReg > IntExec > LdStQ > Dcache ≈ Bpred ≈ IntQ,
    // with IntReg only ~1.4x Dcache — tight enough that a top-to-bottom
    // oil flow (which cools the top-edge IntReg best) flips the hot spot
    // to Dcache, exactly as the paper's Fig 11 reports.
    let units = vec![
        unit("L2", UnitClass::L2, 12.5, 2.2),
        unit("L2_left", UnitClass::L2, 2.0, 0.5),
        unit("L2_right", UnitClass::L2, 2.0, 0.5),
        unit("Icache", UnitClass::Fetch, 7.7, 0.6),
        unit("Dcache", UnitClass::LoadStore, 14.5, 0.7),
        unit("Bpred", UnitClass::Fetch, 1.65, 0.15),
        unit("DTB", UnitClass::LoadStore, 0.6, 0.05),
        unit("FPAdd", UnitClass::FpExec, 2.0, 0.15),
        unit("FPReg", UnitClass::FpExec, 1.2, 0.1),
        unit("FPMul", UnitClass::FpExec, 1.8, 0.12),
        unit("FPMap", UnitClass::FpExec, 1.0, 0.09),
        unit("IntMap", UnitClass::Schedule, 1.7, 0.1),
        unit("IntQ", UnitClass::Schedule, 0.45, 0.05),
        unit("ITB", UnitClass::Fetch, 0.95, 0.08),
        unit("IntReg", UnitClass::IntExec, 3.8, 0.25),
        unit("IntExec", UnitClass::IntExec, 4.1, 0.3),
        unit("FPQ", UnitClass::FpExec, 1.0, 0.08),
        unit("LdStQ", UnitClass::LoadStore, 3.8, 0.15),
    ];
    align_to_plan(plan, units)
}

/// Athlon64-class unit power model matched to
/// [`hotiron_floorplan::library::athlon64`], calibrated so the scheduler is
/// the hot spot under OIL-SILICON (the paper's Fig 4: ~73 °C at `sched`,
/// ~45 °C at the coolest covered block).
///
/// # Errors
///
/// Returns [`UarchError`] if the floorplan lacks any of the expected
/// Athlon64 block names.
pub fn athlon64_units(plan: &Floorplan) -> Result<Vec<UnitSpec>, UarchError> {
    let units = vec![
        unit("blank1", UnitClass::Blank, 0.0, 0.02),
        unit("blank2", UnitClass::Blank, 0.0, 0.02),
        unit("blank3", UnitClass::Blank, 0.0, 0.02),
        unit("blank4", UnitClass::Blank, 0.0, 0.02),
        unit("mem_ctl", UnitClass::Other, 1.12, 0.12),
        unit("clock", UnitClass::Clock, 1.36, 0.12),
        unit("l2cache", UnitClass::L2, 3.6, 0.8),
        unit("fetch", UnitClass::Fetch, 1.6, 0.12),
        unit("rob_irf", UnitClass::Schedule, 2.0, 0.14),
        unit("sched", UnitClass::Schedule, 3.68, 0.16),
        unit("clockd1", UnitClass::Clock, 0.44, 0.04),
        unit("clockd2", UnitClass::Clock, 0.44, 0.04),
        unit("clockd3", UnitClass::Clock, 0.44, 0.04),
        unit("lsq", UnitClass::LoadStore, 1.12, 0.08),
        unit("dtlb", UnitClass::LoadStore, 0.52, 0.04),
        unit("fp_sched", UnitClass::FpExec, 0.72, 0.048),
        unit("frf", UnitClass::FpExec, 0.68, 0.048),
        unit("sse", UnitClass::FpExec, 0.96, 0.06),
        unit("l1i", UnitClass::Fetch, 1.76, 0.16),
        unit("bus_etc", UnitClass::Other, 0.72, 0.1),
        unit("l1d", UnitClass::LoadStore, 2.24, 0.18),
        unit("fp0", UnitClass::FpExec, 1.12, 0.072),
    ];
    align_to_plan(plan, units)
}

/// Reorders `units` into the floorplan's block order so trace samples align
/// with [`hotiron_floorplan::Floorplan`] indices.
///
/// # Errors
///
/// [`UarchError::CountMismatch`] when the spec count differs from the block
/// count, [`UarchError::MissingBlock`] for a unit naming no block, and
/// [`UarchError::DuplicateUnit`] when two specs name the same block.
pub fn align_to_plan(plan: &Floorplan, units: Vec<UnitSpec>) -> Result<Vec<UnitSpec>, UarchError> {
    if plan.len() != units.len() {
        return Err(UarchError::CountMismatch(units.len(), plan.len()));
    }
    let mut slots: Vec<Option<UnitSpec>> = vec![None; plan.len()];
    for u in units {
        let i =
            plan.block_index(&u.name).ok_or_else(|| UarchError::MissingBlock(u.name.clone()))?;
        if slots[i].is_some() {
            return Err(UarchError::DuplicateUnit(u.name));
        }
        slots[i] = Some(u);
    }
    // Count + no-duplicates implies every slot is filled.
    Ok(slots.into_iter().map(|s| s.expect("every block has a unit spec")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotiron_floorplan::library;

    #[test]
    fn ev6_units_cover_floorplan() {
        let plan = library::ev6();
        let units = ev6_units(&plan).expect("ev6 units align to the ev6 floorplan");
        assert_eq!(units.len(), plan.len());
        // At gcc-like activity levels, IntReg has the highest power
        // density: the Fig 10-12 hot spot.
        let activity = |c: UnitClass| match c {
            UnitClass::IntExec => 0.95,
            UnitClass::Schedule => 0.9,
            UnitClass::Fetch => 0.85,
            UnitClass::LoadStore => 0.8,
            UnitClass::L2 => 0.25,
            UnitClass::Clock => 1.0,
            UnitClass::FpExec => 0.04,
            UnitClass::Other => 0.3,
            UnitClass::Blank => 0.0,
        };
        let density = |name: &str| {
            let u = units.iter().find(|u| u.name == name).unwrap();
            let b = plan.block(name).unwrap();
            u.power(activity(u.class)) / b.area()
        };
        let d_intreg = density("IntReg");
        for b in plan.iter() {
            if b.name() != "IntReg" {
                assert!(density(b.name()) <= d_intreg, "{} density exceeds IntReg", b.name());
            }
        }
    }

    #[test]
    fn athlon_units_cover_floorplan() {
        let plan = library::athlon64();
        let units = athlon64_units(&plan).expect("athlon64 units align to the athlon64 floorplan");
        assert_eq!(units.len(), plan.len());
        // sched carries the highest density (Fig 4's hot spot).
        let sched = units.iter().find(|u| u.name == "sched").unwrap();
        let a = plan.block("sched").unwrap().area();
        let d_sched = (sched.peak_dynamic + sched.leakage) / a;
        for u in &units {
            let b = plan.block(&u.name).unwrap();
            assert!(
                (u.peak_dynamic + u.leakage) / b.area() <= d_sched + 1e-9,
                "{} density exceeds sched",
                u.name
            );
        }
    }

    #[test]
    fn unit_power_clamps_activity() {
        let u = UnitSpec::new("x", UnitClass::IntExec, 2.0, 0.5);
        assert_eq!(u.power(0.0), 0.5);
        assert_eq!(u.power(1.0), 2.5);
        assert_eq!(u.power(5.0), 2.5);
        assert_eq!(u.power(-1.0), 0.5);
    }

    #[test]
    fn leakage_model_monotonic() {
        let m = LeakageModel::node_130nm();
        assert!(m.factor(340.0) > m.factor(330.0));
        assert!(m.factor(m.t_ref) == 1.0);
    }

    #[test]
    fn mismatched_floorplan_rejected() {
        let plan = library::athlon64();
        let err = ev6_units(&plan).expect_err("ev6 units cannot align to the athlon64 floorplan");
        assert!(
            matches!(err, UarchError::CountMismatch(..) | UarchError::MissingBlock(_)),
            "unexpected error: {err}"
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn duplicate_unit_rejected() {
        let plan = library::ev6();
        let mut units = ev6_units(&plan).expect("ev6 units align to the ev6 floorplan");
        let dup = units[0].clone();
        let last = units.len() - 1;
        units[last] = dup;
        let err = align_to_plan(&plan, units).expect_err("duplicate spec must be rejected");
        assert!(matches!(err, UarchError::DuplicateUnit(_)), "unexpected error: {err}");
    }
}
