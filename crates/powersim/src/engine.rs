//! The activity engine: workload phases × unit specs → power trace.

use crate::trace::PowerTrace;
use crate::uarch::{LeakageModel, UnitSpec};
use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic CPU: a set of unit power models driven by a workload.
///
/// Deterministic for a given seed, so every figure regenerates identically.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::library;
/// use hotiron_powersim::{engine::SyntheticCpu, uarch, workload};
///
/// let plan = library::ev6();
/// let cpu = SyntheticCpu::new(uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"), workload::gcc(), 1);
/// let a = cpu.simulate(500);
/// let b = cpu.simulate(500);
/// assert_eq!(a, b, "same seed, same trace");
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCpu {
    units: Vec<UnitSpec>,
    workload: Workload,
    seed: u64,
    leakage: Option<LeakageModel>,
}

impl SyntheticCpu {
    /// Creates a synthetic CPU.
    ///
    /// # Panics
    ///
    /// Panics if `units` is empty.
    pub fn new(units: Vec<UnitSpec>, workload: Workload, seed: u64) -> Self {
        assert!(!units.is_empty(), "need at least one unit");
        Self { units, workload, seed, leakage: None }
    }

    /// Enables temperature-dependent leakage; [`SyntheticCpu::simulate_at`]
    /// then scales each unit's leakage by the model's factor.
    pub fn with_leakage_model(mut self, model: LeakageModel) -> Self {
        self.leakage = Some(model);
        self
    }

    /// The unit specs.
    pub fn units(&self) -> &[UnitSpec] {
        &self.units
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Generates `n` samples at the workload's reference temperature.
    pub fn simulate(&self, n: usize) -> PowerTrace {
        self.simulate_from(n, 0)
    }

    /// Generates `n` samples starting at absolute sample offset `start`
    /// (useful for windowed re-simulation of a long run).
    pub fn simulate_from(&self, n: usize, start: usize) -> PowerTrace {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (start as u64).wrapping_mul(0x9E37_79B9));
        let mut trace = PowerTrace::new(self.workload.sample_period, self.units.len());
        let mut sample = vec![0.0; self.units.len()];
        for i in 0..n {
            self.fill_sample(start + i, &mut rng, None, &mut sample);
            trace.push(&sample);
        }
        trace
    }

    /// Generates one sample at absolute index `n`, with per-unit block
    /// temperatures (kelvin) for leakage feedback if a leakage model is set.
    pub fn simulate_at(&self, n: usize, temps: Option<&[f64]>) -> Vec<f64> {
        // A fresh RNG keyed to the sample index keeps this random-access
        // API consistent with the streaming one.
        let mut rng = StdRng::seed_from_u64(self.seed ^ (n as u64).wrapping_mul(0x9E37_79B9));
        let mut sample = vec![0.0; self.units.len()];
        self.fill_sample(n, &mut rng, temps, &mut sample);
        sample
    }

    fn fill_sample(&self, n: usize, rng: &mut StdRng, temps: Option<&[f64]>, out: &mut [f64]) {
        let phase = self.workload.phase_at(n);
        for (u, (unit, slot)) in self.units.iter().zip(out.iter_mut()).enumerate() {
            let base = phase.activity.level(unit.class);
            let jitter = if phase.dither > 0.0 {
                1.0 + rng.gen_range(-phase.dither..phase.dither)
            } else {
                1.0
            };
            let activity = (base * jitter).clamp(0.0, 1.0);
            let mut leak = unit.leakage;
            if let (Some(model), Some(t)) = (self.leakage, temps) {
                leak *= model.factor(t[u]);
            }
            *slot = leak + unit.peak_dynamic * activity;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uarch::{self, UnitClass};
    use crate::workload;
    use hotiron_floorplan::library;

    fn cpu() -> SyntheticCpu {
        let plan = library::ev6();
        SyntheticCpu::new(
            uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            workload::gcc(),
            7,
        )
    }

    #[test]
    fn deterministic_per_seed() {
        let a = cpu().simulate(200);
        let b = cpu().simulate(200);
        assert_eq!(a, b);
        let plan = library::ev6();
        let other = SyntheticCpu::new(
            uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            workload::gcc(),
            8,
        )
        .simulate(200);
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn gcc_total_power_is_tens_of_watts() {
        let t = cpu().simulate(8000);
        let total: f64 = t.average().iter().sum();
        assert!(total > 20.0 && total < 70.0, "gcc total {total} W");
    }

    #[test]
    fn gcc_intreg_density_dominates() {
        let plan = library::ev6();
        let t = cpu().simulate(8000);
        let avg = t.average();
        let dens =
            |name: &str| avg[plan.block_index(name).unwrap()] / plan.block(name).unwrap().area();
        assert!(dens("IntReg") > dens("FPMul") * 4.0, "integer code barely uses FP");
        assert!(dens("IntReg") > dens("L2"), "core denser than cache");
    }

    #[test]
    fn phases_modulate_power() {
        // The stall phase should be visibly lower-power than the hot phase.
        let t = cpu().simulate(8000);
        let hot: f64 = (0..100).map(|i| t.total(i)).sum::<f64>() / 100.0;
        let stall_start = 2600 + 1200; // first stall phase
        let stall: f64 = (stall_start..stall_start + 100).map(|i| t.total(i)).sum::<f64>() / 100.0;
        assert!(stall < 0.7 * hot, "stall {stall} vs hot {hot}");
    }

    #[test]
    fn leakage_feedback_raises_power_when_hot() {
        let plan = library::ev6();
        let base = SyntheticCpu::new(
            uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            workload::idle(),
            3,
        );
        let fb = base.clone().with_leakage_model(LeakageModel::node_130nm());
        let cool = vec![330.0; plan.len()];
        let hot = vec![380.0; plan.len()];
        let p_cool: f64 = fb.simulate_at(0, Some(&cool)).iter().sum();
        let p_hot: f64 = fb.simulate_at(0, Some(&hot)).iter().sum();
        assert!(p_hot > p_cool, "leakage must grow with temperature");
        // Without a model, temperatures are ignored.
        let p_a: f64 = base.simulate_at(0, Some(&hot)).iter().sum();
        let p_b: f64 = base.simulate_at(0, Some(&cool)).iter().sum();
        assert_eq!(p_a, p_b);
    }

    #[test]
    fn flat_out_has_no_jitter() {
        let plan = library::ev6();
        let c = SyntheticCpu::new(
            uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            workload::flat_out(),
            1,
        );
        let t = c.simulate(10);
        for i in 1..10 {
            assert_eq!(t.sample(i), t.sample(0));
        }
    }

    #[test]
    fn blank_units_emit_leakage_only() {
        let plan = library::athlon64();
        let c = SyntheticCpu::new(
            uarch::athlon64_units(&plan).expect("athlon64 units align to the floorplan"),
            workload::flat_out(),
            1,
        );
        let t = c.simulate(1);
        let bi = plan.block_index("blank1").unwrap();
        let spec = c.units().iter().find(|u| u.name == "blank1").unwrap();
        assert!((t.sample(0)[bi] - spec.leakage).abs() < 1e-12);
        let _ = UnitClass::Blank; // silence unused-import lint in this test module
    }
}
