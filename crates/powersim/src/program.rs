//! Program characteristics for the cycle-approximate pipeline.
//!
//! Where [`crate::workload`] describes *activity* phases directly, a
//! [`ProgramProfile`] describes the *program*: instruction mix, cache miss
//! rates and branch behavior per phase. The pipeline engine
//! ([`crate::pipeline`]) turns these into cycle-level events, from which
//! per-unit activities — and hence power — emerge rather than being
//! asserted.

/// Fractions of each instruction type; must sum to ~1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Integer ALU operations.
    pub int_ops: f64,
    /// Floating-point operations.
    pub fp_ops: f64,
    /// Loads.
    pub loads: f64,
    /// Stores.
    pub stores: f64,
    /// Branches.
    pub branches: f64,
}

impl InstructionMix {
    /// Creates a mix, validating it sums to 1 within 1 %.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the sum is not ≈1.
    pub fn new(int_ops: f64, fp_ops: f64, loads: f64, stores: f64, branches: f64) -> Self {
        for (name, v) in [
            ("int", int_ops),
            ("fp", fp_ops),
            ("loads", loads),
            ("stores", stores),
            ("branches", branches),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} fraction out of range: {v}");
        }
        let sum = int_ops + fp_ops + loads + stores + branches;
        assert!((sum - 1.0).abs() < 0.01, "mix must sum to 1, got {sum}");
        Self { int_ops, fp_ops, loads, stores, branches }
    }

    /// A typical integer-code mix.
    pub fn integer_code() -> Self {
        Self::new(0.42, 0.02, 0.26, 0.12, 0.18)
    }

    /// A floating-point streaming mix.
    pub fn fp_code() -> Self {
        Self::new(0.20, 0.38, 0.26, 0.10, 0.06)
    }
}

/// One phase of program behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramPhase {
    /// Phase length in cycles.
    pub cycles: u64,
    /// Instruction mix.
    pub mix: InstructionMix,
    /// L1 D-cache miss rate per memory access.
    pub l1d_miss: f64,
    /// L2 miss rate per L1 miss (these go to memory).
    pub l2_miss: f64,
    /// L1 I-cache miss rate per fetch group.
    pub l1i_miss: f64,
    /// Branch misprediction rate per branch.
    pub mispredict: f64,
}

/// A repeating sequence of program phases.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramProfile {
    /// Name for reports.
    pub name: String,
    /// The repeating phases.
    pub phases: Vec<ProgramPhase>,
}

impl ProgramProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero cycles.
    pub fn new(name: impl Into<String>, phases: Vec<ProgramPhase>) -> Self {
        assert!(!phases.is_empty(), "profile needs at least one phase");
        assert!(phases.iter().all(|p| p.cycles > 0), "phases need cycles");
        Self { name: name.into(), phases }
    }

    /// Total cycles in one pass of the sequence.
    pub fn period_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }

    /// The phase active at absolute cycle `c`.
    pub fn phase_at(&self, c: u64) -> &ProgramPhase {
        let mut r = c % self.period_cycles();
        for p in &self.phases {
            if r < p.cycles {
                return p;
            }
            r -= p.cycles;
        }
        unreachable!("phase_at arithmetic is exhaustive")
    }
}

/// `gcc`-like program: integer-heavy with miss-rate phases.
pub fn gcc_program() -> ProgramProfile {
    ProgramProfile::new(
        "gcc",
        vec![
            ProgramPhase {
                cycles: 26_000_000 / 1000,
                mix: InstructionMix::integer_code(),
                l1d_miss: 0.03,
                l2_miss: 0.10,
                l1i_miss: 0.01,
                mispredict: 0.06,
            },
            ProgramPhase {
                cycles: 12_000_000 / 1000,
                mix: InstructionMix::new(0.38, 0.02, 0.30, 0.12, 0.18),
                l1d_miss: 0.06,
                l2_miss: 0.20,
                l1i_miss: 0.02,
                mispredict: 0.08,
            },
            ProgramPhase {
                cycles: 7_000_000 / 1000,
                mix: InstructionMix::new(0.30, 0.01, 0.40, 0.12, 0.17),
                l1d_miss: 0.18,
                l2_miss: 0.55,
                l1i_miss: 0.01,
                mispredict: 0.05,
            },
        ],
    )
}

/// `mcf`-like program: pointer chasing, dominated by memory misses.
pub fn mcf_program() -> ProgramProfile {
    ProgramProfile::new(
        "mcf",
        vec![ProgramPhase {
            cycles: 40_000,
            mix: InstructionMix::new(0.30, 0.01, 0.42, 0.10, 0.17),
            l1d_miss: 0.25,
            l2_miss: 0.60,
            l1i_miss: 0.005,
            mispredict: 0.05,
        }],
    )
}

/// `art`-like program: floating-point streaming.
pub fn art_program() -> ProgramProfile {
    ProgramProfile::new(
        "art",
        vec![ProgramPhase {
            cycles: 30_000,
            mix: InstructionMix::fp_code(),
            l1d_miss: 0.08,
            l2_miss: 0.30,
            l1i_miss: 0.002,
            mispredict: 0.02,
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_validates() {
        let m = InstructionMix::integer_code();
        let sum = m.int_ops + m.fp_ops + m.loads + m.stores + m.branches;
        assert!((sum - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_rejected() {
        let _ = InstructionMix::new(0.5, 0.5, 0.5, 0.0, 0.0);
    }

    #[test]
    fn phase_at_walks() {
        let p = gcc_program();
        assert_eq!(p.phase_at(0).cycles, 26_000);
        assert_eq!(p.phase_at(26_000).l1d_miss, 0.06);
        let period = p.period_cycles();
        assert_eq!(p.phase_at(period).cycles, 26_000);
    }

    #[test]
    fn presets_have_expected_character() {
        assert!(mcf_program().phases[0].l1d_miss > gcc_program().phases[0].l1d_miss);
        assert!(art_program().phases[0].mix.fp_ops > 0.3);
    }
}
