//! Power traces: time series of per-block power.

use hotiron_floorplan::Floorplan;
use std::fmt;

/// A trace constructor referenced a block the floorplan does not have.
///
/// Returned instead of panicking so a malformed workload description is a
/// reportable failure under the experiment fan-out runner rather than a
/// crashed worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// The unknown block name.
    pub block: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown block `{}`", self.block)
    }
}

impl std::error::Error for TraceError {}

/// A time series of per-block power samples.
///
/// Samples are uniformly spaced `dt` seconds apart; each sample holds one
/// wattage per floorplan block, in floorplan order.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::library;
/// use hotiron_powersim::PowerTrace;
///
/// let plan = library::ev6();
/// // The paper's Fig 8 load: 2 W/mm² on the hot block, 15 ms on / 85 ms off.
/// let t = PowerTrace::square_wave(&plan, "Icache", 16.0, 0.015, 0.085, 1e-3, 0.2)?;
/// assert_eq!(t.len(), 200);
/// let avg = t.average();
/// let icache = plan.block_index("Icache").unwrap();
/// assert!((avg[icache] - 16.0 * 0.15).abs() < 0.5);
/// # Ok::<(), hotiron_powersim::trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    dt: f64,
    block_count: usize,
    /// Flattened `len x block_count`.
    data: Vec<f64>,
}

impl PowerTrace {
    /// Creates an empty trace.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive or `block_count` is zero.
    pub fn new(dt: f64, block_count: usize) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive");
        assert!(block_count > 0, "need at least one block");
        Self { dt, block_count, data: Vec::new() }
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len()` differs from the block count.
    pub fn push(&mut self, sample: &[f64]) {
        assert_eq!(sample.len(), self.block_count, "one value per block");
        self.data.extend_from_slice(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len() / self.block_count
    }

    /// Whether the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Seconds between samples.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of blocks per sample.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Total trace duration, s.
    pub fn duration(&self) -> f64 {
        self.len() as f64 * self.dt
    }

    /// Sample `i` as a slice of per-block watts.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: usize) -> &[f64] {
        let lo = i * self.block_count;
        &self.data[lo..lo + self.block_count]
    }

    /// Per-block time-average power.
    pub fn average(&self) -> Vec<f64> {
        let n = self.len().max(1) as f64;
        let mut avg = vec![0.0; self.block_count];
        for i in 0..self.len() {
            for (a, v) in avg.iter_mut().zip(self.sample(i)) {
                *a += v;
            }
        }
        for a in &mut avg {
            *a /= n;
        }
        avg
    }

    /// Total chip power of sample `i`, W.
    pub fn total(&self, i: usize) -> f64 {
        self.sample(i).iter().sum()
    }

    /// A constant trace holding `powers` for `duration` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `powers` is empty.
    pub fn constant(powers: &[f64], dt: f64, duration: f64) -> Self {
        let mut t = Self::new(dt, powers.len());
        let n = (duration / dt).round().max(1.0) as usize;
        for _ in 0..n {
            t.push(powers);
        }
        t
    }

    /// A square wave on one block: `watts` for `on` seconds, 0 for `off`
    /// seconds, repeating over `duration` (all other blocks 0 W) — the
    /// paper's Fig 8 load shape.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the block name is unknown.
    ///
    /// # Panics
    ///
    /// Panics if timings are not positive.
    pub fn square_wave(
        plan: &Floorplan,
        block: &str,
        watts: f64,
        on: f64,
        off: f64,
        dt: f64,
        duration: f64,
    ) -> Result<Self, TraceError> {
        assert!(on > 0.0 && off >= 0.0, "on/off durations must be positive");
        let bi = plan.block_index(block).ok_or_else(|| TraceError { block: block.to_owned() })?;
        let mut t = Self::new(dt, plan.len());
        let period = on + off;
        let n = (duration / dt).round().max(1.0) as usize;
        let mut sample = vec![0.0; plan.len()];
        for i in 0..n {
            let phase = (i as f64 * dt) % period;
            sample[bi] = if phase < on { watts } else { 0.0 };
            t.push(&sample);
        }
        Ok(t)
    }

    /// A two-stage handoff: `block_a` dissipates `watts` for `t_switch`
    /// seconds, then `block_b` does for the remainder — the paper's Fig 9
    /// IntReg→FPMap experiment.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] for the first unknown block name.
    ///
    /// # Panics
    ///
    /// Panics on non-positive timings.
    pub fn handoff(
        plan: &Floorplan,
        block_a: &str,
        block_b: &str,
        watts: f64,
        t_switch: f64,
        dt: f64,
        duration: f64,
    ) -> Result<Self, TraceError> {
        assert!(t_switch > 0.0 && duration > t_switch, "switch must fall inside the trace");
        let a =
            plan.block_index(block_a).ok_or_else(|| TraceError { block: block_a.to_owned() })?;
        let b =
            plan.block_index(block_b).ok_or_else(|| TraceError { block: block_b.to_owned() })?;
        let mut t = Self::new(dt, plan.len());
        let n = (duration / dt).round().max(1.0) as usize;
        for i in 0..n {
            let mut sample = vec![0.0; plan.len()];
            if (i as f64) * dt < t_switch {
                sample[a] = watts;
            } else {
                sample[b] = watts;
            }
            t.push(&sample);
        }
        Ok(t)
    }

    /// Re-samples to a coarser period by averaging whole groups of
    /// `factor` samples (an anti-aliased decimation, as an IR camera's
    /// integration time effectively performs).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn decimate(&self, factor: usize) -> Self {
        assert!(factor > 0, "factor must be positive");
        let mut out = Self::new(self.dt * factor as f64, self.block_count);
        let mut i = 0;
        while i + factor <= self.len() {
            let mut acc = vec![0.0; self.block_count];
            for j in i..i + factor {
                for (a, v) in acc.iter_mut().zip(self.sample(j)) {
                    *a += v;
                }
            }
            for a in &mut acc {
                *a /= factor as f64;
            }
            out.push(&acc);
            i += factor;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotiron_floorplan::library;

    #[test]
    fn push_and_sample() {
        let mut t = PowerTrace::new(1e-6, 2);
        t.push(&[1.0, 2.0]);
        t.push(&[3.0, 4.0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.sample(1), &[3.0, 4.0]);
        assert_eq!(t.total(0), 3.0);
        assert!((t.duration() - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn average_over_samples() {
        let mut t = PowerTrace::new(1.0, 1);
        t.push(&[2.0]);
        t.push(&[4.0]);
        assert_eq!(t.average(), vec![3.0]);
    }

    #[test]
    fn square_wave_duty_cycle() {
        let plan = library::ev6();
        let t = PowerTrace::square_wave(&plan, "IntReg", 10.0, 0.015, 0.085, 1e-3, 1.0).unwrap();
        let bi = plan.block_index("IntReg").unwrap();
        let avg = t.average()[bi];
        assert!((avg - 1.5).abs() < 0.1, "avg {avg}");
        // Other blocks stay dark.
        assert_eq!(t.average()[plan.block_index("L2").unwrap()], 0.0);
    }

    #[test]
    fn handoff_switches_block() {
        let plan = library::ev6();
        let t = PowerTrace::handoff(&plan, "IntReg", "FPMap", 2.0, 0.01, 1e-3, 0.02).unwrap();
        let a = plan.block_index("IntReg").unwrap();
        let b = plan.block_index("FPMap").unwrap();
        assert_eq!(t.sample(0)[a], 2.0);
        assert_eq!(t.sample(0)[b], 0.0);
        assert_eq!(t.sample(15)[a], 0.0);
        assert_eq!(t.sample(15)[b], 2.0);
    }

    #[test]
    fn decimate_averages_groups() {
        let mut t = PowerTrace::new(1.0, 1);
        for v in [1.0, 3.0, 5.0, 7.0] {
            t.push(&[v]);
        }
        let d = t.decimate(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.sample(0), &[2.0]);
        assert_eq!(d.sample(1), &[6.0]);
        assert_eq!(d.dt(), 2.0);
    }

    #[test]
    fn constant_trace() {
        let t = PowerTrace::constant(&[1.0, 2.0], 0.5, 2.0);
        assert_eq!(t.len(), 4);
        assert_eq!(t.sample(3), &[1.0, 2.0]);
    }

    #[test]
    fn square_wave_unknown_block_is_an_error() {
        let plan = library::ev6();
        let err = PowerTrace::square_wave(&plan, "nope", 1.0, 0.1, 0.1, 0.01, 1.0)
            .expect_err("unknown block must be rejected");
        assert_eq!(err.block, "nope");
        assert!(err.to_string().contains("unknown block `nope`"));
    }

    #[test]
    fn handoff_unknown_block_is_an_error() {
        let plan = library::ev6();
        let err = PowerTrace::handoff(&plan, "IntReg", "ghost", 1.0, 0.01, 1e-3, 0.02)
            .expect_err("unknown block must be rejected");
        assert_eq!(err.block, "ghost");
    }
}

/// HotSpot `.ptrace` text format support: a header line of block names
/// followed by one whitespace-separated power sample per line.
impl PowerTrace {
    /// Serializes to HotSpot's `.ptrace` text format.
    pub fn to_ptrace(&self, plan: &Floorplan) -> String {
        assert_eq!(plan.len(), self.block_count, "floorplan/block-count mismatch");
        let mut out = String::new();
        let names: Vec<&str> = plan.names().collect();
        out.push_str(&names.join("\t"));
        out.push('\n');
        for i in 0..self.len() {
            let row: Vec<String> = self.sample(i).iter().map(|v| format!("{v:.6}")).collect();
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Parses HotSpot `.ptrace` text; columns are matched to the floorplan's
    /// blocks by name (any column order).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown block, malformed value or
    /// short row.
    pub fn from_ptrace(plan: &Floorplan, text: &str, dt: f64) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty ptrace")?;
        let names: Vec<&str> = header.split_whitespace().collect();
        let cols: Vec<usize> = names
            .iter()
            .map(|name| plan.block_index(name).ok_or_else(|| format!("unknown block `{name}`")))
            .collect::<Result<_, _>>()?;
        if cols.len() != plan.len() {
            return Err(format!(
                "ptrace has {} columns, floorplan has {} blocks",
                cols.len(),
                plan.len()
            ));
        }
        let mut trace = PowerTrace::new(dt, plan.len());
        for (ln, line) in lines.enumerate() {
            let vals: Vec<f64> = line
                .split_whitespace()
                .enumerate()
                .map(|(col, v)| {
                    v.parse().map_err(|_| {
                        let block = names.get(col).copied().unwrap_or("<extra column>");
                        format!("bad value `{v}` for block `{block}` at line {}", ln + 2)
                    })
                })
                .collect::<Result<_, _>>()?;
            if vals.len() != cols.len() {
                return Err(format!(
                    "short row at line {}: {} values for {} blocks",
                    ln + 2,
                    vals.len(),
                    cols.len()
                ));
            }
            let mut sample = vec![0.0; plan.len()];
            for (v, &bi) in vals.iter().zip(&cols) {
                sample[bi] = *v;
            }
            trace.push(&sample);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod ptrace_tests {
    use super::*;
    use hotiron_floorplan::library;

    #[test]
    fn ptrace_round_trips() {
        let plan = library::ev6();
        let t = PowerTrace::square_wave(&plan, "IntReg", 2.0, 0.01, 0.01, 1e-3, 0.05).unwrap();
        let text = t.to_ptrace(&plan);
        let back = PowerTrace::from_ptrace(&plan, &text, 1e-3).unwrap();
        assert_eq!(back.len(), t.len());
        for i in 0..t.len() {
            for (a, b) in t.sample(i).iter().zip(back.sample(i)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn ptrace_header_order_is_flexible() {
        let plan = library::uniform_die(0.01, 0.01);
        let text = "die\n1.5\n2.5\n";
        let t = PowerTrace::from_ptrace(&plan, text, 1e-3).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.sample(1)[0], 2.5);
    }

    #[test]
    fn ptrace_rejects_unknown_blocks_and_bad_rows() {
        let plan = library::uniform_die(0.01, 0.01);
        assert!(PowerTrace::from_ptrace(&plan, "nope\n1.0\n", 1e-3)
            .unwrap_err()
            .contains("unknown block"));
        assert!(PowerTrace::from_ptrace(&plan, "die\nx\n", 1e-3)
            .unwrap_err()
            .contains("bad value"));
        assert!(PowerTrace::from_ptrace(&plan, "", 1e-3).is_err());
    }
}
