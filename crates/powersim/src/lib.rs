//! Synthetic microarchitectural power-trace generation.
//!
//! The paper drives its thermal simulations with SimpleScalar + Wattch
//! running SPEC benchmarks (gcc) on an Alpha EV6 configuration, sampling
//! power every 10 K cycles (≈3.3 µs at 3 GHz). Neither SimpleScalar nor
//! SPEC binaries can be shipped here, so this crate generates
//! **deterministic, phase-structured synthetic power traces** with the same
//! statistical anatomy:
//!
//! * per-unit peak dynamic power + leakage ([`uarch`]), calibrated to the
//!   block-level averages published for EV6-class cores in the
//!   HotSpot/Wattch literature;
//! * workload *phases* (high-IPC bursts, L2-miss stalls, FP-heavy regions)
//!   with per-unit-class activity levels ([`workload`]);
//! * cycle-level dithering from a seeded RNG ([`engine`]).
//!
//! The thermal conclusions of the paper depend on the spatial power
//! distribution and its temporal burstiness, both of which are preserved.
//! See DESIGN.md (substitutions).
//!
//! # Examples
//!
//! ```
//! use hotiron_floorplan::library;
//! use hotiron_powersim::{engine::SyntheticCpu, uarch, workload};
//!
//! let plan = library::ev6();
//! let cpu = SyntheticCpu::new(uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"), workload::gcc(), 42);
//! let trace = cpu.simulate(1000);
//! assert_eq!(trace.len(), 1000);
//! assert!(trace.average().iter().sum::<f64>() > 10.0); // tens of watts
//! ```

pub mod engine;
pub mod pipeline;
pub mod program;
pub mod trace;
pub mod uarch;
pub mod workload;

pub use engine::SyntheticCpu;
pub use pipeline::PipelineCpu;
pub use program::ProgramProfile;
pub use trace::PowerTrace;
pub use uarch::{LeakageModel, UnitClass, UnitSpec};
pub use workload::{Phase, Workload};
