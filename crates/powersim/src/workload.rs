//! Phase-structured synthetic workloads.
//!
//! Real programs execute in *phases* — bursts of high IPC, memory-stall
//! regions, FP kernels — and the per-phase mix is what shapes the on-chip
//! temperature traces of the paper's Fig 12. A [`Workload`] is a repeating
//! sequence of [`Phase`]s, each holding an activity level per
//! [`UnitClass`] plus a dithering amplitude.

use crate::uarch::UnitClass;

/// Activity levels (each in `[0, 1]`) for every unit class during one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activity {
    /// Fetch/I-cache/branch.
    pub fetch: f64,
    /// Rename/issue.
    pub schedule: f64,
    /// Integer execution.
    pub int_exec: f64,
    /// Floating-point execution.
    pub fp_exec: f64,
    /// Load/store and D-cache.
    pub load_store: f64,
    /// L2 cache.
    pub l2: f64,
    /// Clock tree (1.0 unless gated).
    pub clock: f64,
    /// Controllers/pads.
    pub other: f64,
}

impl Activity {
    /// All-idle activity (clock still running).
    pub fn idle() -> Self {
        Self {
            fetch: 0.05,
            schedule: 0.05,
            int_exec: 0.03,
            fp_exec: 0.01,
            load_store: 0.03,
            l2: 0.02,
            clock: 1.0,
            other: 0.1,
        }
    }

    /// The level for a unit class.
    pub fn level(&self, class: UnitClass) -> f64 {
        match class {
            UnitClass::Fetch => self.fetch,
            UnitClass::Schedule => self.schedule,
            UnitClass::IntExec => self.int_exec,
            UnitClass::FpExec => self.fp_exec,
            UnitClass::LoadStore => self.load_store,
            UnitClass::L2 => self.l2,
            UnitClass::Clock => self.clock,
            UnitClass::Other => self.other,
            UnitClass::Blank => 0.0,
        }
    }
}

/// One workload phase: a duration (in samples) and an activity vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Phase length in power samples.
    pub samples: usize,
    /// Mean activity per class.
    pub activity: Activity,
    /// Multiplicative dithering amplitude (0 = deterministic, 0.2 = ±20%).
    pub dither: f64,
}

impl Phase {
    /// Creates a phase.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero or `dither` is negative.
    pub fn new(samples: usize, activity: Activity, dither: f64) -> Self {
        assert!(samples > 0, "phase must span at least one sample");
        assert!((0.0..=1.0).contains(&dither), "dither must be in [0,1]");
        Self { samples, activity, dither }
    }
}

/// A repeating sequence of phases with a sampling period.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Name for reports.
    pub name: String,
    /// Seconds per power sample (the paper: 10 K cycles at 3 GHz ≈ 3.33 µs).
    pub sample_period: f64,
    /// The repeating phase sequence.
    pub phases: Vec<Phase>,
}

impl Workload {
    /// The paper's sampling period: 10 K cycles at 3 GHz.
    pub const PAPER_SAMPLE_PERIOD: f64 = 10_000.0 / 3.0e9;

    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or the period is not positive.
    pub fn new(name: impl Into<String>, sample_period: f64, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "workload needs at least one phase");
        assert!(sample_period.is_finite() && sample_period > 0.0, "period must be positive");
        Self { name: name.into(), sample_period, phases }
    }

    /// Total samples in one pass through the phase sequence.
    pub fn period_samples(&self) -> usize {
        self.phases.iter().map(|p| p.samples).sum()
    }

    /// The phase active at absolute sample `n` (sequence repeats).
    pub fn phase_at(&self, n: usize) -> &Phase {
        let mut r = n % self.period_samples();
        for p in &self.phases {
            if r < p.samples {
                return p;
            }
            r -= p.samples;
        }
        unreachable!("phase_at: index arithmetic is exhaustive")
    }
}

/// `gcc`: integer-dominant, bursty, with periodic L2-miss stall regions —
/// the workload behind the paper's Figs 10 and 12.
pub fn gcc() -> Workload {
    let hot = Activity {
        fetch: 0.85,
        schedule: 0.9,
        int_exec: 0.95,
        fp_exec: 0.04,
        load_store: 0.8,
        l2: 0.25,
        clock: 1.0,
        other: 0.3,
    };
    let warm = Activity {
        fetch: 0.6,
        schedule: 0.6,
        int_exec: 0.62,
        fp_exec: 0.03,
        load_store: 0.55,
        l2: 0.3,
        clock: 1.0,
        other: 0.3,
    };
    let stall = Activity {
        fetch: 0.15,
        schedule: 0.12,
        int_exec: 0.1,
        fp_exec: 0.01,
        load_store: 0.25,
        l2: 0.7,
        clock: 1.0,
        other: 0.3,
    };
    Workload::new(
        "gcc",
        Workload::PAPER_SAMPLE_PERIOD,
        vec![
            Phase::new(2600, hot, 0.12),
            Phase::new(1200, warm, 0.15),
            Phase::new(700, stall, 0.10),
            Phase::new(2200, hot, 0.12),
            Phase::new(900, stall, 0.10),
            Phase::new(1400, warm, 0.15),
        ],
    )
}

/// `mcf`: memory-bound — long stalls, hot L2, cool core.
pub fn mcf() -> Workload {
    let stall = Activity {
        fetch: 0.12,
        schedule: 0.1,
        int_exec: 0.12,
        fp_exec: 0.01,
        load_store: 0.35,
        l2: 0.85,
        clock: 1.0,
        other: 0.3,
    };
    let burst = Activity {
        fetch: 0.5,
        schedule: 0.5,
        int_exec: 0.55,
        fp_exec: 0.02,
        load_store: 0.6,
        l2: 0.5,
        clock: 1.0,
        other: 0.3,
    };
    Workload::new(
        "mcf",
        Workload::PAPER_SAMPLE_PERIOD,
        vec![Phase::new(4000, stall, 0.08), Phase::new(800, burst, 0.12)],
    )
}

/// `art`: floating-point streaming — hot FP cluster.
pub fn art() -> Workload {
    let fp = Activity {
        fetch: 0.55,
        schedule: 0.6,
        int_exec: 0.25,
        fp_exec: 0.9,
        load_store: 0.65,
        l2: 0.4,
        clock: 1.0,
        other: 0.3,
    };
    let drain = Activity {
        fetch: 0.3,
        schedule: 0.3,
        int_exec: 0.15,
        fp_exec: 0.45,
        load_store: 0.4,
        l2: 0.5,
        clock: 1.0,
        other: 0.3,
    };
    Workload::new(
        "art",
        Workload::PAPER_SAMPLE_PERIOD,
        vec![Phase::new(3000, fp, 0.1), Phase::new(1000, drain, 0.1)],
    )
}

/// `bzip2`: compression — steady integer activity, few stalls.
pub fn bzip2() -> Workload {
    let steady = Activity {
        fetch: 0.75,
        schedule: 0.75,
        int_exec: 0.8,
        fp_exec: 0.02,
        load_store: 0.7,
        l2: 0.2,
        clock: 1.0,
        other: 0.3,
    };
    Workload::new("bzip2", Workload::PAPER_SAMPLE_PERIOD, vec![Phase::new(5000, steady, 0.08)])
}

/// A constant full-activity workload (no phases, no dithering) for
/// steady-state experiments.
pub fn flat_out() -> Workload {
    let max = Activity {
        fetch: 1.0,
        schedule: 1.0,
        int_exec: 1.0,
        fp_exec: 1.0,
        load_store: 1.0,
        l2: 1.0,
        clock: 1.0,
        other: 1.0,
    };
    Workload::new("flat-out", Workload::PAPER_SAMPLE_PERIOD, vec![Phase::new(1000, max, 0.0)])
}

/// An idle workload (clock running, everything else quiescent).
pub fn idle() -> Workload {
    Workload::new(
        "idle",
        Workload::PAPER_SAMPLE_PERIOD,
        vec![Phase::new(1000, Activity::idle(), 0.0)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_at_walks_the_sequence() {
        let w = gcc();
        assert_eq!(w.phase_at(0).samples, 2600);
        assert_eq!(w.phase_at(2599).samples, 2600);
        assert_eq!(w.phase_at(2600).samples, 1200);
        // Wraps around.
        let period = w.period_samples();
        assert_eq!(w.phase_at(period).samples, 2600);
    }

    #[test]
    fn gcc_is_integer_dominant() {
        let w = gcc();
        for p in &w.phases {
            assert!(p.activity.int_exec > p.activity.fp_exec);
        }
    }

    #[test]
    fn art_is_fp_dominant() {
        let w = art();
        for p in &w.phases {
            assert!(p.activity.fp_exec > p.activity.int_exec);
        }
    }

    #[test]
    fn mcf_stall_phase_is_l2_heavy() {
        let w = mcf();
        assert!(w.phases[0].activity.l2 > 0.8);
        assert!(w.phases[0].activity.int_exec < 0.2);
    }

    #[test]
    fn paper_sample_period() {
        assert!((Workload::PAPER_SAMPLE_PERIOD - 3.333e-6).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_workload_rejected() {
        let _ = Workload::new("x", 1e-6, vec![]);
    }

    #[test]
    fn activity_levels_by_class() {
        let a = Activity::idle();
        assert_eq!(a.level(UnitClass::Clock), 1.0);
        assert_eq!(a.level(UnitClass::Blank), 0.0);
        assert!(a.level(UnitClass::IntExec) < 0.1);
    }
}
