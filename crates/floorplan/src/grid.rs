//! Block-to-grid coverage mapping.
//!
//! Thermal solvers discretize the die onto a regular `rows x cols` grid.
//! Power assigned to a block must be spread over the cells it covers, and a
//! block's temperature is the area-weighted average of those cells. This
//! module precomputes the exact geometric coverage fractions once, so both
//! directions are cheap at solve time (HotSpot's grid↔block mapping).

use crate::plan::Floorplan;

/// One block's share of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCoverage {
    /// Index of the block in the floorplan.
    pub block: usize,
    /// Fraction of the *cell's* area covered by the block, in `(0, 1]`.
    pub fraction: f64,
}

/// Precomputed geometric mapping between a [`Floorplan`] and a regular grid.
///
/// Cell `(row, col)` has row 0 at the **bottom** of the die (y = 0) and
/// col 0 at the **left** (x = 0), matching the floorplan's coordinate frame.
/// Cells are indexed linearly as `row * cols + col`.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::{Block, Floorplan, GridMapping};
///
/// let plan = Floorplan::new(vec![
///     Block::new("left", 1.0, 1.0, 0.0, 0.0),
///     Block::new("right", 1.0, 1.0, 1.0, 0.0),
/// ])?;
/// let map = GridMapping::new(&plan, 4, 8);
/// // Block powers spread over cells sum back to the original total.
/// let cell_power = map.spread_block_values(&[2.0, 6.0]);
/// let total: f64 = cell_power.iter().sum();
/// assert!((total - 8.0).abs() < 1e-12);
/// # Ok::<(), hotiron_floorplan::FloorplanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridMapping {
    rows: usize,
    cols: usize,
    cell_width: f64,
    cell_height: f64,
    /// Per-cell list of covering blocks with cell-area fractions.
    cell_cover: Vec<Vec<CellCoverage>>,
    /// Per-block list of (cell index, fraction of the *block's* area in that cell).
    block_cells: Vec<Vec<(usize, f64)>>,
    /// Per-cell list of (block index, fraction of the *block's* area in this
    /// cell), in ascending block order — the gather-form transpose of
    /// `block_cells`, so per-cell consumers (parallel power spreading) add
    /// contributions in exactly the order the serial scatter loop would.
    cell_gather: Vec<Vec<(usize, f64)>>,
    block_count: usize,
}

impl GridMapping {
    /// Computes the mapping for a `rows x cols` grid over the plan's die.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(plan: &Floorplan, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must have at least one cell");
        let cell_width = plan.width() / cols as f64;
        let cell_height = plan.height() / rows as f64;
        let cell_area = cell_width * cell_height;
        let mut cell_cover = vec![Vec::new(); rows * cols];
        let mut block_cells = vec![Vec::new(); plan.len()];
        let mut cell_gather = vec![Vec::new(); rows * cols];

        for (bi, b) in plan.iter().enumerate() {
            // Only visit the cells the block's bounding box can touch.
            let c0 = ((b.left() / cell_width).floor() as isize).max(0) as usize;
            let c1 = (((b.right() / cell_width).ceil() as isize).max(0) as usize).min(cols);
            let r0 = ((b.bottom() / cell_height).floor() as isize).max(0) as usize;
            let r1 = (((b.top() / cell_height).ceil() as isize).max(0) as usize).min(rows);
            let barea = b.area();
            for r in r0..r1 {
                for c in c0..c1 {
                    let (cl, cb) = (c as f64 * cell_width, r as f64 * cell_height);
                    let ov = b.overlap_area(cl, cb, cl + cell_width, cb + cell_height);
                    if ov > 1e-12 * cell_area {
                        let idx = r * cols + c;
                        cell_cover[idx].push(CellCoverage { block: bi, fraction: ov / cell_area });
                        block_cells[bi].push((idx, ov / barea));
                        cell_gather[idx].push((bi, ov / barea));
                    }
                }
            }
        }
        Self {
            rows,
            cols,
            cell_width,
            cell_height,
            cell_cover,
            block_cells,
            cell_gather,
            block_count: plan.len(),
        }
    }

    /// Number of grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of blocks in the source floorplan.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Cell width in meters.
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// Cell height in meters.
    pub fn cell_height(&self) -> f64 {
        self.cell_height
    }

    /// Cell area in m².
    pub fn cell_area(&self) -> f64 {
        self.cell_width * self.cell_height
    }

    /// Linear index of cell `(row, col)`.
    pub fn cell_index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// `(row, col)` of a linear cell index.
    pub fn cell_coords(&self, index: usize) -> (usize, usize) {
        (index / self.cols, index % self.cols)
    }

    /// Center `(x, y)` of a cell in die coordinates (meters).
    pub fn cell_center(&self, row: usize, col: usize) -> (f64, f64) {
        ((col as f64 + 0.5) * self.cell_width, (row as f64 + 0.5) * self.cell_height)
    }

    /// The cell `(row, col)` containing point `(x, y)`; clamps to the die.
    pub fn cell_at(&self, x: f64, y: f64) -> (usize, usize) {
        let c = ((x / self.cell_width) as usize).min(self.cols - 1);
        let r = ((y / self.cell_height) as usize).min(self.rows - 1);
        (r, c)
    }

    /// Blocks covering a cell, with cell-area fractions.
    pub fn coverage(&self, cell: usize) -> &[CellCoverage] {
        &self.cell_cover[cell]
    }

    /// Cells covered by a block, with block-area fractions (summing to ~1 if
    /// the block lies entirely on the die).
    pub fn cells_of_block(&self, block: usize) -> &[(usize, f64)] {
        &self.block_cells[block]
    }

    /// Blocks covering a cell with *block*-area fractions, in ascending
    /// block order — the transpose of [`Self::cells_of_block`]. Summing
    /// `values[block] * fraction` over this list reproduces
    /// [`Self::spread_block_values`] for that cell bitwise, which lets
    /// callers parallelize the spread per cell without changing results.
    pub fn blocks_of_cell(&self, cell: usize) -> &[(usize, f64)] {
        &self.cell_gather[cell]
    }

    /// Spreads per-block extensive values (e.g. power in W) over cells,
    /// proportionally to covered area. Returns one value per cell.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the block count.
    pub fn spread_block_values(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.block_count, "one value per block required");
        let mut out = vec![0.0; self.cell_count()];
        for (bi, cells) in self.block_cells.iter().enumerate() {
            for &(ci, frac) in cells {
                out[ci] += values[bi] * frac;
            }
        }
        out
    }

    /// Area-weighted per-block average of an intensive per-cell field
    /// (e.g. temperature in K). Returns one value per block.
    ///
    /// # Panics
    ///
    /// Panics if `field.len()` differs from the cell count.
    pub fn block_averages(&self, field: &[f64]) -> Vec<f64> {
        assert_eq!(field.len(), self.cell_count(), "one value per cell required");
        let mut out = vec![0.0; self.block_count];
        for (bi, cells) in self.block_cells.iter().enumerate() {
            let mut acc = 0.0;
            let mut wsum = 0.0;
            for &(ci, frac) in cells {
                acc += field[ci] * frac;
                wsum += frac;
            }
            out[bi] = if wsum > 0.0 { acc / wsum } else { 0.0 };
        }
        out
    }

    /// Per-block maximum of a per-cell field, considering only cells where
    /// the block covers a majority of its own area share.
    ///
    /// # Panics
    ///
    /// Panics if `field.len()` differs from the cell count.
    pub fn block_maxima(&self, field: &[f64]) -> Vec<f64> {
        assert_eq!(field.len(), self.cell_count(), "one value per cell required");
        let mut out = vec![f64::NEG_INFINITY; self.block_count];
        for (bi, cells) in self.block_cells.iter().enumerate() {
            for &(ci, _) in cells {
                if field[ci] > out[bi] {
                    out[bi] = field[ci];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    fn plan() -> Floorplan {
        Floorplan::new(vec![
            Block::new("a", 1.0, 2.0, 0.0, 0.0),
            Block::new("b", 1.0, 2.0, 1.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn basic_geometry() {
        let m = GridMapping::new(&plan(), 4, 4);
        assert_eq!(m.cell_count(), 16);
        assert_eq!(m.cell_width(), 0.5);
        assert_eq!(m.cell_height(), 0.5);
        assert_eq!(m.cell_index(1, 2), 6);
        assert_eq!(m.cell_coords(6), (1, 2));
        assert_eq!(m.cell_at(0.25, 1.9), (3, 0));
        // Clamping at the top-right corner.
        assert_eq!(m.cell_at(2.0, 2.0), (3, 3));
    }

    #[test]
    fn coverage_partitions_cells() {
        let m = GridMapping::new(&plan(), 4, 4);
        for cell in 0..m.cell_count() {
            let total: f64 = m.coverage(cell).iter().map(|c| c.fraction).sum();
            assert!((total - 1.0).abs() < 1e-9, "cell {cell} covered {total}");
        }
    }

    #[test]
    fn block_cells_partition_blocks() {
        let m = GridMapping::new(&plan(), 4, 4);
        for b in 0..2 {
            let total: f64 = m.cells_of_block(b).iter().map(|&(_, f)| f).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spread_conserves_totals() {
        let m = GridMapping::new(&plan(), 7, 5);
        let cells = m.spread_block_values(&[3.0, 9.0]);
        let total: f64 = cells.iter().sum();
        assert!((total - 12.0).abs() < 1e-9);
    }

    #[test]
    fn averages_of_uniform_field() {
        let m = GridMapping::new(&plan(), 6, 6);
        let field = vec![321.5; m.cell_count()];
        let avg = m.block_averages(&field);
        for v in avg {
            assert!((v - 321.5).abs() < 1e-9);
        }
    }

    #[test]
    fn maxima_pick_hottest_cell() {
        let m = GridMapping::new(&plan(), 2, 2);
        // Left column cells belong to "a", right column to "b".
        let mut field = vec![300.0; 4];
        field[m.cell_index(1, 0)] = 350.0;
        let maxima = m.block_maxima(&field);
        assert_eq!(maxima[0], 350.0);
        assert_eq!(maxima[1], 300.0);
    }

    #[test]
    fn misaligned_grid_still_partitions() {
        // 3x3 grid over a 2x2 die: cell boundaries don't align with the
        // block boundary at x=1.
        let m = GridMapping::new(&plan(), 3, 3);
        for cell in 0..m.cell_count() {
            let total: f64 = m.coverage(cell).iter().map(|c| c.fraction).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        let cells = m.spread_block_values(&[1.0, 1.0]);
        assert!((cells.iter().sum::<f64>() - 2.0).abs() < 1e-9);
        // Middle column cells are split between the two blocks.
        let mid = m.coverage(m.cell_index(1, 1));
        assert_eq!(mid.len(), 2);
    }

    #[test]
    #[should_panic(expected = "one value per block")]
    fn spread_checks_len() {
        let m = GridMapping::new(&plan(), 2, 2);
        let _ = m.spread_block_values(&[1.0]);
    }
}
