//! Error type for floorplan construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or parsing a [`Floorplan`](crate::Floorplan).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FloorplanError {
    /// A block failed geometric validation.
    InvalidBlock(String),
    /// Two blocks share a name.
    DuplicateName(String),
    /// Two blocks overlap by more than the tolerance.
    Overlap {
        /// First block's name.
        a: String,
        /// Second block's name.
        b: String,
        /// Overlap area in m².
        area: f64,
    },
    /// The floorplan has no blocks.
    Empty,
    /// A `.flp` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A named block was not found.
    UnknownBlock(String),
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidBlock(msg) => write!(f, "invalid block: {msg}"),
            Self::DuplicateName(name) => write!(f, "duplicate block name `{name}`"),
            Self::Overlap { a, b, area } => {
                write!(f, "blocks `{a}` and `{b}` overlap by {area:.3e} m^2")
            }
            Self::Empty => write!(f, "floorplan has no blocks"),
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Self::UnknownBlock(name) => write!(f, "unknown block `{name}`"),
        }
    }
}

impl Error for FloorplanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FloorplanError::DuplicateName("L2".into());
        assert_eq!(e.to_string(), "duplicate block name `L2`");
        let e = FloorplanError::Overlap { a: "a".into(), b: "b".into(), area: 1e-6 };
        assert!(e.to_string().contains("overlap"));
        let e = FloorplanError::Parse { line: 3, message: "bad float".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FloorplanError>();
    }
}
