//! Built-in floorplans used by the ISPASS'09 experiments.
//!
//! Geometry notes:
//!
//! * [`ev6`] follows the Alpha EV6 (21264) organization used by the HotSpot
//!   distribution: a 16 mm x 16 mm die, L2 cache wrapping the bottom/left/
//!   right of the core, floating-point cluster on the left, integer cluster
//!   on the right with **IntReg on the top edge** (the fact the paper's
//!   Fig 11 flow-direction experiment relies on) and **Dcache lower in the
//!   core**, further from the top edge.
//! * [`athlon64`] is re-derived from the block list of the paper's Fig 5
//!   (the die photo itself is not available): a 14 mm x 14 mm die with the
//!   L2 cache in a bottom strip, blank silicon at the edges, and the
//!   scheduler (`sched`, the paper's hottest block) in the core cluster.
//!
//! Both floorplans tile their dies exactly; the test-suite asserts full
//! coverage so no injected power can leak into "gap" silicon.

use crate::block::Block;
use crate::plan::Floorplan;

/// mm → m helper for the tables below.
fn b(name: &str, w_mm: f64, h_mm: f64, x_mm: f64, y_mm: f64) -> Block {
    Block::new(name, w_mm * 1e-3, h_mm * 1e-3, x_mm * 1e-3, y_mm * 1e-3)
}

/// Alpha EV6 (21264)-class floorplan, 16 mm x 16 mm, 18 blocks.
///
/// # Examples
///
/// ```
/// let plan = hotiron_floorplan::library::ev6();
/// assert_eq!(plan.len(), 18);
/// // IntReg touches the top edge of the die.
/// let int_reg = plan.block("IntReg").unwrap();
/// assert!((int_reg.top() - plan.height()).abs() < 1e-12);
/// ```
pub fn ev6() -> Floorplan {
    Floorplan::new(vec![
        // L2 wrapper.
        b("L2", 16.0, 9.8, 0.0, 0.0),
        b("L2_left", 4.9, 6.2, 0.0, 9.8),
        b("L2_right", 4.9, 6.2, 11.1, 9.8),
        // L1 caches at the bottom of the core.
        b("Icache", 3.1, 2.6, 4.9, 9.8),
        b("Dcache", 3.1, 2.6, 8.0, 9.8),
        // Floating-point cluster (left half of the core); the branch
        // predictor and data TLB share the core's bottom-left row, as in
        // the EV6 die.
        b("Bpred", 2.0, 0.7, 4.9, 12.4),
        b("DTB", 1.1, 0.7, 6.9, 12.4),
        b("FPAdd", 1.55, 0.9, 4.9, 13.1),
        b("FPMul", 1.55, 0.9, 6.45, 13.1),
        b("FPReg", 1.55, 0.8, 4.9, 14.0),
        b("FPQ", 1.55, 0.8, 6.45, 14.0),
        b("FPMap", 1.55, 1.2, 4.9, 14.8),
        b("IntMap", 1.55, 1.2, 6.45, 14.8),
        // Integer cluster (right half of the core).
        b("LdStQ", 3.1, 1.2, 8.0, 12.4),
        b("IntQ", 1.4, 0.7, 8.0, 13.6),
        b("ITB", 1.7, 0.7, 9.4, 13.6),
        b("IntReg", 1.4, 1.7, 8.0, 14.3),
        b("IntExec", 1.7, 1.7, 9.4, 14.3),
    ])
    .expect("built-in EV6 floorplan is valid")
}

/// AMD Athlon64-class floorplan, 14 mm x 14 mm, 22 blocks
/// (the block list of the paper's Fig 5).
///
/// # Examples
///
/// ```
/// let plan = hotiron_floorplan::library::athlon64();
/// assert_eq!(plan.len(), 22);
/// assert!(plan.block("sched").is_some());
/// ```
pub fn athlon64() -> Floorplan {
    let third = 4.0 / 3.0;
    Floorplan::new(vec![
        // Bottom strip: L2 cache with blank silicon at both edges.
        b("blank1", 1.0, 6.0, 0.0, 0.0),
        b("l2cache", 12.0, 6.0, 1.0, 0.0),
        b("blank2", 1.0, 6.0, 13.0, 0.0),
        // Top strip: memory controller flanked by blank pads.
        b("blank3", 4.0, 1.5, 0.0, 12.5),
        b("mem_ctl", 6.0, 1.5, 4.0, 12.5),
        b("blank4", 4.0, 1.5, 10.0, 12.5),
        // Vertical edge strips.
        b("bus_etc", 1.5, 6.5, 0.0, 6.0),
        b("clock", 1.5, 6.5, 12.5, 6.0),
        // Core row A (y 6..8.5): load/store + L1 caches.
        b("l1d", 3.5, 2.5, 1.5, 6.0),
        b("lsq", 2.0, 2.5, 5.0, 6.0),
        b("dtlb", 1.5, 2.5, 7.0, 6.0),
        b("l1i", 4.0, 2.5, 8.5, 6.0),
        // Core row B (y 8.5..10.5): ROB / clock drivers / scheduler / fetch.
        // The scheduler sits mid-die, away from any flow's leading edge,
        // matching its role as the hot spot in the paper's Fig 4.
        b("rob_irf", 2.5, 2.0, 1.5, 8.5),
        b("clockd1", third, 2.0, 4.0, 8.5),
        b("clockd2", third, 2.0, 4.0 + third, 8.5),
        b("clockd3", third, 2.0, 4.0 + 2.0 * third, 8.5),
        b("sched", 2.0, 2.0, 8.0, 8.5),
        b("fetch", 2.5, 2.0, 10.0, 8.5),
        // Core row C (y 10.5..12.5): FP cluster and SSE.
        b("fp_sched", 2.5, 2.0, 1.5, 10.5),
        b("frf", 2.5, 2.0, 4.0, 10.5),
        b("fp0", 3.0, 2.0, 6.5, 10.5),
        b("sse", 3.0, 2.0, 9.5, 10.5),
    ])
    .expect("built-in Athlon64 floorplan is valid")
}

/// A single-block uniform die, used by the paper's validation experiments
/// (Figs 2 and 3): `width` x `height` meters, one block named `die`.
///
/// # Examples
///
/// ```
/// let plan = hotiron_floorplan::library::uniform_die(0.02, 0.02);
/// assert_eq!(plan.len(), 1);
/// ```
pub fn uniform_die(width: f64, height: f64) -> Floorplan {
    Floorplan::new(vec![Block::new("die", width, height, 0.0, 0.0)])
        .expect("uniform die floorplan is valid")
}

/// The Fig 3 validation die: 20 mm x 20 mm silicon with a 2 mm x 2 mm
/// `center` heat source and a surrounding frame of 8 `rim_*` blocks.
///
/// # Examples
///
/// ```
/// let plan = hotiron_floorplan::library::center_source_die();
/// assert_eq!(plan.len(), 9);
/// assert!((plan.coverage() - 1.0).abs() < 1e-9);
/// ```
pub fn center_source_die() -> Floorplan {
    Floorplan::new(vec![
        b("center", 2.0, 2.0, 9.0, 9.0),
        b("rim_sw", 9.0, 9.0, 0.0, 0.0),
        b("rim_s", 2.0, 9.0, 9.0, 0.0),
        b("rim_se", 9.0, 9.0, 11.0, 0.0),
        b("rim_w", 9.0, 2.0, 0.0, 9.0),
        b("rim_e", 9.0, 2.0, 11.0, 9.0),
        b("rim_nw", 9.0, 9.0, 0.0, 11.0),
        b("rim_n", 2.0, 9.0, 9.0, 11.0),
        b("rim_ne", 9.0, 9.0, 11.0, 11.0),
    ])
    .expect("center-source floorplan is valid")
}

/// A `cores_x` x `cores_y` homogeneous multi-core floorplan on a
/// `width` x `height` meter die; cores are named `core_<ix>_<iy>`.
///
/// Used by the §5.4 power-inversion artifact experiment.
///
/// # Examples
///
/// ```
/// let plan = hotiron_floorplan::library::multicore(2, 2, 0.016, 0.016);
/// assert_eq!(plan.len(), 4);
/// assert!(plan.block("core_1_0").is_some());
/// ```
///
/// # Panics
///
/// Panics if `cores_x` or `cores_y` is zero.
pub fn multicore(cores_x: usize, cores_y: usize, width: f64, height: f64) -> Floorplan {
    assert!(cores_x > 0 && cores_y > 0, "need at least one core");
    let w = width / cores_x as f64;
    let h = height / cores_y as f64;
    let mut blocks = Vec::with_capacity(cores_x * cores_y);
    for iy in 0..cores_y {
        for ix in 0..cores_x {
            blocks.push(Block::new(format!("core_{ix}_{iy}"), w, h, ix as f64 * w, iy as f64 * h));
        }
    }
    Floorplan::new(blocks).expect("multicore floorplan is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ev6_tiles_die_exactly() {
        let p = ev6();
        assert_eq!(p.len(), 18);
        assert!((p.width() - 0.016).abs() < 1e-12);
        assert!((p.height() - 0.016).abs() < 1e-12);
        assert!((p.coverage() - 1.0).abs() < 1e-9, "coverage {}", p.coverage());
    }

    #[test]
    fn ev6_spatial_facts_for_fig11() {
        let p = ev6();
        let int_reg = p.block("IntReg").unwrap();
        let dcache = p.block("Dcache").unwrap();
        // IntReg on the top edge, Dcache well below it: top-to-bottom oil flow
        // cools IntReg first.
        assert!((int_reg.top() - p.height()).abs() < 1e-12);
        assert!(dcache.top() < int_reg.bottom());
        // FP cluster left, INT cluster right.
        assert!(p.block("FPMap").unwrap().right() <= int_reg.left() + 1e-12);
    }

    #[test]
    fn ev6_block_names_match_fig11() {
        let p = ev6();
        for name in [
            "L2_left", "L2", "L2_right", "Icache", "Dcache", "Bpred", "DTB", "FPAdd", "FPReg",
            "FPMul", "FPMap", "IntMap", "IntQ", "IntReg", "IntExec", "FPQ", "LdStQ", "ITB",
        ] {
            assert!(p.block(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn athlon64_tiles_die_exactly() {
        let p = athlon64();
        assert_eq!(p.len(), 22);
        assert!((p.coverage() - 1.0).abs() < 1e-9, "coverage {}", p.coverage());
    }

    #[test]
    fn athlon64_block_names_match_fig5() {
        let p = athlon64();
        for name in [
            "blank1", "blank2", "blank3", "blank4", "mem_ctl", "clock", "l2cache", "fetch",
            "rob_irf", "sched", "clockd1", "clockd2", "clockd3", "lsq", "dtlb", "fp_sched", "frf",
            "sse", "l1i", "bus_etc", "l1d", "fp0",
        ] {
            assert!(p.block(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn center_source_die_geometry() {
        let p = center_source_die();
        let c = p.block("center").unwrap();
        assert!((c.area() - 4e-6).abs() < 1e-12);
        let (x, y) = c.center();
        assert!((x - 0.01).abs() < 1e-12 && (y - 0.01).abs() < 1e-12);
        assert!((p.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multicore_grid() {
        let p = multicore(4, 2, 0.02, 0.01);
        assert_eq!(p.len(), 8);
        assert!((p.coverage() - 1.0).abs() < 1e-9);
        let c = p.block("core_3_1").unwrap();
        assert!((c.left() - 0.015).abs() < 1e-12);
        assert!((c.bottom() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn uniform_die_single_block() {
        let p = uniform_die(0.02, 0.02);
        assert!((p.die_area() - 4e-4).abs() < 1e-12);
    }
}
