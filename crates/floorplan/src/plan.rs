//! Validated floorplan container.

use crate::block::Block;
use crate::error::FloorplanError;
use std::collections::HashMap;

/// Relative tolerance on pairwise overlap area (fraction of the smaller
/// block's area) below which an overlap is attributed to floating-point
/// round-off and ignored.
const OVERLAP_REL_TOL: f64 = 1e-9;

/// A validated chip floorplan: a set of uniquely-named, non-overlapping
/// rectangular blocks.
///
/// The die extent is the bounding box of all blocks; blocks need not tile the
/// die completely (gaps are treated as un-powered silicon by consumers), but
/// the built-in library floorplans do tile it exactly, which the test-suite
/// checks.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::{Block, Floorplan};
///
/// let plan = Floorplan::new(vec![
///     Block::new("left", 1e-3, 2e-3, 0.0, 0.0),
///     Block::new("right", 1e-3, 2e-3, 1e-3, 0.0),
/// ])?;
/// assert_eq!(plan.len(), 2);
/// assert!((plan.width() - 2e-3).abs() < 1e-15);
/// # Ok::<(), hotiron_floorplan::FloorplanError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    blocks: Vec<Block>,
    index: HashMap<String, usize>,
    width: f64,
    height: f64,
}

impl Floorplan {
    /// Builds a floorplan from blocks, validating names and overlaps.
    ///
    /// # Errors
    ///
    /// * [`FloorplanError::Empty`] if `blocks` is empty.
    /// * [`FloorplanError::DuplicateName`] if two blocks share a name.
    /// * [`FloorplanError::Overlap`] if two blocks overlap by more than a
    ///   round-off tolerance.
    pub fn new(blocks: Vec<Block>) -> Result<Self, FloorplanError> {
        if blocks.is_empty() {
            return Err(FloorplanError::Empty);
        }
        let mut index = HashMap::with_capacity(blocks.len());
        for (i, b) in blocks.iter().enumerate() {
            if index.insert(b.name().to_owned(), i).is_some() {
                return Err(FloorplanError::DuplicateName(b.name().to_owned()));
            }
        }
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                let area = blocks[i].overlap_with(&blocks[j]);
                let tol = OVERLAP_REL_TOL * blocks[i].area().min(blocks[j].area());
                if area > tol {
                    return Err(FloorplanError::Overlap {
                        a: blocks[i].name().to_owned(),
                        b: blocks[j].name().to_owned(),
                        area,
                    });
                }
            }
        }
        let (mut right, mut top) = (0.0f64, 0.0f64);
        let (mut left, mut bottom) = (f64::INFINITY, f64::INFINITY);
        for b in &blocks {
            right = right.max(b.right());
            top = top.max(b.top());
            left = left.min(b.left());
            bottom = bottom.min(b.bottom());
        }
        // Normalize so the die's bounding box starts at the origin. Library
        // floorplans are already origin-anchored; user plans may not be.
        let blocks: Vec<Block> = if left.abs() > 0.0 || bottom.abs() > 0.0 {
            blocks
                .into_iter()
                .map(|b| {
                    Block::new(
                        b.name(),
                        b.width(),
                        b.height(),
                        b.left() - left,
                        b.bottom() - bottom,
                    )
                })
                .collect()
        } else {
            blocks
        };
        Ok(Self { blocks, index, width: right - left, height: top - bottom })
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the floorplan has no blocks (never true for a constructed plan).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Die width (x extent) in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die height (y extent) in meters.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Total die area (bounding box) in m².
    pub fn die_area(&self) -> f64 {
        self.width * self.height
    }

    /// Sum of block areas in m² (≤ [`Floorplan::die_area`]).
    pub fn covered_area(&self) -> f64 {
        self.blocks.iter().map(Block::area).sum()
    }

    /// Fraction of the die covered by blocks, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.covered_area() / self.die_area()
    }

    /// The blocks, in insertion order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Iterates over the blocks in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Block> {
        self.blocks.iter()
    }

    /// Looks up a block by name.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.index.get(name).map(|&i| &self.blocks[i])
    }

    /// Looks up a block's index by name.
    pub fn block_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Looks up a block's index by name, failing loudly.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::UnknownBlock`] if no block has this name.
    pub fn require_block_index(&self, name: &str) -> Result<usize, FloorplanError> {
        self.block_index(name).ok_or_else(|| FloorplanError::UnknownBlock(name.to_owned()))
    }

    /// Block names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.blocks.iter().map(|b| b.name())
    }

    /// The block containing point `(x, y)`, if any. Points on shared edges
    /// resolve to the first block in insertion order.
    pub fn block_at(&self, x: f64, y: f64) -> Option<&Block> {
        self.blocks.iter().find(|b| b.contains(x, y))
    }
}

impl<'a> IntoIterator for &'a Floorplan {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_block_plan() -> Floorplan {
        Floorplan::new(vec![
            Block::new("a", 1.0, 1.0, 0.0, 0.0),
            Block::new("b", 1.0, 1.0, 1.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let p = two_block_plan();
        assert_eq!(p.len(), 2);
        assert_eq!(p.width(), 2.0);
        assert_eq!(p.height(), 1.0);
        assert_eq!(p.block("a").unwrap().name(), "a");
        assert_eq!(p.block_index("b"), Some(1));
        assert!(p.block("c").is_none());
        assert_eq!(
            p.require_block_index("zzz").unwrap_err(),
            FloorplanError::UnknownBlock("zzz".into())
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Floorplan::new(vec![]).unwrap_err(), FloorplanError::Empty);
    }

    #[test]
    fn rejects_duplicates() {
        let e = Floorplan::new(vec![
            Block::new("a", 1.0, 1.0, 0.0, 0.0),
            Block::new("a", 1.0, 1.0, 1.0, 0.0),
        ])
        .unwrap_err();
        assert_eq!(e, FloorplanError::DuplicateName("a".into()));
    }

    #[test]
    fn rejects_overlap() {
        let e = Floorplan::new(vec![
            Block::new("a", 1.0, 1.0, 0.0, 0.0),
            Block::new("b", 1.0, 1.0, 0.5, 0.0),
        ])
        .unwrap_err();
        assert!(matches!(e, FloorplanError::Overlap { .. }));
    }

    #[test]
    fn tolerates_roundoff_overlap() {
        // Abutting blocks whose shared edge wobbles by 1e-18 m.
        let p = Floorplan::new(vec![
            Block::new("a", 1.0, 1.0, 0.0, 0.0),
            Block::new("b", 1.0, 1.0, 1.0 - 1e-13, 0.0),
        ]);
        assert!(p.is_ok());
    }

    #[test]
    fn normalizes_to_origin() {
        let p = Floorplan::new(vec![Block::new("a", 1.0, 1.0, 5.0, 7.0)]).unwrap();
        let b = p.block("a").unwrap();
        assert_eq!(b.left(), 0.0);
        assert_eq!(b.bottom(), 0.0);
        assert_eq!(p.width(), 1.0);
    }

    #[test]
    fn coverage_and_areas() {
        let p = two_block_plan();
        assert!((p.coverage() - 1.0).abs() < 1e-12);
        let p = Floorplan::new(vec![
            Block::new("a", 1.0, 1.0, 0.0, 0.0),
            Block::new("b", 1.0, 1.0, 3.0, 0.0),
        ])
        .unwrap();
        assert!((p.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn block_at_points() {
        let p = two_block_plan();
        assert_eq!(p.block_at(0.5, 0.5).unwrap().name(), "a");
        assert_eq!(p.block_at(1.5, 0.5).unwrap().name(), "b");
        assert!(p.block_at(5.0, 5.0).is_none());
    }

    #[test]
    fn iterates_in_order() {
        let p = two_block_plan();
        let names: Vec<_> = p.iter().map(|b| b.name().to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
        let names2: Vec<_> = (&p).into_iter().map(|b| b.name()).collect();
        assert_eq!(names2, vec!["a", "b"]);
    }
}

impl Floorplan {
    /// Returns the floorplan rotated 90° counter-clockwise (the die's
    /// width and height swap). Useful for studying coolant-flow direction:
    /// rotating the die is equivalent to rotating the flow.
    pub fn rotated_90(&self) -> Floorplan {
        let h = self.height();
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                // (x, y) -> (h - y - bh, x): CCW rotation about the origin,
                // shifted back into the first quadrant.
                Block::new(b.name(), b.height(), b.width(), h - b.bottom() - b.height(), b.left())
            })
            .collect();
        Floorplan::new(blocks).expect("rotation preserves validity")
    }

    /// Returns the floorplan mirrored about the vertical axis
    /// (left/right flipped).
    pub fn mirrored_x(&self) -> Floorplan {
        let w = self.width();
        let blocks = self
            .blocks
            .iter()
            .map(|b| Block::new(b.name(), b.width(), b.height(), w - b.right(), b.bottom()))
            .collect();
        Floorplan::new(blocks).expect("mirroring preserves validity")
    }
}

#[cfg(test)]
mod transform_tests {
    use super::*;

    #[test]
    fn rotation_swaps_dimensions_and_preserves_area() {
        let p = Floorplan::new(vec![
            Block::new("a", 2.0, 1.0, 0.0, 0.0),
            Block::new("b", 2.0, 1.0, 0.0, 1.0),
        ])
        .unwrap();
        let r = p.rotated_90();
        assert_eq!(r.width(), p.height());
        assert_eq!(r.height(), p.width());
        assert!((r.covered_area() - p.covered_area()).abs() < 1e-12);
        // Four rotations restore the original.
        let back = r.rotated_90().rotated_90().rotated_90();
        for (x, y) in p.iter().zip(back.iter()) {
            assert_eq!(x.name(), y.name());
            assert!((x.left() - y.left()).abs() < 1e-12);
            assert!((x.bottom() - y.bottom()).abs() < 1e-12);
        }
    }

    #[test]
    fn rotation_moves_top_edge_to_left_edge() {
        let p = crate::library::ev6();
        let r = p.rotated_90();
        // IntReg touched the top edge; after CCW rotation it touches the left.
        let b = r.block("IntReg").unwrap();
        assert!(b.left().abs() < 1e-12, "IntReg left edge {}", b.left());
    }

    #[test]
    fn mirror_is_involutive() {
        let p = crate::library::ev6();
        let m = p.mirrored_x().mirrored_x();
        for (x, y) in p.iter().zip(m.iter()) {
            assert!((x.left() - y.left()).abs() < 1e-12);
        }
        // Mirroring moves IntReg from the right half to the left half.
        let flipped = p.mirrored_x();
        let b = p.block("IntReg").unwrap();
        let bm = flipped.block("IntReg").unwrap();
        assert!(b.center().0 > p.width() / 2.0);
        assert!(bm.center().0 < p.width() / 2.0);
    }
}
