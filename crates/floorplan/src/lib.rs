//! Chip floorplans for thermal simulation.
//!
//! A [`Floorplan`] is a validated collection of named rectangular [`Block`]s
//! covering a silicon die. Floorplans are consumed by the `hotiron-thermal`
//! compact model and the `hotiron-refsim` reference solver, both of which
//! discretize the die onto a regular grid; the [`grid`] module provides the
//! block-to-cell coverage mapping that makes per-block power injection and
//! per-block temperature read-out exact.
//!
//! Two well-known floorplans used by the ISPASS'09 paper are built in:
//!
//! * [`library::ev6`] — an Alpha EV6 (21264)-class core with an L2 wrapper,
//!   the floorplan used for the paper's Figs 6, 8, 9, 10, 11 and 12.
//! * [`library::athlon64`] — an AMD Athlon64-class die matching the block
//!   list of the paper's Figs 4 and 5.
//!
//! # Examples
//!
//! ```
//! use hotiron_floorplan::library;
//!
//! let plan = library::ev6();
//! assert!(plan.block("IntReg").is_some());
//! // The EV6 die is 16 mm x 16 mm.
//! assert!((plan.width() - 0.016).abs() < 1e-12);
//! ```

pub mod block;
pub mod error;
pub mod grid;
pub mod library;
pub mod parser;
pub mod plan;

pub use block::Block;
pub use error::FloorplanError;
pub use grid::{CellCoverage, GridMapping};
pub use plan::Floorplan;
