//! A single named rectangular floorplan unit.

use std::fmt;

/// A named, axis-aligned rectangular functional unit on the die.
///
/// All dimensions are in **meters**, with the origin at the bottom-left
/// corner of the die (HotSpot's `.flp` convention). `x` grows rightward and
/// `y` grows upward.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::Block;
///
/// let b = Block::new("IntReg", 1.4e-3, 1.7e-3, 8.0e-3, 14.3e-3);
/// assert_eq!(b.name(), "IntReg");
/// assert!((b.area() - 1.4e-3 * 1.7e-3).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    name: String,
    width: f64,
    height: f64,
    left: f64,
    bottom: f64,
}

impl Block {
    /// Creates a new block from its width/height and bottom-left corner.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is not strictly positive and finite, or
    /// if `left`/`bottom` are not finite. Use [`Block::try_new`] for a
    /// fallible constructor.
    pub fn new(name: impl Into<String>, width: f64, height: f64, left: f64, bottom: f64) -> Self {
        Self::try_new(name, width, height, left, bottom).expect("invalid block geometry")
    }

    /// Fallible counterpart of [`Block::new`].
    ///
    /// # Errors
    ///
    /// Returns an error string describing the first invalid field.
    pub fn try_new(
        name: impl Into<String>,
        width: f64,
        height: f64,
        left: f64,
        bottom: f64,
    ) -> Result<Self, String> {
        let name = name.into();
        if name.is_empty() {
            return Err("block name must be non-empty".to_owned());
        }
        if !(width.is_finite() && width > 0.0) {
            return Err(format!("block `{name}`: width must be positive, got {width}"));
        }
        if !(height.is_finite() && height > 0.0) {
            return Err(format!("block `{name}`: height must be positive, got {height}"));
        }
        if !left.is_finite() || !bottom.is_finite() {
            return Err(format!("block `{name}`: corner must be finite"));
        }
        Ok(Self { name, width, height, left, bottom })
    }

    /// The block's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width along x, in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height along y, in meters.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// x coordinate of the left edge, in meters.
    pub fn left(&self) -> f64 {
        self.left
    }

    /// y coordinate of the bottom edge, in meters.
    pub fn bottom(&self) -> f64 {
        self.bottom
    }

    /// x coordinate of the right edge, in meters.
    pub fn right(&self) -> f64 {
        self.left + self.width
    }

    /// y coordinate of the top edge, in meters.
    pub fn top(&self) -> f64 {
        self.bottom + self.height
    }

    /// Area in m².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Center point `(x, y)` in meters.
    pub fn center(&self) -> (f64, f64) {
        (self.left + 0.5 * self.width, self.bottom + 0.5 * self.height)
    }

    /// Whether the point `(x, y)` lies inside (or on the boundary of) the block.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.left && x <= self.right() && y >= self.bottom && y <= self.top()
    }

    /// Area of overlap with another axis-aligned rectangle, in m².
    ///
    /// The rectangle is given as `(left, bottom, right, top)`.
    pub fn overlap_area(&self, left: f64, bottom: f64, right: f64, top: f64) -> f64 {
        let w = (self.right().min(right) - self.left.max(left)).max(0.0);
        let h = (self.top().min(top) - self.bottom.max(bottom)).max(0.0);
        w * h
    }

    /// Area of overlap with another block, in m².
    pub fn overlap_with(&self, other: &Block) -> f64 {
        self.overlap_area(other.left(), other.bottom(), other.right(), other.top())
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\t{:.6e}\t{:.6e}\t{:.6e}\t{:.6e}",
            self.name, self.width, self.height, self.left, self.bottom
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sets_geometry() {
        let b = Block::new("a", 2.0, 3.0, 1.0, 4.0);
        assert_eq!(b.right(), 3.0);
        assert_eq!(b.top(), 7.0);
        assert_eq!(b.area(), 6.0);
        assert_eq!(b.center(), (2.0, 5.5));
    }

    #[test]
    fn try_new_rejects_bad_inputs() {
        assert!(Block::try_new("", 1.0, 1.0, 0.0, 0.0).is_err());
        assert!(Block::try_new("a", 0.0, 1.0, 0.0, 0.0).is_err());
        assert!(Block::try_new("a", 1.0, -1.0, 0.0, 0.0).is_err());
        assert!(Block::try_new("a", f64::NAN, 1.0, 0.0, 0.0).is_err());
        assert!(Block::try_new("a", 1.0, 1.0, f64::INFINITY, 0.0).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid block geometry")]
    fn new_panics_on_bad_input() {
        let _ = Block::new("a", -1.0, 1.0, 0.0, 0.0);
    }

    #[test]
    fn contains_is_inclusive() {
        let b = Block::new("a", 1.0, 1.0, 0.0, 0.0);
        assert!(b.contains(0.0, 0.0));
        assert!(b.contains(1.0, 1.0));
        assert!(b.contains(0.5, 0.5));
        assert!(!b.contains(1.5, 0.5));
        assert!(!b.contains(0.5, -0.1));
    }

    #[test]
    fn overlap_area_partial_and_disjoint() {
        let b = Block::new("a", 2.0, 2.0, 0.0, 0.0);
        assert_eq!(b.overlap_area(1.0, 1.0, 3.0, 3.0), 1.0);
        assert_eq!(b.overlap_area(5.0, 5.0, 6.0, 6.0), 0.0);
        // Full containment.
        assert_eq!(b.overlap_area(-1.0, -1.0, 3.0, 3.0), 4.0);
    }

    #[test]
    fn overlap_with_blocks() {
        let a = Block::new("a", 2.0, 2.0, 0.0, 0.0);
        let b = Block::new("b", 2.0, 2.0, 1.0, 1.0);
        assert_eq!(a.overlap_with(&b), 1.0);
        assert_eq!(b.overlap_with(&a), 1.0);
    }

    #[test]
    fn display_is_flp_row() {
        let b = Block::new("x", 0.001, 0.002, 0.0, 0.003);
        let s = b.to_string();
        assert!(s.starts_with("x\t"));
        assert!(s.contains("1.000000e-3") || s.contains("1.000000e-03"));
    }
}
