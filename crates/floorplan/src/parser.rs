//! HotSpot `.flp` text format support.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! <name>\t<width>\t<height>\t<left-x>\t<bottom-y>
//! ```
//!
//! with all dimensions in meters. Any run of whitespace separates fields,
//! blank lines and `#` comments are ignored, matching HotSpot's reader.

use crate::block::Block;
use crate::error::FloorplanError;
use crate::plan::Floorplan;
use std::fmt::Write as _;

/// Parses HotSpot `.flp` text into a validated [`Floorplan`].
///
/// # Errors
///
/// Returns [`FloorplanError::Parse`] for malformed lines, or any validation
/// error from [`Floorplan::new`].
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::parser::parse_flp;
///
/// let text = "# die\nCore\t1e-3\t2e-3\t0\t0\nL2\t1e-3\t2e-3\t1e-3\t0\n";
/// let plan = parse_flp(text)?;
/// assert_eq!(plan.len(), 2);
/// # Ok::<(), hotiron_floorplan::FloorplanError>(())
/// ```
pub fn parse_flp(text: &str) -> Result<Floorplan, FloorplanError> {
    let mut blocks = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 5 {
            return Err(FloorplanError::Parse {
                line: ln + 1,
                message: format!("expected 5 fields, found {}", fields.len()),
            });
        }
        let mut nums = [0.0f64; 4];
        for (i, f) in fields[1..5].iter().enumerate() {
            nums[i] = f.parse().map_err(|_| FloorplanError::Parse {
                line: ln + 1,
                message: format!("cannot parse `{f}` as a number"),
            })?;
        }
        let block = Block::try_new(fields[0], nums[0], nums[1], nums[2], nums[3])
            .map_err(|message| FloorplanError::Parse { line: ln + 1, message })?;
        blocks.push(block);
    }
    Floorplan::new(blocks)
}

/// Serializes a floorplan back to `.flp` text.
///
/// The output round-trips through [`parse_flp`].
pub fn to_flp(plan: &Floorplan) -> String {
    let mut out = String::new();
    out.push_str("# hotiron floorplan\n");
    out.push_str("# <name>\t<width>\t<height>\t<left-x>\t<bottom-y> (meters)\n");
    for b in plan.iter() {
        let _ = writeln!(
            out,
            "{}\t{:.9e}\t{:.9e}\t{:.9e}\t{:.9e}",
            b.name(),
            b.width(),
            b.height(),
            b.left(),
            b.bottom()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal() {
        let plan = parse_flp("A 1.0 1.0 0.0 0.0").unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.block("A").unwrap().area(), 1.0);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "\n# header\n  \nA\t1\t1\t0\t0\n#tail\n";
        assert_eq!(parse_flp(text).unwrap().len(), 1);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_flp("A 1 1 0 0\nB nope 1 0 0").unwrap_err();
        match err {
            FloorplanError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_short_lines() {
        let err = parse_flp("A 1 1 0").unwrap_err();
        assert!(matches!(err, FloorplanError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_invalid_geometry_with_location() {
        let err = parse_flp("A -1 1 0 0").unwrap_err();
        assert!(matches!(err, FloorplanError::Parse { line: 1, .. }));
    }

    #[test]
    fn surfaces_validation_errors() {
        let err = parse_flp("A 1 1 0 0\nA 1 1 1 0").unwrap_err();
        assert!(matches!(err, FloorplanError::DuplicateName(_)));
    }

    #[test]
    fn round_trip() {
        let plan = crate::library::ev6();
        let text = to_flp(&plan);
        let back = parse_flp(&text).unwrap();
        assert_eq!(back.len(), plan.len());
        for (a, b) in plan.iter().zip(back.iter()) {
            assert_eq!(a.name(), b.name());
            assert!((a.width() - b.width()).abs() < 1e-12);
            assert!((a.left() - b.left()).abs() < 1e-12);
        }
    }

    #[test]
    fn extra_fields_are_ignored() {
        // HotSpot .flp files may carry trailing resistivity columns.
        let plan = parse_flp("A 1 1 0 0 1.7 2.5").unwrap();
        assert_eq!(plan.len(), 1);
    }
}
