//! Multigrid-preconditioned steady solves against the direct solver, plus
//! the two structural properties the V-cycle must keep for CG to be valid:
//! the preconditioner is symmetric positive definite, and its strength does
//! not degrade as the grid refines (flat iteration counts).

use hotiron_floorplan::{library, GridMapping};
use hotiron_thermal::circuit::{build_circuit, DieGeometry, ThermalCircuit};
use hotiron_thermal::multigrid::{mg_pcg, MgOptions, Multigrid};
use hotiron_thermal::solve::{solve_steady_with, SolverChoice};
use hotiron_thermal::sparse::{conjugate_gradient, SolveMethod};
use hotiron_thermal::{AirSinkPackage, OilSiliconPackage, Package};
use hotiron_verify::{oracle, tol};
use proptest::prelude::*;
use proptest::TestRng;

const AMBIENT: f64 = 318.15;

fn packages() -> [(&'static str, Package); 2] {
    [
        ("oil", Package::OilSilicon(OilSiliconPackage::paper_default())),
        ("air", Package::AirSink(AirSinkPackage::paper_default())),
    ]
}

fn circuit(grid: usize, pkg: &Package) -> ThermalCircuit {
    let plan = library::ev6();
    let mapping = GridMapping::new(&plan, grid, grid);
    build_circuit(&mapping, DieGeometry { width: 0.016, height: 0.016, thickness: 0.5e-3 }, pkg)
        .unwrap()
}

/// A non-uniform power map so the solve exercises every stencil direction.
fn wavy_power(n_cells: usize) -> Vec<f64> {
    (0..n_cells).map(|i| 2.0 + (i as f64 * 0.13).sin()).collect()
}

#[test]
fn mg_matches_direct_within_1e8() {
    for (label, pkg) in packages() {
        for grid in [16usize, 32] {
            let c = circuit(grid, &pkg);
            let p = wavy_power(grid * grid);

            let mut direct = vec![AMBIENT; c.node_count()];
            solve_steady_with(&c, &p, AMBIENT, &mut direct, SolverChoice::Direct)
                .expect("direct steady solve");
            // The air operator is ill-conditioned enough that the direct
            // solve itself carries ~2e-8 K of error at 32×32; polish it with
            // tight warm-started CG (the suite's usual reference trick) so
            // the bound below measures multigrid, not LDLᵀ round-off.
            let refine = conjugate_gradient(
                c.conductance(),
                &c.rhs(&p, AMBIENT),
                &mut direct,
                tol::CG_REFERENCE_TOL,
                tol::cg_iter_cap(c.node_count()),
            );
            assert!(refine.converged, "{label} {grid}: reference converged: {refine:?}");

            // Any correct reference must at minimum balance energy: total
            // input power equals the heat crossing the ambient boundary.
            oracle::assert_energy_balance(&format!("{label} {grid}"), &c, &direct, &p, AMBIENT);

            let mut mg = vec![AMBIENT; c.node_count()];
            let stats = solve_steady_with(&c, &p, AMBIENT, &mut mg, SolverChoice::Multigrid)
                .expect("mg steady solve");
            assert_eq!(stats.method, SolveMethod::MgCg, "{label} {grid}: multigrid actually ran");
            assert!(stats.multigrid.is_some(), "{label} {grid}: telemetry attached");

            // The default 1e-10 relative residual leaves ~1e-8 K of slack on
            // the worse-conditioned air operator; polish well past it so the
            // comparison bounds multigrid's error, not the shared tolerance.
            let polish = mg_pcg(
                c.multigrid().expect("hierarchy"),
                &c.rhs(&p, AMBIENT),
                &mut mg,
                tol::MG_POLISH_TOL,
                200,
            );
            assert!(polish.converged, "{label} {grid}: polish converged: {polish:?}");

            let worst = direct.iter().zip(&mg).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            assert!(
                worst <= tol::BACKEND_AGREEMENT_K,
                "{label} {grid}x{grid}: worst per-node diff {worst:.3e} K"
            );
        }
    }
}

#[test]
fn mg_iterations_stay_flat_with_grid_size() {
    // The whole point of the hierarchy: refining the grid must not grow the
    // iteration count the way it does for Jacobi-PCG (which roughly doubles
    // per refinement).
    for (label, pkg) in packages() {
        let iters: Vec<usize> = [64usize, 128]
            .iter()
            .map(|&grid| {
                let c = circuit(grid, &pkg);
                let p = vec![40.0 / (grid * grid) as f64; grid * grid];
                let mut s = vec![AMBIENT; c.node_count()];
                let stats = solve_steady_with(&c, &p, AMBIENT, &mut s, SolverChoice::Multigrid)
                    .expect("mg steady solve");
                assert_eq!(stats.method, SolveMethod::MgCg, "{label} {grid}: multigrid ran");
                stats.iterations
            })
            .collect();
        assert!(
            iters[0].abs_diff(iters[1]) <= 2,
            "{label}: iterations must stay flat from 64x64 to 128x128, got {iters:?}"
        );
    }
}

/// Samples a zero-mean vector of length `n` from a seed.
fn seeded_vec(tag: &str, seed: u64, n: usize) -> Vec<f64> {
    let mut rng = TestRng::from_name(&format!("{tag}{seed}"));
    (0..n).map(|_| 2.0 * rng.next_f64() - 1.0).collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// CG with preconditioner M is only correct when M is SPD. Equal
    /// pre/post smoothing, restriction = prolongationᵀ and an exact coarsest
    /// solve make the V-cycle symmetric by construction; check it on random
    /// vectors: ⟨Mx, y⟩ = ⟨x, My⟩ and ⟨Mx, x⟩ > 0.
    #[test]
    fn vcycle_preconditioner_is_spd(sx in 0u64..1_000_000, sy in 0u64..1_000_000) {
        for (label, pkg) in packages() {
            let c = circuit(16, &pkg);
            let mg = Multigrid::from_circuit(&c, MgOptions::default())
                .expect("16x16 builds a hierarchy");
            let n = c.node_count();
            let mut ws = mg.workspace();

            let x = seeded_vec("x", sx, n);
            let y = seeded_vec("y", sy, n);
            let (mut mx, mut my) = (vec![0.0; n], vec![0.0; n]);
            mg.precondition(&x, &mut mx, &mut ws);
            mg.precondition(&y, &mut my, &mut ws);

            let mxy = dot(&mx, &y);
            let xmy = dot(&x, &my);
            let scale = mxy.abs().max(xmy.abs()).max(f64::MIN_POSITIVE);
            prop_assert!(
                (mxy - xmy).abs() <= tol::SYMMETRY_REL * scale,
                "{label}: asymmetric V-cycle: <Mx,y> = {mxy:.17e}, <x,My> = {xmy:.17e}"
            );
            let mxx = dot(&mx, &x);
            prop_assert!(mxx > 0.0, "{label}: <Mx,x> = {mxx:.3e} is not positive");
        }
    }
}
