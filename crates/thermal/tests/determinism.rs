//! Bitwise determinism of the parallel solver kernels.
//!
//! The worker pool's reductions sum fixed-size chunks in ascending chunk
//! order, so every floating-point result must be *bitwise* identical no
//! matter how many threads execute the kernels. These tests pin that
//! guarantee for the two paper packages (OIL-SILICON and AIR-SINK) on both
//! the steady-state CG solve and a 100-step backward-Euler transient.

use std::sync::Arc;

use hotiron_floorplan::{library, GridMapping};
use hotiron_thermal::circuit::{build_circuit, DieGeometry};
use hotiron_thermal::pool::{with_pool, WorkerPool};
use hotiron_thermal::solve::{solve_steady, solve_steady_with, BackwardEuler, SolverChoice};
use hotiron_thermal::sparse::SolveMethod;
use hotiron_thermal::{
    AirSinkPackage, ModelConfig, OilSiliconPackage, Package, PowerMap, ThermalModel,
};
use hotiron_verify::oracle;

const AMBIENT: f64 = 318.15;

fn packages() -> [(&'static str, Package); 2] {
    [
        ("oil", Package::OilSilicon(OilSiliconPackage::paper_default())),
        ("air", Package::AirSink(AirSinkPackage::paper_default())),
    ]
}

/// Asserts two temperature fields are bitwise identical, reporting the first
/// differing node (with full hex bits) when they are not.
fn assert_bitwise_eq(label: &str, serial: &[f64], parallel: &[f64]) {
    assert_eq!(serial.len(), parallel.len(), "{label}: length mismatch");
    for (i, (a, b)) in serial.iter().zip(parallel).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{label}: node {i} differs: {a:?} ({:#018x}) vs {b:?} ({:#018x})",
            a.to_bits(),
            b.to_bits()
        );
    }
}

/// Runs `f` under a pool of `threads` workers, ignoring `HOTIRON_THREADS`.
fn at_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    with_pool(&Arc::new(WorkerPool::new(threads)), f)
}

#[test]
fn steady_state_bitwise_identical_across_thread_counts() {
    let plan = library::ev6();
    for (label, pkg) in packages() {
        // 64x64 so the kernels are well past the parallel engagement
        // threshold (PAR_MIN) and the pool actually splits the work.
        let model =
            ThermalModel::new(plan.clone(), pkg, ModelConfig::paper_default().with_grid(64, 64))
                .expect("model builds");
        let power =
            PowerMap::from_pairs(&plan, [("IntReg", 4.0), ("L2", 10.0)]).expect("blocks exist");

        let p = model.cell_power(&power);
        let run = |threads: usize| {
            at_threads(threads, || {
                let mut state = model.initial_state();
                let stats =
                    solve_steady(model.circuit(), &p, AMBIENT, &mut state).expect("steady solve");
                (state, stats)
            })
        };

        let (serial, serial_stats) = run(1);
        assert_eq!(serial_stats.threads, 1, "{label}: serial run reports one thread");
        // Determinism alone can reproduce a wrong answer bit-for-bit; pin
        // that the reproduced solution is also physical.
        oracle::assert_energy_balance(label, model.circuit(), &serial, &p, AMBIENT);
        for threads in [2, 4] {
            let (parallel, stats) = run(threads);
            assert_eq!(
                stats.iterations, serial_stats.iterations,
                "{label}: iteration count must not depend on thread count"
            );
            assert_eq!(stats.threads, threads, "{label}: reported thread count");
            assert_bitwise_eq(
                &format!("{label} steady 1 vs {threads} threads"),
                &serial,
                &parallel,
            );
        }
    }
}

#[test]
fn multigrid_steady_bitwise_identical_across_thread_counts() {
    // The explicit multigrid path: stencil SpMV, Jacobi smoothing, residual
    // and grid-transfer kernels all fan out over the pool with fixed-chunk
    // reductions, so the whole V-cycle-preconditioned solve must be bitwise
    // thread-count invariant. (The auto-selected test above also lands on
    // multigrid at 64×64; this one pins the method explicitly so the
    // guarantee survives changes to the auto-selection threshold.)
    let plan = library::ev6();
    for (label, pkg) in packages() {
        let model =
            ThermalModel::new(plan.clone(), pkg, ModelConfig::paper_default().with_grid(64, 64))
                .expect("model builds");
        let power =
            PowerMap::from_pairs(&plan, [("IntReg", 4.0), ("L2", 10.0)]).expect("blocks exist");

        let p = model.cell_power(&power);
        let run = |threads: usize| {
            at_threads(threads, || {
                let mut state = model.initial_state();
                let stats = solve_steady_with(
                    model.circuit(),
                    &p,
                    AMBIENT,
                    &mut state,
                    SolverChoice::Multigrid,
                )
                .expect("mg steady solve");
                (state, stats)
            })
        };

        let (serial, serial_stats) = run(1);
        assert_eq!(serial_stats.method, SolveMethod::MgCg, "{label}: multigrid actually ran");
        assert_eq!(serial_stats.threads, 1, "{label}: serial run reports one thread");
        for threads in [2, 4] {
            let (parallel, stats) = run(threads);
            assert_eq!(
                stats.iterations, serial_stats.iterations,
                "{label}: V-cycle count must not depend on thread count"
            );
            assert_eq!(stats.threads, threads, "{label}: reported thread count");
            assert_bitwise_eq(
                &format!("{label} mg steady 1 vs {threads} threads"),
                &serial,
                &parallel,
            );
        }
    }
}

#[test]
fn transient_100_steps_bitwise_identical_across_thread_counts() {
    let plan = library::ev6();
    let grid = 32;
    let die = DieGeometry { width: 0.016, height: 0.016, thickness: 0.5e-3 };
    for (label, pkg) in packages() {
        let mapping = GridMapping::new(&plan, grid, grid);
        let circuit = build_circuit(&mapping, die, &pkg).unwrap();
        let p = vec![40.0 / (grid * grid) as f64; grid * grid];

        // CG is the parallel path; the LDLt sweeps are serial by design.
        let run = |threads: usize| {
            at_threads(threads, || {
                let be = BackwardEuler::with_solver(&circuit, 1e-4, SolverChoice::Cg);
                let mut state = vec![AMBIENT; circuit.node_count()];
                for _ in 0..100 {
                    be.step(&mut state, &p, AMBIENT).expect("transient step");
                }
                state
            })
        };

        let serial = run(1);
        for threads in [2, 4] {
            let parallel = run(threads);
            assert_bitwise_eq(
                &format!("{label} transient 1 vs {threads} threads"),
                &serial,
                &parallel,
            );
        }
    }
}

#[test]
fn direct_transient_matches_regardless_of_pool() {
    // The factorize-once LDLt path never fans out, but it consumes
    // pool-produced right-hand sides; pin that it is thread-count invariant
    // end to end too.
    let plan = library::ev6();
    let grid = 32;
    let die = DieGeometry { width: 0.016, height: 0.016, thickness: 0.5e-3 };
    let mapping = GridMapping::new(&plan, grid, grid);
    let circuit =
        build_circuit(&mapping, die, &Package::OilSilicon(OilSiliconPackage::paper_default()))
            .unwrap();
    let p = vec![40.0 / (grid * grid) as f64; grid * grid];

    let run = |threads: usize| {
        at_threads(threads, || {
            let be = BackwardEuler::with_solver(&circuit, 1e-4, SolverChoice::Direct);
            let mut state = vec![AMBIENT; circuit.node_count()];
            for _ in 0..100 {
                be.step(&mut state, &p, AMBIENT).expect("transient step");
            }
            state
        })
    };

    assert_bitwise_eq("oil direct transient 1 vs 4 threads", &run(1), &run(4));
}
