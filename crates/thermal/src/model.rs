//! The public thermal-model API.
//!
//! [`ThermalModel`] ties a [`Floorplan`] to a [`Package`] and exposes
//! steady-state solves, transient simulation, and per-block temperature
//! read-out — the modified HotSpot of the paper's §3.

use crate::circuit::{CircuitCache, DieGeometry, ThermalCircuit};
use crate::package::Package;
use crate::pool;
use crate::power::PowerMap;
use crate::solve::{solve_steady, BackwardEuler, SolveError};
use crate::sparse::SolveStats;
use crate::stack::{LayerStack, StackError};
use crate::units::{celsius_to_kelvin, kelvin_to_celsius};
use hotiron_floorplan::{Floorplan, GridMapping};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Errors from model construction or solving.
#[derive(Debug)]
#[non_exhaustive]
pub enum ThermalError {
    /// Invalid model configuration.
    Config(String),
    /// An invalid layer stack (bad lowering or failed validation).
    Stack(StackError),
    /// A solver failed to converge.
    Solve(SolveError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(m) => write!(f, "invalid model configuration: {m}"),
            Self::Stack(e) => write!(f, "invalid layer stack: {e}"),
            Self::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl Error for ThermalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Solve(e) => Some(e),
            Self::Stack(e) => Some(e),
            Self::Config(_) => None,
        }
    }
}

impl From<SolveError> for ThermalError {
    fn from(e: SolveError) -> Self {
        Self::Solve(e)
    }
}

impl From<StackError> for ThermalError {
    fn from(e: StackError) -> Self {
        Self::Stack(e)
    }
}

/// Model discretization and environment settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Grid rows (die y direction).
    pub rows: usize,
    /// Grid columns (die x direction).
    pub cols: usize,
    /// Bulk silicon thickness, m.
    pub die_thickness: f64,
    /// Ambient (coolant inlet) temperature, K.
    pub ambient: f64,
}

impl ModelConfig {
    /// The paper's setup: 32x32 grid, 0.5 mm die, 45 °C ambient.
    pub fn paper_default() -> Self {
        Self { rows: 32, cols: 32, die_thickness: 0.5e-3, ambient: celsius_to_kelvin(45.0) }
    }

    /// Overrides the grid resolution.
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Overrides the ambient temperature (K).
    pub fn with_ambient(mut self, kelvin: f64) -> Self {
        self.ambient = kelvin;
        self
    }

    /// Overrides the die thickness (m).
    pub fn with_die_thickness(mut self, m: f64) -> Self {
        self.die_thickness = m;
        self
    }

    fn validate(&self) -> Result<(), ThermalError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(ThermalError::Config("grid must be at least 1x1".into()));
        }
        if !(self.die_thickness.is_finite() && self.die_thickness > 0.0) {
            return Err(ThermalError::Config("die thickness must be positive".into()));
        }
        if !(self.ambient.is_finite() && self.ambient > 0.0) {
            return Err(ThermalError::Config("ambient must be positive kelvin".into()));
        }
        Ok(())
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A compact thermal model of one die in one package.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::library;
/// use hotiron_thermal::model::{ModelConfig, ThermalModel};
/// use hotiron_thermal::package::{OilSiliconPackage, Package};
/// use hotiron_thermal::power::PowerMap;
///
/// let plan = library::ev6();
/// let model = ThermalModel::new(
///     plan.clone(),
///     Package::OilSilicon(OilSiliconPackage::paper_default()),
///     ModelConfig::paper_default(),
/// )?;
/// let power = PowerMap::from_pairs(&plan, [("IntReg", 2.0)])?;
/// let sol = model.steady_state(&power)?;
/// let hottest = sol.hottest_block();
/// assert_eq!(hottest.0, "IntReg");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ThermalModel {
    plan: Floorplan,
    mapping: GridMapping,
    /// Shared handle from the process-wide circuit cache: models built over
    /// identical (stack, die, grid) triples reuse one assembled circuit and
    /// its lazily built multigrid hierarchy.
    circuit: Arc<ThermalCircuit>,
    config: ModelConfig,
    /// The package this model was lowered from, when it was built through
    /// [`ThermalModel::new`]; models built from a raw stack have none.
    package: Option<Package>,
    /// The layer stack the circuit was assembled from.
    stack: LayerStack,
    /// Content hash of `stack` (see [`LayerStack::content_hash`]).
    stack_hash: u64,
    /// Warm-start cache: the most recent steady solution (or an explicitly
    /// seeded state), used as the next steady solve's initial guess. Keyed
    /// to *this* model by construction — solutions never leak across models,
    /// so fanned-out experiments stay order-independent.
    warm: Mutex<Option<Vec<f64>>>,
    /// Telemetry of the most recent steady solve.
    last_stats: Mutex<Option<SolveStats>>,
}

impl ThermalModel {
    /// Builds the model (assembles the RC network, or fetches it from the
    /// process-wide circuit cache when an identical stack/die/grid circuit
    /// is already alive).
    ///
    /// # Errors
    ///
    /// [`ThermalError::Config`] for invalid configuration;
    /// [`ThermalError::Stack`] when the package does not lower to a valid
    /// stack (e.g. `PcbCooling::Oil` on an AIR-SINK package).
    pub fn new(
        plan: Floorplan,
        package: Package,
        config: ModelConfig,
    ) -> Result<Self, ThermalError> {
        Self::new_in(plan, package, config, CircuitCache::process())
    }

    /// Like [`new`](Self::new), but fetching/inserting the assembled circuit
    /// through a caller-owned [`CircuitCache`] instead of the process-wide
    /// default — the route servers take so their cache bound and telemetry
    /// cover every circuit they build.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new).
    pub fn new_in(
        plan: Floorplan,
        package: Package,
        config: ModelConfig,
        cache: &CircuitCache,
    ) -> Result<Self, ThermalError> {
        config.validate()?;
        let die = DieGeometry {
            width: plan.width(),
            height: plan.height(),
            thickness: config.die_thickness,
        };
        let stack = package.to_stack(die)?;
        Self::build(plan, stack, Some(package), config, cache)
    }

    /// Builds the model directly from a [`LayerStack`] — the open route for
    /// configurations the [`Package`] enum cannot express. The die thickness
    /// comes from the stack's silicon layer (`config.die_thickness` is
    /// ignored).
    ///
    /// # Errors
    ///
    /// [`ThermalError::Config`] for invalid configuration;
    /// [`ThermalError::Stack`] when the stack fails validation.
    pub fn from_stack(
        plan: Floorplan,
        stack: LayerStack,
        config: ModelConfig,
    ) -> Result<Self, ThermalError> {
        Self::from_stack_in(plan, stack, config, CircuitCache::process())
    }

    /// Like [`from_stack`](Self::from_stack), through a caller-owned
    /// [`CircuitCache`].
    ///
    /// # Errors
    ///
    /// As [`from_stack`](Self::from_stack).
    pub fn from_stack_in(
        plan: Floorplan,
        stack: LayerStack,
        config: ModelConfig,
        cache: &CircuitCache,
    ) -> Result<Self, ThermalError> {
        config.validate()?;
        Self::build(plan, stack, None, config, cache)
    }

    fn build(
        plan: Floorplan,
        stack: LayerStack,
        package: Option<Package>,
        config: ModelConfig,
        cache: &CircuitCache,
    ) -> Result<Self, ThermalError> {
        let mapping = GridMapping::new(&plan, config.rows, config.cols);
        // Validation (inside the cache's build) rejects an out-of-range
        // silicon index; the fallback thickness only keeps this pre-check
        // panic-free until then.
        let thickness =
            stack.layers.get(stack.si_index).map_or(config.die_thickness, |l| l.thickness);
        let die = DieGeometry { width: plan.width(), height: plan.height(), thickness };
        let (circuit, _) = cache.get_or_build(&mapping, die, &stack)?;
        let stack_hash = stack.content_hash();
        Ok(Self {
            plan,
            mapping,
            circuit,
            config,
            package,
            stack,
            stack_hash,
            warm: Mutex::new(None),
            last_stats: Mutex::new(None),
        })
    }

    /// The floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.plan
    }

    /// The grid mapping.
    pub fn mapping(&self) -> &GridMapping {
        &self.mapping
    }

    /// The assembled circuit (for inspection and custom solvers).
    pub fn circuit(&self) -> &ThermalCircuit {
        &self.circuit
    }

    /// The package this model was lowered from, if it was built via
    /// [`ThermalModel::new`] rather than [`ThermalModel::from_stack`].
    pub fn package(&self) -> Option<&Package> {
        self.package.as_ref()
    }

    /// The layer stack the circuit was assembled from.
    pub fn stack(&self) -> &LayerStack {
        &self.stack
    }

    /// Content hash of the lowered stack — the identity the circuit cache
    /// keys on (together with die geometry and grid resolution).
    pub fn stack_hash(&self) -> u64 {
        self.stack_hash
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Ambient temperature, K.
    pub fn ambient(&self) -> f64 {
        self.config.ambient
    }

    /// Per-silicon-cell power (W) for a block power map.
    ///
    /// Parallelized per cell over the gather transpose
    /// ([`GridMapping::blocks_of_cell`]), whose block-ascending entry order
    /// makes the result bitwise identical to the serial scatter at any
    /// thread count.
    pub fn cell_power(&self, power: &PowerMap) -> Vec<f64> {
        let values = power.values();
        assert_eq!(values.len(), self.mapping.block_count(), "one value per block required");
        let mut out = vec![0.0; self.mapping.cell_count()];
        let p = pool::current();
        pool::fill_chunks(&p, &mut out, |_, start, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                for &(bi, frac) in self.mapping.blocks_of_cell(start + k) {
                    *slot += values[bi] * frac;
                }
            }
        });
        out
    }

    /// An all-ambient initial state.
    pub fn initial_state(&self) -> Vec<f64> {
        vec![self.config.ambient; self.circuit.node_count()]
    }

    /// Solves the steady state for a power map.
    ///
    /// The solve warm-starts from this model's most recent steady solution
    /// (or a state provided via [`seed_warm_start`](Self::seed_warm_start))
    /// when one exists — re-solves under slowly varying power, the common
    /// case in DTM loops and parameter sweeps, then converge in a fraction
    /// of the cold iteration count. [`SolveStats::warm_start`] in
    /// [`last_solve_stats`](Self::last_solve_stats) reports which case ran.
    ///
    /// # Errors
    ///
    /// [`ThermalError::Solve`] if the solver does not converge.
    pub fn steady_state(&self, power: &PowerMap) -> Result<Solution<'_>, ThermalError> {
        let p = self.cell_power(power);
        let mut state = self.initial_state();
        let warm = {
            let cache = self.warm.lock().expect("warm-start cache poisoned");
            match cache.as_ref() {
                Some(prev) => {
                    state.copy_from_slice(prev);
                    true
                }
                None => false,
            }
        };
        let result = solve_steady(&self.circuit, &p, self.config.ambient, &mut state);
        let stats = match result {
            Ok(mut stats) => {
                stats.warm_start = warm;
                stats
            }
            Err(e) => {
                // A failed warm-started solve must not poison later solves.
                *self.warm.lock().expect("warm-start cache poisoned") = None;
                return Err(e.into());
            }
        };
        *self.warm.lock().expect("warm-start cache poisoned") = Some(state.clone());
        *self.last_stats.lock().expect("stats cache poisoned") = Some(stats);
        Ok(Solution { model: self, state })
    }

    /// Seeds the warm-start cache with an externally computed state (e.g.
    /// the previous orientation's solution in a flow-direction sweep across
    /// *different* models of the same die).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the circuit's node count.
    pub fn seed_warm_start(&self, state: Vec<f64>) {
        assert_eq!(state.len(), self.circuit.node_count(), "state length mismatch");
        *self.warm.lock().expect("warm-start cache poisoned") = Some(state);
    }

    /// Clears the warm-start cache; the next steady solve starts cold.
    pub fn clear_warm_start(&self) {
        *self.warm.lock().expect("warm-start cache poisoned") = None;
    }

    /// Telemetry of the most recent [`steady_state`](Self::steady_state)
    /// solve on this model, if any succeeded yet.
    pub fn last_solve_stats(&self) -> Option<SolveStats> {
        self.last_stats.lock().expect("stats cache poisoned").clone()
    }

    /// Wraps an externally computed state vector in a [`Solution`].
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the circuit's node count.
    pub fn solution_from_state(&self, state: Vec<f64>) -> Solution<'_> {
        assert_eq!(state.len(), self.circuit.node_count(), "state length mismatch");
        Solution { model: self, state }
    }

    /// Creates a transient simulator starting from ambient.
    pub fn transient(&self, dt: f64) -> TransientSim<'_> {
        TransientSim {
            model: self,
            stepper: BackwardEuler::new(&self.circuit, dt),
            state: self.initial_state(),
            time: 0.0,
        }
    }
}

/// A solved thermal state with block-level accessors.
#[derive(Debug, Clone)]
pub struct Solution<'m> {
    model: &'m ThermalModel,
    state: Vec<f64>,
}

impl<'m> Solution<'m> {
    /// The raw node state, kelvin.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Silicon cell temperatures (kelvin), row-major, row 0 at die bottom.
    pub fn silicon_cells(&self) -> &[f64] {
        self.model.circuit.silicon_slice(&self.state)
    }

    /// Area-weighted average temperature of each block, °C, floorplan order.
    ///
    /// Each block's average is an independent fold over its own cells, so
    /// the per-block parallelization cannot change results.
    pub fn block_celsius(&self) -> Vec<f64> {
        let mapping = &self.model.mapping;
        let field = self.silicon_cells();
        let mut out = vec![0.0; mapping.block_count()];
        let p = pool::current();
        pool::fill_chunks(&p, &mut out, |_, start, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let mut acc = 0.0;
                let mut wsum = 0.0;
                for &(ci, frac) in mapping.cells_of_block(start + k) {
                    acc += field[ci] * frac;
                    wsum += frac;
                }
                *slot = kelvin_to_celsius(if wsum > 0.0 { acc / wsum } else { 0.0 });
            }
        });
        out
    }

    /// One block's average temperature, °C.
    ///
    /// # Panics
    ///
    /// Panics if the block name is unknown.
    pub fn block(&self, name: &str) -> f64 {
        let i =
            self.model.plan.block_index(name).unwrap_or_else(|| panic!("unknown block `{name}`"));
        self.block_celsius()[i]
    }

    /// Hottest block by average temperature: `(name, °C)`.
    pub fn hottest_block(&self) -> (&str, f64) {
        let temps = self.block_celsius();
        let (i, t) = temps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("floorplan is non-empty");
        (self.model.plan.blocks()[i].name(), *t)
    }

    /// Coolest block by average temperature: `(name, °C)`.
    pub fn coolest_block(&self) -> (&str, f64) {
        let temps = self.block_celsius();
        let (i, t) = temps
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("floorplan is non-empty");
        (self.model.plan.blocks()[i].name(), *t)
    }

    /// Maximum silicon cell temperature, °C.
    pub fn max_celsius(&self) -> f64 {
        kelvin_to_celsius(self.silicon_cells().iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)))
    }

    /// Minimum silicon cell temperature, °C.
    pub fn min_celsius(&self) -> f64 {
        kelvin_to_celsius(self.silicon_cells().iter().fold(f64::INFINITY, |a, &b| a.min(b)))
    }

    /// Across-die temperature difference `Tmax − Tmin`, K.
    pub fn gradient(&self) -> f64 {
        self.max_celsius() - self.min_celsius()
    }

    /// Area-weighted average silicon temperature, °C.
    pub fn average_celsius(&self) -> f64 {
        let cells = self.silicon_cells();
        kelvin_to_celsius(cells.iter().sum::<f64>() / cells.len() as f64)
    }

    /// Temperature at die coordinates `(x, y)` meters, °C (the silicon cell
    /// containing the point; coordinates clamp to the die).
    pub fn celsius_at(&self, x: f64, y: f64) -> f64 {
        let m = self.model.mapping();
        let (r, c) = m.cell_at(x, y);
        kelvin_to_celsius(self.silicon_cells()[m.cell_index(r, c)])
    }

    /// The die's `(width, height)` in meters.
    pub fn die_size(&self) -> (f64, f64) {
        (self.model.floorplan().width(), self.model.floorplan().height())
    }

    /// Die coordinates `(x, y)` of the hottest silicon cell, meters.
    pub fn hottest_cell_position(&self) -> (f64, f64) {
        let cells = self.silicon_cells();
        let (i, _) =
            cells.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("grid is non-empty");
        let m = self.model.mapping();
        let (r, c) = m.cell_coords(i);
        m.cell_center(r, c)
    }

    /// The silicon temperature field as a row-major °C grid
    /// (row 0 at the die bottom).
    pub fn celsius_grid(&self) -> Vec<f64> {
        self.silicon_cells().iter().map(|&k| kelvin_to_celsius(k)).collect()
    }

    /// Consumes the solution, returning the raw state.
    pub fn into_state(self) -> Vec<f64> {
        self.state
    }
}

/// Stateful transient simulator (backward Euler).
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::library;
/// use hotiron_thermal::model::{ModelConfig, ThermalModel};
/// use hotiron_thermal::package::{AirSinkPackage, Package};
/// use hotiron_thermal::power::PowerMap;
///
/// let plan = library::ev6();
/// let model = ThermalModel::new(
///     plan.clone(),
///     Package::AirSink(AirSinkPackage::paper_default()),
///     ModelConfig::paper_default().with_grid(8, 8),
/// )?;
/// let power = PowerMap::from_pairs(&plan, [("IntReg", 2.0)])?;
/// let mut sim = model.transient(1e-3);
/// sim.run(&power, 0.01)?; // 10 ms of heating
/// assert!(sim.solution().block("IntReg") > 45.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TransientSim<'m> {
    model: &'m ThermalModel,
    stepper: BackwardEuler<'m>,
    state: Vec<f64>,
    time: f64,
}

impl<'m> TransientSim<'m> {
    /// Elapsed simulated time, s.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The model this simulator runs on.
    pub fn model(&self) -> &ThermalModel {
        self.model
    }

    /// The backward-Euler stepper driving this simulation, for solver
    /// telemetry (active solver, factor fill-in, amortized solve count).
    pub fn stepper(&self) -> &BackwardEuler<'m> {
        &self.stepper
    }

    /// Replaces the state with the steady state of `power` (the paper's
    /// Fig 8 initialization: steady state of the average power).
    ///
    /// # Errors
    ///
    /// Propagates steady-solve convergence failures.
    pub fn init_steady(&mut self, power: &PowerMap) -> Result<(), ThermalError> {
        let sol = self.model.steady_state(power)?;
        self.state = sol.into_state();
        Ok(())
    }

    /// Resets to the all-ambient state and zero time.
    pub fn reset(&mut self) {
        self.state = self.model.initial_state();
        self.time = 0.0;
    }

    /// Advances by `duration` seconds under a constant power map.
    ///
    /// # Errors
    ///
    /// Propagates inner solver failures.
    pub fn run(&mut self, power: &PowerMap, duration: f64) -> Result<(), ThermalError> {
        let p = self.model.cell_power(power);
        self.stepper.advance(&mut self.state, &p, self.model.config.ambient, duration)?;
        self.time += duration;
        Ok(())
    }

    /// Advances by exactly one solver step.
    ///
    /// # Errors
    ///
    /// Propagates inner solver failures.
    pub fn step(&mut self, power: &PowerMap) -> Result<(), ThermalError> {
        let p = self.model.cell_power(power);
        self.stepper.step(&mut self.state, &p, self.model.config.ambient)?;
        self.time += self.stepper.dt();
        Ok(())
    }

    /// A read-only view of the current state.
    pub fn solution(&self) -> Solution<'m> {
        Solution { model: self.model, state: self.state.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convection::FlowDirection;
    use crate::package::{AirSinkPackage, OilSiliconPackage};
    use hotiron_floorplan::library;

    fn small_cfg() -> ModelConfig {
        ModelConfig::paper_default().with_grid(16, 16)
    }

    #[test]
    fn config_validation() {
        let plan = library::ev6();
        let bad = ModelConfig { rows: 0, ..ModelConfig::paper_default() };
        assert!(matches!(
            ThermalModel::new(
                plan.clone(),
                Package::OilSilicon(OilSiliconPackage::paper_default()),
                bad
            ),
            Err(ThermalError::Config(_))
        ));
        let bad = ModelConfig::paper_default().with_die_thickness(-1.0);
        assert!(ThermalModel::new(
            plan,
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            bad
        )
        .is_err());
    }

    #[test]
    fn hot_block_is_hottest_under_oil() {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            small_cfg(),
        )
        .unwrap();
        let power = PowerMap::from_pairs(&plan, [("IntReg", 2.0)]).unwrap();
        let sol = model.steady_state(&power).unwrap();
        assert_eq!(sol.hottest_block().0, "IntReg");
        assert!(sol.block("IntReg") > sol.block("L2") + 1.0);
        assert!(sol.max_celsius() >= sol.block("IntReg"));
        assert!(sol.gradient() > 0.0);
    }

    #[test]
    fn air_sink_spreads_more_than_oil() {
        // The paper's central steady-state claim (§4.2): with the same
        // power, OIL-SILICON has a hotter hot spot and a larger gradient.
        let plan = library::ev6();
        let power = PowerMap::from_pairs(&plan, [("IntReg", 4.0), ("L2", 10.0)]).unwrap();
        let air = ThermalModel::new(
            plan.clone(),
            Package::AirSink(AirSinkPackage::paper_default()),
            small_cfg(),
        )
        .unwrap();
        let oil = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            small_cfg(),
        )
        .unwrap();
        let sa = air.steady_state(&power).unwrap();
        let so = oil.steady_state(&power).unwrap();
        assert!(
            so.max_celsius() > sa.max_celsius(),
            "{} vs {}",
            so.max_celsius(),
            sa.max_celsius()
        );
        assert!(so.gradient() > 2.0 * sa.gradient(), "{} vs {}", so.gradient(), sa.gradient());
    }

    #[test]
    fn flow_direction_changes_temperatures() {
        let plan = library::ev6();
        let power = PowerMap::from_pairs(&plan, [("IntReg", 4.0)]).unwrap();
        let t_for = |dir| {
            let model = ThermalModel::new(
                plan.clone(),
                Package::OilSilicon(OilSiliconPackage::paper_default().with_direction(dir)),
                small_cfg(),
            )
            .unwrap();
            model.steady_state(&power).unwrap().block("IntReg")
        };
        // IntReg is on the top edge: top-to-bottom flow puts it at the
        // leading edge and cools it best (Fig 11's key observation).
        let t_t2b = t_for(FlowDirection::TopToBottom);
        let t_b2t = t_for(FlowDirection::BottomToTop);
        assert!(t_t2b < t_b2t - 1.0, "t2b {t_t2b} vs b2t {t_b2t}");
    }

    #[test]
    fn transient_sim_warms_toward_steady() {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(8, 8),
        )
        .unwrap();
        let power = PowerMap::from_pairs(&plan, [("Icache", 16.0)]).unwrap();
        let steady = model.steady_state(&power).unwrap();
        let mut sim = model.transient(0.02);
        sim.run(&power, 10.0).unwrap();
        let t_sim = sim.solution().block("Icache");
        let t_st = steady.block("Icache");
        assert!((t_sim - t_st).abs() < 1.5, "sim {t_sim} steady {t_st}");
        assert!((sim.time() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn init_steady_matches_steady_state() {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::AirSink(AirSinkPackage::paper_default()),
            ModelConfig::paper_default().with_grid(8, 8),
        )
        .unwrap();
        let power = PowerMap::from_pairs(&plan, [("IntReg", 2.0)]).unwrap();
        let mut sim = model.transient(1e-3);
        sim.init_steady(&power).unwrap();
        let a = sim.solution().block("IntReg");
        let b = model.steady_state(&power).unwrap().block("IntReg");
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn identical_models_share_one_cached_circuit() {
        let plan = library::ev6();
        let mk = || {
            ThermalModel::new(
                plan.clone(),
                Package::AirSink(AirSinkPackage::paper_default()),
                small_cfg(),
            )
            .unwrap()
        };
        let a = mk();
        let b = mk();
        assert!(
            std::ptr::eq(a.circuit(), b.circuit()),
            "same stack + die + grid must reuse one assembled circuit"
        );
        assert_eq!(a.stack_hash(), b.stack_hash());
        // Warm-start caches stay per-model even when the circuit is shared.
        a.seed_warm_start(a.initial_state());
        assert!(b.last_solve_stats().is_none());
    }

    #[test]
    fn caller_owned_cache_tracks_its_own_models() {
        let plan = library::ev6();
        let cache = crate::circuit::CircuitCache::new(4);
        let mk = || {
            ThermalModel::new_in(
                plan.clone(),
                Package::OilSilicon(OilSiliconPackage::paper_default()),
                // A grid no other test uses, so the shared process cache
                // cannot satisfy it behind our back.
                ModelConfig::paper_default().with_grid(7, 9),
                &cache,
            )
            .unwrap()
        };
        let a = mk();
        let b = mk();
        assert!(std::ptr::eq(a.circuit(), b.circuit()));
        let c = cache.counters();
        assert_eq!((c.misses, c.hits, c.len), (1, 1, 1));
    }

    #[test]
    fn from_stack_builds_inexpressible_configuration() {
        // Bare die under a lumped forced-air path: no spreader, no sink —
        // not representable as either Package variant.
        let plan = library::ev6();
        let stack = crate::stack::LayerStack::new(
            vec![crate::stack::Layer::new("silicon", crate::materials::SILICON, 0.5e-3)],
            0,
        )
        .with_top(crate::stack::Boundary::Lumped { r_total: 2.0, c_total: 30.0 });
        let model = ThermalModel::from_stack(plan.clone(), stack, small_cfg()).unwrap();
        assert!(model.package().is_none());
        let power = PowerMap::from_pairs(&plan, [("IntReg", 2.0)]).unwrap();
        let sol = model.steady_state(&power).unwrap();
        assert_eq!(sol.hottest_block().0, "IntReg");
    }

    #[test]
    fn invalid_stack_is_a_typed_error() {
        let plan = library::ev6();
        let mut pkg = AirSinkPackage::paper_default();
        pkg.spreader.side = 1e-3; // smaller than the die
        let err = ThermalModel::new(plan, Package::AirSink(pkg), small_cfg()).unwrap_err();
        assert!(matches!(err, ThermalError::Stack(_)), "{err:?}");
        assert!(err.to_string().contains("spreader"), "{err}");
    }

    #[test]
    fn solution_statistics_are_consistent() {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(8, 8),
        )
        .unwrap();
        let power = PowerMap::uniform_density(&plan, 1e5);
        let sol = model.steady_state(&power).unwrap();
        assert!(sol.min_celsius() <= sol.average_celsius());
        assert!(sol.average_celsius() <= sol.max_celsius());
        assert!((sol.gradient() - (sol.max_celsius() - sol.min_celsius())).abs() < 1e-12);
    }
}
