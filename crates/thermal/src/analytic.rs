//! Closed-form reference solutions for solver verification.
//!
//! The circuit assembly and solvers are cross-checked against textbook
//! analytic results in the test-suite:
//!
//! * [`slab_steady_profile`] — 1-D conduction through a slab with a heat
//!   flux at one face and convection at the other;
//! * [`lumped_step_response`] — first-order RC step response, the backbone
//!   of every time-constant argument in the paper's §4.1.2;
//! * [`two_node_step_response`] — the paper's Fig 7 circuits: silicon +
//!   coolant two-node ladders, solved exactly by eigen-decomposition.

/// Steady temperature at depth `z` (m, measured from the heated face) of a
/// slab of thickness `t` and conductivity `k` carrying a uniform flux
/// `q''` (W/m²) toward a convective face with coefficient `h` into ambient
/// `t_amb` (K).
///
/// # Examples
///
/// ```
/// use hotiron_thermal::analytic::slab_steady_profile;
///
/// // Paper numbers: 0.5 mm silicon, k = 100, h for Rconv = 1 K/W over 4 cm².
/// let t_hot = slab_steady_profile(0.0, 0.5e-3, 100.0, 500_000.0, 2500.0, 318.15);
/// let t_cold = slab_steady_profile(0.5e-3, 0.5e-3, 100.0, 500_000.0, 2500.0, 318.15);
/// assert!(t_hot > t_cold);
/// ```
pub fn slab_steady_profile(z: f64, t: f64, k: f64, q_flux: f64, h: f64, t_amb: f64) -> f64 {
    assert!((0.0..=t).contains(&z), "depth must lie within the slab");
    // Linear conduction profile on top of the convective film drop.
    t_amb + q_flux / h + q_flux * (t - z) / k
}

/// First-order step response: temperature rise at time `t` of a lumped
/// capacitance `c` (J/K) heated by `p` watts through resistance `r` (K/W)
/// to ambient: `ΔT(t) = p·r·(1 − e^(−t/rc))`.
pub fn lumped_step_response(p: f64, r: f64, c: f64, t: f64) -> f64 {
    p * r * (1.0 - (-t / (r * c)).exp())
}

/// Exact step response of the paper's Fig 7(b) two-node ladder: heat `p`
/// into node 1 (capacitance `c1`), which couples through `r12` to node 2
/// (capacitance `c2`), which couples through `r2a` to ambient. Returns the
/// rise of node 1 at time `t`.
///
/// Solved by eigen-decomposition of the 2x2 system; used to verify the
/// transient solvers beyond single-RC accuracy.
pub fn two_node_step_response(p: f64, c1: f64, r12: f64, c2: f64, r2a: f64, t: f64) -> f64 {
    let g12 = 1.0 / r12;
    let g2a = 1.0 / r2a;
    // dT/dt = A·T + b with T as rises over ambient.
    let a11 = -g12 / c1;
    let a12 = g12 / c1;
    let a21 = g12 / c2;
    let a22 = -(g12 + g2a) / c2;
    let b1 = p / c1;
    // Steady state: A·T∞ = −b.
    let det = a11 * a22 - a12 * a21;
    let t1_inf = (-b1 * a22) / det;
    let t2_inf = (b1 * a21) / det;
    // Eigenvalues of A.
    let tr = a11 + a22;
    let disc = (tr * tr - 4.0 * det).sqrt();
    let l1 = (tr + disc) / 2.0;
    let l2 = (tr - disc) / 2.0;
    // x(t) = T − T∞ obeys x' = A x with x(0) = −T∞. Decompose x(0) on the
    // eigenvectors v_i = (a12, l_i − a11).
    let v1 = (a12, l1 - a11);
    let v2 = (a12, l2 - a11);
    // Solve alpha1·v1 + alpha2·v2 = (−t1_inf, −t2_inf).
    let det_v = v1.0 * v2.1 - v2.0 * v1.1;
    let alpha1 = (-t1_inf * v2.1 - (-t2_inf) * v2.0) / det_v;
    let alpha2 = (v1.0 * (-t2_inf) - v1.1 * (-t1_inf)) / det_v;
    t1_inf + alpha1 * v1.0 * (l1 * t).exp() + alpha2 * v2.0 * (l2 * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{build_circuit, DieGeometry};
    use crate::package::{OilSiliconPackage, Package};
    use crate::solve::{solve_steady, BackwardEuler, Rk4Adaptive};
    use crate::sparse::TripletMatrix;
    use hotiron_floorplan::{library, GridMapping};

    #[test]
    fn lumped_step_limits() {
        assert_eq!(lumped_step_response(10.0, 2.0, 1.0, 0.0), 0.0);
        let t_inf = lumped_step_response(10.0, 2.0, 1.0, 1e6);
        assert!((t_inf - 20.0).abs() < 1e-9);
        // At one time constant: 63.2 % of the way.
        let at_tau = lumped_step_response(10.0, 2.0, 1.0, 2.0);
        assert!((at_tau / 20.0 - 0.6321).abs() < 1e-3);
    }

    #[test]
    fn two_node_limits_and_monotonicity() {
        let (p, c1, r12, c2, r2a) = (5.0, 0.35, 0.0125, 90.0, 1.0);
        assert!(two_node_step_response(p, c1, r12, c2, r2a, 0.0).abs() < 1e-9);
        let t_inf = two_node_step_response(p, c1, r12, c2, r2a, 1e5);
        assert!((t_inf - p * (r12 + r2a)).abs() < 1e-6, "{t_inf}");
        let mut last = 0.0;
        for i in 1..50 {
            let v = two_node_step_response(p, c1, r12, c2, r2a, i as f64 * 2.0);
            assert!(v >= last - 1e-9, "monotone rise");
            last = v;
        }
    }

    #[test]
    fn backward_euler_matches_two_node_analytic() {
        // Build the Fig 7(b) OIL circuit by hand and integrate it.
        let (p, c1, r12, c2, r2a) = (5.0, 0.35, 0.2, 0.1, 1.0);
        let mut tm = TripletMatrix::new(2);
        tm.stamp_conductance(0, 1, 1.0 / r12);
        tm.stamp_grounded_conductance(1, 1.0 / r2a);
        let g = tm.to_csr();
        // Emulate BE manually: (C/dt + G) x+ = C/dt x + b.
        let dt = 1e-3;
        let c_over_dt = vec![c1 / dt, c2 / dt];
        let a = g.add_diagonal(&c_over_dt);
        let mut x = vec![0.0, 0.0];
        let t_end = 0.5;
        let steps = (t_end / dt) as usize;
        for _ in 0..steps {
            let b = vec![p + c_over_dt[0] * x[0], c_over_dt[1] * x[1]];
            let stats = crate::sparse::conjugate_gradient(&a, &b, &mut x, 1e-12, 1000);
            assert!(stats.converged);
        }
        let exact = two_node_step_response(p, c1, r12, c2, r2a, t_end);
        assert!((x[0] - exact).abs() < 0.02 * exact, "BE {} vs analytic {exact}", x[0]);
    }

    #[test]
    fn circuit_uniform_power_matches_lumped_rc_warmup() {
        // A uniform die under uniform (non-local) oil behaves like the
        // paper's single-RC oil circuit: tau ≈ Rconv·(C_si + C_oil).
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, 8, 8);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        };
        let circuit = build_circuit(&map, die, &Package::OilSilicon(pkg));
        let p_total = 100.0;
        let p = vec![p_total / 64.0; 64];
        // The circuit is exactly a two-node ladder when power and h are
        // uniform: silicon --Rconv/2-- oil film --Rconv/2-- ambient.
        let r_half = 1.0 / circuit.total_ambient_conductance();
        let c_si = 0.35;
        let c_oil: f64 = circuit.capacitance()[64..].iter().sum();

        let be = BackwardEuler::new(&circuit, 0.002);
        let mut state = vec![318.15; circuit.node_count()];
        let probe_at = [0.2, 0.5, 1.0];
        let mut t_now = 0.0;
        for &t_probe in &probe_at {
            be.advance(&mut state, &p, 318.15, t_probe - t_now).unwrap();
            t_now = t_probe;
            let avg: f64 = circuit.silicon_slice(&state).iter().sum::<f64>() / 64.0 - 318.15;
            let exact = two_node_step_response(p_total, c_si, r_half, c_oil, r_half, t_probe);
            let rel = (avg - exact).abs() / exact;
            assert!(rel < 0.05, "t={t_probe}: circuit {avg} vs ladder {exact}");
        }
    }

    #[test]
    fn rk4_matches_analytic_single_rc() {
        // One silicon node + uniform oil: compare RK4 against the lumped
        // response over a short window.
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, 4, 4);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        };
        let circuit = build_circuit(&map, die, &Package::OilSilicon(pkg));
        let p = vec![100.0 / 16.0; 16];
        let rk = Rk4Adaptive::new(&circuit);
        let mut state = vec![318.15; circuit.node_count()];
        rk.advance(&mut state, &p, 318.15, 0.2).unwrap();
        let avg: f64 = circuit.silicon_slice(&state).iter().sum::<f64>() / 16.0 - 318.15;
        let r_half = 1.0 / circuit.total_ambient_conductance();
        let c_oil: f64 = circuit.capacitance()[16..].iter().sum();
        let exact = two_node_step_response(100.0, 0.35, r_half, c_oil, r_half, 0.2);
        assert!((avg - exact).abs() < 0.05 * exact, "RK4 {avg} vs ladder {exact}");
    }

    #[test]
    fn steady_slab_face_temperature() {
        // Uniform die + uniform oil: the hot-face temperature matches the
        // 1-D slab solution (lateral terms vanish by symmetry).
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, 8, 8);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        };
        let circuit = build_circuit(&map, die, &Package::OilSilicon(pkg));
        let p = vec![200.0 / 64.0; 64];
        let mut state = vec![318.15; circuit.node_count()];
        solve_steady(&circuit, &p, 318.15, &mut state).unwrap();
        let avg: f64 = circuit.silicon_slice(&state).iter().sum::<f64>() / 64.0;
        // h from the circuit's total conductance: G_total = 2·h·A.
        let h = circuit.total_ambient_conductance() / 2.0 / 4e-4;
        let q_flux = 200.0 / 4e-4;
        // The single-node-through-thickness model reads the slab's mean
        // (mid-depth-ish) temperature; compare to the analytic band.
        let t_face = 318.15 + q_flux / h;
        let t_back = t_face + q_flux * 0.5e-3 / 100.0;
        assert!(avg >= t_face - 0.5 && avg <= t_back + 0.5, "avg {avg} in [{t_face}, {t_back}]");
    }
}
