//! Closed-form reference solutions for solver verification.
//!
//! The circuit assembly and solvers are cross-checked against textbook
//! analytic results in the test-suite:
//!
//! * [`slab_steady_profile`] — 1-D conduction through a slab with a heat
//!   flux at one face and convection at the other;
//! * [`lumped_step_response`] — first-order RC step response, the backbone
//!   of every time-constant argument in the paper's §4.1.2;
//! * [`two_node_step_response`] — the paper's Fig 7 circuits: silicon +
//!   coolant two-node ladders, solved exactly by eigen-decomposition;
//! * [`PointSourceSlab`] — method-of-images Green's-function field of a
//!   point source on a convectively cooled die, the independent 2-D oracle
//!   the `hotiron-verify` suite compares full grid solves against.

/// Steady temperature at depth `z` (m, measured from the heated face) of a
/// slab of thickness `t` and conductivity `k` carrying a uniform flux
/// `q''` (W/m²) toward a convective face with coefficient `h` into ambient
/// `t_amb` (K).
///
/// # Examples
///
/// ```
/// use hotiron_thermal::analytic::slab_steady_profile;
///
/// // Paper numbers: 0.5 mm silicon, k = 100, h for Rconv = 1 K/W over 4 cm².
/// let t_hot = slab_steady_profile(0.0, 0.5e-3, 100.0, 500_000.0, 2500.0, 318.15);
/// let t_cold = slab_steady_profile(0.5e-3, 0.5e-3, 100.0, 500_000.0, 2500.0, 318.15);
/// assert!(t_hot > t_cold);
/// ```
pub fn slab_steady_profile(z: f64, t: f64, k: f64, q_flux: f64, h: f64, t_amb: f64) -> f64 {
    assert!((0.0..=t).contains(&z), "depth must lie within the slab");
    // Linear conduction profile on top of the convective film drop.
    t_amb + q_flux / h + q_flux * (t - z) / k
}

/// First-order step response: temperature rise at time `t` of a lumped
/// capacitance `c` (J/K) heated by `p` watts through resistance `r` (K/W)
/// to ambient: `ΔT(t) = p·r·(1 − e^(−t/rc))`.
pub fn lumped_step_response(p: f64, r: f64, c: f64, t: f64) -> f64 {
    p * r * (1.0 - (-t / (r * c)).exp())
}

/// Exact step response of the paper's Fig 7(b) two-node ladder: heat `p`
/// into node 1 (capacitance `c1`), which couples through `r12` to node 2
/// (capacitance `c2`), which couples through `r2a` to ambient. Returns the
/// rise of node 1 at time `t`.
///
/// Solved by eigen-decomposition of the 2x2 system; used to verify the
/// transient solvers beyond single-RC accuracy.
pub fn two_node_step_response(p: f64, c1: f64, r12: f64, c2: f64, r2a: f64, t: f64) -> f64 {
    let g12 = 1.0 / r12;
    let g2a = 1.0 / r2a;
    // dT/dt = A·T + b with T as rises over ambient.
    let a11 = -g12 / c1;
    let a12 = g12 / c1;
    let a21 = g12 / c2;
    let a22 = -(g12 + g2a) / c2;
    let b1 = p / c1;
    // Steady state: A·T∞ = −b.
    let det = a11 * a22 - a12 * a21;
    let t1_inf = (-b1 * a22) / det;
    let t2_inf = (b1 * a21) / det;
    // Eigenvalues of A.
    let tr = a11 + a22;
    let disc = (tr * tr - 4.0 * det).sqrt();
    let l1 = (tr + disc) / 2.0;
    let l2 = (tr - disc) / 2.0;
    // x(t) = T − T∞ obeys x' = A x with x(0) = −T∞. Decompose x(0) on the
    // eigenvectors v_i = (a12, l_i − a11).
    let v1 = (a12, l1 - a11);
    let v2 = (a12, l2 - a11);
    // Solve alpha1·v1 + alpha2·v2 = (−t1_inf, −t2_inf).
    let det_v = v1.0 * v2.1 - v2.0 * v1.1;
    let alpha1 = (-t1_inf * v2.1 - (-t2_inf) * v2.0) / det_v;
    let alpha2 = (v1.0 * (-t2_inf) - v1.1 * (-t1_inf)) / det_v;
    t1_inf + alpha1 * v1.0 * (l1 * t).exp() + alpha2 * v2.0 * (l2 * t).exp()
}

/// Modified Bessel function of the second kind, order zero, `K₀(x)`.
///
/// Polynomial approximations of Abramowitz & Stegun §9.8 (9.8.5 for
/// `x ≤ 2`, 9.8.6 beyond), absolute error below `2e-7` — ample for the
/// few-percent discretization tolerances the analytic oracles use.
///
/// # Panics
///
/// Panics unless `x > 0` (K₀ diverges at the origin).
pub fn bessel_k0(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "K0 needs x > 0, got {x}");
    if x <= 2.0 {
        let t2 = (x / 2.0) * (x / 2.0);
        let poly = -0.577_215_66
            + t2 * (0.422_784_20
                + t2 * (0.230_697_56
                    + t2 * (0.034_885_90
                        + t2 * (0.002_626_98 + t2 * (0.000_107_50 + t2 * 0.000_007_40)))));
        -(x / 2.0).ln() * bessel_i0(x) + poly
    } else {
        let t = 2.0 / x;
        let poly = 1.253_314_14
            + t * (-0.078_323_58
                + t * (0.021_895_68
                    + t * (-0.010_624_46
                        + t * (0.005_878_72 + t * (-0.002_515_40 + t * 0.000_532_08)))));
        (-x).exp() / x.sqrt() * poly
    }
}

/// Modified Bessel function of the first kind, order zero (A&S 9.8.1; only
/// needed on `x ≤ 2` where the K₀ small-argument branch references it).
fn bessel_i0(x: f64) -> f64 {
    let t2 = (x / 3.75) * (x / 3.75);
    1.0 + t2
        * (3.515_622_9
            + t2 * (3.089_942_4
                + t2 * (1.206_749_2 + t2 * (0.265_973_2 + t2 * (0.036_076_8 + t2 * 0.004_581_3)))))
}

/// Steady temperature field of a point source on a laterally conducting,
/// convectively cooled die, by the method of images.
///
/// The thin-die limit of the compact model is the 2-D fin equation on the
/// die rectangle with adiabatic edges:
///
/// ```text
/// -k·t·∇²θ + h_eff·θ = P·δ(x−x₀, y−y₀),     θ = T − T_ambient
/// ```
///
/// whose free-space Green's function is `K₀(r/λ)/(2π·k·t)` with the healing
/// length `λ = √(k·t/h_eff)`. The adiabatic (mirror) boundary condition is
/// satisfied by summing image sources reflected across all four die edges —
/// the construction of the method-of-images fast thermal calculators in the
/// literature this repo's PAPERS.md survey cites. Images decay like
/// `e^{-d/λ}`, so a handful of reflections suffice on real die/λ ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointSourceSlab {
    /// Source power, W.
    pub p: f64,
    /// Sheet conductance `k·t` (die conductivity × thickness), W/K.
    pub k_sheet: f64,
    /// Effective heat-loss coefficient per die area, W/(m²·K).
    pub h_eff: f64,
    /// Die width (x extent), m.
    pub width: f64,
    /// Die height (y extent), m.
    pub height: f64,
    /// Source x position, m.
    pub x0: f64,
    /// Source y position, m.
    pub y0: f64,
}

impl PointSourceSlab {
    /// Temperature rise over ambient at `(x, y)`, summing image sources up
    /// to `images` reflections in each direction.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` coincides with the source (the continuum field is
    /// logarithmically singular there — compare away from the source cell).
    pub fn rise_at(&self, x: f64, y: f64, images: i32) -> f64 {
        let lambda = (self.k_sheet / self.h_eff).sqrt();
        let scale = self.p / (2.0 * std::f64::consts::PI * self.k_sheet);
        let mut rise = 0.0;
        for m in -images..=images {
            for n in -images..=images {
                // Reflections across x = 0 and x = width place copies at
                // ±x₀ + 2mW; same in y. All carry +P (adiabatic mirrors).
                for sx in [-1.0, 1.0] {
                    for sy in [-1.0, 1.0] {
                        let ix = sx * self.x0 + 2.0 * f64::from(m) * self.width;
                        let iy = sy * self.y0 + 2.0 * f64::from(n) * self.height;
                        let r = ((x - ix).powi(2) + (y - iy).powi(2)).sqrt();
                        assert!(r > 0.0, "field point coincides with an image source");
                        rise += scale * bessel_k0(r / lambda);
                    }
                }
            }
        }
        rise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{build_circuit, DieGeometry};
    use crate::package::{OilSiliconPackage, Package};
    use crate::solve::{solve_steady, BackwardEuler, Rk4Adaptive};
    use crate::sparse::TripletMatrix;
    use hotiron_floorplan::{library, GridMapping};

    #[test]
    fn lumped_step_limits() {
        assert_eq!(lumped_step_response(10.0, 2.0, 1.0, 0.0), 0.0);
        let t_inf = lumped_step_response(10.0, 2.0, 1.0, 1e6);
        assert!((t_inf - 20.0).abs() < 1e-9);
        // At one time constant: 63.2 % of the way.
        let at_tau = lumped_step_response(10.0, 2.0, 1.0, 2.0);
        assert!((at_tau / 20.0 - 0.6321).abs() < 1e-3);
    }

    #[test]
    fn two_node_limits_and_monotonicity() {
        let (p, c1, r12, c2, r2a) = (5.0, 0.35, 0.0125, 90.0, 1.0);
        assert!(two_node_step_response(p, c1, r12, c2, r2a, 0.0).abs() < 1e-9);
        let t_inf = two_node_step_response(p, c1, r12, c2, r2a, 1e5);
        assert!((t_inf - p * (r12 + r2a)).abs() < 1e-6, "{t_inf}");
        let mut last = 0.0;
        for i in 1..50 {
            let v = two_node_step_response(p, c1, r12, c2, r2a, i as f64 * 2.0);
            assert!(v >= last - 1e-9, "monotone rise");
            last = v;
        }
    }

    #[test]
    fn backward_euler_matches_two_node_analytic() {
        // Build the Fig 7(b) OIL circuit by hand and integrate it.
        let (p, c1, r12, c2, r2a) = (5.0, 0.35, 0.2, 0.1, 1.0);
        let mut tm = TripletMatrix::new(2);
        tm.stamp_conductance(0, 1, 1.0 / r12);
        tm.stamp_grounded_conductance(1, 1.0 / r2a);
        let g = tm.to_csr();
        // Emulate BE manually: (C/dt + G) x+ = C/dt x + b.
        let dt = 1e-3;
        let c_over_dt = vec![c1 / dt, c2 / dt];
        let a = g.add_diagonal(&c_over_dt);
        let mut x = vec![0.0, 0.0];
        let t_end = 0.5;
        let steps = (t_end / dt) as usize;
        for _ in 0..steps {
            let b = vec![p + c_over_dt[0] * x[0], c_over_dt[1] * x[1]];
            let stats = crate::sparse::conjugate_gradient(&a, &b, &mut x, 1e-12, 1000);
            assert!(stats.converged);
        }
        let exact = two_node_step_response(p, c1, r12, c2, r2a, t_end);
        assert!((x[0] - exact).abs() < 0.02 * exact, "BE {} vs analytic {exact}", x[0]);
    }

    #[test]
    fn circuit_uniform_power_matches_lumped_rc_warmup() {
        // A uniform die under uniform (non-local) oil behaves like the
        // paper's single-RC oil circuit: tau ≈ Rconv·(C_si + C_oil).
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, 8, 8);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        };
        let circuit = build_circuit(&map, die, &Package::OilSilicon(pkg)).unwrap();
        let p_total = 100.0;
        let p = vec![p_total / 64.0; 64];
        // The circuit is exactly a two-node ladder when power and h are
        // uniform: silicon --Rconv/2-- oil film --Rconv/2-- ambient.
        let r_half = 1.0 / circuit.total_ambient_conductance();
        let c_si = 0.35;
        let c_oil: f64 = circuit.capacitance()[64..].iter().sum();

        let be = BackwardEuler::new(&circuit, 0.002);
        let mut state = vec![318.15; circuit.node_count()];
        let probe_at = [0.2, 0.5, 1.0];
        let mut t_now = 0.0;
        for &t_probe in &probe_at {
            be.advance(&mut state, &p, 318.15, t_probe - t_now).unwrap();
            t_now = t_probe;
            let avg: f64 = circuit.silicon_slice(&state).iter().sum::<f64>() / 64.0 - 318.15;
            let exact = two_node_step_response(p_total, c_si, r_half, c_oil, r_half, t_probe);
            let rel = (avg - exact).abs() / exact;
            assert!(rel < 0.05, "t={t_probe}: circuit {avg} vs ladder {exact}");
        }
    }

    #[test]
    fn rk4_matches_analytic_single_rc() {
        // One silicon node + uniform oil: compare RK4 against the lumped
        // response over a short window.
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, 4, 4);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        };
        let circuit = build_circuit(&map, die, &Package::OilSilicon(pkg)).unwrap();
        let p = vec![100.0 / 16.0; 16];
        let rk = Rk4Adaptive::new(&circuit);
        let mut state = vec![318.15; circuit.node_count()];
        rk.advance(&mut state, &p, 318.15, 0.2).unwrap();
        let avg: f64 = circuit.silicon_slice(&state).iter().sum::<f64>() / 16.0 - 318.15;
        let r_half = 1.0 / circuit.total_ambient_conductance();
        let c_oil: f64 = circuit.capacitance()[16..].iter().sum();
        let exact = two_node_step_response(100.0, 0.35, r_half, c_oil, r_half, 0.2);
        assert!((avg - exact).abs() < 0.05 * exact, "RK4 {avg} vs ladder {exact}");
    }

    #[test]
    fn bessel_k0_matches_tables() {
        // Abramowitz & Stegun table 9.8 reference values.
        for (x, want) in [
            (0.1, 2.427_069_024_7),
            (0.5, 0.924_419_071_2),
            (1.0, 0.421_024_438_2),
            (2.0, 0.113_893_872_7),
            (5.0, 0.003_691_098_6),
        ] {
            let got = bessel_k0(x);
            assert!((got - want).abs() < 2e-6, "K0({x}) = {got}, want {want}");
        }
        // Continuity across the branch switch at x = 2.
        assert!((bessel_k0(2.0 - 1e-9) - bessel_k0(2.0 + 1e-9)).abs() < 1e-5);
    }

    #[test]
    fn point_source_field_conserves_power() {
        // ∫ h_eff·θ dA over the die must equal the injected power: every
        // watt leaves through the film. Midpoint quadrature, fine grid.
        let slab = PointSourceSlab {
            p: 10.0,
            k_sheet: 100.0 * 0.5e-3,
            h_eff: 1250.0,
            width: 0.016,
            height: 0.016,
            x0: 0.006,
            y0: 0.009,
        };
        let n = 256;
        let (dx, dy) = (slab.width / n as f64, slab.height / n as f64);
        let mut q = 0.0;
        for i in 0..n {
            for j in 0..n {
                let x = (i as f64 + 0.5) * dx;
                let y = (j as f64 + 0.5) * dy;
                q += slab.h_eff * slab.rise_at(x, y, 2) * dx * dy;
            }
        }
        assert!((q - slab.p).abs() < 0.02 * slab.p, "film heat {q} W vs source {} W", slab.p);
    }

    #[test]
    fn point_source_field_is_symmetric_and_decays() {
        let slab = PointSourceSlab {
            p: 5.0,
            k_sheet: 0.05,
            h_eff: 2500.0,
            width: 0.02,
            height: 0.02,
            x0: 0.01,
            y0: 0.01,
        };
        // Centered source: four-fold symmetry.
        let a = slab.rise_at(0.014, 0.01, 3);
        let b = slab.rise_at(0.006, 0.01, 3);
        let c = slab.rise_at(0.01, 0.014, 3);
        assert!((a - b).abs() < 1e-9 && (a - c).abs() < 1e-9, "{a} {b} {c}");
        // Monotone decay along a ray away from the source.
        let near = slab.rise_at(0.011, 0.01, 3);
        let far = slab.rise_at(0.018, 0.01, 3);
        assert!(near > far && far > 0.0, "near {near}, far {far}");
    }

    #[test]
    fn steady_slab_face_temperature() {
        // Uniform die + uniform oil: the hot-face temperature matches the
        // 1-D slab solution (lateral terms vanish by symmetry).
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, 8, 8);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        };
        let circuit = build_circuit(&map, die, &Package::OilSilicon(pkg)).unwrap();
        let p = vec![200.0 / 64.0; 64];
        let mut state = vec![318.15; circuit.node_count()];
        solve_steady(&circuit, &p, 318.15, &mut state).unwrap();
        let avg: f64 = circuit.silicon_slice(&state).iter().sum::<f64>() / 64.0;
        // h from the circuit's total conductance: G_total = 2·h·A.
        let h = circuit.total_ambient_conductance() / 2.0 / 4e-4;
        let q_flux = 200.0 / 4e-4;
        // The single-node-through-thickness model reads the slab's mean
        // (mid-depth-ish) temperature; compare to the analytic band.
        let t_face = 318.15 + q_flux / h;
        let t_back = t_face + q_flux * 0.5e-3 / 100.0;
        assert!(avg >= t_face - 0.5 && avg <= t_back + 0.5, "avg {avg} in [{t_face}, {t_back}]");
    }
}
