//! RC network assembly.
//!
//! Turns a floorplan + layer stack into a thermal circuit: a sparse
//! conductance matrix `G` (W/K), a per-node capacitance vector `C` (J/K) and
//! per-node conductances to the ambient Dirichlet node. The governing
//! equations are
//!
//! ```text
//! steady state:   G·T = P + G_amb·T_amb
//! transient:      C·dT/dt = P + G_amb·T_amb − G·T
//! ```
//!
//! with `T` in kelvin and `P` in watts.
//!
//! The assembler consumes only the open [`LayerStack`] IR
//! (`crate::stack`); the closed [`Package`] enum reaches it exclusively by
//! lowering through [`Package::to_stack`]. Invalid stacks surface as typed
//! [`StackError`]s instead of panics.
//!
//! # Discretization
//!
//! Every layer is a `rows x cols` grid at the die footprint. Package plates
//! larger than the die (spreader, heatsink, substrate, PCB) additionally get
//! one lumped **ring node** for the overhang, coupled laterally to the
//! layer's edge cells and vertically to the ring of the neighboring
//! oversized layer — the compact-model treatment HotSpot uses for the
//! spreader/sink periphery.
//!
//! Convection boundaries:
//!
//! * **Lumped convection** (AIR-SINK's `r_convec`/`c_convec`, or natural
//!   convection at a PCB): a single coolant node; the total resistance is
//!   split half between surface→coolant (apportioned by area) and
//!   coolant→ambient, so the coolant mass participates in transients.
//! * **Oil film** (OIL-SILICON): one oil node *per surface cell*, with the
//!   local heat-transfer coefficient `h(x)` of Eqn 8 and the boundary-layer
//!   capacitance of Eqn 3, again split half/half around the oil node. This
//!   per-cell structure is what makes the flow direction matter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::cholesky::LdlFactor;
use crate::convection::LaminarFlow;
use crate::greens;
use crate::multigrid::{MgOptions, Multigrid};
use crate::package::Package;
use crate::sparse::{CsrMatrix, TripletMatrix};
use crate::stack::{Boundary, Fnv, LayerStack, StackError};
use hotiron_floorplan::GridMapping;

pub use crate::stack::DieGeometry;

/// Role a node plays in the network (used for introspection and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Grid cell of conduction layer `layer`.
    Cell {
        /// Index into [`ThermalCircuit::layer_names`].
        layer: usize,
    },
    /// Peripheral ring of an oversized conduction layer.
    Ring {
        /// Index into [`ThermalCircuit::layer_names`].
        layer: usize,
    },
    /// Lumped coolant node of a convection boundary.
    Coolant,
    /// Per-cell (or per-ring) oil boundary-layer node.
    Oil,
}

/// The assembled RC network.
#[derive(Debug)]
pub struct ThermalCircuit {
    g: CsrMatrix,
    cap: Vec<f64>,
    ambient_g: Vec<f64>,
    kinds: Vec<NodeKind>,
    layer_names: Vec<String>,
    si_offset: usize,
    n_cells: usize,
    rows: usize,
    cols: usize,
    /// Lazily built geometric multigrid hierarchy for the steady solve.
    /// `None` inside the cell means "grid too small / structure unsuitable";
    /// building is serial and deterministic, so the cached hierarchy is
    /// identical regardless of which solve triggered it.
    mg: OnceLock<Option<Multigrid>>,
    /// Lazily built LDLᵀ factorization of `G` for direct steady solves.
    /// `None` inside the cell means factorization hit a non-positive pivot
    /// (operator not SPD). `G` never changes after assembly, so circuits
    /// shared through the [`CircuitCache`] amortize one factorization over
    /// every request that solves them directly.
    ldlt: OnceLock<Option<LdlFactor>>,
    /// Lazily resolved spectral backend for this circuit: the shared
    /// [`greens::ResponseCache`] entry when the circuit qualifies, or the
    /// [`greens::Ineligible`] reason when it does not. The `f64` is the
    /// response build time charged to the solve that triggered it (0.0 on a
    /// cache hit), mirroring `multigrid_with_setup`.
    spectral: OnceLock<Result<(Arc<greens::SpectralResponse>, f64), greens::Ineligible>>,
}

impl ThermalCircuit {
    /// The conductance matrix `G`, W/K.
    pub fn conductance(&self) -> &CsrMatrix {
        &self.g
    }

    /// Per-node heat capacities, J/K.
    pub fn capacitance(&self) -> &[f64] {
        &self.cap
    }

    /// Per-node conductance to the ambient Dirichlet node, W/K.
    pub fn ambient_conductance(&self) -> &[f64] {
        &self.ambient_g
    }

    /// Number of circuit nodes.
    pub fn node_count(&self) -> usize {
        self.g.dim()
    }

    /// Node roles, one per node.
    pub fn node_kinds(&self) -> &[NodeKind] {
        &self.kinds
    }

    /// Names of the conduction layers, bottom-to-top.
    pub fn layer_names(&self) -> &[String] {
        &self.layer_names
    }

    /// Index of the first silicon-layer cell node; silicon cells are
    /// contiguous: `si_offset() .. si_offset() + cell_count()`.
    pub fn si_offset(&self) -> usize {
        self.si_offset
    }

    /// Cells per layer.
    pub fn cell_count(&self) -> usize {
        self.n_cells
    }

    /// Grid rows per layer.
    pub fn grid_rows(&self) -> usize {
        self.rows
    }

    /// Grid columns per layer.
    pub fn grid_cols(&self) -> usize {
        self.cols
    }

    /// The geometric multigrid hierarchy for this circuit, built on first
    /// use and cached. Returns `None` when the grid is too small for a
    /// hierarchy to pay off (see [`MgOptions::coarsest_dim`]) or the network
    /// structure defeats coarsening.
    pub fn multigrid(&self) -> Option<&Multigrid> {
        self.multigrid_with_setup().map(|(mg, _)| mg)
    }

    /// Like [`multigrid`](Self::multigrid), additionally reporting the setup
    /// time in seconds — nonzero only for the call that actually built the
    /// hierarchy, so callers can charge it to their `SolveStats` exactly
    /// once.
    pub fn multigrid_with_setup(&self) -> Option<(&Multigrid, f64)> {
        let built_now = self.mg.get().is_none();
        let slot = self.mg.get_or_init(|| Multigrid::from_circuit(self, MgOptions::default()));
        slot.as_ref().map(|mg| (mg, if built_now { mg.setup_seconds() } else { 0.0 }))
    }

    /// The memoized LDLᵀ factorization of `G` for direct steady solves,
    /// plus the factorization time in seconds — nonzero only for the call
    /// that actually factored, so callers charge it to their [`SolveStats`]
    /// exactly once (mirroring [`multigrid_with_setup`]). `None` means the
    /// operator is not SPD (e.g. a floating node) and the caller should fall
    /// back to an iterative method.
    ///
    /// [`SolveStats`]: crate::sparse::SolveStats
    /// [`multigrid_with_setup`]: Self::multigrid_with_setup
    pub fn steady_factor_with_setup(&self) -> Option<(&LdlFactor, f64)> {
        let built_now = self.ldlt.get().is_none();
        let slot = self.ldlt.get_or_init(|| LdlFactor::factor(&self.g).ok());
        slot.as_ref().map(|f| (f, if built_now { f.factor_seconds() } else { 0.0 }))
    }

    /// The spectral (Green's-function) backend for this circuit, when it
    /// qualifies. The response is fetched from the process-wide
    /// [`greens::ResponseCache`] on first use and pinned here, so repeated
    /// solves of a shared circuit skip even the cache lookup.
    ///
    /// # Errors
    ///
    /// [`greens::Ineligible`] explaining why this circuit cannot use the
    /// spectral path (also memoized — the qualification walk runs once).
    pub fn spectral(&self) -> Result<&Arc<greens::SpectralResponse>, &greens::Ineligible> {
        self.spectral_with_setup().map(|(resp, _)| resp)
    }

    /// Like [`spectral`](Self::spectral), additionally reporting the
    /// response build time in seconds — nonzero only when this call caused
    /// the response to be precomputed (a [`greens::ResponseCache`] miss), so
    /// callers charge it to their `SolveStats` exactly once.
    pub fn spectral_with_setup(
        &self,
    ) -> Result<(&Arc<greens::SpectralResponse>, f64), &greens::Ineligible> {
        let built_now = self.spectral.get().is_none();
        let slot = self.spectral.get_or_init(|| {
            let params = greens::SpectralParams::from_circuit(self)?;
            let (resp, hit) = greens::ResponseCache::process().get_or_build(params);
            let setup = if hit { 0.0 } else { resp.build_seconds() };
            Ok((resp, setup))
        });
        match slot {
            Ok((resp, setup)) => Ok((resp, if built_now { *setup } else { 0.0 })),
            Err(e) => Err(e),
        }
    }

    /// Builds the full right-hand side `P + G_amb·T_amb` from per-cell
    /// silicon power (W) and the ambient temperature (K).
    ///
    /// # Panics
    ///
    /// Panics if `si_cell_power.len()` differs from the cell count.
    pub fn rhs(&self, si_cell_power: &[f64], ambient: f64) -> Vec<f64> {
        let mut b = Vec::new();
        self.rhs_into(si_cell_power, ambient, &mut b);
        b
    }

    /// [`rhs`](Self::rhs) into a caller-provided buffer (cleared and resized
    /// as needed) — for per-step hot loops that assemble the same-shape
    /// right-hand side thousands of times.
    ///
    /// # Panics
    ///
    /// Panics if `si_cell_power` does not have one entry per silicon cell.
    pub fn rhs_into(&self, si_cell_power: &[f64], ambient: f64, b: &mut Vec<f64>) {
        assert_eq!(si_cell_power.len(), self.n_cells, "one power entry per silicon cell");
        b.clear();
        b.extend(self.ambient_g.iter().map(|g| g * ambient));
        for (i, p) in si_cell_power.iter().enumerate() {
            b[self.si_offset + i] += p;
        }
    }

    /// Sum of all node-to-ambient conductances, W/K (the reciprocal of the
    /// total chip-to-ambient resistance when the whole network is
    /// isothermal).
    pub fn total_ambient_conductance(&self) -> f64 {
        self.ambient_g.iter().sum()
    }

    /// Extracts the silicon-layer temperatures from a full state vector.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the node count.
    pub fn silicon_slice<'a>(&self, state: &'a [f64]) -> &'a [f64] {
        assert_eq!(state.len(), self.node_count());
        &state[self.si_offset..self.si_offset + self.n_cells]
    }
}

/// Builds the RC network for a die (described by its grid mapping and
/// geometry) inside a package, by lowering the package through
/// [`Package::to_stack`] and assembling the resulting stack.
///
/// # Errors
///
/// Any [`StackError`] from lowering or validation (e.g.
/// `PcbCooling::Oil` on an AIR-SINK package, or an oversized plate smaller
/// than the die), naming the offending layer or boundary.
pub fn build_circuit(
    mapping: &GridMapping,
    die: DieGeometry,
    package: &Package,
) -> Result<ThermalCircuit, StackError> {
    let stack = package.to_stack(die)?;
    build_circuit_from_stack(mapping, die, &stack)
}

/// Builds the RC network directly from a [`LayerStack`].
///
/// # Errors
///
/// Any [`StackError`] from [`LayerStack::validate`].
pub fn build_circuit_from_stack(
    mapping: &GridMapping,
    die: DieGeometry,
    stack: &LayerStack,
) -> Result<ThermalCircuit, StackError> {
    stack.validate(die)?;
    Ok(assemble(mapping, die, stack))
}

/// Cache key: everything [`assemble`] reads. The grid mapping contributes
/// only its resolution and cell geometry, both derived from `die` and
/// `rows`/`cols`, so two floorplans over the same die share circuits.
fn circuit_cache_key(die: DieGeometry, rows: usize, cols: usize, stack: &LayerStack) -> u64 {
    let mut h = Fnv::new();
    h.f64(die.width);
    h.f64(die.height);
    h.f64(die.thickness);
    h.usize(rows);
    h.usize(cols);
    h.u64(stack.content_hash());
    h.finish()
}

/// Point-in-time view of a [`CircuitCache`]'s counters and occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to assemble a circuit.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Circuits currently held.
    pub len: usize,
    /// Maximum circuits held at once.
    pub capacity: usize,
}

struct LruEntry {
    circuit: Arc<ThermalCircuit>,
    /// Monotone access stamp; the entry with the smallest stamp is the
    /// least recently used and the next to be evicted.
    last_used: u64,
}

struct LruState {
    map: HashMap<u64, LruEntry>,
    tick: u64,
}

/// A bounded LRU cache of assembled circuits, keyed by stack content hash +
/// die geometry + grid resolution.
///
/// The cache holds strong [`Arc`]s, so at most `capacity` circuits (plus
/// whatever callers still reference) are alive at once; inserting into a
/// full cache evicts the least recently used entry. All operations are
/// `Send + Sync` — a server can own one instance per process, per tenant, or
/// per worker group, with no ambient global state. The process-wide default
/// used by [`build_circuit_cached`] is just one instance
/// ([`CircuitCache::process`]).
///
/// Assembly is deterministic, so a cache hit is observationally identical to
/// a rebuild; hit/miss/eviction counts are exposed for telemetry
/// ([`CircuitCache::counters`]).
pub struct CircuitCache {
    inner: Mutex<LruState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for CircuitCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("CircuitCache")
            .field("capacity", &c.capacity)
            .field("len", &c.len)
            .field("hits", &c.hits)
            .field("misses", &c.misses)
            .field("evictions", &c.evictions)
            .finish()
    }
}

/// Capacity of the process-wide default cache. Generous enough that every
/// distinct stack of a full experiment sweep stays resident; servers that
/// need a tighter bound construct their own [`CircuitCache`].
const PROCESS_CACHE_CAPACITY: usize = 64;

impl CircuitCache {
    /// Creates a cache bounded to `capacity` circuits (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LruState { map: HashMap::new(), tick: 0 }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide default instance backing [`build_circuit_cached`].
    pub fn process() -> &'static CircuitCache {
        static PROCESS: OnceLock<CircuitCache> = OnceLock::new();
        PROCESS.get_or_init(|| CircuitCache::new(PROCESS_CACHE_CAPACITY))
    }

    /// Returns the cached circuit for (stack, die, grid), assembling and
    /// inserting it on a miss. The boolean reports the disposition: `true`
    /// for a cache hit, `false` when this call assembled the circuit.
    ///
    /// Assembly runs outside the cache lock so concurrent builds of
    /// *different* circuits don't serialize; a lost race on the same key
    /// builds one bit-identical circuit twice, keeps the first inserted and
    /// reports a hit.
    ///
    /// # Errors
    ///
    /// Any [`StackError`] from [`LayerStack::validate`].
    pub fn get_or_build(
        &self,
        mapping: &GridMapping,
        die: DieGeometry,
        stack: &LayerStack,
    ) -> Result<(Arc<ThermalCircuit>, bool), StackError> {
        stack.validate(die)?;
        let key = circuit_cache_key(die, mapping.rows(), mapping.cols(), stack);
        if let Some(hit) = self.touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit, true));
        }
        let built = Arc::new(assemble(mapping, die, stack));
        let mut state = self.inner.lock().expect("circuit cache poisoned");
        let stamp = state.tick;
        if let Some(entry) = state.map.get_mut(&key) {
            // Lost the assembly race; the earlier insert wins.
            entry.last_used = stamp;
            let existing = entry.circuit.clone();
            state.tick += 1;
            drop(state);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((existing, true));
        }
        if state.map.len() >= self.capacity {
            let lru = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map at capacity");
            state.map.remove(&lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let stamp = state.tick;
        state.tick += 1;
        state.map.insert(key, LruEntry { circuit: built.clone(), last_used: stamp });
        drop(state);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((built, false))
    }

    /// Looks up `key`, refreshing its LRU stamp on a hit.
    fn touch(&self, key: u64) -> Option<Arc<ThermalCircuit>> {
        let mut state = self.inner.lock().expect("circuit cache poisoned");
        let tick = state.tick;
        let entry = state.map.get_mut(&key)?;
        entry.last_used = tick;
        let circuit = entry.circuit.clone();
        state.tick += 1;
        Some(circuit)
    }

    /// A snapshot of the hit/miss/eviction counters and current occupancy.
    pub fn counters(&self) -> CacheCounters {
        let len = self.inner.lock().expect("circuit cache poisoned").map.len();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
        }
    }

    /// Number of circuits currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("circuit cache poisoned").map.len()
    }

    /// Whether the cache currently holds no circuits.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of circuits held at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every cached circuit (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().expect("circuit cache poisoned").map.clear();
    }
}

/// Like [`build_circuit_from_stack`], but returns a shared handle from the
/// process-wide [`CircuitCache`] when an identical (stack, die, grid)
/// circuit is cached. Repeated solves over the same stack across experiments
/// then reuse one circuit — including its lazily built multigrid hierarchy —
/// instead of re-assembling it.
///
/// # Errors
///
/// Any [`StackError`] from [`LayerStack::validate`].
pub fn build_circuit_cached(
    mapping: &GridMapping,
    die: DieGeometry,
    stack: &LayerStack,
) -> Result<Arc<ThermalCircuit>, StackError> {
    CircuitCache::process().get_or_build(mapping, die, stack).map(|(c, _)| c)
}

/// Assembles a validated stack. Callers must run [`LayerStack::validate`]
/// first; this function assumes a well-formed stack.
fn assemble(mapping: &GridMapping, die: DieGeometry, stack: &LayerStack) -> ThermalCircuit {
    let layers = &stack.layers;
    let si_index = stack.si_index;
    let (rows, cols) = (mapping.rows(), mapping.cols());
    let n_cells = rows * cols;
    let (dx, dy) = (mapping.cell_width(), mapping.cell_height());
    let cell_area = dx * dy;
    let die_area = die.width * die.height;
    let nl = layers.len();

    // ---- node numbering ----
    // cells: layer l, cell c -> l*n_cells + c
    // rings: after all cells, in layer order
    // boundary nodes: appended by the attachment stampers
    let mut ring_of = vec![None; nl];
    let mut next = nl * n_cells;
    for (l, def) in layers.iter().enumerate() {
        if let Some(side) = def.side {
            debug_assert!(
                side >= die.width.max(die.height),
                "validate() admits no plate smaller than the die (`{}`)",
                def.name
            );
            ring_of[l] = Some(next);
            next += 1;
        }
    }
    // Upper bound on node count: cells + rings + lumped (2) + oil nodes
    // (cells + ring, twice). Exact count computed as we stamp.
    let mut kinds = vec![NodeKind::Cell { layer: 0 }; next];
    for (l, _) in layers.iter().enumerate() {
        for c in 0..n_cells {
            kinds[l * n_cells + c] = NodeKind::Cell { layer: l };
        }
        if let Some(r) = ring_of[l] {
            kinds[r] = NodeKind::Ring { layer: l };
        }
    }

    let mut extra_caps: Vec<(usize, f64)> = Vec::new();
    let mut stamps: Vec<(usize, usize, f64)> = Vec::new(); // node-node conductances
    let mut grounded: Vec<(usize, f64)> = Vec::new(); // node-ambient conductances

    // ---- in-plane conduction ----
    for (l, def) in layers.iter().enumerate() {
        let gx = def.material.conductivity() * dy * def.thickness / dx;
        let gy = def.material.conductivity() * dx * def.thickness / dy;
        for r in 0..rows {
            for c in 0..cols {
                let n = l * n_cells + r * cols + c;
                if c + 1 < cols {
                    stamps.push((n, n + 1, gx));
                }
                if r + 1 < rows {
                    stamps.push((n, n + cols, gy));
                }
            }
        }
        // Edge cells to ring.
        if let Some(ring) = ring_of[l] {
            let side = def.side.expect("ring implies oversized");
            let k_t = def.material.conductivity() * def.thickness;
            let overhang_x = (side - die.width) / 2.0;
            let overhang_y = (side - die.height) / 2.0;
            for r in 0..rows {
                for &c in &[0, cols - 1] {
                    let n = l * n_cells + r * cols + c;
                    let g = k_t * dy / (dx / 2.0 + (overhang_x / 2.0).max(dx / 2.0));
                    stamps.push((n, ring, g));
                }
            }
            for c in 0..cols {
                for &r in &[0, rows - 1] {
                    let n = l * n_cells + r * cols + c;
                    let g = k_t * dx / (dy / 2.0 + (overhang_y / 2.0).max(dy / 2.0));
                    stamps.push((n, ring, g));
                }
            }
        }
    }

    // ---- vertical conduction between adjacent layers ----
    for l in 0..nl.saturating_sub(1) {
        let (a, b) = (&layers[l], &layers[l + 1]);
        let r_pair = a.thickness / (2.0 * a.material.conductivity() * cell_area)
            + b.thickness / (2.0 * b.material.conductivity() * cell_area);
        let g = 1.0 / r_pair;
        for c in 0..n_cells {
            stamps.push((l * n_cells + c, (l + 1) * n_cells + c, g));
        }
        // Ring-to-ring where both layers are oversized.
        if let (Some(ra), Some(rb)) = (ring_of[l], ring_of[l + 1]) {
            let common = a.side.expect("ring").min(b.side.expect("ring"));
            let annulus = (common * common - die_area).max(0.0);
            if annulus > 0.0 {
                let r_pair = a.thickness / (2.0 * a.material.conductivity() * annulus)
                    + b.thickness / (2.0 * b.material.conductivity() * annulus);
                stamps.push((ra, rb, 1.0 / r_pair));
            }
        }
    }

    // ---- capacitances ----
    let mut cap = vec![0.0; next];
    for (l, def) in layers.iter().enumerate() {
        let c_cell = def.material.volumetric_heat_capacity() * cell_area * def.thickness;
        for c in 0..n_cells {
            cap[l * n_cells + c] = c_cell;
        }
        if let Some(ring) = ring_of[l] {
            let side = def.side.expect("ring implies oversized");
            let vol = (side * side - die_area).max(0.0) * def.thickness;
            cap[ring] = def.material.volumetric_heat_capacity() * vol;
        }
    }

    // ---- boundary attachments ----
    let mut next_node = next;
    let stamp_boundary = |att: &Boundary,
                          layer: usize,
                          stamps: &mut Vec<(usize, usize, f64)>,
                          grounded: &mut Vec<(usize, f64)>,
                          extra_caps: &mut Vec<(usize, f64)>,
                          kinds: &mut Vec<NodeKind>,
                          next_node: &mut usize| {
        match att {
            Boundary::Insulated => {}
            Boundary::Lumped { r_total, c_total } => {
                debug_assert!(*r_total > 0.0, "validate() admits only positive lumped resistance");
                let def = &layers[layer];
                let plate_area = def.side.map_or(die_area, |s| s * s);
                let coolant = *next_node;
                *next_node += 1;
                kinds.push(NodeKind::Coolant);
                // Coolant node must have some mass to avoid a singular C.
                extra_caps.push((coolant, c_total.max(1e-9)));
                let g_half_total = 2.0 / r_total;
                for c in 0..n_cells {
                    let g = g_half_total * (cell_area / plate_area);
                    stamps.push((layer * n_cells + c, coolant, g));
                }
                if let Some(ring) = ring_of[layer] {
                    let ring_area = plate_area - die_area;
                    stamps.push((ring, coolant, g_half_total * (ring_area / plate_area)));
                }
                grounded.push((coolant, g_half_total));
            }
            Boundary::OilFilm(spec) => {
                let def = &layers[layer];
                let (plate_w, plate_h) = match def.side {
                    Some(s) => (s, s),
                    None => (die.width, die.height),
                };
                let length = spec.direction.flow_length(plate_w, plate_h);
                let flow = LaminarFlow::new(spec.fluid, spec.velocity, length);
                // Die grid centered on the plate.
                let (off_x, off_y) = ((plate_w - die.width) / 2.0, (plate_h - die.height) / 2.0);
                let delta_overall = flow.boundary_layer_thickness();
                for r in 0..rows {
                    for cidx in 0..cols {
                        let (cx, cy) = mapping.cell_center(r, cidx);
                        let x_flow = spec
                            .direction
                            .distance_from_leading_edge(cx + off_x, cy + off_y, plate_w, plate_h)
                            .max(dx.min(dy) / 4.0);
                        let h = if spec.local_h { flow.local_h(x_flow) } else { flow.average_h() };
                        let delta = if spec.local_boundary_layer {
                            flow.local_boundary_layer_thickness(x_flow)
                        } else {
                            delta_overall
                        };
                        let oil = *next_node;
                        *next_node += 1;
                        kinds.push(NodeKind::Oil);
                        let c_oil = spec.fluid.volumetric_heat_capacity() * cell_area * delta;
                        extra_caps.push((oil, c_oil.max(1e-12)));
                        let g = 2.0 * h * cell_area;
                        stamps.push((layer * n_cells + r * cols + cidx, oil, g));
                        grounded.push((oil, g));
                    }
                }
                if let Some(ring) = ring_of[layer] {
                    let ring_area = plate_w * plate_h - die_area;
                    let h = flow.average_h();
                    let oil = *next_node;
                    *next_node += 1;
                    kinds.push(NodeKind::Oil);
                    let c_oil = spec.fluid.volumetric_heat_capacity() * ring_area * delta_overall;
                    extra_caps.push((oil, c_oil.max(1e-12)));
                    let g = 2.0 * h * ring_area;
                    stamps.push((ring, oil, g));
                    grounded.push((oil, g));
                }
            }
        }
    };

    stamp_boundary(
        &stack.top,
        nl - 1,
        &mut stamps,
        &mut grounded,
        &mut extra_caps,
        &mut kinds,
        &mut next_node,
    );
    stamp_boundary(
        &stack.bottom,
        0,
        &mut stamps,
        &mut grounded,
        &mut extra_caps,
        &mut kinds,
        &mut next_node,
    );

    // ---- final matrices ----
    let n = next_node;
    cap.resize(n, 0.0);
    for (node, c) in extra_caps {
        cap[node] += c;
    }
    let mut ambient_g = vec![0.0; n];
    let mut t = TripletMatrix::new(n);
    for (a, b, g) in stamps {
        t.stamp_conductance(a, b, g);
    }
    for (node, g) in grounded {
        t.stamp_grounded_conductance(node, g);
        ambient_g[node] += g;
    }
    let g = t.to_csr();
    debug_assert!(g.is_symmetric(1e-9), "conductance matrix must be symmetric");

    let layer_names = layers.iter().map(|l| l.name.clone()).collect();
    ThermalCircuit {
        g,
        cap,
        ambient_g,
        kinds,
        layer_names,
        si_offset: si_index * n_cells,
        n_cells,
        rows,
        cols,
        mg: OnceLock::new(),
        ldlt: OnceLock::new(),
        spectral: OnceLock::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{AirSinkPackage, OilSiliconPackage, Package, SecondaryPath};
    use crate::stack::{Layer, OilFilm};
    use hotiron_floorplan::library;

    fn die20() -> DieGeometry {
        DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 }
    }

    fn mapping(rows: usize, cols: usize) -> GridMapping {
        GridMapping::new(&library::uniform_die(0.02, 0.02), rows, cols)
    }

    #[test]
    fn oil_circuit_structure() {
        let m = mapping(8, 8);
        let c =
            build_circuit(&m, die20(), &Package::OilSilicon(OilSiliconPackage::paper_default()))
                .unwrap();
        // 1 silicon layer (64 cells) + 64 oil nodes.
        assert_eq!(c.node_count(), 128);
        assert_eq!(c.si_offset(), 0);
        assert_eq!(c.layer_names(), &["silicon"]);
        assert!(c.conductance().is_symmetric(1e-9));
        // Every oil node reaches ambient.
        let oil_grounded = c
            .node_kinds()
            .iter()
            .zip(c.ambient_conductance())
            .filter(|(k, g)| **k == NodeKind::Oil && **g > 0.0)
            .count();
        assert_eq!(oil_grounded, 64);
    }

    #[test]
    fn oil_total_conductance_matches_eqn1() {
        // With uniform (non-local) h the parallel combination of the per-cell
        // half-split pairs equals h·A = 1/Rconv exactly.
        let m = mapping(16, 16);
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        };
        let c = build_circuit(&m, die20(), &Package::OilSilicon(pkg)).unwrap();
        let flow = LaminarFlow::new(crate::fluid::MINERAL_OIL, 10.0, 0.02);
        let expected = 1.0 / flow.overall_resistance(4e-4);
        // Ambient side of every oil pair sums to 2·h·A; the series pair from
        // silicon to ambient per cell is h·A_cell, so the isothermal total is
        // h·A. Check via total ambient conductance = 2hA.
        let total = c.total_ambient_conductance();
        assert!((total - 2.0 * expected).abs() / (2.0 * expected) < 1e-9, "{total} vs {expected}");
    }

    #[test]
    fn local_h_makes_leading_edge_cells_better_cooled() {
        let m = mapping(8, 8);
        let c =
            build_circuit(&m, die20(), &Package::OilSilicon(OilSiliconPackage::paper_default()))
                .unwrap();
        // Oil nodes are appended after the silicon cells in row-major order;
        // the first row's first (left) cell is upstream for LeftToRight.
        let oil_start = 64;
        let g_left = c.ambient_conductance()[oil_start];
        let g_right = c.ambient_conductance()[oil_start + 7];
        assert!(g_left > g_right, "leading edge must couple more strongly: {g_left} vs {g_right}");
    }

    #[test]
    fn air_circuit_structure() {
        let m = mapping(8, 8);
        let pkg = Package::AirSink(AirSinkPackage::paper_default());
        let c = build_circuit(&m, die20(), &pkg).unwrap();
        // Layers: silicon, interface, spreader, sink = 4x64 cells,
        // + 2 rings + 1 coolant.
        assert_eq!(c.node_count(), 4 * 64 + 2 + 1);
        assert_eq!(c.layer_names(), &["silicon", "interface", "spreader", "sink"]);
        assert_eq!(c.si_offset(), 0);
        // Exactly one grounded node: the coolant.
        let grounded: Vec<_> =
            c.ambient_conductance().iter().enumerate().filter(|(_, g)| **g > 0.0).collect();
        assert_eq!(grounded.len(), 1);
        assert_eq!(c.node_kinds()[grounded[0].0], NodeKind::Coolant);
        // Half-split: coolant-to-ambient conductance = 2 / r_convec.
        assert!((grounded[0].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn air_with_secondary_has_nine_layers() {
        let pkg = Package::AirSink(
            AirSinkPackage::paper_default().with_secondary(SecondaryPath::for_air_system()),
        );
        let m = mapping(4, 4);
        let c = build_circuit(&m, die20(), &pkg).unwrap();
        assert_eq!(
            c.layer_names(),
            &[
                "pcb",
                "solder",
                "substrate",
                "c4",
                "interconnect",
                "silicon",
                "interface",
                "spreader",
                "sink"
            ]
        );
        // Silicon is layer index 5.
        assert_eq!(c.si_offset(), 5 * 16);
        // Two coolant nodes now: sink air + PCB natural convection.
        let coolant_count = c.node_kinds().iter().filter(|k| **k == NodeKind::Coolant).count();
        assert_eq!(coolant_count, 2);
    }

    #[test]
    fn oil_with_secondary_has_pcb_oil_film() {
        let pkg = Package::OilSilicon(
            OilSiliconPackage::paper_default().with_secondary(SecondaryPath::for_oil_rig()),
        );
        let m = mapping(4, 4);
        let c = build_circuit(&m, die20(), &pkg).unwrap();
        assert_eq!(
            c.layer_names(),
            &["pcb", "solder", "substrate", "c4", "interconnect", "silicon"]
        );
        // Oil nodes: 16 over the die + 16 + 1 ring oil under the PCB.
        let oil_count = c.node_kinds().iter().filter(|k| **k == NodeKind::Oil).count();
        assert_eq!(oil_count, 16 + 16 + 1);
    }

    #[test]
    fn rhs_injects_power_and_ambient() {
        let m = mapping(4, 4);
        let c =
            build_circuit(&m, die20(), &Package::OilSilicon(OilSiliconPackage::paper_default()))
                .unwrap();
        let mut p = vec![0.0; 16];
        p[5] = 2.5;
        let b = c.rhs(&p, 318.15);
        assert!((b[c.si_offset() + 5] - 2.5).abs() < 1e-12);
        // Oil nodes carry the ambient injection.
        let total_amb: f64 = c.ambient_conductance().iter().sum();
        let b_sum: f64 = b.iter().sum();
        assert!((b_sum - (2.5 + total_amb * 318.15)).abs() < 1e-6);
    }

    #[test]
    fn target_rconv_rescales_velocity() {
        let m = mapping(8, 8);
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        }
        .with_target_r_convec(0.3);
        let c = build_circuit(&m, die20(), &Package::OilSilicon(pkg)).unwrap();
        // Total ambient conductance should be 2 / 0.3.
        let total = c.total_ambient_conductance();
        assert!((total - 2.0 / 0.3).abs() / (2.0 / 0.3) < 1e-6, "total {total}");
    }

    #[test]
    fn capacitances_positive() {
        let m = mapping(4, 4);
        for pkg in [
            Package::OilSilicon(
                OilSiliconPackage::paper_default().with_secondary(SecondaryPath::for_oil_rig()),
            ),
            Package::AirSink(
                AirSinkPackage::paper_default().with_secondary(SecondaryPath::for_air_system()),
            ),
        ] {
            let c = build_circuit(&m, die20(), &pkg).unwrap();
            for (i, cv) in c.capacitance().iter().enumerate() {
                assert!(*cv > 0.0, "node {i} of {} has cap {cv}", pkg.label());
            }
        }
    }

    #[test]
    fn silicon_capacitance_matches_hand_calculation() {
        let m = mapping(8, 8);
        let c =
            build_circuit(&m, die20(), &Package::OilSilicon(OilSiliconPackage::paper_default()))
                .unwrap();
        let si_total: f64 = c.capacitance()[..64].iter().sum();
        // 1.75e6 J/m³K x 4e-4 m² x 0.5e-3 m = 0.35 J/K.
        assert!((si_total - 0.35).abs() < 1e-9, "{si_total}");
    }

    #[test]
    fn oil_pcb_cooling_needs_oil_package() {
        let m = mapping(2, 2);
        let pkg = Package::AirSink(
            AirSinkPackage::paper_default().with_secondary(SecondaryPath::for_oil_rig()),
        );
        let err = build_circuit(&m, die20(), &pkg).unwrap_err();
        assert!(matches!(err, StackError::IncompatibleCooling { .. }));
        assert!(err.to_string().contains("OilSilicon"), "{err}");
    }

    #[test]
    fn undersized_plate_is_a_typed_error() {
        let m = mapping(2, 2);
        let mut pkg = AirSinkPackage::paper_default();
        pkg.spreader.side = 0.01; // smaller than the 20 mm die
        let err = build_circuit(&m, die20(), &Package::AirSink(pkg)).unwrap_err();
        match &err {
            StackError::PlateSmallerThanDie { layer, .. } => assert_eq!(layer, "spreader"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn stack_route_matches_package_route() {
        // build_circuit is exactly to_stack + build_circuit_from_stack.
        let m = mapping(8, 8);
        for pkg in [
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            Package::AirSink(AirSinkPackage::paper_default()),
        ] {
            let direct = build_circuit(&m, die20(), &pkg).unwrap();
            let stack = pkg.to_stack(die20()).unwrap();
            let via_stack = build_circuit_from_stack(&m, die20(), &stack).unwrap();
            assert_eq!(direct.node_count(), via_stack.node_count());
            assert_eq!(direct.layer_names(), via_stack.layer_names());
            assert_eq!(direct.capacitance(), via_stack.capacitance());
            assert_eq!(direct.ambient_conductance(), via_stack.ambient_conductance());
        }
    }

    #[test]
    fn bare_die_lumped_stack_assembles() {
        // A configuration the closed Package enum cannot express: bare die
        // cooled by a lumped (forced-air) path, no spreader or sink.
        let m = mapping(8, 8);
        let stack =
            LayerStack::new(vec![Layer::new("silicon", crate::materials::SILICON, 0.5e-3)], 0)
                .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 });
        let c = build_circuit_from_stack(&m, die20(), &stack).unwrap();
        assert_eq!(c.layer_names(), &["silicon"]);
        assert_eq!(c.node_count(), 64 + 1);
        let coolant = c.node_kinds().iter().position(|k| *k == NodeKind::Coolant).unwrap();
        assert!((c.ambient_conductance()[coolant] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oil_washed_spreader_stack_assembles() {
        // Oil washing the spreader top — also inexpressible under the enum.
        let m = mapping(8, 8);
        let air = AirSinkPackage::paper_default();
        let stack = LayerStack::new(
            vec![
                Layer::new("silicon", crate::materials::SILICON, 0.5e-3),
                Layer::new("interface", air.interface_material, air.interface_thickness),
                Layer::plate("spreader", air.spreader.material, air.spreader.thickness, 0.03),
            ],
            0,
        )
        .with_top(Boundary::OilFilm(OilFilm {
            fluid: crate::fluid::MINERAL_OIL,
            velocity: 10.0,
            direction: crate::convection::FlowDirection::LeftToRight,
            local_h: true,
            local_boundary_layer: true,
        }));
        let c = build_circuit_from_stack(&m, die20(), &stack).unwrap();
        assert_eq!(c.layer_names(), &["silicon", "interface", "spreader"]);
        // 3 layers x 64 cells + 1 spreader ring + 64 cell oil + 1 ring oil.
        assert_eq!(c.node_count(), 3 * 64 + 1 + 64 + 1);
        assert!(c.conductance().is_symmetric(1e-9));
    }

    /// A family of physically distinct stacks (varying die thickness) for
    /// exercising the LRU bound with cheap 2×2 assemblies.
    fn stack_nr(i: usize) -> LayerStack {
        LayerStack::new(
            vec![Layer::new("silicon", crate::materials::SILICON, 0.1e-3 * (i + 1) as f64)],
            0,
        )
        .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 })
    }

    #[test]
    fn lru_cache_respects_capacity_and_counts_evictions() {
        let m = mapping(2, 2);
        let cache = CircuitCache::new(3);
        for i in 0..5 {
            let (_, hit) = cache.get_or_build(&m, die20(), &stack_nr(i)).unwrap();
            assert!(!hit, "stack {i} is new");
        }
        let c = cache.counters();
        assert_eq!(c.len, 3, "capacity bounds occupancy");
        assert_eq!(c.capacity, 3);
        assert_eq!(c.misses, 5);
        assert_eq!(c.evictions, 2, "two inserts displaced the LRU entry");
        assert_eq!(c.hits, 0);
    }

    #[test]
    fn lru_cache_evicts_least_recently_used() {
        let m = mapping(2, 2);
        let cache = CircuitCache::new(2);
        let (a0, _) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        cache.get_or_build(&m, die20(), &stack_nr(1)).unwrap();
        // Touch 0 so 1 becomes the LRU entry, then insert 2.
        let (a0_again, hit) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a0, &a0_again));
        cache.get_or_build(&m, die20(), &stack_nr(2)).unwrap();
        // 0 survived (recently used), 1 was evicted.
        let (_, hit0) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        assert!(hit0, "recently used entry survives eviction");
        let (_, hit1) = cache.get_or_build(&m, die20(), &stack_nr(1)).unwrap();
        assert!(!hit1, "LRU entry was evicted and must rebuild");
        let c = cache.counters();
        assert_eq!(c.hits, 2);
        assert_eq!(c.evictions, 2);
    }

    #[test]
    fn lru_cache_hit_returns_shared_arc_and_clear_preserves_counters() {
        let m = mapping(4, 4);
        let cache = CircuitCache::new(4);
        let (a, first_hit) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        assert!(!first_hit);
        let (b, hit) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b));
        cache.clear();
        assert!(cache.is_empty());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1), "clear drops circuits, not telemetry");
    }

    #[test]
    fn cached_builds_share_one_circuit() {
        let m = mapping(8, 8);
        let stack =
            Package::OilSilicon(OilSiliconPackage::paper_default()).to_stack(die20()).unwrap();
        let a = build_circuit_cached(&m, die20(), &stack).unwrap();
        let b = build_circuit_cached(&m, die20(), &stack).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "identical stacks must share one circuit");
        // A physically different stack gets its own circuit.
        let other = Package::OilSilicon(
            OilSiliconPackage::paper_default()
                .with_direction(crate::convection::FlowDirection::TopToBottom),
        )
        .to_stack(die20())
        .unwrap();
        let c = build_circuit_cached(&m, die20(), &other).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // Same stack at a different grid too.
        let m2 = mapping(4, 4);
        let d = build_circuit_cached(&m2, die20(), &stack).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
    }
}
