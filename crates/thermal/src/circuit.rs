//! RC network assembly.
//!
//! Turns a floorplan + layer stack into a thermal circuit: a sparse
//! conductance matrix `G` (W/K), a per-node capacitance vector `C` (J/K) and
//! per-node conductances to the ambient Dirichlet node. The governing
//! equations are
//!
//! ```text
//! steady state:   G·T = P + G_amb·T_amb
//! transient:      C·dT/dt = P + G_amb·T_amb − G·T
//! ```
//!
//! with `T` in kelvin and `P` in watts.
//!
//! The assembler consumes only the open [`LayerStack`] IR
//! (`crate::stack`); the closed [`Package`] enum reaches it exclusively by
//! lowering through [`Package::to_stack`]. Invalid stacks surface as typed
//! [`StackError`]s instead of panics.
//!
//! # Discretization
//!
//! Every layer is a `rows x cols` grid at the die footprint. Package plates
//! larger than the die (spreader, heatsink, substrate, PCB) additionally get
//! one lumped **ring node** for the overhang, coupled laterally to the
//! layer's edge cells and vertically to the ring of the neighboring
//! oversized layer — the compact-model treatment HotSpot uses for the
//! spreader/sink periphery.
//!
//! Convection boundaries:
//!
//! * **Lumped convection** (AIR-SINK's `r_convec`/`c_convec`, or natural
//!   convection at a PCB): a single coolant node; the total resistance is
//!   split half between surface→coolant (apportioned by area) and
//!   coolant→ambient, so the coolant mass participates in transients.
//! * **Oil film** (OIL-SILICON): one oil node *per surface cell*, with the
//!   local heat-transfer coefficient `h(x)` of Eqn 8 and the boundary-layer
//!   capacitance of Eqn 3, again split half/half around the oil node. This
//!   per-cell structure is what makes the flow direction matter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::board::{Board, BoardError};
use crate::cholesky::LdlFactor;
use crate::convection::LaminarFlow;
use crate::greens;
use crate::multigrid::{MgOptions, Multigrid};
use crate::package::Package;
use crate::sparse::{CsrMatrix, TripletMatrix};
use crate::stack::{Boundary, Fnv, Layer, LayerStack, StackError};
use hotiron_floorplan::GridMapping;

pub use crate::stack::DieGeometry;

/// Role a node plays in the network (used for introspection and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Grid cell of conduction layer `layer`.
    Cell {
        /// Index into [`ThermalCircuit::layer_names`].
        layer: usize,
    },
    /// Peripheral ring of an oversized conduction layer.
    Ring {
        /// Index into [`ThermalCircuit::layer_names`].
        layer: usize,
    },
    /// Lumped coolant node of a convection boundary.
    Coolant,
    /// Per-cell (or per-ring) oil boundary-layer node.
    Oil,
}

/// Node-numbering metadata for one placement of an assembled board
/// circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementNodes {
    /// Placement designator, copied from [`crate::board::Placement::name`].
    pub name: String,
    /// Global index of this placement's first conduction plane; its layer
    /// `l` cells are nodes `(plane_base + l) * cell_count() ..`.
    pub plane_base: usize,
    /// Number of conduction planes this placement contributes.
    pub n_layers: usize,
    /// Global plane index of this placement's silicon layer.
    pub si_plane: usize,
}

/// Node-numbering metadata of a PCB-coupled board circuit: which planes
/// belong to which placement and where the shared PCB plane sits. Present
/// only on circuits assembled from a [`Board`] with a PCB; free-standing
/// single-placement boards lower to plain stack circuits and carry none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoardNodes {
    /// Per-placement plane spans, in placement order.
    pub placements: Vec<PlacementNodes>,
    /// Global plane index of the shared PCB plane.
    pub pcb_plane: usize,
}

/// The assembled RC network.
#[derive(Debug)]
pub struct ThermalCircuit {
    g: CsrMatrix,
    cap: Vec<f64>,
    ambient_g: Vec<f64>,
    kinds: Vec<NodeKind>,
    layer_names: Vec<String>,
    si_offset: usize,
    n_cells: usize,
    rows: usize,
    cols: usize,
    /// `Some` when this circuit was assembled from a PCB-coupled board.
    board: Option<BoardNodes>,
    /// Lazily built geometric multigrid hierarchy for the steady solve.
    /// `None` inside the cell means "grid too small / structure unsuitable";
    /// building is serial and deterministic, so the cached hierarchy is
    /// identical regardless of which solve triggered it.
    mg: OnceLock<Option<Multigrid>>,
    /// Lazily built LDLᵀ factorization of `G` for direct steady solves.
    /// `None` inside the cell means factorization hit a non-positive pivot
    /// (operator not SPD). `G` never changes after assembly, so circuits
    /// shared through the [`CircuitCache`] amortize one factorization over
    /// every request that solves them directly.
    ldlt: OnceLock<Option<LdlFactor>>,
    /// Lazily resolved spectral backend for this circuit: the shared
    /// [`greens::ResponseCache`] entry when the circuit qualifies, or the
    /// [`greens::Ineligible`] reason when it does not. The `f64` is the
    /// response build time charged to the solve that triggered it (0.0 on a
    /// cache hit), mirroring `multigrid_with_setup`.
    spectral: OnceLock<Result<(Arc<greens::SpectralResponse>, f64), greens::Ineligible>>,
}

impl ThermalCircuit {
    /// The conductance matrix `G`, W/K.
    pub fn conductance(&self) -> &CsrMatrix {
        &self.g
    }

    /// Per-node heat capacities, J/K.
    pub fn capacitance(&self) -> &[f64] {
        &self.cap
    }

    /// Per-node conductance to the ambient Dirichlet node, W/K.
    pub fn ambient_conductance(&self) -> &[f64] {
        &self.ambient_g
    }

    /// Number of circuit nodes.
    pub fn node_count(&self) -> usize {
        self.g.dim()
    }

    /// Node roles, one per node.
    pub fn node_kinds(&self) -> &[NodeKind] {
        &self.kinds
    }

    /// Names of the conduction layers, bottom-to-top.
    pub fn layer_names(&self) -> &[String] {
        &self.layer_names
    }

    /// Index of the first silicon-layer cell node; silicon cells are
    /// contiguous: `si_offset() .. si_offset() + cell_count()`.
    pub fn si_offset(&self) -> usize {
        self.si_offset
    }

    /// Cells per layer.
    pub fn cell_count(&self) -> usize {
        self.n_cells
    }

    /// Board node-numbering metadata when this circuit was assembled from a
    /// PCB-coupled [`Board`]; `None` for single-stack circuits (including
    /// free-standing single-placement boards, which lower identically).
    pub fn board_nodes(&self) -> Option<&BoardNodes> {
        self.board.as_ref()
    }

    /// Grid rows per layer.
    pub fn grid_rows(&self) -> usize {
        self.rows
    }

    /// Grid columns per layer.
    pub fn grid_cols(&self) -> usize {
        self.cols
    }

    /// The geometric multigrid hierarchy for this circuit, built on first
    /// use and cached. Returns `None` when the grid is too small for a
    /// hierarchy to pay off (see [`MgOptions::coarsest_dim`]) or the network
    /// structure defeats coarsening.
    pub fn multigrid(&self) -> Option<&Multigrid> {
        self.multigrid_with_setup().map(|(mg, _)| mg)
    }

    /// Like [`multigrid`](Self::multigrid), additionally reporting the setup
    /// time in seconds — nonzero only for the call that actually built the
    /// hierarchy, so callers can charge it to their `SolveStats` exactly
    /// once.
    pub fn multigrid_with_setup(&self) -> Option<(&Multigrid, f64)> {
        let built_now = self.mg.get().is_none();
        let slot = self.mg.get_or_init(|| Multigrid::from_circuit(self, MgOptions::default()));
        slot.as_ref().map(|mg| (mg, if built_now { mg.setup_seconds() } else { 0.0 }))
    }

    /// The memoized LDLᵀ factorization of `G` for direct steady solves,
    /// plus the factorization time in seconds — nonzero only for the call
    /// that actually factored, so callers charge it to their [`SolveStats`]
    /// exactly once (mirroring [`multigrid_with_setup`]). `None` means the
    /// operator is not SPD (e.g. a floating node) and the caller should fall
    /// back to an iterative method.
    ///
    /// [`SolveStats`]: crate::sparse::SolveStats
    /// [`multigrid_with_setup`]: Self::multigrid_with_setup
    pub fn steady_factor_with_setup(&self) -> Option<(&LdlFactor, f64)> {
        let built_now = self.ldlt.get().is_none();
        let slot = self.ldlt.get_or_init(|| LdlFactor::factor(&self.g).ok());
        slot.as_ref().map(|f| (f, if built_now { f.factor_seconds() } else { 0.0 }))
    }

    /// The spectral (Green's-function) backend for this circuit, when it
    /// qualifies. The response is fetched from the process-wide
    /// [`greens::ResponseCache`] on first use and pinned here, so repeated
    /// solves of a shared circuit skip even the cache lookup.
    ///
    /// # Errors
    ///
    /// [`greens::Ineligible`] explaining why this circuit cannot use the
    /// spectral path (also memoized — the qualification walk runs once).
    pub fn spectral(&self) -> Result<&Arc<greens::SpectralResponse>, &greens::Ineligible> {
        self.spectral_with_setup().map(|(resp, _)| resp)
    }

    /// Like [`spectral`](Self::spectral), additionally reporting the
    /// response build time in seconds — nonzero only when this call caused
    /// the response to be precomputed (a [`greens::ResponseCache`] miss), so
    /// callers charge it to their `SolveStats` exactly once.
    pub fn spectral_with_setup(
        &self,
    ) -> Result<(&Arc<greens::SpectralResponse>, f64), &greens::Ineligible> {
        let built_now = self.spectral.get().is_none();
        let slot = self.spectral.get_or_init(|| {
            let params = greens::SpectralParams::from_circuit(self)?;
            let (resp, hit) = greens::ResponseCache::process().get_or_build(params);
            let setup = if hit { 0.0 } else { resp.build_seconds() };
            Ok((resp, setup))
        });
        match slot {
            Ok((resp, setup)) => Ok((resp, if built_now { *setup } else { 0.0 })),
            Err(e) => Err(e),
        }
    }

    /// Builds the full right-hand side `P + G_amb·T_amb` from per-cell
    /// silicon power (W) and the ambient temperature (K).
    ///
    /// # Panics
    ///
    /// Panics if `si_cell_power.len()` differs from the cell count.
    pub fn rhs(&self, si_cell_power: &[f64], ambient: f64) -> Vec<f64> {
        let mut b = Vec::new();
        self.rhs_into(si_cell_power, ambient, &mut b);
        b
    }

    /// [`rhs`](Self::rhs) into a caller-provided buffer (cleared and resized
    /// as needed) — for per-step hot loops that assemble the same-shape
    /// right-hand side thousands of times.
    ///
    /// For board circuits `si_cell_power` is the concatenation of every
    /// placement's silicon cell powers, in placement order.
    ///
    /// # Panics
    ///
    /// Panics if `si_cell_power` does not have one entry per silicon cell
    /// (of every placement, for board circuits).
    pub fn rhs_into(&self, si_cell_power: &[f64], ambient: f64, b: &mut Vec<f64>) {
        if let Some(board) = &self.board {
            assert_eq!(
                si_cell_power.len(),
                board.placements.len() * self.n_cells,
                "one power entry per silicon cell of every placement"
            );
            b.clear();
            b.extend(self.ambient_g.iter().map(|g| g * ambient));
            for (pn, chunk) in board.placements.iter().zip(si_cell_power.chunks(self.n_cells)) {
                let base = pn.si_plane * self.n_cells;
                for (i, p) in chunk.iter().enumerate() {
                    b[base + i] += p;
                }
            }
            return;
        }
        assert_eq!(si_cell_power.len(), self.n_cells, "one power entry per silicon cell");
        b.clear();
        b.extend(self.ambient_g.iter().map(|g| g * ambient));
        for (i, p) in si_cell_power.iter().enumerate() {
            b[self.si_offset + i] += p;
        }
    }

    /// Sum of all node-to-ambient conductances, W/K (the reciprocal of the
    /// total chip-to-ambient resistance when the whole network is
    /// isothermal).
    pub fn total_ambient_conductance(&self) -> f64 {
        self.ambient_g.iter().sum()
    }

    /// Extracts the silicon-layer temperatures from a full state vector.
    /// For board circuits this is the *first* placement's silicon plane;
    /// use [`board_nodes`](Self::board_nodes) to reach the others.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the node count.
    pub fn silicon_slice<'a>(&self, state: &'a [f64]) -> &'a [f64] {
        assert_eq!(state.len(), self.node_count());
        &state[self.si_offset..self.si_offset + self.n_cells]
    }
}

/// Builds the RC network for a die (described by its grid mapping and
/// geometry) inside a package, by lowering the package through
/// [`Package::to_stack`] and assembling the resulting stack.
///
/// # Errors
///
/// Any [`StackError`] from lowering or validation (e.g.
/// `PcbCooling::Oil` on an AIR-SINK package, or an oversized plate smaller
/// than the die), naming the offending layer or boundary.
pub fn build_circuit(
    mapping: &GridMapping,
    die: DieGeometry,
    package: &Package,
) -> Result<ThermalCircuit, StackError> {
    let stack = package.to_stack(die)?;
    build_circuit_from_stack(mapping, die, &stack)
}

/// Builds the RC network directly from a [`LayerStack`].
///
/// # Errors
///
/// Any [`StackError`] from [`LayerStack::validate`].
pub fn build_circuit_from_stack(
    mapping: &GridMapping,
    die: DieGeometry,
    stack: &LayerStack,
) -> Result<ThermalCircuit, StackError> {
    stack.validate(die)?;
    Ok(assemble(mapping, die, stack))
}

/// Cache key: everything [`assemble`] reads. The grid mapping contributes
/// only its resolution and cell geometry, both derived from `die` and
/// `rows`/`cols`, so two floorplans over the same die share circuits.
fn circuit_cache_key(die: DieGeometry, rows: usize, cols: usize, stack: &LayerStack) -> u64 {
    let mut h = Fnv::new();
    h.f64(die.width);
    h.f64(die.height);
    h.f64(die.thickness);
    h.usize(rows);
    h.usize(cols);
    h.u64(stack.content_hash());
    h.finish()
}

/// Board cache key: a tagged wrapper over [`Board::content_hash`], which
/// already covers the shared grid resolution and every placement's die and
/// stack. The tag keeps board keys disjoint from stack keys sharing one
/// [`CircuitCache`].
fn board_circuit_cache_key(board: &Board) -> u64 {
    let mut h = Fnv::new();
    h.str("board-circuit");
    h.u64(board.content_hash());
    h.finish()
}

/// Point-in-time view of a [`CircuitCache`]'s counters and occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to assemble a circuit.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Circuits currently held.
    pub len: usize,
    /// Maximum circuits held at once.
    pub capacity: usize,
}

struct LruEntry {
    circuit: Arc<ThermalCircuit>,
    /// Monotone access stamp; the entry with the smallest stamp is the
    /// least recently used and the next to be evicted.
    last_used: u64,
}

struct LruState {
    map: HashMap<u64, LruEntry>,
    tick: u64,
}

/// A bounded LRU cache of assembled circuits, keyed by stack content hash +
/// die geometry + grid resolution.
///
/// The cache holds strong [`Arc`]s, so at most `capacity` circuits (plus
/// whatever callers still reference) are alive at once; inserting into a
/// full cache evicts the least recently used entry. All operations are
/// `Send + Sync` — a server can own one instance per process, per tenant, or
/// per worker group, with no ambient global state. The process-wide default
/// used by [`build_circuit_cached`] is just one instance
/// ([`CircuitCache::process`]).
///
/// Assembly is deterministic, so a cache hit is observationally identical to
/// a rebuild; hit/miss/eviction counts are exposed for telemetry
/// ([`CircuitCache::counters`]).
pub struct CircuitCache {
    inner: Mutex<LruState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for CircuitCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("CircuitCache")
            .field("capacity", &c.capacity)
            .field("len", &c.len)
            .field("hits", &c.hits)
            .field("misses", &c.misses)
            .field("evictions", &c.evictions)
            .finish()
    }
}

/// Capacity of the process-wide default cache. Generous enough that every
/// distinct stack of a full experiment sweep stays resident; servers that
/// need a tighter bound construct their own [`CircuitCache`].
const PROCESS_CACHE_CAPACITY: usize = 64;

impl CircuitCache {
    /// Creates a cache bounded to `capacity` circuits (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LruState { map: HashMap::new(), tick: 0 }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide default instance backing [`build_circuit_cached`].
    pub fn process() -> &'static CircuitCache {
        static PROCESS: OnceLock<CircuitCache> = OnceLock::new();
        PROCESS.get_or_init(|| CircuitCache::new(PROCESS_CACHE_CAPACITY))
    }

    /// Returns the cached circuit for (stack, die, grid), assembling and
    /// inserting it on a miss. The boolean reports the disposition: `true`
    /// for a cache hit, `false` when this call assembled the circuit.
    ///
    /// Assembly runs outside the cache lock so concurrent builds of
    /// *different* circuits don't serialize; a lost race on the same key
    /// builds one bit-identical circuit twice, keeps the first inserted and
    /// reports a hit.
    ///
    /// # Errors
    ///
    /// Any [`StackError`] from [`LayerStack::validate`].
    pub fn get_or_build(
        &self,
        mapping: &GridMapping,
        die: DieGeometry,
        stack: &LayerStack,
    ) -> Result<(Arc<ThermalCircuit>, bool), StackError> {
        stack.validate(die)?;
        let key = circuit_cache_key(die, mapping.rows(), mapping.cols(), stack);
        if let Some(hit) = self.touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit, true));
        }
        let built = Arc::new(assemble(mapping, die, stack));
        Ok(self.insert_or_adopt(key, built))
    }

    /// Returns the cached circuit for a whole board, assembling and
    /// inserting it on a miss — the board analogue of
    /// [`get_or_build`](Self::get_or_build), sharing the same LRU store and
    /// counters (board and stack keys live in disjoint key spaces).
    ///
    /// # Errors
    ///
    /// Any [`BoardError`] from [`Board::validate`], or
    /// `GridMismatch`/`BadGrid` when `mappings` disagrees with the board's
    /// shared resolution.
    pub fn get_or_build_board(
        &self,
        board: &Board,
        mappings: &[GridMapping],
    ) -> Result<(Arc<ThermalCircuit>, bool), BoardError> {
        board.validate()?;
        check_board_mappings(board, mappings)?;
        let key = board_circuit_cache_key(board);
        if let Some(hit) = self.touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit, true));
        }
        let built = Arc::new(assemble_board(board, mappings));
        Ok(self.insert_or_adopt(key, built))
    }

    /// Inserts a freshly assembled circuit, or adopts a racing insert of the
    /// same key. The boolean reports the disposition (`true` = hit).
    fn insert_or_adopt(&self, key: u64, built: Arc<ThermalCircuit>) -> (Arc<ThermalCircuit>, bool) {
        let mut state = self.inner.lock().expect("circuit cache poisoned");
        let stamp = state.tick;
        if let Some(entry) = state.map.get_mut(&key) {
            // Lost the assembly race; the earlier insert wins.
            entry.last_used = stamp;
            let existing = entry.circuit.clone();
            state.tick += 1;
            drop(state);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (existing, true);
        }
        if state.map.len() >= self.capacity {
            let lru = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map at capacity");
            state.map.remove(&lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let stamp = state.tick;
        state.tick += 1;
        state.map.insert(key, LruEntry { circuit: built.clone(), last_used: stamp });
        drop(state);
        self.misses.fetch_add(1, Ordering::Relaxed);
        (built, false)
    }

    /// Looks up `key`, refreshing its LRU stamp on a hit.
    fn touch(&self, key: u64) -> Option<Arc<ThermalCircuit>> {
        let mut state = self.inner.lock().expect("circuit cache poisoned");
        let tick = state.tick;
        let entry = state.map.get_mut(&key)?;
        entry.last_used = tick;
        let circuit = entry.circuit.clone();
        state.tick += 1;
        Some(circuit)
    }

    /// A snapshot of the hit/miss/eviction counters and current occupancy.
    pub fn counters(&self) -> CacheCounters {
        let len = self.inner.lock().expect("circuit cache poisoned").map.len();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
        }
    }

    /// Number of circuits currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("circuit cache poisoned").map.len()
    }

    /// Whether the cache currently holds no circuits.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of circuits held at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every cached circuit (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().expect("circuit cache poisoned").map.clear();
    }
}

/// Like [`build_circuit_from_stack`], but returns a shared handle from the
/// process-wide [`CircuitCache`] when an identical (stack, die, grid)
/// circuit is cached. Repeated solves over the same stack across experiments
/// then reuse one circuit — including its lazily built multigrid hierarchy —
/// instead of re-assembling it.
///
/// # Errors
///
/// Any [`StackError`] from [`LayerStack::validate`].
pub fn build_circuit_cached(
    mapping: &GridMapping,
    die: DieGeometry,
    stack: &LayerStack,
) -> Result<Arc<ThermalCircuit>, StackError> {
    CircuitCache::process().get_or_build(mapping, die, stack).map(|(c, _)| c)
}

/// Per-stack assembly geometry shared by the stamping helpers. One instance
/// describes one placed stack: its layers, die, grid mapping and the global
/// plane index its layer 0 starts at (`plane_base` — 0 for a plain stack
/// circuit). All planes in a circuit share one `rows × cols` resolution, so
/// layer `l`, cell `c` of this stack is node
/// `(plane_base + l) * n_cells + c`.
struct StackGeom<'a> {
    layers: &'a [Layer],
    die: DieGeometry,
    mapping: &'a GridMapping,
    rows: usize,
    cols: usize,
    n_cells: usize,
    dx: f64,
    dy: f64,
    cell_area: f64,
    die_area: f64,
    plane_base: usize,
    /// Global ring-node index per local layer, `None` for die-sized layers.
    ring_of: &'a [Option<usize>],
}

impl<'a> StackGeom<'a> {
    fn new(
        mapping: &'a GridMapping,
        die: DieGeometry,
        layers: &'a [Layer],
        plane_base: usize,
        ring_of: &'a [Option<usize>],
    ) -> Self {
        let (rows, cols) = (mapping.rows(), mapping.cols());
        let (dx, dy) = (mapping.cell_width(), mapping.cell_height());
        Self {
            layers,
            die,
            mapping,
            rows,
            cols,
            n_cells: rows * cols,
            dx,
            dy,
            cell_area: dx * dy,
            die_area: die.width * die.height,
            plane_base,
            ring_of,
        }
    }

    /// Global node index of local layer `l`, cell `c`.
    fn node(&self, l: usize, c: usize) -> usize {
        (self.plane_base + l) * self.n_cells + c
    }
}

/// In-plane conduction of every layer of one stack: the uniform 5-point
/// lateral couplings, plus edge-cell→ring couplings for oversized plates.
fn stamp_in_plane(geom: &StackGeom<'_>, stamps: &mut Vec<(usize, usize, f64)>) {
    for (l, def) in geom.layers.iter().enumerate() {
        let gx = def.material.conductivity() * geom.dy * def.thickness / geom.dx;
        let gy = def.material.conductivity() * geom.dx * def.thickness / geom.dy;
        for r in 0..geom.rows {
            for c in 0..geom.cols {
                let n = geom.node(l, r * geom.cols + c);
                if c + 1 < geom.cols {
                    stamps.push((n, n + 1, gx));
                }
                if r + 1 < geom.rows {
                    stamps.push((n, n + geom.cols, gy));
                }
            }
        }
        // Edge cells to ring.
        if let Some(ring) = geom.ring_of[l] {
            let side = def.side.expect("ring implies oversized");
            let k_t = def.material.conductivity() * def.thickness;
            let overhang_x = (side - geom.die.width) / 2.0;
            let overhang_y = (side - geom.die.height) / 2.0;
            for r in 0..geom.rows {
                for &c in &[0, geom.cols - 1] {
                    let n = geom.node(l, r * geom.cols + c);
                    let g = k_t * geom.dy / (geom.dx / 2.0 + (overhang_x / 2.0).max(geom.dx / 2.0));
                    stamps.push((n, ring, g));
                }
            }
            for c in 0..geom.cols {
                for &r in &[0, geom.rows - 1] {
                    let n = geom.node(l, r * geom.cols + c);
                    let g = k_t * geom.dx / (geom.dy / 2.0 + (overhang_y / 2.0).max(geom.dy / 2.0));
                    stamps.push((n, ring, g));
                }
            }
        }
    }
}

/// Vertical conduction between adjacent layers of one stack (half-thickness
/// series resistances per cell), plus ring-to-ring where both layers are
/// oversized.
fn stamp_vertical(geom: &StackGeom<'_>, stamps: &mut Vec<(usize, usize, f64)>) {
    for l in 0..geom.layers.len().saturating_sub(1) {
        let (a, b) = (&geom.layers[l], &geom.layers[l + 1]);
        let r_pair = a.thickness / (2.0 * a.material.conductivity() * geom.cell_area)
            + b.thickness / (2.0 * b.material.conductivity() * geom.cell_area);
        let g = 1.0 / r_pair;
        for c in 0..geom.n_cells {
            stamps.push((geom.node(l, c), geom.node(l + 1, c), g));
        }
        // Ring-to-ring where both layers are oversized.
        if let (Some(ra), Some(rb)) = (geom.ring_of[l], geom.ring_of[l + 1]) {
            let common = a.side.expect("ring").min(b.side.expect("ring"));
            let annulus = (common * common - geom.die_area).max(0.0);
            if annulus > 0.0 {
                let r_pair = a.thickness / (2.0 * a.material.conductivity() * annulus)
                    + b.thickness / (2.0 * b.material.conductivity() * annulus);
                stamps.push((ra, rb, 1.0 / r_pair));
            }
        }
    }
}

/// Cell and ring heat capacities of one stack's layers.
fn fill_caps(geom: &StackGeom<'_>, cap: &mut [f64]) {
    for (l, def) in geom.layers.iter().enumerate() {
        let c_cell = def.material.volumetric_heat_capacity() * geom.cell_area * def.thickness;
        for c in 0..geom.n_cells {
            cap[geom.node(l, c)] = c_cell;
        }
        if let Some(ring) = geom.ring_of[l] {
            let side = def.side.expect("ring implies oversized");
            let vol = (side * side - geom.die_area).max(0.0) * def.thickness;
            cap[ring] = def.material.volumetric_heat_capacity() * vol;
        }
    }
}

/// Boundary attachment above/below one stack: a lumped coolant node or a
/// distributed oil film over the surface of local layer `layer`, appending
/// its boundary nodes at `*next_node`.
#[allow(clippy::too_many_arguments)]
fn stamp_boundary(
    geom: &StackGeom<'_>,
    att: &Boundary,
    layer: usize,
    stamps: &mut Vec<(usize, usize, f64)>,
    grounded: &mut Vec<(usize, f64)>,
    extra_caps: &mut Vec<(usize, f64)>,
    kinds: &mut Vec<NodeKind>,
    next_node: &mut usize,
) {
    match att {
        Boundary::Insulated => {}
        Boundary::Lumped { r_total, c_total } => {
            debug_assert!(*r_total > 0.0, "validate() admits only positive lumped resistance");
            let def = &geom.layers[layer];
            let plate_area = def.side.map_or(geom.die_area, |s| s * s);
            let coolant = *next_node;
            *next_node += 1;
            kinds.push(NodeKind::Coolant);
            // Coolant node must have some mass to avoid a singular C.
            extra_caps.push((coolant, c_total.max(1e-9)));
            let g_half_total = 2.0 / r_total;
            for c in 0..geom.n_cells {
                let g = g_half_total * (geom.cell_area / plate_area);
                stamps.push((geom.node(layer, c), coolant, g));
            }
            if let Some(ring) = geom.ring_of[layer] {
                let ring_area = plate_area - geom.die_area;
                stamps.push((ring, coolant, g_half_total * (ring_area / plate_area)));
            }
            grounded.push((coolant, g_half_total));
        }
        Boundary::OilFilm(spec) => {
            let def = &geom.layers[layer];
            let (plate_w, plate_h) = match def.side {
                Some(s) => (s, s),
                None => (geom.die.width, geom.die.height),
            };
            let length = spec.direction.flow_length(plate_w, plate_h);
            let flow = LaminarFlow::new(spec.fluid, spec.velocity, length);
            // Die grid centered on the plate.
            let (off_x, off_y) =
                ((plate_w - geom.die.width) / 2.0, (plate_h - geom.die.height) / 2.0);
            let delta_overall = flow.boundary_layer_thickness();
            for r in 0..geom.rows {
                for cidx in 0..geom.cols {
                    let (cx, cy) = geom.mapping.cell_center(r, cidx);
                    let x_flow = spec
                        .direction
                        .distance_from_leading_edge(cx + off_x, cy + off_y, plate_w, plate_h)
                        .max(geom.dx.min(geom.dy) / 4.0);
                    let h = if spec.local_h { flow.local_h(x_flow) } else { flow.average_h() };
                    let delta = if spec.local_boundary_layer {
                        flow.local_boundary_layer_thickness(x_flow)
                    } else {
                        delta_overall
                    };
                    let oil = *next_node;
                    *next_node += 1;
                    kinds.push(NodeKind::Oil);
                    let c_oil = spec.fluid.volumetric_heat_capacity() * geom.cell_area * delta;
                    extra_caps.push((oil, c_oil.max(1e-12)));
                    let g = 2.0 * h * geom.cell_area;
                    stamps.push((geom.node(layer, r * geom.cols + cidx), oil, g));
                    grounded.push((oil, g));
                }
            }
            if let Some(ring) = geom.ring_of[layer] {
                let ring_area = plate_w * plate_h - geom.die_area;
                let h = flow.average_h();
                let oil = *next_node;
                *next_node += 1;
                kinds.push(NodeKind::Oil);
                let c_oil = spec.fluid.volumetric_heat_capacity() * ring_area * delta_overall;
                extra_caps.push((oil, c_oil.max(1e-12)));
                let g = 2.0 * h * ring_area;
                stamps.push((ring, oil, g));
                grounded.push((oil, g));
            }
        }
    }
}

/// Folds accumulated stamps into the final matrices. Shared tail of the
/// stack and board assemblers; the stamp *order* is part of the circuit's
/// identity (triplet insertion order is preserved into the CSR), so both
/// assemblers feed this with identically ordered streams for identical
/// configurations.
#[allow(clippy::too_many_arguments)]
fn finalize(
    n: usize,
    mut cap: Vec<f64>,
    extra_caps: Vec<(usize, f64)>,
    stamps: Vec<(usize, usize, f64)>,
    grounded: Vec<(usize, f64)>,
    kinds: Vec<NodeKind>,
    layer_names: Vec<String>,
    si_offset: usize,
    n_cells: usize,
    rows: usize,
    cols: usize,
    board: Option<BoardNodes>,
) -> ThermalCircuit {
    cap.resize(n, 0.0);
    for (node, c) in extra_caps {
        cap[node] += c;
    }
    let mut ambient_g = vec![0.0; n];
    let mut t = TripletMatrix::new(n);
    for (a, b, g) in stamps {
        t.stamp_conductance(a, b, g);
    }
    for (node, g) in grounded {
        t.stamp_grounded_conductance(node, g);
        ambient_g[node] += g;
    }
    let g = t.to_csr();
    debug_assert!(g.is_symmetric(1e-9), "conductance matrix must be symmetric");

    ThermalCircuit {
        g,
        cap,
        ambient_g,
        kinds,
        layer_names,
        si_offset,
        n_cells,
        rows,
        cols,
        board,
        mg: OnceLock::new(),
        ldlt: OnceLock::new(),
        spectral: OnceLock::new(),
    }
}

/// Assembles a validated stack. Callers must run [`LayerStack::validate`]
/// first; this function assumes a well-formed stack.
fn assemble(mapping: &GridMapping, die: DieGeometry, stack: &LayerStack) -> ThermalCircuit {
    let layers = &stack.layers;
    let (rows, cols) = (mapping.rows(), mapping.cols());
    let n_cells = rows * cols;
    let nl = layers.len();

    // ---- node numbering ----
    // cells: layer l, cell c -> l*n_cells + c
    // rings: after all cells, in layer order
    // boundary nodes: appended by the attachment stampers
    let mut ring_of = vec![None; nl];
    let mut next = nl * n_cells;
    for (l, def) in layers.iter().enumerate() {
        if let Some(side) = def.side {
            debug_assert!(
                side >= die.width.max(die.height),
                "validate() admits no plate smaller than the die (`{}`)",
                def.name
            );
            ring_of[l] = Some(next);
            next += 1;
        }
    }
    let mut kinds = vec![NodeKind::Cell { layer: 0 }; next];
    for (l, _) in layers.iter().enumerate() {
        for c in 0..n_cells {
            kinds[l * n_cells + c] = NodeKind::Cell { layer: l };
        }
        if let Some(r) = ring_of[l] {
            kinds[r] = NodeKind::Ring { layer: l };
        }
    }

    let geom = StackGeom::new(mapping, die, layers, 0, &ring_of);
    let mut extra_caps: Vec<(usize, f64)> = Vec::new();
    let mut stamps: Vec<(usize, usize, f64)> = Vec::new(); // node-node conductances
    let mut grounded: Vec<(usize, f64)> = Vec::new(); // node-ambient conductances

    stamp_in_plane(&geom, &mut stamps);
    stamp_vertical(&geom, &mut stamps);

    let mut cap = vec![0.0; next];
    fill_caps(&geom, &mut cap);

    let mut next_node = next;
    for (att, layer) in [(&stack.top, nl - 1), (&stack.bottom, 0)] {
        stamp_boundary(
            &geom,
            att,
            layer,
            &mut stamps,
            &mut grounded,
            &mut extra_caps,
            &mut kinds,
            &mut next_node,
        );
    }

    let layer_names = layers.iter().map(|l| l.name.clone()).collect();
    finalize(
        next_node,
        cap,
        extra_caps,
        stamps,
        grounded,
        kinds,
        layer_names,
        stack.si_index * n_cells,
        n_cells,
        rows,
        cols,
        None,
    )
}

/// Assembles a validated board. Callers must run [`Board::validate`] and the
/// grid-mapping checks of [`build_circuit_from_board`] first.
///
/// Node numbering extends the stack scheme: every placement's cell planes
/// come first (in placement order, each placement's layers bottom→top), then
/// the PCB plane, then rings (per placement, per oversized layer, in order),
/// then boundary nodes in stamping order. All planes share the board's
/// `rows × cols` resolution, so plane `l` starts at `l * n_cells` — exactly
/// the uniform-plane layout the multigrid hierarchy coarsens; the
/// placement→PCB couplings land in its lossless unstructured remainder.
///
/// With one placement and no PCB, every pass reduces to the stack
/// assembler's sequence, so free-standing boards lower bitwise-identically
/// to [`build_circuit_from_stack`].
fn assemble_board(board: &Board, mappings: &[GridMapping]) -> ThermalCircuit {
    let (rows, cols) = (board.rows, board.cols);
    let n_cells = rows * cols;
    let pcb = board.pcb.as_ref();

    // ---- plane layout ----
    let mut plane_bases = Vec::with_capacity(board.placements.len());
    let mut total_planes = 0usize;
    for p in &board.placements {
        plane_bases.push(total_planes);
        total_planes += p.stack.layers.len();
    }
    let pcb_plane = pcb.map(|_| total_planes);
    let all_planes = total_planes + usize::from(pcb.is_some());

    // ---- rings after all cell planes ----
    let mut next = all_planes * n_cells;
    let mut ring_ofs: Vec<Vec<Option<usize>>> = Vec::with_capacity(board.placements.len());
    for p in &board.placements {
        let mut ring_of = vec![None; p.stack.layers.len()];
        for (l, def) in p.stack.layers.iter().enumerate() {
            if def.side.is_some() {
                ring_of[l] = Some(next);
                next += 1;
            }
        }
        ring_ofs.push(ring_of);
    }

    // ---- node kinds and layer names ----
    // Free-standing single boards keep bare layer names (they ARE a plain
    // stack circuit); PCB boards qualify each as "placement/layer".
    let mut layer_names: Vec<String> = Vec::with_capacity(all_planes);
    let mut kinds = vec![NodeKind::Cell { layer: 0 }; next];
    for (pi, p) in board.placements.iter().enumerate() {
        for (l, def) in p.stack.layers.iter().enumerate() {
            let plane = plane_bases[pi] + l;
            layer_names.push(if pcb.is_some() {
                format!("{}/{}", p.name, def.name)
            } else {
                def.name.clone()
            });
            for c in 0..n_cells {
                kinds[plane * n_cells + c] = NodeKind::Cell { layer: plane };
            }
            if let Some(r) = ring_ofs[pi][l] {
                kinds[r] = NodeKind::Ring { layer: plane };
            }
        }
    }
    if let Some(pp) = pcb_plane {
        layer_names.push("pcb".into());
        for c in 0..n_cells {
            kinds[pp * n_cells + c] = NodeKind::Cell { layer: pp };
        }
    }

    let geom_of = |pi: usize| {
        let p = &board.placements[pi];
        StackGeom::new(&mappings[pi], p.die, &p.stack.layers, plane_bases[pi], &ring_ofs[pi])
    };

    let mut extra_caps: Vec<(usize, f64)> = Vec::new();
    let mut stamps: Vec<(usize, usize, f64)> = Vec::new();
    let mut grounded: Vec<(usize, f64)> = Vec::new();

    // ---- in-plane conduction: placements, then the PCB plane ----
    for pi in 0..board.placements.len() {
        stamp_in_plane(&geom_of(pi), &mut stamps);
    }
    // PCB cell geometry (the board spreads over the full grid).
    let (pdx, pdy) = pcb.map_or((0.0, 0.0), |s| (s.width / cols as f64, s.height / rows as f64));
    if let (Some(spec), Some(pp)) = (pcb, pcb_plane) {
        let gx = spec.material.conductivity() * pdy * spec.thickness / pdx;
        let gy = spec.material.conductivity() * pdx * spec.thickness / pdy;
        for r in 0..rows {
            for c in 0..cols {
                let n = pp * n_cells + r * cols + c;
                if c + 1 < cols {
                    stamps.push((n, n + 1, gx));
                }
                if r + 1 < rows {
                    stamps.push((n, n + cols, gy));
                }
            }
        }
    }

    // ---- vertical conduction within each placement ----
    for pi in 0..board.placements.len() {
        stamp_vertical(&geom_of(pi), &mut stamps);
    }

    // ---- placement → PCB coupling, with via-field bonuses ----
    // Each placement bottom cell couples to the PCB cell under its rotated
    // center through the series of its own lower half-thickness and the
    // PCB's upper half-thickness over the contact (placement-cell) area.
    // Via fields add their anisotropic through-plane conductance times the
    // overlap of the (rotated) cell footprint with the patch — the
    // exposed-pad via array shunting the board resin.
    if let (Some(spec), Some(pp)) = (pcb, pcb_plane) {
        for (pi, p) in board.placements.iter().enumerate() {
            let geom = geom_of(pi);
            let bot = &p.stack.layers[0];
            let r_pair = bot.thickness / (2.0 * bot.material.conductivity() * geom.cell_area)
                + spec.thickness / (2.0 * spec.material.conductivity() * geom.cell_area);
            let g_base = 1.0 / r_pair;
            for r in 0..rows {
                for c in 0..cols {
                    let (cx, cy) = geom.mapping.cell_center(r, c);
                    let (fx, fy) = p.rotation.apply(cx, cy, p.die.width, p.die.height);
                    let (bx, by) = (p.x + fx, p.y + fy);
                    let pc = ((bx / pdx) as usize).min(cols - 1);
                    let pr = ((by / pdy) as usize).min(rows - 1);
                    let mut g = g_base;
                    if !board.vias.is_empty() {
                        // Quarter-turn rotations map the axis-aligned cell
                        // rect to another axis-aligned rect: rotate two
                        // opposite corners and re-sort.
                        let (x0, y0) = (c as f64 * geom.dx, r as f64 * geom.dy);
                        let (ax, ay) = p.rotation.apply(x0, y0, p.die.width, p.die.height);
                        let (bx2, by2) =
                            p.rotation.apply(x0 + geom.dx, y0 + geom.dy, p.die.width, p.die.height);
                        let (rx0, rx1) = (p.x + ax.min(bx2), p.x + ax.max(bx2));
                        let (ry0, ry1) = (p.y + ay.min(by2), p.y + ay.max(by2));
                        for v in &board.vias {
                            g += v.conductance_per_area * v.overlap_area(rx0, rx1, ry0, ry1);
                        }
                    }
                    stamps.push((geom.node(0, r * cols + c), pp * n_cells + pr * cols + pc, g));
                }
            }
        }
    }

    // ---- capacitances ----
    let mut cap = vec![0.0; next];
    for pi in 0..board.placements.len() {
        fill_caps(&geom_of(pi), &mut cap);
    }
    if let (Some(spec), Some(pp)) = (pcb, pcb_plane) {
        let c_cell = spec.material.volumetric_heat_capacity() * (pdx * pdy) * spec.thickness;
        for c in 0..n_cells {
            cap[pp * n_cells + c] = c_cell;
        }
    }

    // ---- boundary attachments: per placement top then bottom, then the
    // PCB back face ----
    let mut next_node = next;
    for (pi, p) in board.placements.iter().enumerate() {
        let geom = geom_of(pi);
        let nl = p.stack.layers.len();
        for (att, layer) in [(&p.stack.top, nl - 1), (&p.stack.bottom, 0)] {
            stamp_boundary(
                &geom,
                att,
                layer,
                &mut stamps,
                &mut grounded,
                &mut extra_caps,
                &mut kinds,
                &mut next_node,
            );
        }
    }
    if let (Some(spec), Some(pp)) = (pcb, pcb_plane) {
        if let Boundary::Lumped { r_total, c_total } = &spec.bottom {
            let coolant = next_node;
            next_node += 1;
            kinds.push(NodeKind::Coolant);
            extra_caps.push((coolant, c_total.max(1e-9)));
            let g_half_total = 2.0 / r_total;
            let pcb_area = spec.width * spec.height;
            let pcb_cell_area = pdx * pdy;
            for c in 0..n_cells {
                let g = g_half_total * (pcb_cell_area / pcb_area);
                stamps.push((pp * n_cells + c, coolant, g));
            }
            grounded.push((coolant, g_half_total));
        }
    }

    let board_nodes = pcb_plane.map(|pp| BoardNodes {
        placements: board
            .placements
            .iter()
            .zip(&plane_bases)
            .map(|(p, &base)| PlacementNodes {
                name: p.name.clone(),
                plane_base: base,
                n_layers: p.stack.layers.len(),
                si_plane: base + p.stack.si_index,
            })
            .collect(),
        pcb_plane: pp,
    });
    let si_offset = (plane_bases[0] + board.placements[0].stack.si_index) * n_cells;
    finalize(
        next_node,
        cap,
        extra_caps,
        stamps,
        grounded,
        kinds,
        layer_names,
        si_offset,
        n_cells,
        rows,
        cols,
        board_nodes,
    )
}

/// Checks that `mappings` matches the board: one mapping per placement, each
/// at the board's shared grid resolution.
fn check_board_mappings(board: &Board, mappings: &[GridMapping]) -> Result<(), BoardError> {
    if mappings.len() != board.placements.len() {
        return Err(BoardError::BadGrid {
            reason: format!(
                "{} grid mappings for {} placements",
                mappings.len(),
                board.placements.len()
            ),
        });
    }
    for (p, m) in board.placements.iter().zip(mappings) {
        if m.rows() != board.rows || m.cols() != board.cols {
            return Err(BoardError::GridMismatch {
                placement: p.name.clone(),
                expected_rows: board.rows,
                expected_cols: board.cols,
                rows: m.rows(),
                cols: m.cols(),
            });
        }
    }
    Ok(())
}

/// Builds the RC network for a whole [`Board`]: every placement's stack plus
/// the shared PCB plane, coupled through placement-bottom→PCB conductances
/// and via fields. `mappings` carries one [`GridMapping`] per placement (its
/// floorplan spread over the placement's die), all at the board's shared
/// grid resolution.
///
/// Free-standing single-placement boards (no PCB) lower bitwise-identically
/// to [`build_circuit_from_stack`] over the same stack.
///
/// # Errors
///
/// Any [`BoardError`] from [`Board::validate`], or `GridMismatch`/`BadGrid`
/// when `mappings` disagrees with the board's resolution.
pub fn build_circuit_from_board(
    board: &Board,
    mappings: &[GridMapping],
) -> Result<ThermalCircuit, BoardError> {
    board.validate()?;
    check_board_mappings(board, mappings)?;
    Ok(assemble_board(board, mappings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{AirSinkPackage, OilSiliconPackage, Package, SecondaryPath};
    use crate::stack::{Layer, OilFilm};
    use hotiron_floorplan::library;

    fn die20() -> DieGeometry {
        DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 }
    }

    fn mapping(rows: usize, cols: usize) -> GridMapping {
        GridMapping::new(&library::uniform_die(0.02, 0.02), rows, cols)
    }

    #[test]
    fn oil_circuit_structure() {
        let m = mapping(8, 8);
        let c =
            build_circuit(&m, die20(), &Package::OilSilicon(OilSiliconPackage::paper_default()))
                .unwrap();
        // 1 silicon layer (64 cells) + 64 oil nodes.
        assert_eq!(c.node_count(), 128);
        assert_eq!(c.si_offset(), 0);
        assert_eq!(c.layer_names(), &["silicon"]);
        assert!(c.conductance().is_symmetric(1e-9));
        // Every oil node reaches ambient.
        let oil_grounded = c
            .node_kinds()
            .iter()
            .zip(c.ambient_conductance())
            .filter(|(k, g)| **k == NodeKind::Oil && **g > 0.0)
            .count();
        assert_eq!(oil_grounded, 64);
    }

    #[test]
    fn oil_total_conductance_matches_eqn1() {
        // With uniform (non-local) h the parallel combination of the per-cell
        // half-split pairs equals h·A = 1/Rconv exactly.
        let m = mapping(16, 16);
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        };
        let c = build_circuit(&m, die20(), &Package::OilSilicon(pkg)).unwrap();
        let flow = LaminarFlow::new(crate::fluid::MINERAL_OIL, 10.0, 0.02);
        let expected = 1.0 / flow.overall_resistance(4e-4);
        // Ambient side of every oil pair sums to 2·h·A; the series pair from
        // silicon to ambient per cell is h·A_cell, so the isothermal total is
        // h·A. Check via total ambient conductance = 2hA.
        let total = c.total_ambient_conductance();
        assert!((total - 2.0 * expected).abs() / (2.0 * expected) < 1e-9, "{total} vs {expected}");
    }

    #[test]
    fn local_h_makes_leading_edge_cells_better_cooled() {
        let m = mapping(8, 8);
        let c =
            build_circuit(&m, die20(), &Package::OilSilicon(OilSiliconPackage::paper_default()))
                .unwrap();
        // Oil nodes are appended after the silicon cells in row-major order;
        // the first row's first (left) cell is upstream for LeftToRight.
        let oil_start = 64;
        let g_left = c.ambient_conductance()[oil_start];
        let g_right = c.ambient_conductance()[oil_start + 7];
        assert!(g_left > g_right, "leading edge must couple more strongly: {g_left} vs {g_right}");
    }

    #[test]
    fn air_circuit_structure() {
        let m = mapping(8, 8);
        let pkg = Package::AirSink(AirSinkPackage::paper_default());
        let c = build_circuit(&m, die20(), &pkg).unwrap();
        // Layers: silicon, interface, spreader, sink = 4x64 cells,
        // + 2 rings + 1 coolant.
        assert_eq!(c.node_count(), 4 * 64 + 2 + 1);
        assert_eq!(c.layer_names(), &["silicon", "interface", "spreader", "sink"]);
        assert_eq!(c.si_offset(), 0);
        // Exactly one grounded node: the coolant.
        let grounded: Vec<_> =
            c.ambient_conductance().iter().enumerate().filter(|(_, g)| **g > 0.0).collect();
        assert_eq!(grounded.len(), 1);
        assert_eq!(c.node_kinds()[grounded[0].0], NodeKind::Coolant);
        // Half-split: coolant-to-ambient conductance = 2 / r_convec.
        assert!((grounded[0].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn air_with_secondary_has_nine_layers() {
        let pkg = Package::AirSink(
            AirSinkPackage::paper_default().with_secondary(SecondaryPath::for_air_system()),
        );
        let m = mapping(4, 4);
        let c = build_circuit(&m, die20(), &pkg).unwrap();
        assert_eq!(
            c.layer_names(),
            &[
                "pcb",
                "solder",
                "substrate",
                "c4",
                "interconnect",
                "silicon",
                "interface",
                "spreader",
                "sink"
            ]
        );
        // Silicon is layer index 5.
        assert_eq!(c.si_offset(), 5 * 16);
        // Two coolant nodes now: sink air + PCB natural convection.
        let coolant_count = c.node_kinds().iter().filter(|k| **k == NodeKind::Coolant).count();
        assert_eq!(coolant_count, 2);
    }

    #[test]
    fn oil_with_secondary_has_pcb_oil_film() {
        let pkg = Package::OilSilicon(
            OilSiliconPackage::paper_default().with_secondary(SecondaryPath::for_oil_rig()),
        );
        let m = mapping(4, 4);
        let c = build_circuit(&m, die20(), &pkg).unwrap();
        assert_eq!(
            c.layer_names(),
            &["pcb", "solder", "substrate", "c4", "interconnect", "silicon"]
        );
        // Oil nodes: 16 over the die + 16 + 1 ring oil under the PCB.
        let oil_count = c.node_kinds().iter().filter(|k| **k == NodeKind::Oil).count();
        assert_eq!(oil_count, 16 + 16 + 1);
    }

    #[test]
    fn rhs_injects_power_and_ambient() {
        let m = mapping(4, 4);
        let c =
            build_circuit(&m, die20(), &Package::OilSilicon(OilSiliconPackage::paper_default()))
                .unwrap();
        let mut p = vec![0.0; 16];
        p[5] = 2.5;
        let b = c.rhs(&p, 318.15);
        assert!((b[c.si_offset() + 5] - 2.5).abs() < 1e-12);
        // Oil nodes carry the ambient injection.
        let total_amb: f64 = c.ambient_conductance().iter().sum();
        let b_sum: f64 = b.iter().sum();
        assert!((b_sum - (2.5 + total_amb * 318.15)).abs() < 1e-6);
    }

    #[test]
    fn target_rconv_rescales_velocity() {
        let m = mapping(8, 8);
        let pkg = OilSiliconPackage {
            local_h: false,
            local_boundary_layer: false,
            ..OilSiliconPackage::paper_default()
        }
        .with_target_r_convec(0.3);
        let c = build_circuit(&m, die20(), &Package::OilSilicon(pkg)).unwrap();
        // Total ambient conductance should be 2 / 0.3.
        let total = c.total_ambient_conductance();
        assert!((total - 2.0 / 0.3).abs() / (2.0 / 0.3) < 1e-6, "total {total}");
    }

    #[test]
    fn capacitances_positive() {
        let m = mapping(4, 4);
        for pkg in [
            Package::OilSilicon(
                OilSiliconPackage::paper_default().with_secondary(SecondaryPath::for_oil_rig()),
            ),
            Package::AirSink(
                AirSinkPackage::paper_default().with_secondary(SecondaryPath::for_air_system()),
            ),
        ] {
            let c = build_circuit(&m, die20(), &pkg).unwrap();
            for (i, cv) in c.capacitance().iter().enumerate() {
                assert!(*cv > 0.0, "node {i} of {} has cap {cv}", pkg.label());
            }
        }
    }

    #[test]
    fn silicon_capacitance_matches_hand_calculation() {
        let m = mapping(8, 8);
        let c =
            build_circuit(&m, die20(), &Package::OilSilicon(OilSiliconPackage::paper_default()))
                .unwrap();
        let si_total: f64 = c.capacitance()[..64].iter().sum();
        // 1.75e6 J/m³K x 4e-4 m² x 0.5e-3 m = 0.35 J/K.
        assert!((si_total - 0.35).abs() < 1e-9, "{si_total}");
    }

    #[test]
    fn oil_pcb_cooling_needs_oil_package() {
        let m = mapping(2, 2);
        let pkg = Package::AirSink(
            AirSinkPackage::paper_default().with_secondary(SecondaryPath::for_oil_rig()),
        );
        let err = build_circuit(&m, die20(), &pkg).unwrap_err();
        assert!(matches!(err, StackError::IncompatibleCooling { .. }));
        assert!(err.to_string().contains("OilSilicon"), "{err}");
    }

    #[test]
    fn undersized_plate_is_a_typed_error() {
        let m = mapping(2, 2);
        let mut pkg = AirSinkPackage::paper_default();
        pkg.spreader.side = 0.01; // smaller than the 20 mm die
        let err = build_circuit(&m, die20(), &Package::AirSink(pkg)).unwrap_err();
        match &err {
            StackError::PlateSmallerThanDie { layer, .. } => assert_eq!(layer, "spreader"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn stack_route_matches_package_route() {
        // build_circuit is exactly to_stack + build_circuit_from_stack.
        let m = mapping(8, 8);
        for pkg in [
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            Package::AirSink(AirSinkPackage::paper_default()),
        ] {
            let direct = build_circuit(&m, die20(), &pkg).unwrap();
            let stack = pkg.to_stack(die20()).unwrap();
            let via_stack = build_circuit_from_stack(&m, die20(), &stack).unwrap();
            assert_eq!(direct.node_count(), via_stack.node_count());
            assert_eq!(direct.layer_names(), via_stack.layer_names());
            assert_eq!(direct.capacitance(), via_stack.capacitance());
            assert_eq!(direct.ambient_conductance(), via_stack.ambient_conductance());
        }
    }

    #[test]
    fn bare_die_lumped_stack_assembles() {
        // A configuration the closed Package enum cannot express: bare die
        // cooled by a lumped (forced-air) path, no spreader or sink.
        let m = mapping(8, 8);
        let stack =
            LayerStack::new(vec![Layer::new("silicon", crate::materials::SILICON, 0.5e-3)], 0)
                .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 });
        let c = build_circuit_from_stack(&m, die20(), &stack).unwrap();
        assert_eq!(c.layer_names(), &["silicon"]);
        assert_eq!(c.node_count(), 64 + 1);
        let coolant = c.node_kinds().iter().position(|k| *k == NodeKind::Coolant).unwrap();
        assert!((c.ambient_conductance()[coolant] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oil_washed_spreader_stack_assembles() {
        // Oil washing the spreader top — also inexpressible under the enum.
        let m = mapping(8, 8);
        let air = AirSinkPackage::paper_default();
        let stack = LayerStack::new(
            vec![
                Layer::new("silicon", crate::materials::SILICON, 0.5e-3),
                Layer::new("interface", air.interface_material, air.interface_thickness),
                Layer::plate("spreader", air.spreader.material, air.spreader.thickness, 0.03),
            ],
            0,
        )
        .with_top(Boundary::OilFilm(OilFilm {
            fluid: crate::fluid::MINERAL_OIL,
            velocity: 10.0,
            direction: crate::convection::FlowDirection::LeftToRight,
            local_h: true,
            local_boundary_layer: true,
        }));
        let c = build_circuit_from_stack(&m, die20(), &stack).unwrap();
        assert_eq!(c.layer_names(), &["silicon", "interface", "spreader"]);
        // 3 layers x 64 cells + 1 spreader ring + 64 cell oil + 1 ring oil.
        assert_eq!(c.node_count(), 3 * 64 + 1 + 64 + 1);
        assert!(c.conductance().is_symmetric(1e-9));
    }

    /// A family of physically distinct stacks (varying die thickness) for
    /// exercising the LRU bound with cheap 2×2 assemblies.
    fn stack_nr(i: usize) -> LayerStack {
        LayerStack::new(
            vec![Layer::new("silicon", crate::materials::SILICON, 0.1e-3 * (i + 1) as f64)],
            0,
        )
        .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 })
    }

    #[test]
    fn lru_cache_respects_capacity_and_counts_evictions() {
        let m = mapping(2, 2);
        let cache = CircuitCache::new(3);
        for i in 0..5 {
            let (_, hit) = cache.get_or_build(&m, die20(), &stack_nr(i)).unwrap();
            assert!(!hit, "stack {i} is new");
        }
        let c = cache.counters();
        assert_eq!(c.len, 3, "capacity bounds occupancy");
        assert_eq!(c.capacity, 3);
        assert_eq!(c.misses, 5);
        assert_eq!(c.evictions, 2, "two inserts displaced the LRU entry");
        assert_eq!(c.hits, 0);
    }

    #[test]
    fn lru_cache_evicts_least_recently_used() {
        let m = mapping(2, 2);
        let cache = CircuitCache::new(2);
        let (a0, _) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        cache.get_or_build(&m, die20(), &stack_nr(1)).unwrap();
        // Touch 0 so 1 becomes the LRU entry, then insert 2.
        let (a0_again, hit) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a0, &a0_again));
        cache.get_or_build(&m, die20(), &stack_nr(2)).unwrap();
        // 0 survived (recently used), 1 was evicted.
        let (_, hit0) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        assert!(hit0, "recently used entry survives eviction");
        let (_, hit1) = cache.get_or_build(&m, die20(), &stack_nr(1)).unwrap();
        assert!(!hit1, "LRU entry was evicted and must rebuild");
        let c = cache.counters();
        assert_eq!(c.hits, 2);
        assert_eq!(c.evictions, 2);
    }

    #[test]
    fn lru_cache_hit_returns_shared_arc_and_clear_preserves_counters() {
        let m = mapping(4, 4);
        let cache = CircuitCache::new(4);
        let (a, first_hit) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        assert!(!first_hit);
        let (b, hit) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b));
        cache.clear();
        assert!(cache.is_empty());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1), "clear drops circuits, not telemetry");
    }

    use crate::board::{Board, PcbSpec, Placement, Rotation, ViaField};

    fn pcb_spec() -> PcbSpec {
        PcbSpec {
            width: 0.08,
            height: 0.06,
            thickness: 1.6e-3,
            material: crate::materials::PCB,
            bottom: Boundary::Lumped { r_total: 4.0, c_total: 200.0 },
        }
    }

    fn placement(name: &str, stack: LayerStack, x: f64, y: f64) -> Placement {
        Placement { name: name.into(), die: die20(), stack, x, y, rotation: Rotation::R0 }
    }

    /// Two-package board over a PCB: a bare lumped-top die and an air-sink
    /// package, both bottoms insulated (heat leaves through the board).
    fn two_package_board(rows: usize, cols: usize) -> (Board, Vec<GridMapping>) {
        let bare =
            LayerStack::new(vec![Layer::new("silicon", crate::materials::SILICON, 0.5e-3)], 0)
                .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 });
        let sink = Package::AirSink(AirSinkPackage::paper_default()).to_stack(die20()).unwrap();
        let board = Board::new(rows, cols, pcb_spec())
            .with_placement(placement("u1", bare, 0.005, 0.005))
            .with_placement(placement("u2", sink, 0.045, 0.03));
        let mappings = vec![mapping(rows, cols), mapping(rows, cols)];
        (board, mappings)
    }

    #[test]
    fn free_standing_board_is_bitwise_identical_to_stack_circuit() {
        // The acceptance anchor: a single-placement no-PCB board must lower
        // through the general board assembler to EXACTLY the circuit
        // `build_circuit_from_stack` produces — same node numbering, same
        // stamp order, bit-equal floats.
        let m = mapping(8, 8);
        for stack in [
            Package::OilSilicon(OilSiliconPackage::paper_default()).to_stack(die20()).unwrap(),
            Package::AirSink(
                AirSinkPackage::paper_default().with_secondary(SecondaryPath::for_air_system()),
            )
            .to_stack(die20())
            .unwrap(),
            LayerStack::new(vec![Layer::new("silicon", crate::materials::SILICON, 0.5e-3)], 0)
                .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 }),
        ] {
            let via_stack = build_circuit_from_stack(&m, die20(), &stack).unwrap();
            let board = Board::free_standing(
                8,
                8,
                Placement {
                    name: "solo".into(),
                    die: die20(),
                    stack: stack.clone(),
                    x: 0.0,
                    y: 0.0,
                    rotation: Rotation::R0,
                },
            );
            let via_board = build_circuit_from_board(&board, std::slice::from_ref(&m)).unwrap();
            assert_eq!(via_board.node_count(), via_stack.node_count());
            assert_eq!(via_board.layer_names(), via_stack.layer_names());
            assert_eq!(via_board.node_kinds(), via_stack.node_kinds());
            assert_eq!(via_board.si_offset(), via_stack.si_offset());
            // Bitwise: capacitances, ambient couplings and the CSR itself.
            assert_eq!(via_board.capacitance(), via_stack.capacitance());
            assert_eq!(via_board.ambient_conductance(), via_stack.ambient_conductance());
            let (gb, gs) = (via_board.conductance(), via_stack.conductance());
            assert_eq!(gb.row_offsets(), gs.row_offsets());
            assert_eq!(gb.col_indices(), gs.col_indices());
            assert_eq!(gb.values(), gs.values());
            assert!(via_board.board_nodes().is_none(), "free-standing = plain stack circuit");
        }
    }

    #[test]
    fn board_circuit_structure() {
        let (board, mappings) = two_package_board(8, 8);
        let c = build_circuit_from_board(&board, &mappings).unwrap();
        // Planes: u1 silicon + u2's 4 layers + pcb = 6 × 64 cells,
        // + 2 rings (u2 spreader/sink) + u1 coolant + u2 coolant + pcb coolant.
        assert_eq!(c.node_count(), 6 * 64 + 2 + 3);
        assert_eq!(
            c.layer_names(),
            &["u1/silicon", "u2/silicon", "u2/interface", "u2/spreader", "u2/sink", "pcb"]
        );
        let nodes = c.board_nodes().expect("PCB board carries metadata");
        assert_eq!(nodes.pcb_plane, 5);
        assert_eq!(nodes.placements.len(), 2);
        assert_eq!((nodes.placements[0].si_plane, nodes.placements[1].si_plane), (0, 1));
        assert!(c.conductance().is_symmetric(1e-9));
        // Every PCB cell has positive capacitance and the coolant count is 3.
        let coolants = c.node_kinds().iter().filter(|k| **k == NodeKind::Coolant).count();
        assert_eq!(coolants, 3);
        assert!(c.capacitance().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn board_rhs_injects_each_placement() {
        let (board, mappings) = two_package_board(4, 4);
        let c = build_circuit_from_board(&board, &mappings).unwrap();
        let mut p = vec![0.0; 2 * 16];
        p[3] = 1.5; // u1 silicon cell 3
        p[16 + 7] = 2.5; // u2 silicon cell 7
        let b = c.rhs(&p, 318.15);
        let nodes = c.board_nodes().unwrap();
        assert!(
            (b[nodes.placements[0].si_plane * 16 + 3]
                - (1.5 + c.ambient_conductance()[3] * 318.15))
                .abs()
                < 1e-9
        );
        let n2 = nodes.placements[1].si_plane * 16 + 7;
        assert!((b[n2] - (2.5 + c.ambient_conductance()[n2] * 318.15)).abs() < 1e-9);
        let b_sum: f64 = b.iter().sum();
        let amb_sum: f64 = c.ambient_conductance().iter().sum();
        assert!((b_sum - (4.0 + amb_sum * 318.15)).abs() < 1e-6);
    }

    #[test]
    fn via_field_strengthens_board_coupling() {
        let (board, mappings) = two_package_board(4, 4);
        let plain = build_circuit_from_board(&board, &mappings).unwrap();
        let with_via = build_circuit_from_board(
            &board.clone().with_via(ViaField {
                name: "pad1".into(),
                x: 0.005,
                y: 0.005,
                width: 0.02,
                height: 0.02,
                conductance_per_area: 5e4,
            }),
            &mappings,
        )
        .unwrap();
        // Same structure, strictly larger diagonal conductance mass (the
        // full-matrix sum is stamp-neutral: +g on two diagonals, −g twice
        // off-diagonal).
        assert_eq!(plain.node_count(), with_via.node_count());
        let diag_sum = |c: &ThermalCircuit| {
            (0..c.node_count()).map(|i| c.conductance().diagonal(i)).sum::<f64>()
        };
        assert!(diag_sum(&with_via) > diag_sum(&plain), "via field must add conductance");
    }

    #[test]
    fn rotated_placement_changes_coupling_pattern_not_totals() {
        // Rotating a placement permutes which PCB cells it couples into, but
        // conserves the total placement→PCB conductance (no vias involved).
        let die = DieGeometry { width: 0.02, height: 0.01, thickness: 0.5e-3 };
        let stack =
            LayerStack::new(vec![Layer::new("silicon", crate::materials::SILICON, 0.5e-3)], 0)
                .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 });
        let build = |rotation: Rotation| {
            let plan = hotiron_floorplan::library::uniform_die(die.width, die.height);
            let m = GridMapping::new(&plan, 4, 4);
            let board = Board::new(4, 4, pcb_spec()).with_placement(Placement {
                name: "u1".into(),
                die,
                stack: stack.clone(),
                x: 0.01,
                y: 0.01,
                rotation,
            });
            build_circuit_from_board(&board, &[m]).unwrap()
        };
        let r0 = build(Rotation::R0);
        let r90 = build(Rotation::R90);
        let sum = |c: &ThermalCircuit| c.conductance().values().iter().sum::<f64>();
        assert!((sum(&r0) - sum(&r90)).abs() < 1e-9 * sum(&r0).abs());
        assert_ne!(
            r0.conductance().col_indices(),
            r90.conductance().col_indices(),
            "rotation must move the PCB coupling pattern"
        );
    }

    #[test]
    fn board_cache_round_trips() {
        let cache = CircuitCache::new(4);
        let (board, mappings) = two_package_board(4, 4);
        let (a, hit_a) = cache.get_or_build_board(&board, &mappings).unwrap();
        assert!(!hit_a);
        let (b, hit_b) = cache.get_or_build_board(&board, &mappings).unwrap();
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        // A moved placement is a different circuit.
        let mut moved = board.clone();
        moved.placements[0].x += 1e-3;
        let (c, hit_c) = cache.get_or_build_board(&moved, &mappings).unwrap();
        assert!(!hit_c);
        assert!(!Arc::ptr_eq(&a, &c));
        // Stack and board keys share the store without colliding.
        let m = mapping(4, 4);
        let (d, hit_d) = cache.get_or_build(&m, die20(), &stack_nr(0)).unwrap();
        assert!(!hit_d);
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn board_mapping_mismatch_is_typed() {
        let (board, _) = two_package_board(8, 8);
        let bad = vec![mapping(4, 4), mapping(8, 8)];
        let err = build_circuit_from_board(&board, &bad).unwrap_err();
        match &err {
            crate::board::BoardError::GridMismatch { placement, .. } => {
                assert_eq!(placement, "u1");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("u1"), "{err}");
    }

    #[test]
    fn cached_builds_share_one_circuit() {
        let m = mapping(8, 8);
        let stack =
            Package::OilSilicon(OilSiliconPackage::paper_default()).to_stack(die20()).unwrap();
        let a = build_circuit_cached(&m, die20(), &stack).unwrap();
        let b = build_circuit_cached(&m, die20(), &stack).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "identical stacks must share one circuit");
        // A physically different stack gets its own circuit.
        let other = Package::OilSilicon(
            OilSiliconPackage::paper_default()
                .with_direction(crate::convection::FlowDirection::TopToBottom),
        )
        .to_stack(die20())
        .unwrap();
        let c = build_circuit_cached(&m, die20(), &other).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // Same stack at a different grid too.
        let m2 = mapping(4, 4);
        let d = build_circuit_cached(&m2, die20(), &stack).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
    }
}
