//! Compact thermal modeling of AIR-SINK and OIL-SILICON cooling.
//!
//! This crate reimplements the HotSpot-style compact thermal model with the
//! extensions of Huang et al., *"Differentiating the Roles of IR Measurement
//! and Simulation for Power and Temperature-Aware Design"* (ISPASS 2009):
//!
//! * an **IR-transparent laminar oil flow over the bare die**
//!   ([`package::OilSiliconPackage`]), including the position-dependent
//!   local heat-transfer coefficient that makes the flow *direction* move
//!   hot spots, and
//! * the **secondary heat-transfer path** through interconnect, C4 bumps,
//!   package substrate, solder balls and PCB ([`package::SecondaryPath`]).
//!
//! The conventional forced-air copper heatsink ([`package::AirSinkPackage`])
//! is modeled as in stock HotSpot for comparison.
//!
//! # Quick start
//!
//! ```
//! use hotiron_floorplan::library;
//! use hotiron_thermal::model::{ModelConfig, ThermalModel};
//! use hotiron_thermal::package::{OilSiliconPackage, Package};
//! use hotiron_thermal::power::PowerMap;
//!
//! let plan = library::ev6();
//! let model = ThermalModel::new(
//!     plan.clone(),
//!     Package::OilSilicon(OilSiliconPackage::paper_default()),
//!     ModelConfig::paper_default().with_grid(16, 16),
//! )?;
//! let power = PowerMap::from_pairs(&plan, [("IntReg", 2.0), ("L2", 10.0)])?;
//! let sol = model.steady_state(&power)?;
//! println!("hottest: {:?}", sol.hottest_block());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analytic;
pub mod blockmodel;
pub mod board;
pub mod cholesky;
pub mod circuit;
pub mod convection;
pub mod fft;
pub mod fluid;
pub mod greens;
pub mod materials;
pub mod model;
pub mod multigrid;
pub mod package;
pub mod pool;
pub mod power;
pub mod solve;
pub mod sparse;
pub mod stack;
pub mod units;

pub use blockmodel::BlockModel;
pub use board::{Board, BoardError, PcbSpec, Placement, Rotation, ViaField};
pub use cholesky::{FactorError, LdlFactor};
pub use circuit::{CacheCounters, CircuitCache};
pub use convection::{FlowDirection, LaminarFlow};
pub use fluid::Fluid;
pub use materials::Material;
pub use model::{ModelConfig, Solution, ThermalError, ThermalModel, TransientSim};
pub use multigrid::{MgOptions, MgStats, Multigrid};
pub use package::{AirSinkPackage, OilSiliconPackage, Package, SecondaryPath};
pub use power::PowerMap;
pub use solve::SolverChoice;
pub use stack::{Boundary, DieGeometry, Layer, LayerStack, OilFilm, StackError};
