//! Solid material properties for the layer stack.
//!
//! All properties are SI: thermal conductivity in W/(m·K) and *volumetric*
//! heat capacity in J/(m³·K) (specific heat x density), the two quantities a
//! lumped RC discretization needs.

/// An isotropic solid material.
///
/// # Examples
///
/// ```
/// use hotiron_thermal::materials::{Material, SILICON};
///
/// // The paper's R_th,Si = 0.0125 K/W for a 0.5 mm die over 4 cm².
/// let r = SILICON.vertical_resistance(0.5e-3, 4.0e-4);
/// assert!((r - 0.0125).abs() < 1e-6);
/// let custom = Material::new("diamond", 2200.0, 1.78e6);
/// assert!(custom.conductivity() > SILICON.conductivity());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    name: &'static str,
    /// Thermal conductivity, W/(m·K).
    conductivity: f64,
    /// Volumetric heat capacity, J/(m³·K).
    volumetric_heat_capacity: f64,
}

impl Material {
    /// Creates a material from conductivity (W/m·K) and volumetric heat
    /// capacity (J/m³·K).
    ///
    /// # Panics
    ///
    /// Panics if either property is not strictly positive and finite.
    pub const fn new(name: &'static str, conductivity: f64, volumetric_heat_capacity: f64) -> Self {
        assert!(conductivity > 0.0, "conductivity must be positive");
        assert!(volumetric_heat_capacity > 0.0, "heat capacity must be positive");
        Self { name, conductivity, volumetric_heat_capacity }
    }

    /// Material name.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Thermal conductivity, W/(m·K).
    pub const fn conductivity(&self) -> f64 {
        self.conductivity
    }

    /// Volumetric heat capacity, J/(m³·K).
    pub const fn volumetric_heat_capacity(&self) -> f64 {
        self.volumetric_heat_capacity
    }

    /// Conduction resistance through thickness `t` (m) across area `a` (m²),
    /// in K/W: `R = t / (k·A)`.
    pub fn vertical_resistance(&self, t: f64, a: f64) -> f64 {
        t / (self.conductivity * a)
    }

    /// Lateral conduction resistance over length `len` (m) through a
    /// cross-section `a` (m²), in K/W.
    pub fn lateral_resistance(&self, len: f64, a: f64) -> f64 {
        len / (self.conductivity * a)
    }

    /// Heat capacity of a volume `v` (m³), in J/K.
    pub fn capacitance(&self, v: f64) -> f64 {
        self.volumetric_heat_capacity * v
    }
}

/// Bulk silicon. `k = 100 W/m·K` is HotSpot's value and reproduces the
/// paper's `R_th,Si = 0.0125 K/W` example exactly.
pub const SILICON: Material = Material::new("silicon", 100.0, 1.75e6);

/// Copper (heat spreader, heatsink base).
pub const COPPER: Material = Material::new("copper", 400.0, 3.55e6);

/// Thermal interface material between die and spreader (HotSpot default).
pub const INTERFACE: Material = Material::new("interface", 4.0, 4.0e6);

/// On-chip interconnect stack: Cu wires embedded in dielectric, treated as a
/// composite (secondary-path layer 1).
pub const INTERCONNECT: Material = Material::new("interconnect", 7.0, 2.0e6);

/// C4 solder bumps in underfill epoxy, treated as a composite
/// (secondary-path layer 2).
pub const C4_UNDERFILL: Material = Material::new("c4-underfill", 1.2, 2.2e6);

/// Organic package substrate with thermal vias (secondary-path layer 3).
pub const SUBSTRATE: Material = Material::new("substrate", 5.0, 1.8e6);

/// BGA solder-ball layer: solder spheres plus air gaps, composite
/// (secondary-path layer 4).
pub const SOLDER_BALLS: Material = Material::new("solder-balls", 2.0, 1.5e6);

/// FR4 printed-circuit board with copper planes, composite
/// (secondary-path layer 5).
pub const PCB: Material = Material::new("pcb", 0.8, 1.9e6);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silicon_matches_paper_example() {
        // §4.1.2: R_th,Si = 0.0125 K/W for the 20x20x0.5 mm die.
        let r = SILICON.vertical_resistance(0.5e-3, 0.02 * 0.02);
        assert!((r - 0.0125).abs() < 1e-9);
    }

    #[test]
    fn heatsink_capacitance_dwarfs_silicon() {
        // §4.1.2: C_sink ≈ 250x C_si.
        let c_si = SILICON.capacitance(0.02 * 0.02 * 0.5e-3);
        let c_sink = COPPER.capacitance(0.06 * 0.06 * 6.9e-3);
        let ratio = c_sink / c_si;
        assert!(ratio > 150.0 && ratio < 400.0, "ratio {ratio}");
    }

    #[test]
    fn resistances_scale_properly() {
        let m = Material::new("m", 10.0, 1e6);
        assert!((m.vertical_resistance(1e-3, 1e-4) - 1.0).abs() < 1e-12);
        // Doubling area halves resistance.
        assert!((m.vertical_resistance(1e-3, 2e-4) - 0.5).abs() < 1e-12);
        // Doubling length doubles lateral resistance.
        let r1 = m.lateral_resistance(1e-3, 1e-6);
        let r2 = m.lateral_resistance(2e-3, 1e-6);
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capacitance_is_volumetric() {
        assert!((COPPER.capacitance(1.0) - 3.55e6).abs() < 1.0);
    }

    #[test]
    fn copper_spreads_better_than_oil_film_conducts() {
        // The core qualitative fact behind every figure: copper's k is ~3000x
        // a mineral oil's (0.13), so lateral spreading in the spreader/sink
        // dominates while the oil cannot spread heat at all.
        assert!(COPPER.conductivity() / 0.13 > 3000.0 - 1.0);
    }
}
