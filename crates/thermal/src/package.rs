//! Thermal package descriptions: AIR-SINK, OIL-SILICON and the secondary
//! heat-transfer path.
//!
//! A package describes everything *around* the silicon die. The circuit
//! builder (`crate::circuit`) turns a die floorplan plus a package into an
//! RC network.

use crate::convection::{FlowDirection, LaminarFlow};
use crate::fluid::{Fluid, MINERAL_OIL};
use crate::materials::{
    Material, C4_UNDERFILL, COPPER, INTERCONNECT, INTERFACE, PCB, SOLDER_BALLS, SUBSTRATE,
};
use crate::stack::{Boundary, DieGeometry, Layer, LayerStack, OilFilm, StackError};

/// A square package component larger than the die (spreader, heatsink,
/// substrate, PCB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlateSpec {
    /// Side length of the square plate, m.
    pub side: f64,
    /// Thickness, m.
    pub thickness: f64,
    /// Plate material.
    pub material: Material,
}

impl PlateSpec {
    /// Creates a plate spec.
    ///
    /// # Panics
    ///
    /// Panics if `side` or `thickness` is not strictly positive and finite.
    pub fn new(side: f64, thickness: f64, material: Material) -> Self {
        assert!(side.is_finite() && side > 0.0, "plate side must be positive");
        assert!(thickness.is_finite() && thickness > 0.0, "plate thickness must be positive");
        Self { side, thickness, material }
    }
}

/// How the exposed PCB back side sheds heat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PcbCooling {
    /// The same oil flow that washes the die also washes the PCB back
    /// (the IR measurement rig of the paper's Fig 1).
    Oil,
    /// A lumped convection path (e.g. natural convection in a desktop case):
    /// total resistance (K/W) and capacitance (J/K).
    Fixed {
        /// Total PCB-to-ambient resistance, K/W.
        r: f64,
        /// Lumped coolant capacitance, J/K.
        c: f64,
    },
    /// Adiabatic PCB back (used in sensitivity studies).
    Insulated,
}

/// The secondary heat-transfer path of the paper's Fig 1: on-chip
/// interconnect, C4 bumps + underfill, package substrate, solder balls and
/// the printed-circuit board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondaryPath {
    /// On-chip interconnect (metal + dielectric) layer thickness, m.
    pub interconnect_thickness: f64,
    /// Interconnect composite material.
    pub interconnect_material: Material,
    /// C4 pads + underfill layer thickness, m.
    pub c4_thickness: f64,
    /// C4/underfill composite material.
    pub c4_material: Material,
    /// Package substrate plate (larger than the die).
    pub substrate: PlateSpec,
    /// Solder-ball layer thickness, m (under the substrate footprint).
    pub solder_thickness: f64,
    /// Solder-ball composite material.
    pub solder_material: Material,
    /// Printed-circuit board plate (larger than the substrate).
    pub pcb: PlateSpec,
    /// PCB back-side cooling.
    pub pcb_cooling: PcbCooling,
}

impl SecondaryPath {
    /// Secondary path for an IR measurement rig: PCB back washed by the oil.
    pub fn for_oil_rig() -> Self {
        Self { pcb_cooling: PcbCooling::Oil, ..Self::baseline() }
    }

    /// Secondary path for a conventional system: PCB sheds heat by natural
    /// convection (a large, slow path).
    pub fn for_air_system() -> Self {
        Self { pcb_cooling: PcbCooling::Fixed { r: 8.0, c: 200.0 }, ..Self::baseline() }
    }

    fn baseline() -> Self {
        Self {
            interconnect_thickness: 12e-6,
            interconnect_material: INTERCONNECT,
            c4_thickness: 150e-6,
            c4_material: C4_UNDERFILL,
            substrate: PlateSpec::new(0.035, 1.2e-3, SUBSTRATE),
            solder_thickness: 0.6e-3,
            solder_material: SOLDER_BALLS,
            pcb: PlateSpec::new(0.1, 1.6e-3, PCB),
            pcb_cooling: PcbCooling::Insulated,
        }
    }
}

/// Forced-air cooling over a copper heatsink: HotSpot's default package
/// (TIM → spreader → sink → lumped convection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirSinkPackage {
    /// Thermal-interface-material bondline thickness, m.
    pub interface_thickness: f64,
    /// TIM material.
    pub interface_material: Material,
    /// Copper heat spreader.
    pub spreader: PlateSpec,
    /// Copper heatsink base (fins folded into `r_convec`/`c_convec`).
    pub sink: PlateSpec,
    /// Sink-to-ambient convection resistance, K/W (the paper's `Rconv`).
    pub r_convec: f64,
    /// Lumped convection (air + fin) capacitance, J/K.
    pub c_convec: f64,
    /// Optional secondary heat-transfer path.
    pub secondary: Option<SecondaryPath>,
}

impl AirSinkPackage {
    /// The paper's §4 configuration: HotSpot-default copper spreader and
    /// sink with `Rconv = 1.0 K/W` and no secondary path.
    pub fn paper_default() -> Self {
        Self {
            interface_thickness: 20e-6,
            interface_material: INTERFACE,
            spreader: PlateSpec::new(0.03, 1.0e-3, COPPER),
            sink: PlateSpec::new(0.06, 6.9e-3, COPPER),
            r_convec: 1.0,
            c_convec: 140.4,
            secondary: None,
        }
    }

    /// Same geometry with a different convection resistance (Fig 12 uses
    /// 0.3 K/W).
    pub fn with_r_convec(mut self, r: f64) -> Self {
        assert!(r.is_finite() && r > 0.0, "r_convec must be positive");
        self.r_convec = r;
        self
    }

    /// Attaches the secondary heat-transfer path.
    pub fn with_secondary(mut self, secondary: SecondaryPath) -> Self {
        self.secondary = Some(secondary);
        self
    }
}

impl Default for AirSinkPackage {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Laminar oil flow over the exposed bare die: the IR-imaging cooling
/// configuration (the paper's §3 extension to HotSpot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OilSiliconPackage {
    /// The coolant.
    pub oil: Fluid,
    /// Bulk flow velocity, m/s.
    pub velocity: f64,
    /// Flow direction across the die.
    pub direction: FlowDirection,
    /// Use the position-dependent `h(x)` of Eqn 8 (true) or a uniform
    /// average `h_L` of Eqn 2 (false — "no flow direction assumed").
    pub local_h: bool,
    /// Size the per-cell oil capacitance with the local boundary-layer
    /// thickness `δt(x)` (true) or the trailing-edge value of Eqn 4 (false,
    /// the paper's lumped Eqn 3).
    pub local_boundary_layer: bool,
    /// If set, the velocity is adjusted at model-build time so the overall
    /// die convection resistance of Eqn 1 equals this value (the paper's
    /// Fig 12 "artificially set to 0.3 K/W").
    pub target_r_convec: Option<f64>,
    /// Optional secondary heat-transfer path.
    pub secondary: Option<SecondaryPath>,
}

impl OilSiliconPackage {
    /// The paper's §3.2 validation configuration: 10 m/s mineral oil,
    /// left-to-right, local `h(x)`, no secondary path.
    pub fn paper_default() -> Self {
        Self {
            oil: MINERAL_OIL,
            velocity: 10.0,
            direction: FlowDirection::LeftToRight,
            local_h: true,
            local_boundary_layer: true,
            target_r_convec: None,
            secondary: None,
        }
    }

    /// Sets the flow direction.
    pub fn with_direction(mut self, direction: FlowDirection) -> Self {
        self.direction = direction;
        self
    }

    /// Requests an overall `Rconv` (velocity solved at model build).
    pub fn with_target_r_convec(mut self, r: f64) -> Self {
        assert!(r.is_finite() && r > 0.0, "target Rconv must be positive");
        self.target_r_convec = Some(r);
        self
    }

    /// Attaches the secondary heat-transfer path.
    pub fn with_secondary(mut self, secondary: SecondaryPath) -> Self {
        self.secondary = Some(secondary);
        self
    }

    /// Disables the flow-direction dependence (uniform average `h`).
    pub fn with_uniform_h(mut self) -> Self {
        self.local_h = false;
        self
    }

    /// Fully position-independent film: uniform average `h` *and* uniform
    /// overall boundary-layer thickness, so the oil conductances and the
    /// film's stored-heat capacitance are identical at every cell. This is
    /// the shape the spectral transient stepper requires.
    pub fn with_uniform_film(mut self) -> Self {
        self.local_h = false;
        self.local_boundary_layer = false;
        self
    }

    /// The oil film this package puts over the die, with `target_r_convec`
    /// (if set) resolved to a velocity: from Eqns 1–2, `R ∝ 1/√u`, so the
    /// velocity that yields the requested overall resistance is solved at
    /// lowering time and baked into the film.
    pub fn film_over(&self, die: DieGeometry) -> OilFilm {
        let mut velocity = self.velocity;
        if let Some(target) = self.target_r_convec {
            let length = self.direction.flow_length(die.width, die.height);
            let flow = LaminarFlow::new(self.oil, self.velocity, length);
            velocity = flow.velocity_for_resistance(target, die.width * die.height);
        }
        OilFilm {
            fluid: self.oil,
            velocity,
            direction: self.direction,
            local_h: self.local_h,
            local_boundary_layer: self.local_boundary_layer,
        }
    }
}

impl Default for OilSiliconPackage {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A complete cooling configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Package {
    /// Forced air over a copper heatsink (conventional operation).
    AirSink(AirSinkPackage),
    /// Laminar oil over bare silicon (IR measurement rig).
    OilSilicon(OilSiliconPackage),
}

impl Package {
    /// Short label for reports ("AIR-SINK" / "OIL-SILICON").
    pub fn label(&self) -> &'static str {
        match self {
            Package::AirSink(_) => "AIR-SINK",
            Package::OilSilicon(_) => "OIL-SILICON",
        }
    }

    /// The attached secondary path, if any.
    pub fn secondary(&self) -> Option<&SecondaryPath> {
        match self {
            Package::AirSink(p) => p.secondary.as_ref(),
            Package::OilSilicon(p) => p.secondary.as_ref(),
        }
    }

    /// Lowers the package into the open [`LayerStack`] IR for a given die.
    ///
    /// This is the *only* place the closed enum is interpreted; every
    /// assembler (grid circuit, block model) consumes the resulting stack.
    /// A package's `target_r_convec` is resolved to a concrete oil velocity
    /// here, so the stack is self-contained.
    ///
    /// # Errors
    ///
    /// [`StackError::IncompatibleCooling`] when the secondary path requests
    /// [`PcbCooling::Oil`] on an AIR-SINK package (no oil flow exists to
    /// wash the PCB with).
    pub fn to_stack(&self, die: DieGeometry) -> Result<LayerStack, StackError> {
        use crate::materials::SILICON;
        let mut layers = Vec::new();
        let mut bottom = Boundary::Insulated;

        // Secondary path below the die, bottom-first.
        if let Some(sec) = self.secondary() {
            bottom = match sec.pcb_cooling {
                PcbCooling::Oil => match self {
                    Package::OilSilicon(p) => Boundary::OilFilm(OilFilm {
                        fluid: p.oil,
                        velocity: p.velocity,
                        direction: p.direction,
                        local_h: p.local_h,
                        local_boundary_layer: p.local_boundary_layer,
                    }),
                    Package::AirSink(_) => {
                        return Err(StackError::IncompatibleCooling {
                            reason: "PcbCooling::Oil requires an OilSilicon package \
                                     (an AIR-SINK system has no oil flow to wash the PCB)"
                                .into(),
                        })
                    }
                },
                PcbCooling::Fixed { r, c } => Boundary::Lumped { r_total: r, c_total: c },
                PcbCooling::Insulated => Boundary::Insulated,
            };
            // Solder balls sit under the whole substrate, so the solder
            // layer inherits the substrate's extent to keep the ring chain
            // connected.
            layers.push(Layer::plate("pcb", sec.pcb.material, sec.pcb.thickness, sec.pcb.side));
            layers.push(Layer::plate(
                "solder",
                sec.solder_material,
                sec.solder_thickness,
                sec.substrate.side,
            ));
            layers.push(Layer::plate(
                "substrate",
                sec.substrate.material,
                sec.substrate.thickness,
                sec.substrate.side,
            ));
            layers.push(Layer::new("c4", sec.c4_material, sec.c4_thickness));
            layers.push(Layer::new(
                "interconnect",
                sec.interconnect_material,
                sec.interconnect_thickness,
            ));
        }

        let si_index = layers.len();
        layers.push(Layer::new("silicon", SILICON, die.thickness));

        let top = match self {
            Package::AirSink(p) => {
                layers.push(Layer::new("interface", p.interface_material, p.interface_thickness));
                layers.push(Layer::plate(
                    "spreader",
                    p.spreader.material,
                    p.spreader.thickness,
                    p.spreader.side,
                ));
                layers.push(Layer::plate("sink", p.sink.material, p.sink.thickness, p.sink.side));
                Boundary::Lumped { r_total: p.r_convec, c_total: p.c_convec }
            }
            Package::OilSilicon(p) => Boundary::OilFilm(p.film_over(die)),
        };
        Ok(LayerStack { layers, si_index, bottom, top })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let air = AirSinkPackage::paper_default();
        assert_eq!(air.r_convec, 1.0);
        assert_eq!(air.spreader.side, 0.03);
        assert_eq!(air.sink.side, 0.06);
        let oil = OilSiliconPackage::paper_default();
        assert_eq!(oil.velocity, 10.0);
        assert!(oil.local_h);
    }

    #[test]
    fn builders_chain() {
        let p = AirSinkPackage::paper_default()
            .with_r_convec(0.3)
            .with_secondary(SecondaryPath::for_air_system());
        assert_eq!(p.r_convec, 0.3);
        assert!(p.secondary.is_some());
        let o = OilSiliconPackage::paper_default()
            .with_direction(FlowDirection::TopToBottom)
            .with_target_r_convec(0.3)
            .with_secondary(SecondaryPath::for_oil_rig());
        assert_eq!(o.direction, FlowDirection::TopToBottom);
        assert_eq!(o.target_r_convec, Some(0.3));
    }

    #[test]
    fn package_labels() {
        assert_eq!(Package::AirSink(AirSinkPackage::paper_default()).label(), "AIR-SINK");
        assert_eq!(Package::OilSilicon(OilSiliconPackage::paper_default()).label(), "OIL-SILICON");
    }

    #[test]
    fn secondary_presets_differ_in_cooling() {
        assert_eq!(SecondaryPath::for_oil_rig().pcb_cooling, PcbCooling::Oil);
        assert!(matches!(SecondaryPath::for_air_system().pcb_cooling, PcbCooling::Fixed { .. }));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn plate_rejects_zero_side() {
        let _ = PlateSpec::new(0.0, 1e-3, COPPER);
    }
}
