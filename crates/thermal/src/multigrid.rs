//! Geometric multigrid V-cycle preconditioner for the steady solve.
//!
//! The conductance matrix of a layered grid circuit is, per layer, a fixed
//! 5-point in-plane stencil plus uniform vertical couplings — exactly the
//! structure geometric multigrid exploits. This module builds a hierarchy of
//! 2×2-agglomerated coarse grids (Galerkin coarse operators `Pᵀ·A·P`,
//! cell-centered bilinear prolongation, full-weighting restriction `R = Pᵀ`)
//! down to roughly [`MgOptions::coarsest_dim`] per side, smooths each level
//! with weighted Jacobi, and solves the coarsest level exactly with the
//! existing [`LdlFactor`]. A V-cycle of that hierarchy preconditions
//! conjugate gradient ([`mg_pcg`]), giving iteration counts that are flat in
//! grid size where plain Jacobi-PCG grows with resolution.
//!
//! # Symmetry
//!
//! The V-cycle applies the *same number* of Jacobi sweeps before and after
//! the coarse-grid correction, restricts with the exact transpose of the
//! prolongation, and solves the coarsest level exactly. Jacobi is a
//! symmetric smoother (`ω·D⁻¹`), so the composite preconditioner `M⁻¹` is
//! symmetric positive definite — a requirement for CG (pinned by a property
//! test).
//!
//! # Matrix-free stencil kernels
//!
//! The finest level never round-trips through generic CSR on the hot path:
//! [`StencilOperator`] decomposes `A` into the per-node diagonal, per-plane
//! uniform in-plane couplings, aligned plane-to-plane couplings (vertical
//! conduction), and a sparse CSR *remainder* for everything irregular (ring
//! nodes, locally varying oil films). Uniformity is established by **exact
//! floating-point equality** during setup — each captured coefficient is a
//! single stamp of a per-layer constant, so capture never changes a single
//! bit of the product. Every kernel in this module runs on the
//! [`pool`] with the fixed-chunk deterministic partition and a
//! fixed per-row fold order, so solves are bitwise identical at any thread
//! count.
//!
//! # Determinism of setup
//!
//! Hierarchy construction (segment derivation, prolongation assembly,
//! Galerkin products, factorization) is fully serial, so the cached
//! hierarchy on a [`ThermalCircuit`] is identical no matter which solve —
//! under which pool — triggered it.

use std::time::Instant;

use crate::cholesky::LdlFactor;
use crate::circuit::{NodeKind, ThermalCircuit};
use crate::pool;
use crate::sparse::{self, CsrMatrix, SolveMethod, SolveStats, TripletMatrix};

/// A contiguous run of nodes with (or without) grid structure.
///
/// Conduction layers and per-cell oil films are `rows × cols` planes that
/// coarsen geometrically; ring, coolant, and ring-oil nodes are structureless
/// singles that pass through the hierarchy unchanged (prolongation is the
/// identity on them).
#[derive(Debug, Clone, Copy)]
enum Segment {
    /// `rows × cols` plane starting at this node index, row-major.
    Grid { start: usize },
    /// One structureless node.
    Single { node: usize },
}

/// The only off-diagonal column of row `i`, if the row has exactly one.
fn sole_off_diagonal(g: &CsrMatrix, i: usize) -> Option<usize> {
    let mut it = g.row(i).filter(|&(j, _)| j != i);
    let first = it.next().map(|(j, _)| j);
    if it.next().is_some() {
        None
    } else {
        first
    }
}

/// Whether the `n_cells` oil nodes starting at `start` mirror a layer grid:
/// oil node `start + k` must pair with cell `k` of one layer. The stamping
/// order guarantees per-cell films are emitted in row-major cell order, but
/// this validates rather than assumes it (each oil node couples to exactly
/// one other node, so checking the run's endpoints pins the whole run).
fn oil_run_is_grid(circuit: &ThermalCircuit, start: usize) -> bool {
    let n_cells = circuit.cell_count();
    let kinds = circuit.node_kinds();
    if start + n_cells > circuit.node_count()
        || kinds[start..start + n_cells].iter().any(|k| *k != NodeKind::Oil)
    {
        return false;
    }
    let g = circuit.conductance();
    let (Some(p0), Some(p1)) =
        (sole_off_diagonal(g, start), sole_off_diagonal(g, start + n_cells - 1))
    else {
        return false;
    };
    p0 % n_cells == 0
        && p1 == p0 + n_cells - 1
        && matches!(kinds.get(p0), Some(NodeKind::Cell { .. }))
}

/// Splits the circuit's node range into grid planes and singles, in node
/// order (the segments tile `0..node_count` exactly).
fn derive_segments(circuit: &ThermalCircuit) -> Vec<Segment> {
    let n_cells = circuit.cell_count();
    let nl = circuit.layer_names().len();
    let mut segs: Vec<Segment> = (0..nl).map(|l| Segment::Grid { start: l * n_cells }).collect();
    let mut i = nl * n_cells;
    while i < circuit.node_count() {
        if circuit.node_kinds()[i] == NodeKind::Oil && oil_run_is_grid(circuit, i) {
            segs.push(Segment::Grid { start: i });
            i += n_cells;
        } else {
            segs.push(Segment::Single { node: i });
            i += 1;
        }
    }
    segs
}

/// One grid plane of a [`StencilOperator`].
#[derive(Debug)]
struct GridPlane {
    start: usize,
    /// Uniform horizontal coupling (the stored, negative off-diagonal), or
    /// 0.0 when the plane has none / it is not uniform.
    gx: f64,
    /// Uniform vertical (in-plane row-to-row) coupling, or 0.0.
    gy: f64,
    /// Aligned couplings to other planes: node `start + k` couples to
    /// `other_start + k` with the uniform stored value.
    partners: Vec<(usize, f64)>,
}

/// Matrix-free form of a layered-grid conductance matrix.
///
/// `A·x` is computed as `diag·x` plus per-plane stencil terms plus a sparse
/// CSR remainder holding every coefficient the stencil decomposition could
/// not capture *exactly* (see the module docs). The decomposition is lossless
/// by construction: captured coefficients are bitwise equal to the CSR
/// entries they replace, and each row folds its terms in a fixed order, so
/// the product is deterministic at any thread count.
#[derive(Debug)]
pub struct StencilOperator {
    n: usize,
    rows: usize,
    cols: usize,
    diag: Vec<f64>,
    planes: Vec<GridPlane>,
    /// Plane index per node; `u32::MAX` for singles.
    node_plane: Vec<u32>,
    remainder: CsrMatrix,
}

/// Value stored at `(i, j)` in `g`, if present.
fn entry(g: &CsrMatrix, i: usize, j: usize) -> Option<f64> {
    g.row(i).find(|&(c, _)| c == j).map(|(_, v)| v)
}

/// The single value stored at every `(i, j)` pair produced by the iterator,
/// required by exact floating-point equality; 0.0 when any entry is missing,
/// differs, or the iterator is empty.
fn uniform_coupling(g: &CsrMatrix, pairs: impl Iterator<Item = (usize, usize)>) -> f64 {
    let mut value: Option<f64> = None;
    for (i, j) in pairs {
        let Some(v) = entry(g, i, j) else {
            return 0.0;
        };
        match value {
            None => value = Some(v),
            Some(u) if u.to_bits() == v.to_bits() => {}
            Some(_) => return 0.0,
        }
    }
    value.unwrap_or(0.0)
}

impl StencilOperator {
    /// Decomposes `g` over the given segments. Never fails: anything that
    /// does not match the stencil pattern lands in the remainder.
    fn build(g: &CsrMatrix, segs: &[Segment], rows: usize, cols: usize) -> Self {
        let n = g.dim();
        let n_cells = rows * cols;
        let diag: Vec<f64> = (0..n).map(|i| g.diagonal(i)).collect();

        let grid_starts: Vec<usize> = segs
            .iter()
            .filter_map(|s| match s {
                Segment::Grid { start } => Some(*start),
                Segment::Single { .. } => None,
            })
            .collect();

        let mut planes = Vec::with_capacity(grid_starts.len());
        for &start in &grid_starts {
            let gx = uniform_coupling(
                g,
                (0..rows).flat_map(|r| {
                    (0..cols - 1).map(move |c| {
                        let i = start + r * cols + c;
                        (i, i + 1)
                    })
                }),
            );
            let gy = uniform_coupling(
                g,
                (0..rows - 1).flat_map(|r| {
                    (0..cols).map(move |c| {
                        let i = start + r * cols + c;
                        (i, i + cols)
                    })
                }),
            );
            let mut partners = Vec::new();
            for &other in &grid_starts {
                if other == start {
                    continue;
                }
                // Cheap reject: no coupling at the first cell means no
                // aligned coupling at all (uniform_coupling would scan the
                // whole plane to conclude the same).
                if entry(g, start, other).is_none() {
                    continue;
                }
                let gv = uniform_coupling(g, (0..n_cells).map(|k| (start + k, other + k)));
                if gv != 0.0 {
                    partners.push((other, gv));
                }
            }
            planes.push(GridPlane { start, gx, gy, partners });
        }

        let mut node_plane = vec![u32::MAX; n];
        for (p, plane) in planes.iter().enumerate() {
            for slot in &mut node_plane[plane.start..plane.start + n_cells] {
                *slot = p as u32;
            }
        }

        // Everything not captured exactly goes to the remainder.
        let mut rem = TripletMatrix::new(n);
        for (i, &node_p) in node_plane.iter().enumerate() {
            let captured = |j: usize| -> bool {
                let p = node_p;
                if p == u32::MAX {
                    return false;
                }
                let plane = &planes[p as usize];
                let off = i - plane.start;
                let (r, c) = (off / cols, off % cols);
                (plane.gx != 0.0 && ((c > 0 && j == i - 1) || (c + 1 < cols && j == i + 1)))
                    || (plane.gy != 0.0
                        && ((r > 0 && j == i - cols) || (r + 1 < rows && j == i + cols)))
                    || plane.partners.iter().any(|&(t, _)| j == t + off)
            };
            for (j, v) in g.row(i) {
                if j != i && !captured(j) {
                    rem.add(i, j, v);
                }
            }
        }

        Self { n, rows, cols, diag, planes, node_plane, remainder: rem.to_csr() }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored non-zeros that fell through to the CSR remainder.
    pub fn remainder_nnz(&self) -> usize {
        self.remainder.nnz()
    }

    /// `y = A·x`, chunk-parallel with a fixed per-row fold order (diagonal,
    /// west, east, south, north, plane partners in stored order, remainder
    /// in CSR order) — bitwise deterministic at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        let pool = pool::current();
        pool::fill_chunks(&pool, y, |_, start, chunk| {
            for (k, yi) in chunk.iter_mut().enumerate() {
                let i = start + k;
                let mut acc = self.diag[i] * x[i];
                let p = self.node_plane[i];
                if p != u32::MAX {
                    let plane = &self.planes[p as usize];
                    let off = i - plane.start;
                    let (r, c) = (off / self.cols, off % self.cols);
                    if plane.gx != 0.0 {
                        if c > 0 {
                            acc += plane.gx * x[i - 1];
                        }
                        if c + 1 < self.cols {
                            acc += plane.gx * x[i + 1];
                        }
                    }
                    if plane.gy != 0.0 {
                        if r > 0 {
                            acc += plane.gy * x[i - self.cols];
                        }
                        if r + 1 < self.rows {
                            acc += plane.gy * x[i + self.cols];
                        }
                    }
                    for &(t, gv) in &plane.partners {
                        acc += gv * x[t + off];
                    }
                }
                for (j, v) in self.remainder.row(i) {
                    acc += v * x[j];
                }
                *yi = acc;
            }
        });
    }
}

/// Cell-centered bilinear prolongation `P` (fine ← coarse) with its exact
/// transpose stored alongside for full-weighting restriction `R = Pᵀ`.
#[derive(Debug)]
struct Prolong {
    nf: usize,
    nc: usize,
    // P, by fine rows.
    row_ptr: Vec<u32>,
    col: Vec<u32>,
    val: Vec<f64>,
    // Pᵀ, by coarse rows (fine columns ascending within each row).
    t_row_ptr: Vec<u32>,
    t_col: Vec<u32>,
    t_val: Vec<f64>,
}

/// Coarse indices and weights along one dimension for fine index `f`: the
/// parent `f/2` gets 0.75 and the nearer neighbor 0.25; at a boundary the
/// neighbor weight folds into the parent so rows of `P` always sum to 1
/// (constants prolong to constants).
fn dim_weights(f: usize, nc: usize) -> [(usize, f64); 2] {
    let p = f / 2;
    let neighbor =
        if f.is_multiple_of(2) { p.checked_sub(1) } else { (p + 1 < nc).then_some(p + 1) };
    match neighbor {
        Some(q) => [(p, 0.75), (q, 0.25)],
        None => [(p, 1.0), (p, 0.0)],
    }
}

/// Builds the prolongation from a level's segments, returning the coarse
/// segments (same order, coarse numbering) and the coarse grid dimensions.
fn build_prolong(
    segs: &[Segment],
    rows: usize,
    cols: usize,
) -> (Prolong, Vec<Segment>, (usize, usize)) {
    let (rc, cc) = (rows.div_ceil(2), cols.div_ceil(2));
    let fine_cells = rows * cols;
    let coarse_cells = rc * cc;

    let mut coarse_segs = Vec::with_capacity(segs.len());
    let mut nc = 0usize;
    for s in segs {
        match s {
            Segment::Grid { .. } => {
                coarse_segs.push(Segment::Grid { start: nc });
                nc += coarse_cells;
            }
            Segment::Single { .. } => {
                coarse_segs.push(Segment::Single { node: nc });
                nc += 1;
            }
        }
    }

    let mut row_ptr = vec![0u32];
    let mut col = Vec::new();
    let mut val = Vec::new();
    for (s, cs) in segs.iter().zip(&coarse_segs) {
        match (s, cs) {
            (Segment::Grid { .. }, Segment::Grid { start: cstart }) => {
                for r in 0..rows {
                    let wr = dim_weights(r, rc);
                    for c in 0..cols {
                        let wc = dim_weights(c, cc);
                        let mut entries = [(0u32, 0.0f64); 4];
                        let mut m = 0;
                        for &(ri, rw) in &wr {
                            for &(ci, cw) in &wc {
                                let w = rw * cw;
                                if w != 0.0 {
                                    entries[m] = ((cstart + ri * cc + ci) as u32, w);
                                    m += 1;
                                }
                            }
                        }
                        entries[..m].sort_unstable_by_key(|&(j, _)| j);
                        for &(j, w) in &entries[..m] {
                            col.push(j);
                            val.push(w);
                        }
                        row_ptr.push(col.len() as u32);
                    }
                }
            }
            (Segment::Single { .. }, Segment::Single { node }) => {
                col.push(*node as u32);
                val.push(1.0);
                row_ptr.push(col.len() as u32);
            }
            _ => unreachable!("coarse segments mirror fine segments"),
        }
    }
    let nf = row_ptr.len() - 1;
    debug_assert_eq!(
        nf,
        segs.iter()
            .map(|s| match s {
                Segment::Grid { .. } => fine_cells,
                Segment::Single { .. } => 1,
            })
            .sum::<usize>()
    );

    // Transpose by counting; fine columns come out ascending per coarse row,
    // fixing the restriction fold order.
    let nnz = col.len();
    let mut t_row_ptr = vec![0u32; nc + 1];
    for &j in &col {
        t_row_ptr[j as usize + 1] += 1;
    }
    for i in 0..nc {
        t_row_ptr[i + 1] += t_row_ptr[i];
    }
    let mut t_col = vec![0u32; nnz];
    let mut t_val = vec![0.0f64; nnz];
    let mut next = t_row_ptr.clone();
    for i in 0..nf {
        for idx in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let j = col[idx] as usize;
            let slot = next[j] as usize;
            t_col[slot] = i as u32;
            t_val[slot] = val[idx];
            next[j] += 1;
        }
    }

    (Prolong { nf, nc, row_ptr, col, val, t_row_ptr, t_col, t_val }, coarse_segs, (rc, cc))
}

impl Prolong {
    /// Entries of fine row `i` of `P`.
    fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        self.col[lo..hi].iter().zip(&self.val[lo..hi]).map(|(&j, &v)| (j as usize, v))
    }

    /// `coarse = Pᵀ·fine` (full weighting), chunk-parallel over coarse rows.
    fn restrict(&self, fine: &[f64], coarse: &mut [f64]) {
        assert_eq!(fine.len(), self.nf);
        assert_eq!(coarse.len(), self.nc);
        let pool = pool::current();
        pool::fill_chunks(&pool, coarse, |_, start, chunk| {
            for (k, ci) in chunk.iter_mut().enumerate() {
                let i = start + k;
                let lo = self.t_row_ptr[i] as usize;
                let hi = self.t_row_ptr[i + 1] as usize;
                let mut acc = 0.0;
                for idx in lo..hi {
                    acc += self.t_val[idx] * fine[self.t_col[idx] as usize];
                }
                *ci = acc;
            }
        });
    }

    /// `fine += P·coarse` (bilinear interpolation), chunk-parallel over fine
    /// rows.
    fn interpolate_add(&self, coarse: &[f64], fine: &mut [f64]) {
        assert_eq!(coarse.len(), self.nc);
        assert_eq!(fine.len(), self.nf);
        let pool = pool::current();
        pool::fill_chunks(&pool, fine, |_, start, chunk| {
            for (k, fi) in chunk.iter_mut().enumerate() {
                let i = start + k;
                let lo = self.row_ptr[i] as usize;
                let hi = self.row_ptr[i + 1] as usize;
                let mut acc = 0.0;
                for idx in lo..hi {
                    acc += self.val[idx] * coarse[self.col[idx] as usize];
                }
                *fi += acc;
            }
        });
    }
}

/// Galerkin coarse operator `Pᵀ·A·P`. Serial and deterministic (triplet
/// accumulation in a fixed order, stable duplicate merge in `to_csr`).
fn galerkin(a: &CsrMatrix, p: &Prolong) -> CsrMatrix {
    let mut t = TripletMatrix::new(p.nc);
    for i in 0..a.dim() {
        for (bi, pv) in p.row(i) {
            for (j, av) in a.row(i) {
                for (bj, qv) in p.row(j) {
                    t.add(bi, bj, pv * av * qv);
                }
            }
        }
    }
    t.to_csr()
}

/// Tunables for the hierarchy. The defaults are what every solver-facing
/// entry point uses; they are exposed for tests and experiments.
#[derive(Debug, Clone, Copy)]
pub struct MgOptions {
    /// Stop coarsening once `min(rows, cols)` is at or below this; the level
    /// is then solved exactly by LDLᵀ.
    pub coarsest_dim: usize,
    /// Jacobi sweeps before *and* after each coarse-grid correction (kept
    /// equal so the preconditioner stays symmetric).
    pub sweeps: usize,
    /// Base Jacobi damping factor; each level additionally rescales by the
    /// Gershgorin bound on its own operator (see `jacobi_scale`).
    pub omega: f64,
}

impl Default for MgOptions {
    fn default() -> Self {
        Self { coarsest_dim: 8, sweeps: 1, omega: 0.8 }
    }
}

/// Gershgorin bound on the spectral radius of `D⁻¹·A`:
/// `max_i Σ_j |a_ij| / a_ii`. Weighted Jacobi with `ω < 2/s` is convergent;
/// `None` when a diagonal entry is non-positive (the hierarchy is unusable).
fn jacobi_scale(a: &CsrMatrix) -> Option<f64> {
    let mut s = 0.0f64;
    for i in 0..a.dim() {
        let d = a.diagonal(i);
        if d <= 0.0 {
            return None;
        }
        let row_sum: f64 = a.row(i).map(|(_, v)| v.abs()).sum();
        s = s.max(row_sum / d);
    }
    Some(s)
}

/// The operator of one level: matrix-free stencil on the finest grid, plain
/// CSR for the 9-point Galerkin operators below it.
#[derive(Debug)]
enum LevelOp {
    Stencil(StencilOperator),
    Csr(CsrMatrix),
}

impl LevelOp {
    fn dim(&self) -> usize {
        match self {
            Self::Stencil(s) => s.dim(),
            Self::Csr(a) => a.dim(),
        }
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        match self {
            Self::Stencil(s) => s.apply(x, y),
            Self::Csr(a) => a.mul_vec_into(x, y),
        }
    }
}

#[derive(Debug)]
struct MgLevel {
    op: LevelOp,
    inv_diag: Vec<f64>,
    /// Effective Jacobi weight for this level: `opts.omega · 2 / max(s, 2)`,
    /// so coarse Galerkin operators that lost diagonal dominance still get a
    /// convergent smoother.
    omega: f64,
    rows: usize,
    cols: usize,
    n: usize,
}

impl MgLevel {
    fn new(op: LevelOp, a: &CsrMatrix, opts: MgOptions, rows: usize, cols: usize) -> Option<Self> {
        let scale = jacobi_scale(a)?;
        let n = op.dim();
        let inv_diag: Vec<f64> = (0..n).map(|i| 1.0 / a.diagonal(i)).collect();
        let omega = opts.omega * 2.0 / scale.max(2.0);
        Some(Self { op, inv_diag, omega, rows, cols, n })
    }
}

/// Per-level telemetry of an MG-preconditioned solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MgLevelStats {
    /// Grid rows at this level.
    pub rows: usize,
    /// Grid columns at this level.
    pub cols: usize,
    /// Total nodes at this level (all planes plus singles).
    pub nodes: usize,
    /// Seconds spent in this level's kernels (smoothing, residual, transfer
    /// on the fine side; the exact LDLᵀ solve on the coarsest).
    pub seconds: f64,
}

/// Multigrid telemetry attached to [`SolveStats::multigrid`].
#[derive(Debug, Clone, PartialEq)]
pub struct MgStats {
    /// V-cycles run (one per preconditioner application).
    pub cycles: usize,
    /// Jacobi sweeps per level on each side of the coarse correction.
    pub sweeps: usize,
    /// Finest-to-coarsest level breakdown.
    pub levels: Vec<MgLevelStats>,
}

/// Reusable V-cycle state: one solution/residual/scratch vector per level.
#[derive(Debug)]
pub struct MgWorkspace {
    x: Vec<Vec<f64>>,
    r: Vec<Vec<f64>>,
    t: Vec<Vec<f64>>,
    /// Scratch for the coarsest-level LDLᵀ solve.
    y: Vec<f64>,
    level_seconds: Vec<f64>,
    cycles: usize,
}

/// A built geometric multigrid hierarchy for one [`ThermalCircuit`].
#[derive(Debug)]
pub struct Multigrid {
    /// Finest first; the last level is the one solved exactly.
    levels: Vec<MgLevel>,
    /// `prolongs[k]` maps level `k+1` (coarse) to level `k` (fine).
    prolongs: Vec<Prolong>,
    coarse_factor: LdlFactor,
    opts: MgOptions,
    setup_seconds: f64,
}

impl Multigrid {
    /// Builds the hierarchy for a circuit's steady conductance operator, or
    /// `None` when the grid is already at (or below) the coarsest dimension
    /// — callers fall back to plain CG — or the structure defeats the
    /// smoother/factorization.
    pub fn from_circuit(circuit: &ThermalCircuit, opts: MgOptions) -> Option<Self> {
        Self::from_operator(circuit, circuit.conductance(), opts)
    }

    /// Builds the hierarchy for an arbitrary SPD operator sharing the
    /// circuit's node layout — the transient path passes `G + C/dt`, whose
    /// added diagonal leaves the grid/segment structure (and therefore the
    /// stencil extraction and coarsening pattern) unchanged.
    pub fn from_operator(
        circuit: &ThermalCircuit,
        fine: &CsrMatrix,
        opts: MgOptions,
    ) -> Option<Self> {
        let start = Instant::now();
        let (rows, cols) = (circuit.grid_rows(), circuit.grid_cols());
        if rows.min(cols) <= opts.coarsest_dim {
            return None;
        }

        let mut segs = derive_segments(circuit);
        let fine_op = LevelOp::Stencil(StencilOperator::build(fine, &segs, rows, cols));
        let mut levels = vec![MgLevel::new(fine_op, fine, opts, rows, cols)?];
        let mut prolongs = Vec::new();

        // `None` means "the finest operator" (borrowed from the circuit, so
        // the fine CSR is never cloned just to coarsen it).
        let mut current: Option<CsrMatrix> = None;
        let (mut r, mut c) = (rows, cols);
        while r.min(c) > opts.coarsest_dim {
            let a = current.as_ref().unwrap_or(fine);
            let (p, coarse_segs, (rc, cc)) = build_prolong(&segs, r, c);
            let coarse = galerkin(a, &p);
            levels.push(MgLevel::new(LevelOp::Csr(coarse.clone()), &coarse, opts, rc, cc)?);
            prolongs.push(p);
            segs = coarse_segs;
            current = Some(coarse);
            (r, c) = (rc, cc);
        }

        let coarse_factor = LdlFactor::factor(current.as_ref()?).ok()?;
        let setup_seconds = start.elapsed().as_secs_f64();
        Some(Self { levels, prolongs, coarse_factor, opts, setup_seconds })
    }

    /// Number of levels, finest included.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Nodes per level, finest first.
    pub fn level_nodes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.n).collect()
    }

    /// Wall-clock seconds the one-time hierarchy construction took.
    pub fn setup_seconds(&self) -> f64 {
        self.setup_seconds
    }

    /// Stored non-zeros of the coarsest-level LDLᵀ factor.
    pub fn coarse_factor_nnz(&self) -> usize {
        self.coarse_factor.nnz_l()
    }

    /// The options the hierarchy was built with.
    pub fn options(&self) -> MgOptions {
        self.opts
    }

    /// Allocates a workspace sized for this hierarchy.
    pub fn workspace(&self) -> MgWorkspace {
        let per_level = || self.levels.iter().map(|l| vec![0.0; l.n]).collect();
        MgWorkspace {
            x: per_level(),
            r: per_level(),
            t: per_level(),
            y: vec![0.0; self.levels[self.levels.len() - 1].n],
            level_seconds: vec![0.0; self.levels.len()],
            cycles: 0,
        }
    }

    /// Applies the preconditioner: `z ≈ A⁻¹·r` via one V-cycle.
    ///
    /// # Panics
    ///
    /// Panics if `r`/`z` do not match the finest level or `ws` was built for
    /// a different hierarchy.
    pub fn precondition(&self, r: &[f64], z: &mut [f64], ws: &mut MgWorkspace) {
        assert_eq!(r.len(), self.levels[0].n);
        assert_eq!(z.len(), self.levels[0].n);
        ws.r[0].copy_from_slice(r);
        self.vcycle(ws);
        z.copy_from_slice(&ws.x[0]);
    }

    /// One V-cycle on the residual in `ws.r[0]`, leaving the correction in
    /// `ws.x[0]`.
    fn vcycle(&self, ws: &mut MgWorkspace) {
        let last = self.levels.len() - 1;
        for k in 0..last {
            let t0 = Instant::now();
            let lvl = &self.levels[k];
            smooth_from_zero(lvl, &ws.r[k], &mut ws.x[k]);
            for _ in 1..self.opts.sweeps {
                smooth(lvl, &ws.r[k], &mut ws.x[k], &mut ws.t[k]);
            }
            residual(lvl, &ws.r[k], &ws.x[k], &mut ws.t[k]);
            self.prolongs[k].restrict(&ws.t[k], &mut ws.r[k + 1]);
            ws.level_seconds[k] += t0.elapsed().as_secs_f64();
        }
        {
            let t0 = Instant::now();
            self.coarse_factor.solve_with_scratch(&ws.r[last], &mut ws.x[last], &mut ws.y);
            ws.level_seconds[last] += t0.elapsed().as_secs_f64();
        }
        for k in (0..last).rev() {
            let t0 = Instant::now();
            let (x_fine, x_coarse) = ws.x.split_at_mut(k + 1);
            self.prolongs[k].interpolate_add(&x_coarse[0], &mut x_fine[k]);
            let lvl = &self.levels[k];
            for _ in 0..self.opts.sweeps {
                smooth(lvl, &ws.r[k], &mut ws.x[k], &mut ws.t[k]);
            }
            ws.level_seconds[k] += t0.elapsed().as_secs_f64();
        }
        ws.cycles += 1;
    }

    /// Telemetry snapshot for a finished solve that used `ws`.
    fn stats_from(&self, ws: &MgWorkspace) -> MgStats {
        MgStats {
            cycles: ws.cycles,
            sweeps: self.opts.sweeps,
            levels: self
                .levels
                .iter()
                .zip(&ws.level_seconds)
                .map(|(l, &seconds)| MgLevelStats {
                    rows: l.rows,
                    cols: l.cols,
                    nodes: l.n,
                    seconds,
                })
                .collect(),
        }
    }
}

/// One Jacobi sweep starting from `x = 0`: `x = ω·D⁻¹·r` (skips the operator
/// application a general sweep needs).
fn smooth_from_zero(lvl: &MgLevel, r: &[f64], x: &mut [f64]) {
    let pool = pool::current();
    pool::fill_chunks(&pool, x, |_, start, chunk| {
        for (k, xi) in chunk.iter_mut().enumerate() {
            let i = start + k;
            *xi = lvl.omega * lvl.inv_diag[i] * r[i];
        }
    });
}

/// One weighted-Jacobi sweep: `x += ω·D⁻¹·(r − A·x)`, using `t` as scratch.
fn smooth(lvl: &MgLevel, r: &[f64], x: &mut [f64], t: &mut [f64]) {
    lvl.op.apply(x, t);
    let pool = pool::current();
    pool::fill_chunks(&pool, x, |_, start, chunk| {
        for (k, xi) in chunk.iter_mut().enumerate() {
            let i = start + k;
            *xi += lvl.omega * lvl.inv_diag[i] * (r[i] - t[i]);
        }
    });
}

/// `out = r − A·x`.
fn residual(lvl: &MgLevel, r: &[f64], x: &[f64], out: &mut [f64]) {
    lvl.op.apply(x, out);
    let pool = pool::current();
    pool::fill_chunks(&pool, out, |_, start, chunk| {
        for (k, oi) in chunk.iter_mut().enumerate() {
            *oi = r[start + k] - *oi;
        }
    });
}

/// Conjugate gradient preconditioned by one V-cycle per iteration.
///
/// Solves `A·x = b` for the hierarchy's circuit, starting from the provided
/// `x` (warm start). The finest-level operator is the matrix-free
/// [`StencilOperator`]; all kernels are bitwise deterministic at any thread
/// count. Returns stats with [`SolveStats::multigrid`] populated;
/// `factor_seconds` is 0.0 — the caller charges hierarchy setup to the solve
/// that triggered it (see `ThermalCircuit::multigrid_with_setup`).
///
/// # Panics
///
/// Panics if `b`/`x` do not match the hierarchy's finest level.
pub fn mg_pcg(
    mg: &Multigrid,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iter: usize,
) -> SolveStats {
    let n = mg.levels[0].n;
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let pool = pool::current();
    let threads = pool.threads();
    let mut ws = mg.workspace();
    let finish = |iterations, relative_residual, converged, ws: &MgWorkspace| {
        let mut s =
            SolveStats::iterative(SolveMethod::MgCg, iterations, relative_residual, converged)
                .with_threads(threads);
        s.factor_nnz = mg.coarse_factor.nnz_l();
        s.multigrid = Some(mg.stats_from(ws));
        s
    };

    let b_norm = sparse::norm2(b);
    if b_norm == 0.0 {
        x.iter_mut().for_each(|v| *v = 0.0);
        return finish(0, 0.0, true, &ws);
    }

    let op = &mg.levels[0].op;
    let mut r = vec![0.0; n];
    op.apply(x, &mut r);
    pool::fill_chunks(&pool, &mut r, |_, start, chunk| {
        for (k, ri) in chunk.iter_mut().enumerate() {
            *ri = b[start + k] - *ri;
        }
    });
    let mut res = sparse::norm2(&r) / b_norm;
    if res <= rel_tol {
        return finish(0, res, true, &ws);
    }

    let mut z = vec![0.0; n];
    mg.precondition(&r, &mut z, &mut ws);
    let mut p = z.clone();
    let mut rz = sparse::dot(&r, &z);
    let mut ap = vec![0.0; n];

    for it in 1..=max_iter {
        op.apply(&p, &mut ap);
        let pap = sparse::dot(&p, &ap);
        if pap <= 0.0 {
            // Numerical breakdown; report divergence.
            return finish(it, res, false, &ws);
        }
        let alpha = rz / pap;
        pool::fill_chunks2(&pool, x, &mut r, |_, start, xc, rc| {
            for (k, (xi, ri)) in xc.iter_mut().zip(rc.iter_mut()).enumerate() {
                let i = start + k;
                *xi += alpha * p[i];
                *ri -= alpha * ap[i];
            }
        });
        res = sparse::norm2(&r) / b_norm;
        if res <= rel_tol {
            return finish(it, res, true, &ws);
        }
        mg.precondition(&r, &mut z, &mut ws);
        let rz_new = sparse::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        pool::fill_chunks(&pool, &mut p, |_, start, chunk| {
            for (k, pi) in chunk.iter_mut().enumerate() {
                *pi = z[start + k] + beta * *pi;
            }
        });
    }
    finish(max_iter, res, false, &ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{build_circuit, DieGeometry};
    use crate::package::{AirSinkPackage, OilSiliconPackage, Package};
    use hotiron_floorplan::{library, GridMapping};

    fn die20() -> DieGeometry {
        DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 }
    }

    fn circuit(rows: usize, pkg: Package) -> ThermalCircuit {
        let m = GridMapping::new(&library::uniform_die(0.02, 0.02), rows, rows);
        build_circuit(&m, die20(), &pkg).unwrap()
    }

    fn oil(rows: usize) -> ThermalCircuit {
        circuit(rows, Package::OilSilicon(OilSiliconPackage::paper_default()))
    }

    fn air(rows: usize) -> ThermalCircuit {
        circuit(rows, Package::AirSink(AirSinkPackage::paper_default()))
    }

    #[test]
    fn segments_cover_all_nodes_in_order() {
        for c in [oil(8), air(8)] {
            let segs = derive_segments(&c);
            let mut next = 0usize;
            for s in &segs {
                match s {
                    Segment::Grid { start } => {
                        assert_eq!(*start, next);
                        next += c.cell_count();
                    }
                    Segment::Single { node } => {
                        assert_eq!(*node, next);
                        next += 1;
                    }
                }
            }
            assert_eq!(next, c.node_count());
        }
    }

    #[test]
    fn oil_film_is_detected_as_a_grid_plane() {
        let c = oil(8);
        let segs = derive_segments(&c);
        // silicon plane + oil plane, no singles.
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|s| matches!(s, Segment::Grid { .. })));
    }

    #[test]
    fn stencil_apply_matches_csr_product() {
        for (label, c) in [("oil", oil(16)), ("air", air(16))] {
            let segs = derive_segments(&c);
            let op = StencilOperator::build(c.conductance(), &segs, 16, 16);
            let n = c.node_count();
            let x: Vec<f64> = (0..n).map(|i| 300.0 + (i as f64 * 0.37).sin()).collect();
            let want = c.conductance().mul_vec(&x);
            let mut got = vec![0.0; n];
            op.apply(&x, &mut got);
            // The stencil folds its row in fixed direction order, not CSR
            // column order, so the products differ by re-association of
            // mixed-sign terms — a few ULPs, well under 1e-10 relative.
            for i in 0..n {
                let scale = want[i].abs().max(1.0);
                assert!(
                    (want[i] - got[i]).abs() / scale < 1e-10,
                    "{label}: row {i}: {} vs {}",
                    want[i],
                    got[i]
                );
            }
        }
    }

    #[test]
    fn stencil_captures_the_bulk_of_the_conduction_layers() {
        // On the air stack the conduction layers are uniform 5-point
        // stencils with uniform vertical couplings. What falls through to
        // the remainder: ring/coolant attachments plus the die cells'
        // per-cell links into the lumped secondary path (uniform values,
        // but rank-1 structure the plane-partner capture cannot express) —
        // about 12% of off-diagonals at 16×16, shrinking as the boundary
        // fraction does on finer grids.
        let c = air(16);
        let segs = derive_segments(&c);
        let op = StencilOperator::build(c.conductance(), &segs, 16, 16);
        let off_diag = c.conductance().nnz() - c.node_count();
        assert!(
            op.remainder_nnz() * 5 < off_diag,
            "remainder {} of {off_diag} off-diagonals",
            op.remainder_nnz()
        );
    }

    #[test]
    fn prolongation_rows_sum_to_one() {
        let c = oil(16);
        let segs = derive_segments(&c);
        let (p, _, (rc, cc)) = build_prolong(&segs, 16, 16);
        assert_eq!((rc, cc), (8, 8));
        for i in 0..p.nf {
            let sum: f64 = p.row(i).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-15, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn galerkin_operator_is_symmetric_spd_like() {
        let c = oil(16);
        let segs = derive_segments(&c);
        let (p, _, _) = build_prolong(&segs, 16, 16);
        let coarse = galerkin(c.conductance(), &p);
        assert!(coarse.is_symmetric(1e-9));
        for i in 0..coarse.dim() {
            assert!(coarse.diagonal(i) > 0.0, "coarse diagonal {i}");
        }
    }

    #[test]
    fn hierarchy_shape() {
        let c = oil(32);
        let mg = Multigrid::from_circuit(&c, MgOptions::default()).expect("hierarchy builds");
        // 32 -> 16 -> 8.
        assert_eq!(mg.level_count(), 3);
        let nodes = mg.level_nodes();
        assert_eq!(nodes[0], c.node_count());
        assert_eq!(nodes[1], 2 * 16 * 16);
        assert_eq!(nodes[2], 2 * 8 * 8);
    }

    #[test]
    fn too_small_grids_get_no_hierarchy() {
        assert!(Multigrid::from_circuit(&oil(8), MgOptions::default()).is_none());
    }

    #[test]
    fn mg_pcg_solves_to_tolerance() {
        for (label, c) in [("oil", oil(16)), ("air", air(16))] {
            let mg = Multigrid::from_circuit(&c, MgOptions::default())
                .unwrap_or_else(|| panic!("{label}: hierarchy builds"));
            let mut power = vec![0.0; c.cell_count()];
            power[3] = 5.0;
            let b = c.rhs(&power, 318.15);
            let mut x = vec![318.15; c.node_count()];
            let stats = mg_pcg(&mg, &b, &mut x, 1e-10, 100);
            assert!(stats.converged, "{label}: {stats:?}");
            assert_eq!(stats.method, SolveMethod::MgCg);
            let telemetry = stats.multigrid.expect("mg telemetry");
            assert_eq!(telemetry.levels.len(), mg.level_count());
            assert!(telemetry.cycles >= stats.iterations);
            // Residual check against the real operator.
            let ax = c.conductance().mul_vec(&x);
            let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
            let rnorm = b.iter().zip(&ax).map(|(bi, ai)| (bi - ai) * (bi - ai)).sum::<f64>().sqrt();
            assert!(rnorm / b_norm < 1e-9, "{label}: residual {}", rnorm / b_norm);
        }
    }
}
