//! Dependency-free scoped worker pool (std::thread only).
//!
//! The solver hot paths — CG's SpMV and vector kernels, the multigrid
//! V-cycle's stencil apply / Jacobi smoothing / residual and grid-transfer
//! kernels, the grid↔block mapping, and the bench suite's experiment
//! fan-out — are embarrassingly parallel, but this workspace is offline
//! (`compat/` policy: no crates.io), so rayon is not an option. This module
//! provides the minimal pool those paths need:
//!
//! * **Persistent workers.** Threads are spawned once (lazily, for the
//!   global pool) and parked between jobs; a job dispatch costs one atomic
//!   publish plus, for cold workers, a condvar wake. Workers spin briefly
//!   before sleeping so back-to-back dispatches (a CG iteration issues
//!   several per solve) stay in the sub-microsecond regime.
//! * **Scoped execution.** [`WorkerPool::for_each_task`] borrows its closure
//!   from the caller's stack and does not return until every task finished,
//!   so tasks may capture non-`'static` references (the matrix, the state
//!   vector). There is no work stealing and no task queue — one job runs at
//!   a time, tasks are claimed from a single atomic counter.
//! * **Panic propagation.** A panicking task does not poison the pool: the
//!   first payload is captured and re-thrown in the submitting thread after
//!   the join, like `std::thread::scope`.
//! * **Deterministic partitioning.** Work is split into *fixed-size* chunks
//!   ([`CHUNK`]) whose boundaries do not depend on the thread count, and
//!   order-sensitive reductions are summed chunk-by-chunk in index order
//!   ([`det_sum_of`]), so every result is bitwise identical at any thread
//!   count — including 1, where the pool runs the same chunk tree inline.
//!
//! The global pool's size comes from `HOTIRON_THREADS` (unset or `0` means
//! the machine's available parallelism). Nested submissions — a task that
//! itself calls into the pool, e.g. a fan-out experiment running CG — run
//! inline on the worker, which keeps the pool deadlock-free and avoids
//! oversubscription.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Hard cap on pool size (guards against absurd `HOTIRON_THREADS` values).
pub const MAX_THREADS: usize = 256;

/// Fixed chunk length (elements or matrix rows) for deterministic work
/// partitioning. Chunk boundaries never depend on the thread count, so
/// per-chunk partial results — and therefore fixed-order reductions over
/// them — are reproducible on any pool.
pub const CHUNK: usize = 1024;

/// Minimum problem size before a kernel dispatches to the pool at all; below
/// this the dispatch overhead exceeds the work.
pub const PAR_MIN: usize = 2 * CHUNK;

/// Spin iterations a worker burns waiting for the next job before blocking
/// on the condvar (cheap relative to a wake, and it keeps tight solver loops
/// from paying a futex round-trip per kernel).
const SPIN_ROUNDS: u32 = 4096;

thread_local! {
    /// True on pool worker threads and inside a caller's participation in
    /// its own job: nested submissions run inline (see module docs).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Scoped pool overrides installed by [`with_pool`], innermost last.
    static OVERRIDE: RefCell<Vec<Arc<WorkerPool>>> = const { RefCell::new(Vec::new()) };
}

/// One in-flight job: a lifetime-erased task closure plus claim/completion
/// counters. The submitter keeps the closure alive until `completed ==
/// tasks`, which `for_each_task` guarantees by blocking, so the raw pointer
/// never dangles.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    tasks: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `f` points at a `Sync` closure that outlives the job (the
// submitter blocks until completion), so sharing the pointer across the
// pool's threads is sound.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct State {
    job: Option<Arc<Job>>,
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    /// Mirror of `State::epoch` for the workers' lock-free spin phase.
    epoch: AtomicU64,
    state: Mutex<State>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// Submitters wait here for an idle slot / their job's completion.
    done_cv: Condvar,
}

/// A fixed-size pool of persistent worker threads. See the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads).finish()
    }
}

impl WorkerPool {
    /// Creates a pool that runs jobs on `threads` threads total: the
    /// submitting thread participates, so `threads - 1` workers are spawned
    /// and `new(1)` spawns none (every job runs inline).
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            state: Mutex::new(State { job: None, epoch: 0, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("hotiron-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, threads, handles }
    }

    /// Total threads a job can run on (including the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..tasks` and returns when all are done.
    ///
    /// Tasks run concurrently on the pool's threads (the caller included);
    /// with a 1-thread pool, zero or one task, or when called from inside a
    /// pool task, they run inline on the caller in index order. Task→thread
    /// assignment is nondeterministic, so `f` must not depend on execution
    /// order — writes must go to disjoint, index-addressed locations.
    ///
    /// # Panics
    ///
    /// Re-throws the first panic raised by any task, after all tasks have
    /// settled (so no task is left running with dangling borrows).
    pub fn for_each_task<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        if self.threads <= 1 || tasks == 1 || IN_POOL.with(Cell::get) {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        // Erase the closure's lifetime: the job is guaranteed not to outlive
        // `f` because this function blocks until `completed == tasks`.
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        let f_ptr: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f_ref) };
        let job = Arc::new(Job {
            f: f_ptr,
            tasks,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        {
            let mut s = self.shared.state.lock().expect("pool lock");
            // One job at a time: concurrent submitters queue here until the
            // slot frees (their threads then typically help with *their own*
            // job, not this one, preserving scoped-borrow safety).
            while s.job.is_some() {
                s = self.shared.done_cv.wait(s).expect("pool lock");
            }
            s.epoch += 1;
            s.job = Some(Arc::clone(&job));
            self.shared.epoch.store(s.epoch, Ordering::Release);
            self.shared.work_cv.notify_all();
        }
        // Participate: the submitting thread claims tasks like any worker.
        // Mark it as in-pool so the closure's own nested submissions inline.
        IN_POOL.with(|c| c.set(true));
        run_tasks(&self.shared, &job);
        IN_POOL.with(|c| c.set(false));
        // Wait for stragglers still running their last claimed task.
        if job.completed.load(Ordering::Acquire) < job.tasks {
            let mut s = self.shared.state.lock().expect("pool lock");
            while job.completed.load(Ordering::Acquire) < job.tasks {
                s = self.shared.done_cv.wait(s).expect("pool lock");
            }
        }
        let payload = job.panic.lock().expect("panic slot").take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.state.lock().expect("pool lock");
            s.shutdown = true;
            s.epoch += 1;
            self.shared.epoch.store(s.epoch, Ordering::Release);
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        // Spin briefly for the next epoch before paying a condvar sleep.
        let mut spins = 0u32;
        while shared.epoch.load(Ordering::Acquire) == seen && spins < SPIN_ROUNDS {
            spins += 1;
            std::hint::spin_loop();
        }
        let job = {
            let mut s = shared.state.lock().expect("pool lock");
            while !s.shutdown && s.epoch == seen {
                s = shared.work_cv.wait(s).expect("pool lock");
            }
            if s.shutdown {
                return;
            }
            seen = s.epoch;
            s.job.clone()
        };
        if let Some(job) = job {
            run_tasks(shared, &job);
        }
    }
}

/// Claims and runs tasks until the claim counter is exhausted; the thread
/// that completes the last task clears the job slot and wakes submitters.
fn run_tasks(shared: &Shared, job: &Arc<Job>) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.tasks {
            return;
        }
        // SAFETY: the submitter keeps the closure alive until completion.
        let f = unsafe { &*job.f };
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
            let mut slot = job.panic.lock().expect("panic slot");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if job.completed.fetch_add(1, Ordering::AcqRel) + 1 == job.tasks {
            let mut s = shared.state.lock().expect("pool lock");
            if s.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, job)) {
                s.job = None;
            }
            drop(s);
            shared.done_cv.notify_all();
        }
    }
}

static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();

/// The process-wide pool, created on first use with
/// [`configured_threads`] threads. [`init_global`] can size it explicitly
/// before that first use.
pub fn global() -> Arc<WorkerPool> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(WorkerPool::new(configured_threads()))))
}

/// Initializes the global pool with an explicit thread count, returning
/// `false` if it was already initialized (in which case the existing pool is
/// untouched). Lets binaries honor a `--jobs` flag without racing the lazy
/// env-based initialization.
pub fn init_global(threads: usize) -> bool {
    GLOBAL.set(Arc::new(WorkerPool::new(threads))).is_ok()
}

/// The thread count the global pool will use: `HOTIRON_THREADS` when set to
/// a positive integer, otherwise (or when set to `0`) the machine's
/// available parallelism, clamped to [`MAX_THREADS`].
pub fn configured_threads() -> usize {
    let auto =
        || thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(MAX_THREADS);
    match std::env::var("HOTIRON_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => auto(),
            Ok(n) => n.min(MAX_THREADS),
        },
        Err(_) => auto(),
    }
}

/// The pool the numeric kernels dispatch to: the innermost [`with_pool`]
/// override on this thread, else the global pool.
pub fn current() -> Arc<WorkerPool> {
    OVERRIDE.with(|stack| stack.borrow().last().cloned()).unwrap_or_else(global)
}

/// Runs `f` with `pool` installed as this thread's [`current`] pool — the
/// hook the determinism tests use to compare identical solves on 1-thread
/// and N-thread pools inside one process.
pub fn with_pool<R>(pool: &Arc<WorkerPool>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    OVERRIDE.with(|stack| stack.borrow_mut().push(Arc::clone(pool)));
    let _guard = Guard;
    f()
}

/// Runs `f(i)` for `i in 0..n` on the pool and returns the results in index
/// order — parallel execution with a deterministic, stable-order merge. Used
/// for coarse-grained fan-out (one task per experiment, one task per matrix
/// row batch) where each task produces an owned value.
pub fn map_tasks<T: Send>(pool: &WorkerPool, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool.for_each_task(n, |i| {
        let v = f(i);
        *slots[i].lock().expect("result slot") = Some(v);
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("task ran to completion"))
        .collect()
}

/// Number of fixed-size chunks covering `0..n` (0 for an empty range).
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(CHUNK)
}

/// Runs `f(chunk_index, start, end)` over the fixed chunks of `0..n`,
/// dispatching to `pool` when the range is big enough ([`PAR_MIN`]) and the
/// pool has more than one thread. Chunk boundaries are identical either way,
/// so any per-chunk computation is bitwise independent of the thread count.
pub fn for_each_chunk(pool: &WorkerPool, n: usize, f: impl Fn(usize, usize, usize) + Sync) {
    let chunks = chunk_count(n);
    if chunks <= 1 || n < PAR_MIN || pool.threads() <= 1 {
        for c in 0..chunks {
            f(c, c * CHUNK, ((c + 1) * CHUNK).min(n));
        }
    } else {
        pool.for_each_task(chunks, |c| f(c, c * CHUNK, ((c + 1) * CHUNK).min(n)));
    }
}

/// Writable view of a slice that tasks index into disjointly.
///
/// `for_each_task` closures are `Fn` and shared across threads, so they
/// cannot capture `&mut [f64]` directly; this wrapper carries the raw parts
/// and hands each chunk a private sub-slice.
struct SliceParts(*mut f64, usize);
// SAFETY: each task derives a sub-slice for a chunk range no other task
// touches (fixed disjoint chunks), and the owner outlives the scoped job.
unsafe impl Send for SliceParts {}
unsafe impl Sync for SliceParts {}

impl SliceParts {
    /// Accessor (rather than field reads) so closures capture `&SliceParts`
    /// as a whole — disjoint field capture would grab the bare `*mut f64`,
    /// which is not `Sync`.
    fn get(&self) -> (*mut f64, usize) {
        (self.0, self.1)
    }
}

/// Fills `out` chunk-by-chunk via `f(chunk_index, start, chunk_out)` where
/// `chunk_out = &mut out[start..end]`, in parallel when worthwhile. Chunks
/// are the fixed deterministic partition of [`for_each_chunk`].
pub fn fill_chunks(
    pool: &WorkerPool,
    out: &mut [f64],
    f: impl Fn(usize, usize, &mut [f64]) + Sync,
) {
    let n = out.len();
    let parts = SliceParts(out.as_mut_ptr(), n);
    for_each_chunk(pool, n, |c, start, end| {
        let (ptr, len) = parts.get();
        debug_assert!(end <= len);
        // SAFETY: chunk ranges are disjoint and within bounds; the slice
        // outlives the scoped job because `for_each_chunk` blocks.
        let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.add(start), end - start) };
        f(c, start, chunk);
    });
}

/// Like [`fill_chunks`] but updates two equal-length slices in lockstep:
/// `f(chunk_index, start, a_chunk, b_chunk)`. CG's coupled updates
/// (`x += α·p`, `r -= α·ap`) use this to pay one dispatch instead of two.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn fill_chunks2(
    pool: &WorkerPool,
    a: &mut [f64],
    b: &mut [f64],
    f: impl Fn(usize, usize, &mut [f64], &mut [f64]) + Sync,
) {
    let n = a.len();
    assert_eq!(b.len(), n, "fill_chunks2 slices must match");
    let pa = SliceParts(a.as_mut_ptr(), n);
    let pb = SliceParts(b.as_mut_ptr(), n);
    for_each_chunk(pool, n, |c, start, end| {
        let (aptr, _) = pa.get();
        let (bptr, _) = pb.get();
        // SAFETY: as in `fill_chunks` — disjoint in-bounds chunks, owners
        // outlive the blocking scoped job, and `a`/`b` are distinct slices.
        let ac = unsafe { std::slice::from_raw_parts_mut(aptr.add(start), end - start) };
        let bc = unsafe { std::slice::from_raw_parts_mut(bptr.add(start), end - start) };
        f(c, start, ac, bc);
    });
}

/// Deterministic fixed-order reduction: computes a partial value per fixed
/// chunk with `f(start, end)` (in parallel when worthwhile) and sums the
/// partials in ascending chunk order. The grouping — and therefore the
/// floating-point result — depends only on `n`, never on the thread count.
pub fn det_sum_of(pool: &WorkerPool, n: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> f64 {
    let chunks = chunk_count(n);
    match chunks {
        0 => 0.0,
        1 => f(0, n),
        _ => {
            let mut partials = vec![0.0f64; chunks];
            fill_chunks(pool, &mut partials, |_, pstart, out| {
                for (slot, c) in out.iter_mut().zip(pstart..) {
                    *slot = f(c * CHUNK, ((c + 1) * CHUNK).min(n));
                }
            });
            partials.iter().sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        pool.for_each_task(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_tasks_and_zero_sized_batches_are_noops() {
        let pool = WorkerPool::new(3);
        pool.for_each_task(0, |_| panic!("must not run"));
        for_each_chunk(&pool, 0, |_, _, _| panic!("must not run"));
        let mut empty: [f64; 0] = [];
        fill_chunks(&pool, &mut empty, |_, _, _| panic!("must not run"));
        assert_eq!(det_sum_of(&pool, 0, |_, _| panic!("must not run")), 0.0);
    }

    #[test]
    fn scoped_join_sees_all_side_effects() {
        // The call must not return before every task has finished writing.
        let pool = WorkerPool::new(4);
        for _ in 0..50 {
            let mut out = vec![0.0f64; 4096];
            fill_chunks(&pool, &mut out, |_, start, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (start + k) as f64;
                }
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as f64);
            }
        }
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let err = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_task(64, |i| {
                if i == 17 {
                    panic!("boom {i}");
                }
            });
        }))
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom"), "{msg}");
        // The pool is still usable afterwards.
        let ran = AtomicU32::new(0);
        pool.for_each_task(8, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_submission_runs_inline() {
        let pool = Arc::new(WorkerPool::new(4));
        let count = AtomicU32::new(0);
        let p2 = Arc::clone(&pool);
        pool.for_each_task(8, |_| {
            // Nested call from inside a task: must not deadlock.
            p2.for_each_task(8, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn det_sum_is_threadcount_invariant() {
        let n = 10_000;
        let data: Vec<f64> = (0..n).map(|i| ((i * 37) % 1000) as f64 * 1.0e-3 + 0.1).collect();
        let sums: Vec<f64> = [1usize, 2, 5]
            .iter()
            .map(|&t| {
                let pool = WorkerPool::new(t);
                det_sum_of(&pool, n, |lo, hi| data[lo..hi].iter().sum())
            })
            .collect();
        assert!(sums.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()), "{sums:?}");
    }

    #[test]
    fn with_pool_overrides_current() {
        let small = Arc::new(WorkerPool::new(1));
        with_pool(&small, || {
            assert_eq!(current().threads(), 1);
        });
    }

    #[test]
    fn single_chunk_sum_matches_plain_fold() {
        let pool = WorkerPool::new(2);
        let data: Vec<f64> = (0..CHUNK).map(|i| i as f64 * 0.5).collect();
        let a = det_sum_of(&pool, data.len(), |lo, hi| data[lo..hi].iter().sum());
        let b: f64 = data.iter().sum();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
