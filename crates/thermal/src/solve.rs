//! Steady-state and transient solvers for the assembled RC network.
//!
//! * [`solve_steady`] / [`solve_steady_with`] — `G·T = P + G_amb·T_amb` via
//!   warm-started conjugate gradients or a sparse LDLᵀ direct factorization
//!   ([`SolverChoice`]).
//! * [`BackwardEuler`] — unconditionally stable implicit stepper, the
//!   workhorse for long traces (the oil nodes make the system mildly stiff).
//!   The operator `C/dt + G` is factored **once** at construction; each step
//!   is then two triangular sweeps instead of a CG run.
//! * [`Rk4Adaptive`] — HotSpot's native explicit adaptive scheme, kept as an
//!   independent cross-check of the implicit path.

use crate::cholesky::LdlFactor;
use crate::circuit::ThermalCircuit;
use crate::multigrid::{mg_pcg, MgOptions, Multigrid};
use crate::sparse::{conjugate_gradient, CsrMatrix, SolveMethod, SolveStats};
use std::cell::{Cell, RefCell};
use std::error::Error;
use std::fmt;

/// Default relative tolerance for linear solves.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Cells per layer from which [`solve_steady`] picks
/// [`SolverChoice::Multigrid`] over plain CG (64×64; below this the
/// hierarchy setup is not worth the few hundred CG iterations it saves).
pub const MG_AUTO_MIN_CELLS: usize = 4096;

/// Iteration cap for the MG-preconditioned steady solve. MG convergence is
/// flat in grid size (~10–20 iterations at [`DEFAULT_TOL`]), so a solve that
/// reaches this cap is broken, not slow.
const MG_MAX_ITERS: usize = 200;

/// Which linear solver backs a steady or transient solve.
///
/// The decision rule (see DESIGN.md): **Direct** when one operator is solved
/// against many right-hand sides (transient stepping — one factorization
/// amortized over every step) or when an exact answer without a tolerance
/// knob is wanted; **Cg** when the operator changes between solves, when a
/// good warm start is available (steady-state sweeps over slowly-varying
/// power maps), or as the independent cross-check of the direct path;
/// **Multigrid** for steady solves on IR-camera-resolution grids
/// (≥ [`MG_AUTO_MIN_CELLS`] cells, i.e. 64×64 and up), where its
/// grid-size-independent iteration count beats Jacobi-PCG by growing
/// margins. The direct path falls back to CG automatically if factorization
/// hits a non-positive pivot (a non-SPD operator); the multigrid path falls
/// back to CG when the grid is too small for a hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Sparse LDLᵀ factorization with RCM ordering ([`LdlFactor`]).
    #[default]
    Direct,
    /// Jacobi-preconditioned conjugate gradient with warm starts.
    Cg,
    /// Conjugate gradient preconditioned by a geometric multigrid V-cycle
    /// ([`crate::multigrid::Multigrid`]), with the hierarchy built once per
    /// circuit and cached.
    Multigrid,
    /// Green's-function spectral evaluation ([`crate::greens`]): fast cosine
    /// transforms against a precomputed unit-source response, O(n log n) per
    /// solve and exact to FFT roundoff. Only laterally uniform stacks on
    /// power-of-two grids qualify; an ineligible circuit fails the solve
    /// with [`SolveError::SpectralIneligible`] naming the offending layer.
    Spectral,
}

/// Error from a thermal solve.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The iterative linear solver did not reach the tolerance.
    NotConverged {
        /// Iterations and final residual.
        stats: SolveStats,
    },
    /// The iterative linear solver hit its iteration cap with the residual
    /// still above tolerance (previously indistinguishable from other
    /// non-convergence; callers that want to retry with a looser tolerance
    /// or a different solver key off this variant).
    MaxIters {
        /// The relative residual when the cap was reached.
        achieved_residual: f64,
    },
    /// [`SolverChoice::Spectral`] was requested for a circuit that does not
    /// qualify for the spectral backend (non-uniform lateral properties,
    /// oversized plates, or a non-power-of-two grid).
    SpectralIneligible {
        /// Human-readable disqualification, naming the offending layer.
        reason: String,
    },
    /// An explicit integrator's adapted step underflowed while the local
    /// error still exceeded the tolerance: the network is too stiff for the
    /// scheme. Switch to [`BackwardEuler`].
    StepUnderflow {
        /// The step size (s) at which adaptation gave up.
        step: f64,
        /// The local error estimate (K) at that step.
        error: f64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotConverged { stats } => write!(
                f,
                "linear solve did not converge: {} iterations, residual {:.3e}",
                stats.iterations, stats.relative_residual
            ),
            Self::MaxIters { achieved_residual } => write!(
                f,
                "iterative solve hit its iteration cap with residual {achieved_residual:.3e} \
                 still above tolerance"
            ),
            Self::SpectralIneligible { reason } => {
                write!(f, "spectral solver ineligible: {reason}")
            }
            Self::StepUnderflow { step, error } => write!(
                f,
                "explicit step underflow: h = {step:.3e} s with local error {error:.3e} K \
                 still above tolerance — system too stiff, use BackwardEuler"
            ),
        }
    }
}

impl Error for SolveError {}

/// Solves the steady-state system `G·T = P + G_amb·T_amb` with a
/// warm-started iterative solver, auto-selected by problem size: multigrid-
/// preconditioned CG at or above [`MG_AUTO_MIN_CELLS`] cells per layer
/// (64×64 and up), plain Jacobi-PCG below. Both benefit from `state` as a
/// warm start when sweeping similar power maps.
///
/// `state` is used as the warm start and holds the solution (kelvin) on
/// success.
///
/// # Errors
///
/// [`SolveError::NotConverged`] or [`SolveError::MaxIters`] if the solver
/// stalls (which indicates a floating node or an extremely ill-conditioned
/// package configuration).
pub fn solve_steady(
    circuit: &ThermalCircuit,
    si_cell_power: &[f64],
    ambient: f64,
    state: &mut [f64],
) -> Result<SolveStats, SolveError> {
    let solver = if circuit.cell_count() >= MG_AUTO_MIN_CELLS {
        // At IR-camera resolution the spectral path beats multigrid by two
        // orders of magnitude; take it whenever the circuit qualifies.
        if circuit.spectral().is_ok() {
            SolverChoice::Spectral
        } else {
            SolverChoice::Multigrid
        }
    } else {
        SolverChoice::Cg
    };
    solve_steady_with(circuit, si_cell_power, ambient, state, solver)
}

/// Solves the steady-state system with an explicit [`SolverChoice`].
///
/// With [`SolverChoice::Direct`] the conductance matrix is factored
/// (LDLᵀ, RCM-ordered), solved, and the residual verified against
/// [`DEFAULT_TOL`]. The factorization is memoized on the circuit
/// ([`ThermalCircuit::steady_factor_with_setup`]) so repeated solves of a
/// shared circuit pay it once; the returned stats carry factorization
/// telemetry (`factor_seconds` — zero when the cached factor was reused —
/// and `factor_nnz`). A non-positive pivot — the operator is not SPD,
/// e.g. a floating node — falls back to CG, whose diagnostics (panic on
/// non-positive diagonal, [`SolveError::NotConverged`]) localize the
/// problem.
///
/// # Errors
///
/// [`SolveError::NotConverged`] if the selected solver misses
/// [`DEFAULT_TOL`]; [`SolveError::MaxIters`] when an iterative solver ran
/// out of iterations doing so.
pub fn solve_steady_with(
    circuit: &ThermalCircuit,
    si_cell_power: &[f64],
    ambient: f64,
    state: &mut [f64],
    solver: SolverChoice,
) -> Result<SolveStats, SolveError> {
    if solver == SolverChoice::Spectral {
        return solve_steady_spectral(circuit, si_cell_power, ambient, state);
    }
    let b = circuit.rhs(si_cell_power, ambient);
    let n = circuit.node_count();
    let cg_cap = 40 * n + 1000;
    let (stats, cap) = match solver {
        SolverChoice::Direct => match circuit.steady_factor_with_setup() {
            Some((factor, setup_seconds)) => {
                factor.solve_into(&b, state);
                let residual = relative_residual(circuit.conductance(), &b, state);
                let stats = SolveStats {
                    method: SolveMethod::Ldlt,
                    iterations: 0,
                    relative_residual: residual,
                    converged: residual <= DEFAULT_TOL,
                    // Charged only to the solve that built the factor; later
                    // solves reuse it and report 0.0.
                    factor_seconds: setup_seconds,
                    factor_nnz: factor.nnz_l(),
                    solve_count: 1,
                    // The triangular sweeps are inherently serial.
                    threads: 1,
                    warm_start: false,
                    multigrid: None,
                };
                (stats, usize::MAX)
            }
            None => {
                (conjugate_gradient(circuit.conductance(), &b, state, DEFAULT_TOL, cg_cap), cg_cap)
            }
        },
        SolverChoice::Cg => {
            (conjugate_gradient(circuit.conductance(), &b, state, DEFAULT_TOL, cg_cap), cg_cap)
        }
        SolverChoice::Multigrid => match circuit.multigrid_with_setup() {
            Some((mg, setup_seconds)) => {
                let mut stats = mg_pcg(mg, &b, state, DEFAULT_TOL, MG_MAX_ITERS);
                // Charge the one-time hierarchy construction to the solve
                // that triggered it, like the direct path does for its
                // factorization.
                stats.factor_seconds += setup_seconds;
                (stats, MG_MAX_ITERS)
            }
            None => {
                (conjugate_gradient(circuit.conductance(), &b, state, DEFAULT_TOL, cg_cap), cg_cap)
            }
        },
        SolverChoice::Spectral => unreachable!("handled above"),
    };
    finish_iterative(stats, cap)
}

/// The [`SolverChoice::Spectral`] steady path: evaluates the precomputed
/// Green's-function response ([`ThermalCircuit::spectral_with_setup`]). The
/// reported `relative_residual` is the O(n) energy-balance residual the
/// evaluation returns (total power in vs. heat leaving to ambient), which
/// for this exact method sits at FFT roundoff; the response precompute time
/// is charged as `factor_seconds` to the solve that triggered it, like the
/// direct path's factorization.
fn solve_steady_spectral(
    circuit: &ThermalCircuit,
    si_cell_power: &[f64],
    ambient: f64,
    state: &mut [f64],
) -> Result<SolveStats, SolveError> {
    let (resp, setup_seconds) = match circuit.spectral_with_setup() {
        Ok(v) => v,
        Err(e) => return Err(SolveError::SpectralIneligible { reason: e.reason.clone() }),
    };
    let residual = resp.solve(si_cell_power, ambient, state);
    let stats = SolveStats {
        method: SolveMethod::Spectral,
        iterations: 0,
        relative_residual: residual,
        converged: residual <= DEFAULT_TOL.sqrt(),
        factor_seconds: setup_seconds,
        factor_nnz: 0,
        solve_count: 1,
        threads: crate::pool::current().threads(),
        warm_start: false,
        multigrid: None,
    };
    finish_iterative(stats, usize::MAX)
}

/// Maps final solve stats to the caller-facing result: converged solves pass
/// through; a solve that stopped *because* it hit the iteration cap reports
/// [`SolveError::MaxIters`]; any other failure (numerical breakdown, direct
/// residual miss) reports [`SolveError::NotConverged`].
fn finish_iterative(stats: SolveStats, max_iters: usize) -> Result<SolveStats, SolveError> {
    if stats.converged {
        Ok(stats)
    } else if stats.iterations >= max_iters {
        Err(SolveError::MaxIters { achieved_residual: stats.relative_residual })
    } else {
        Err(SolveError::NotConverged { stats })
    }
}

/// `‖b − A·x‖ / ‖b‖` (0 when `b = 0`).
fn relative_residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let ax = a.mul_vec(x);
    let num: f64 = ax.iter().zip(b).map(|(axi, bi)| (bi - axi) * (bi - axi)).sum::<f64>().sqrt();
    let den: f64 = b.iter().map(|bi| bi * bi).sum::<f64>().sqrt();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Implicit backward-Euler transient stepper with a fixed time step.
///
/// Each step solves `(C/dt + G)·T⁺ = C/dt·T + P + G_amb·T_amb`. The operator
/// is fixed for the lifetime of the stepper, so with the default
/// [`SolverChoice::Direct`] it is LDLᵀ-factored **once** in [`new`] and every
/// [`step`] is just two triangular sweeps — the 1000-step trace loop costs
/// one factorization plus 1000 back-substitutions instead of 1000 CG runs.
/// The direct solve's residual is verified against [`DEFAULT_TOL`] on the
/// first step and every [`RESIDUAL_CHECK_INTERVAL`]th step thereafter (the
/// factor and operator never change between steps, so the residual is
/// essentially constant, and checking it costs a matrix-vector product that
/// would otherwise dominate the two sweeps); a check that misses tolerance
/// is polished by warm-started CG, keeping the accuracy contract of the CG
/// path. Unconditionally stable, first-order accurate; choose `dt` well
/// below the fastest time constant you care to resolve.
///
/// At IR-camera grids (64×64 and up) LDLᵀ fill-in makes both the
/// factorization and each back-substitution superlinear; there
/// [`SolverChoice::Multigrid`] builds a hierarchy on the transient operator
/// `C/dt + G` once per (circuit, dt) and each step is a warm-started MG-PCG
/// solve whose iteration count stays flat in grid size (the previous frame
/// is the warm start, so typical steps converge in a handful of V-cycles).
/// [`auto`](BackwardEuler::auto) picks between the two by
/// [`MG_AUTO_MIN_CELLS`].
///
/// [`new`]: BackwardEuler::new
/// [`step`]: BackwardEuler::step
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::{library, GridMapping};
/// use hotiron_thermal::circuit::{build_circuit, DieGeometry};
/// use hotiron_thermal::package::{OilSiliconPackage, Package};
/// use hotiron_thermal::solve::BackwardEuler;
///
/// let plan = library::uniform_die(0.02, 0.02);
/// let map = GridMapping::new(&plan, 4, 4);
/// let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
/// let circuit = build_circuit(&map, die, &Package::OilSilicon(OilSiliconPackage::paper_default()))?;
/// let mut stepper = BackwardEuler::new(&circuit, 1e-3);
/// let mut state = vec![318.15; circuit.node_count()];
/// let power = vec![200.0 / 16.0; 16];
/// stepper.step(&mut state, &power, 318.15)?;
/// assert!(state[0] > 318.15); // the die started heating
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BackwardEuler<'c> {
    circuit: &'c ThermalCircuit,
    dt: f64,
    a: CsrMatrix,
    c_over_dt: Vec<f64>,
    /// Cached LDLᵀ of `a`; `None` means an iterative path (chosen explicitly
    /// or because factorization hit a non-positive pivot).
    factor: Option<LdlFactor>,
    /// Cached multigrid hierarchy built on `a = C/dt + G`
    /// ([`Multigrid::from_operator`]); `None` means the plain-CG path. Built
    /// once per (circuit, dt) at construction, reused by every step.
    mg: Option<Multigrid>,
    /// Solves performed against `a` so far (telemetry; see
    /// [`SolveStats::solve_count`]).
    solve_count: Cell<usize>,
    /// Reusable right-hand-side and triangular-solve buffers, so the per-step
    /// hot path allocates nothing.
    scratch: RefCell<StepScratch>,
    /// The residual measured at the most recent direct-path check step
    /// (reported by the steps in between; see the type-level docs).
    last_residual: Cell<f64>,
    /// Cached stepper for the trailing partial step of [`advance`], keyed by
    /// its `dt`. Repeated trace-loop calls with the same fractional remainder
    /// (e.g. `advance(…, 0.0033)` at `dt = 1e-3` every sample) reuse one
    /// assembly + factorization instead of paying both per call.
    ///
    /// [`advance`]: BackwardEuler::advance
    tail: RefCell<Option<Box<BackwardEuler<'c>>>>,
}

/// Buffers reused across [`BackwardEuler::step`] calls.
#[derive(Debug, Default)]
struct StepScratch {
    /// Assembled right-hand side `C/dt·T + P + G_amb·T_amb`.
    b: Vec<f64>,
    /// Permuted work vector for [`LdlFactor::solve_with_scratch`].
    y: Vec<f64>,
}

/// Direct-path steps between residual verifications (the first step is
/// always verified). See [`BackwardEuler`].
pub const RESIDUAL_CHECK_INTERVAL: usize = 64;

impl<'c> BackwardEuler<'c> {
    /// Creates a stepper with time step `dt` (seconds), factoring the
    /// operator `C/dt + G` once ([`SolverChoice::Direct`]). If the operator
    /// is not positive definite the stepper silently falls back to CG, whose
    /// per-step diagnostics localize the broken node.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn new(circuit: &'c ThermalCircuit, dt: f64) -> Self {
        Self::with_solver(circuit, dt, SolverChoice::Direct)
    }

    /// Creates a stepper with the solver auto-selected by grid size, the
    /// transient analogue of [`solve_steady`]'s rule: LDLᵀ below
    /// [`MG_AUTO_MIN_CELLS`] cells per layer (the factor stays sparse and a
    /// step is two triangular sweeps), MG-preconditioned CG at camera grids
    /// and above (64×64+), where LDLᵀ fill-in makes both the factorization
    /// and each back-substitution superlinear while MG's warm-started
    /// iteration count stays flat.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn auto(circuit: &'c ThermalCircuit, dt: f64) -> Self {
        let solver = if circuit.cell_count() >= MG_AUTO_MIN_CELLS {
            SolverChoice::Multigrid
        } else {
            SolverChoice::Direct
        };
        Self::with_solver(circuit, dt, solver)
    }

    /// Creates a stepper with an explicit [`SolverChoice`].
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn with_solver(circuit: &'c ThermalCircuit, dt: f64, solver: SolverChoice) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive, got {dt}");
        let c_over_dt: Vec<f64> = circuit.capacitance().iter().map(|c| c / dt).collect();
        let a = circuit.conductance().add_diagonal(&c_over_dt);
        let (factor, mg) = match solver {
            SolverChoice::Direct => (LdlFactor::factor(&a).ok(), None),
            // The hierarchy is built on the *transient* operator `C/dt + G`
            // — the added diagonal only strengthens diagonal dominance, so
            // the steady coarsening transfers unchanged. Grids too small for
            // a hierarchy fall through to plain CG.
            SolverChoice::Multigrid => {
                (None, Multigrid::from_operator(circuit, &a, MgOptions::default()))
            }
            // The spectral response is factored for `G` alone; a transient
            // request on that choice steps on the plain CG path (qualifying
            // stacks should use `greens::SpectralTransient` directly).
            SolverChoice::Cg | SolverChoice::Spectral => (None, None),
        };
        Self {
            circuit,
            dt,
            a,
            c_over_dt,
            factor,
            mg,
            solve_count: Cell::new(0),
            scratch: RefCell::new(StepScratch::default()),
            last_residual: Cell::new(0.0),
            tail: RefCell::new(None),
        }
    }

    /// The fixed time step, s.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The solver actually in use: [`SolverChoice::Cg`] when asked for, when
    /// the direct factorization failed at construction, or when the grid was
    /// too small for a multigrid hierarchy.
    pub fn solver(&self) -> SolverChoice {
        if self.factor.is_some() {
            SolverChoice::Direct
        } else if self.mg.is_some() {
            SolverChoice::Multigrid
        } else {
            SolverChoice::Cg
        }
    }

    /// Levels in the cached transient multigrid hierarchy (0 off the MG
    /// path).
    pub fn mg_levels(&self) -> usize {
        self.mg.as_ref().map_or(0, Multigrid::level_count)
    }

    /// Stored non-zeros of the cached factor's `L` (0 on the CG path).
    pub fn factor_nnz(&self) -> usize {
        self.factor.as_ref().map_or(0, LdlFactor::nnz_l)
    }

    /// Solves performed against the cached operator so far.
    pub fn solve_count(&self) -> usize {
        self.solve_count.get()
    }

    /// Advances `state` (kelvin) by one step under the given per-silicon-cell
    /// power (W) and ambient (K).
    ///
    /// # Errors
    ///
    /// [`SolveError::NotConverged`] if the solve misses [`DEFAULT_TOL`]
    /// (after CG polishing, on the direct path).
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length.
    pub fn step(
        &self,
        state: &mut [f64],
        si_cell_power: &[f64],
        ambient: f64,
    ) -> Result<SolveStats, SolveError> {
        assert_eq!(state.len(), self.circuit.node_count());
        let mut scratch = self.scratch.borrow_mut();
        let StepScratch { b, y } = &mut *scratch;
        self.circuit.rhs_into(si_cell_power, ambient, b);
        for (bi, (ci, si)) in b.iter_mut().zip(self.c_over_dt.iter().zip(&*state)) {
            *bi += ci * si;
        }
        let n = state.len();
        let cg_cap = 40 * n + 1000;
        let mut cap = cg_cap;
        self.solve_count.set(self.solve_count.get() + 1);
        let stats = match &self.factor {
            Some(factor) => {
                factor.solve_with_scratch(b, state, y);
                let count = self.solve_count.get();
                let mut residual = self.last_residual.get();
                let mut iterations = 0;
                if count == 1 || count.is_multiple_of(RESIDUAL_CHECK_INTERVAL) {
                    residual = relative_residual(&self.a, b, state);
                    if residual > DEFAULT_TOL {
                        // Rare (severe ill-conditioning): polish the direct
                        // solution with a few warm-started CG iterations.
                        let polish = conjugate_gradient(&self.a, b, state, DEFAULT_TOL, cg_cap);
                        residual = polish.relative_residual;
                        iterations = polish.iterations;
                    }
                    self.last_residual.set(residual);
                }
                SolveStats {
                    method: SolveMethod::Ldlt,
                    iterations,
                    relative_residual: residual,
                    converged: residual <= DEFAULT_TOL,
                    // Charge the one-time factorization to the first step.
                    factor_seconds: if count == 1 { factor.factor_seconds() } else { 0.0 },
                    factor_nnz: factor.nnz_l(),
                    solve_count: count,
                    // The triangular sweeps are inherently serial.
                    threads: 1,
                    warm_start: false,
                    multigrid: None,
                }
            }
            None => {
                // Both iterative paths warm-start from `state`, which still
                // holds the previous frame — successive frames differ by
                // O(dt), so the initial residual is already small.
                let mut stats = match &self.mg {
                    Some(mg) => {
                        cap = MG_MAX_ITERS;
                        let mut s = mg_pcg(mg, b, state, DEFAULT_TOL, MG_MAX_ITERS);
                        // Charge the one-time hierarchy construction to the
                        // first step, like the direct path's factorization.
                        s.factor_seconds =
                            if self.solve_count.get() == 1 { mg.setup_seconds() } else { 0.0 };
                        s
                    }
                    None => conjugate_gradient(&self.a, b, state, DEFAULT_TOL, cg_cap),
                };
                stats.solve_count = self.solve_count.get();
                stats
            }
        };
        // A CG-polished direct check that ran out of iterations surfaces the
        // cap the same way the plain CG path does.
        finish_iterative(stats, cap)
    }

    /// Advances `state` by `duration` seconds in fixed steps. A trailing
    /// partial step, if any, runs on a cached tail stepper that is rebuilt
    /// only when the remainder changes — repeated trace-loop calls with the
    /// same `duration` pay the tail's assembly and factorization once, not
    /// per call.
    ///
    /// Remainders below `1e-12 · max(dt, 1)` seconds are float noise from
    /// the `duration / dt` division and are deliberately not integrated;
    /// over a trace this truncation is bounded by ~1e-12 s of simulated time
    /// per call, far below the stepper's own first-order error.
    ///
    /// # Errors
    ///
    /// Propagates the first convergence failure.
    pub fn advance(
        &self,
        state: &mut [f64],
        si_cell_power: &[f64],
        ambient: f64,
        duration: f64,
    ) -> Result<(), SolveError> {
        assert!(duration >= 0.0, "duration must be non-negative");
        let whole = (duration / self.dt).floor() as usize;
        for _ in 0..whole {
            self.step(state, si_cell_power, ambient)?;
        }
        let rem = duration - whole as f64 * self.dt;
        if rem > 1e-12 * self.dt.max(1.0) {
            let mut tail = self.tail.borrow_mut();
            let reuse =
                tail.as_ref().is_some_and(|t| (t.dt - rem).abs() <= f64::EPSILON * rem.abs());
            if !reuse {
                *tail =
                    Some(Box::new(BackwardEuler::with_solver(self.circuit, rem, self.solver())));
            }
            tail.as_ref().expect("tail stepper was just ensured").step(
                state,
                si_cell_power,
                ambient,
            )?;
        }
        Ok(())
    }
}

/// Explicit adaptive 4th-order Runge-Kutta stepper (HotSpot's scheme).
///
/// Accuracy-adaptive via step doubling; stability-limited by the network's
/// fastest time constant, so it is best for short windows and as an
/// independent check on [`BackwardEuler`].
#[derive(Debug)]
pub struct Rk4Adaptive<'c> {
    circuit: &'c ThermalCircuit,
    /// Per-node inverse capacitance, 1/(J/K).
    inv_cap: Vec<f64>,
    /// Local error tolerance (kelvin) per step used by the doubling test.
    pub tolerance: f64,
}

impl<'c> Rk4Adaptive<'c> {
    /// Creates the stepper with a default 0.001 K local error tolerance.
    pub fn new(circuit: &'c ThermalCircuit) -> Self {
        let inv_cap = circuit.capacitance().iter().map(|c| 1.0 / c).collect();
        Self { circuit, inv_cap, tolerance: 1e-3 }
    }

    /// dT/dt = (P + b − G·T) / C.
    fn derivative(&self, state: &[f64], b: &[f64], out: &mut [f64]) {
        self.circuit.conductance().mul_vec_into(state, out);
        for i in 0..state.len() {
            out[i] = (b[i] - out[i]) * self.inv_cap[i];
        }
    }

    fn rk4_step(&self, state: &[f64], b: &[f64], h: f64, out: &mut Vec<f64>) {
        let n = state.len();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        self.derivative(state, b, &mut k1);
        for i in 0..n {
            tmp[i] = state[i] + 0.5 * h * k1[i];
        }
        self.derivative(&tmp, b, &mut k2);
        for i in 0..n {
            tmp[i] = state[i] + 0.5 * h * k2[i];
        }
        self.derivative(&tmp, b, &mut k3);
        for i in 0..n {
            tmp[i] = state[i] + h * k3[i];
        }
        self.derivative(&tmp, b, &mut k4);
        out.clear();
        out.extend(
            (0..n).map(|i| state[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i])),
        );
    }

    /// A conservative stability-based initial step: the smallest `C/G_ii`.
    pub fn suggested_step(&self) -> f64 {
        let g = self.circuit.conductance();
        let mut min_tau = f64::INFINITY;
        for i in 0..g.dim() {
            let tau = self.circuit.capacitance()[i] / g.diagonal(i);
            min_tau = min_tau.min(tau);
        }
        min_tau / 2.0
    }

    /// Advances `state` by `duration` seconds, adapting the internal step.
    ///
    /// A step is accepted only when the step-doubling error estimate meets
    /// `tolerance`; a step that must shrink below 1 ps to do so aborts with
    /// [`SolveError::StepUnderflow`] instead of silently accepting an
    /// out-of-tolerance result (the pre-fix behavior: the old accept branch
    /// took any `step < 1e-12` regardless of error, and its underflow
    /// assertion `step >= 1e-12 || err.is_finite()` could never fire for a
    /// finite error).
    ///
    /// # Errors
    ///
    /// [`SolveError::StepUnderflow`] if the network is too stiff for an
    /// explicit scheme at this tolerance — use [`BackwardEuler`].
    pub fn advance(
        &self,
        state: &mut Vec<f64>,
        si_cell_power: &[f64],
        ambient: f64,
        duration: f64,
    ) -> Result<(), SolveError> {
        let b = self.circuit.rhs(si_cell_power, ambient);
        let mut remaining = duration;
        let mut h = self.suggested_step().min(duration.max(1e-30));
        let mut full = Vec::new();
        let mut half1 = Vec::new();
        let mut half2 = Vec::new();
        while remaining > 1e-15 * duration.max(1.0) {
            let step = h.min(remaining);
            self.rk4_step(state, &b, step, &mut full);
            self.rk4_step(state, &b, step / 2.0, &mut half1);
            self.rk4_step(&half1, &b, step / 2.0, &mut half2);
            let err = full.iter().zip(&half2).map(|(a, c)| (a - c).abs()).fold(0.0f64, f64::max);
            if err <= self.tolerance {
                *state = half2.clone();
                remaining -= step;
                if err < self.tolerance / 4.0 {
                    h = step * 2.0;
                }
            } else if step < 1e-12 {
                // Halving further cannot help: the error estimate is either
                // non-finite (overflowed dynamics) or dominated by round-off.
                return Err(SolveError::StepUnderflow { step, error: err });
            } else {
                h = step / 2.0;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{build_circuit, DieGeometry};
    use crate::package::{AirSinkPackage, OilSiliconPackage, Package};
    use hotiron_floorplan::{library, GridMapping};

    const AMBIENT: f64 = 318.15; // 45 °C

    fn oil_circuit(rows: usize) -> ThermalCircuit {
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, rows, rows);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        build_circuit(&map, die, &Package::OilSilicon(OilSiliconPackage::paper_default())).unwrap()
    }

    fn air_circuit(rows: usize) -> ThermalCircuit {
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, rows, rows);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        build_circuit(&map, die, &Package::AirSink(AirSinkPackage::paper_default())).unwrap()
    }

    #[test]
    fn steady_energy_balance() {
        // In steady state, total heat into ambient equals total power.
        let c = oil_circuit(8);
        let p = vec![200.0 / 64.0; 64];
        let mut state = vec![AMBIENT; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut state).unwrap();
        let q_out: f64 =
            state.iter().zip(c.ambient_conductance()).map(|(t, g)| g * (t - AMBIENT)).sum();
        assert!((q_out - 200.0).abs() < 0.01, "q_out = {q_out}");
    }

    #[test]
    fn steady_uniform_power_matches_lumped_rconv() {
        // Uniform 200 W over the die with Rconv ≈ 1.0 K/W: the average die
        // temperature rise is ≈ 200 K (the Fig 2 scenario, which settles
        // around 520 K from a 318 K ambient in the paper's plot).
        let c = oil_circuit(16);
        let p = vec![200.0 / 256.0; 256];
        let mut state = vec![AMBIENT; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut state).unwrap();
        let si = c.silicon_slice(&state);
        let avg: f64 = si.iter().sum::<f64>() / si.len() as f64;
        let rise = avg - AMBIENT;
        assert!(rise > 160.0 && rise < 260.0, "avg rise = {rise} K");
    }

    #[test]
    fn steady_zero_power_is_ambient() {
        let c = air_circuit(6);
        let p = vec![0.0; 36];
        let mut state = vec![300.0; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut state).unwrap();
        for t in &state {
            assert!((t - AMBIENT).abs() < 1e-6, "{t}");
        }
    }

    #[test]
    fn air_steady_energy_balance() {
        let c = air_circuit(8);
        let p = vec![50.0 / 64.0; 64];
        let mut state = vec![AMBIENT; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut state).unwrap();
        let q_out: f64 =
            state.iter().zip(c.ambient_conductance()).map(|(t, g)| g * (t - AMBIENT)).sum();
        assert!((q_out - 50.0).abs() < 0.005, "q_out = {q_out}");
    }

    #[test]
    fn backward_euler_approaches_steady_state() {
        let c = oil_circuit(8);
        let p = vec![200.0 / 64.0; 64];
        let mut steady = vec![AMBIENT; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut steady).unwrap();

        let be = BackwardEuler::new(&c, 0.05);
        let mut state = vec![AMBIENT; c.node_count()];
        // The paper's Fig 2 shows settling within ~2-3 s; integrate 20 s to
        // be safely converged.
        be.advance(&mut state, &p, AMBIENT, 20.0).unwrap();
        let avg_err =
            state.iter().zip(&steady).map(|(a, b)| (a - b).abs()).sum::<f64>() / state.len() as f64;
        assert!(avg_err < 1.0, "avg |T - T_steady| = {avg_err} K");
    }

    #[test]
    fn backward_euler_conserves_monotonic_warmup() {
        let c = oil_circuit(6);
        let p = vec![100.0 / 36.0; 36];
        let be = BackwardEuler::new(&c, 0.01);
        let mut state = vec![AMBIENT; c.node_count()];
        let mut last = AMBIENT;
        for _ in 0..20 {
            be.step(&mut state, &p, AMBIENT).unwrap();
            let t = state[0];
            assert!(t >= last - 1e-9, "warmup must be monotonic");
            last = t;
        }
        assert!(last > AMBIENT + 1.0);
    }

    #[test]
    fn rk4_agrees_with_backward_euler() {
        let c = oil_circuit(4);
        let p = vec![50.0 / 16.0; 16];
        let mut s_be = vec![AMBIENT; c.node_count()];
        let mut s_rk = s_be.clone();
        // Short window with a small BE step so first-order error is small.
        let be = BackwardEuler::new(&c, 1e-4);
        be.advance(&mut s_be, &p, AMBIENT, 0.05).unwrap();
        let rk = Rk4Adaptive::new(&c);
        rk.advance(&mut s_rk, &p, AMBIENT, 0.05).unwrap();
        for (a, b) in s_be.iter().zip(&s_rk) {
            assert!((a - b).abs() < 0.25, "BE {a} vs RK4 {b}");
        }
    }

    #[test]
    fn advance_handles_partial_steps() {
        let c = oil_circuit(4);
        let p = vec![10.0 / 16.0; 16];
        let be = BackwardEuler::new(&c, 0.01);
        let mut a = vec![AMBIENT; c.node_count()];
        be.advance(&mut a, &p, AMBIENT, 0.025).unwrap();
        // Same total duration in uneven chunks.
        let mut b = vec![AMBIENT; c.node_count()];
        be.advance(&mut b, &p, AMBIENT, 0.02).unwrap();
        be.advance(&mut b, &p, AMBIENT, 0.005).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn backward_euler_rejects_bad_dt() {
        let c = oil_circuit(2);
        let _ = BackwardEuler::new(&c, 0.0);
    }

    /// Max |a - b| over node pairs.
    fn max_node_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max)
    }

    /// High-accuracy CG reference (tolerance well below [`DEFAULT_TOL`], so
    /// the comparison bound measures the direct solver, not CG's slack).
    fn cg_reference(a: &CsrMatrix, b: &[f64], x0: &[f64]) -> Vec<f64> {
        let mut x = x0.to_vec();
        let stats = conjugate_gradient(a, b, &mut x, 1e-13, 100 * a.dim() + 1000);
        assert!(stats.converged, "reference CG must converge: {stats:?}");
        x
    }

    #[test]
    fn steady_direct_agrees_with_cg_oil() {
        let c = oil_circuit(8);
        let p: Vec<f64> = (0..64).map(|i| 3.0 + (i as f64 * 0.37).sin()).collect();
        let mut t_direct = vec![AMBIENT; c.node_count()];
        let s_dir =
            solve_steady_with(&c, &p, AMBIENT, &mut t_direct, SolverChoice::Direct).unwrap();
        assert_eq!(s_dir.method, SolveMethod::Ldlt);
        assert!(s_dir.factor_nnz > c.node_count());
        let b = c.rhs(&p, AMBIENT);
        let t_cg = cg_reference(c.conductance(), &b, &vec![AMBIENT; c.node_count()]);
        let max_diff = max_node_diff(&t_cg, &t_direct);
        assert!(max_diff <= 1e-8, "max node diff {max_diff}");
    }

    #[test]
    fn steady_direct_agrees_with_cg_air() {
        let c = air_circuit(8);
        let p: Vec<f64> = (0..64).map(|i| 0.5 + 0.1 * (i % 7) as f64).collect();
        let mut t_direct = vec![AMBIENT; c.node_count()];
        solve_steady_with(&c, &p, AMBIENT, &mut t_direct, SolverChoice::Direct).unwrap();
        let b = c.rhs(&p, AMBIENT);
        let t_cg = cg_reference(c.conductance(), &b, &vec![AMBIENT; c.node_count()]);
        let max_diff = max_node_diff(&t_cg, &t_direct);
        assert!(max_diff <= 1e-8, "max node diff {max_diff}");
    }

    #[test]
    fn backward_euler_direct_matches_cg_stepping() {
        let c = oil_circuit(6);
        let p = vec![100.0 / 36.0; 36];
        let dt = 0.01;
        let direct = BackwardEuler::new(&c, dt);
        let cg = BackwardEuler::with_solver(&c, dt, SolverChoice::Cg);
        assert_eq!(direct.solver(), SolverChoice::Direct);
        assert_eq!(cg.solver(), SolverChoice::Cg);
        let mut s_direct = vec![AMBIENT; c.node_count()];
        // Tight-tolerance CG reference replaying the same recurrence, so the
        // bound measures the direct path's error rather than DEFAULT_TOL
        // slack accumulated over 50 steps.
        let c_over_dt: Vec<f64> = c.capacitance().iter().map(|cap| cap / dt).collect();
        let a = c.conductance().add_diagonal(&c_over_dt);
        let mut s_ref = vec![AMBIENT; c.node_count()];
        for _ in 0..50 {
            direct.step(&mut s_direct, &p, AMBIENT).unwrap();
            let mut b = c.rhs(&p, AMBIENT);
            for (bi, (ci, si)) in b.iter_mut().zip(c_over_dt.iter().zip(&s_ref)) {
                *bi += ci * si;
            }
            s_ref = cg_reference(&a, &b, &s_ref);
        }
        let max_diff = max_node_diff(&s_direct, &s_ref);
        assert!(max_diff <= 1e-8, "max node diff after 50 steps {max_diff}");
        // The plain CG-backed stepper stays within its documented tolerance
        // of the direct trajectory as well.
        let mut s_cg = vec![AMBIENT; c.node_count()];
        for _ in 0..50 {
            cg.step(&mut s_cg, &p, AMBIENT).unwrap();
        }
        assert!(max_node_diff(&s_direct, &s_cg) <= 1e-6);
    }

    #[test]
    fn backward_euler_reports_factor_telemetry() {
        let c = oil_circuit(4);
        let p = vec![1.0; 16];
        let be = BackwardEuler::new(&c, 0.01);
        assert!(be.factor_nnz() > 0);
        assert_eq!(be.solve_count(), 0);
        let mut state = vec![AMBIENT; c.node_count()];
        let first = be.step(&mut state, &p, AMBIENT).unwrap();
        assert_eq!(first.method, SolveMethod::Ldlt);
        assert_eq!(first.solve_count, 1);
        assert!(first.factor_seconds > 0.0, "first step carries factor time");
        let second = be.step(&mut state, &p, AMBIENT).unwrap();
        assert_eq!(second.solve_count, 2);
        assert_eq!(second.factor_seconds, 0.0, "cached factor costs nothing");
        assert_eq!(second.factor_nnz, first.factor_nnz);
        assert_eq!(be.solve_count(), 2);
    }

    #[test]
    fn advance_reuses_cached_tail_stepper() {
        // Regression: advance() used to rebuild (and now would also
        // re-factor) the tail operator on every call. The cache makes
        // repeated equal remainders reuse one tail stepper; equality of the
        // trajectory with a fresh stepper guards correctness of the reuse.
        let c = oil_circuit(4);
        let p = vec![10.0 / 16.0; 16];
        let be = BackwardEuler::new(&c, 0.01);
        let mut cached = vec![AMBIENT; c.node_count()];
        // 0.025 s = 2 whole steps + 0.005 s remainder, three times over.
        for _ in 0..3 {
            be.advance(&mut cached, &p, AMBIENT, 0.025).unwrap();
        }
        let mut fresh = vec![AMBIENT; c.node_count()];
        for _ in 0..3 {
            let one_shot = BackwardEuler::new(&c, 0.01);
            one_shot.advance(&mut fresh, &p, AMBIENT, 0.025).unwrap();
        }
        for (a, b) in cached.iter().zip(&fresh) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn backward_euler_multigrid_matches_direct_stepping() {
        // The MG-PCG transient path must reproduce the direct trajectory:
        // same recurrence, different linear solver, DEFAULT_TOL per step.
        let c = air_circuit(16);
        let p: Vec<f64> = (0..256).map(|i| 0.2 + 0.05 * (i % 11) as f64).collect();
        let dt = 0.01;
        let direct = BackwardEuler::new(&c, dt);
        let mg = BackwardEuler::with_solver(&c, dt, SolverChoice::Multigrid);
        assert_eq!(direct.solver(), SolverChoice::Direct);
        assert_eq!(mg.solver(), SolverChoice::Multigrid, "16×16 must build a hierarchy");
        assert!(mg.mg_levels() >= 2, "hierarchy has {} levels", mg.mg_levels());
        let mut s_direct = vec![AMBIENT; c.node_count()];
        let mut s_mg = vec![AMBIENT; c.node_count()];
        for _ in 0..50 {
            direct.step(&mut s_direct, &p, AMBIENT).unwrap();
            let stats = mg.step(&mut s_mg, &p, AMBIENT).unwrap();
            assert_eq!(stats.method, SolveMethod::MgCg);
            assert!(stats.converged);
        }
        // The per-step 1e-10 *relative* residual is against a right-hand
        // side dominated by C/dt·T (~3e4 here), so each step can be off by
        // ~1e-6 K absolute; 50 steps accumulate to a few 1e-5 K.
        let max_diff = max_node_diff(&s_direct, &s_mg);
        assert!(max_diff <= 1e-4, "max node diff after 50 steps {max_diff}");
    }

    #[test]
    fn backward_euler_multigrid_warm_start_cuts_iterations() {
        // After the cold first step, the warm start (previous frame) should
        // keep the per-step MG-PCG iteration count small and no larger than
        // the cold solve's.
        let c = air_circuit(16);
        let p = vec![0.5; 256];
        let mg = BackwardEuler::with_solver(&c, 0.01, SolverChoice::Multigrid);
        let mut state = vec![AMBIENT; c.node_count()];
        let first = mg.step(&mut state, &p, AMBIENT).unwrap();
        let mut warm_max = 0;
        for _ in 0..10 {
            let s = mg.step(&mut state, &p, AMBIENT).unwrap();
            warm_max = warm_max.max(s.iterations);
        }
        assert!(
            warm_max <= first.iterations,
            "warm steps took {warm_max} iters vs cold {}",
            first.iterations
        );
        assert!(warm_max < 30, "warm MG-PCG should converge in a handful of cycles: {warm_max}");
    }

    #[test]
    fn backward_euler_multigrid_small_grid_falls_back_to_cg() {
        // 8×8 is at the coarsest-level size; no hierarchy can be built and
        // the stepper must degrade to plain CG, not fail.
        let c = air_circuit(8);
        let be = BackwardEuler::with_solver(&c, 0.01, SolverChoice::Multigrid);
        assert_eq!(be.solver(), SolverChoice::Cg);
        assert_eq!(be.mg_levels(), 0);
        let mut state = vec![AMBIENT; c.node_count()];
        be.step(&mut state, &vec![1.0; 64], AMBIENT).unwrap();
        assert!(state[0] > AMBIENT);
    }

    #[test]
    fn backward_euler_auto_picks_by_grid_size() {
        let small = oil_circuit(8);
        assert_eq!(BackwardEuler::auto(&small, 0.01).solver(), SolverChoice::Direct);
        let large = air_circuit(64); // 4096 cells = MG_AUTO_MIN_CELLS
        assert_eq!(BackwardEuler::auto(&large, 0.01).solver(), SolverChoice::Multigrid);
    }

    /// Two-package PCB board circuit at the board's shared `rows × rows`
    /// grid: bare lumped-top die + air-sink package, lumped PCB back.
    fn board_circuit(rows: usize) -> ThermalCircuit {
        use crate::board::{Board, PcbSpec, Placement, Rotation};
        use crate::stack::{Boundary, Layer, LayerStack};
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        let bare =
            LayerStack::new(vec![Layer::new("silicon", crate::materials::SILICON, 0.5e-3)], 0)
                .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 });
        let sink = Package::AirSink(AirSinkPackage::paper_default()).to_stack(die).unwrap();
        let place = |name: &str, stack, x, y| Placement {
            name: name.into(),
            die,
            stack,
            x,
            y,
            rotation: Rotation::R0,
        };
        let board = Board::new(
            rows,
            rows,
            PcbSpec {
                width: 0.08,
                height: 0.06,
                thickness: 1.6e-3,
                material: crate::materials::PCB,
                bottom: Boundary::Lumped { r_total: 4.0, c_total: 200.0 },
            },
        )
        .with_placement(place("u1", bare, 0.005, 0.005))
        .with_placement(place("u2", sink, 0.045, 0.03));
        let plan = library::uniform_die(0.02, 0.02);
        let m = GridMapping::new(&plan, rows, rows);
        crate::circuit::build_circuit_from_board(&board, &[m.clone(), m]).unwrap()
    }

    #[test]
    fn board_solvers_agree_and_multigrid_builds() {
        // The board plane layout (uniform cell planes first, singles after)
        // must coarsen under the stock multigrid derivation; Direct, CG and
        // MG-PCG must agree on the coupled two-package steady state.
        let c = board_circuit(16);
        let p: Vec<f64> = (0..2 * 256).map(|i| 0.02 + 0.0001 * (i % 37) as f64).collect();
        let mut direct = vec![AMBIENT; c.node_count()];
        solve_steady_with(&c, &p, AMBIENT, &mut direct, SolverChoice::Direct).unwrap();
        let mut cg = vec![AMBIENT; c.node_count()];
        solve_steady_with(&c, &p, AMBIENT, &mut cg, SolverChoice::Cg).unwrap();
        let mut mg = vec![AMBIENT; c.node_count()];
        let stats = solve_steady_with(&c, &p, AMBIENT, &mut mg, SolverChoice::Multigrid).unwrap();
        assert_eq!(stats.method, crate::sparse::SolveMethod::MgCg, "hierarchy must build");
        for i in 0..c.node_count() {
            assert!((direct[i] - cg[i]).abs() < 1e-6, "cg drift at {i}");
            assert!((direct[i] - mg[i]).abs() < 1e-6, "mg drift at {i}");
        }
        // The packages actually couple: heating only u1 warms u2's silicon.
        let nodes = c.board_nodes().unwrap();
        let mut p1 = vec![0.0; 2 * 256];
        p1[..256].iter_mut().for_each(|v| *v = 0.1);
        let mut state = vec![AMBIENT; c.node_count()];
        solve_steady_with(&c, &p1, AMBIENT, &mut state, SolverChoice::Direct).unwrap();
        let u2_si = nodes.placements[1].si_plane * 256;
        let u2_rise = state[u2_si..u2_si + 256].iter().sum::<f64>() / 256.0 - AMBIENT;
        assert!(u2_rise > 1e-4, "inter-package coupling must warm the idle die ({u2_rise} K)");
    }

    #[test]
    fn board_spectral_is_ineligible_with_named_reason() {
        let c = board_circuit(16);
        let p = vec![0.05; 2 * 256];
        let mut state = vec![AMBIENT; c.node_count()];
        let err =
            solve_steady_with(&c, &p, AMBIENT, &mut state, SolverChoice::Spectral).unwrap_err();
        match err {
            SolveError::SpectralIneligible { reason } => {
                assert!(reason.contains("board circuit"), "{reason}");
                assert!(reason.contains("PCB"), "{reason}");
            }
            other => panic!("expected SpectralIneligible, got {other:?}"),
        }
    }

    #[test]
    fn rk4_reports_stiffness_instead_of_accepting_bad_steps() {
        // Regression: with an unattainable tolerance the old logic accepted
        // any step below 1e-12 s regardless of error (its underflow
        // assertion `step >= 1e-12 || err.is_finite()` was vacuous for
        // finite error). The fix reports StepUnderflow.
        let c = oil_circuit(4);
        let p = vec![50.0 / 16.0; 16];
        let mut rk = Rk4Adaptive::new(&c);
        rk.tolerance = 0.0; // no finite step can meet this
        let mut state = vec![AMBIENT; c.node_count()];
        let err = rk.advance(&mut state, &p, AMBIENT, 0.01).unwrap_err();
        match err {
            SolveError::StepUnderflow { step, error } => {
                assert!(step < 1e-12);
                assert!(error > 0.0);
            }
            other => panic!("expected StepUnderflow, got {other:?}"),
        }
    }
}
