//! Steady-state and transient solvers for the assembled RC network.
//!
//! * [`solve_steady`] — conjugate gradients on `G·T = P + G_amb·T_amb`.
//! * [`BackwardEuler`] — unconditionally stable implicit stepper, the
//!   workhorse for long traces (the oil nodes make the system mildly stiff).
//! * [`Rk4Adaptive`] — HotSpot's native explicit adaptive scheme, kept as an
//!   independent cross-check of the implicit path.

use crate::circuit::ThermalCircuit;
use crate::sparse::{conjugate_gradient, CsrMatrix, SolveStats};
use std::error::Error;
use std::fmt;

/// Default relative tolerance for linear solves.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Error from a thermal solve.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The iterative linear solver did not reach the tolerance.
    NotConverged {
        /// Iterations and final residual.
        stats: SolveStats,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotConverged { stats } => write!(
                f,
                "linear solve did not converge: {} iterations, residual {:.3e}",
                stats.iterations, stats.relative_residual
            ),
        }
    }
}

impl Error for SolveError {}

/// Solves the steady-state system `G·T = P + G_amb·T_amb`.
///
/// `state` is used as the warm start and holds the solution (kelvin) on
/// success.
///
/// # Errors
///
/// [`SolveError::NotConverged`] if CG stalls (which indicates a floating
/// node or an extremely ill-conditioned package configuration).
pub fn solve_steady(
    circuit: &ThermalCircuit,
    si_cell_power: &[f64],
    ambient: f64,
    state: &mut [f64],
) -> Result<SolveStats, SolveError> {
    let b = circuit.rhs(si_cell_power, ambient);
    let n = circuit.node_count();
    let stats = conjugate_gradient(circuit.conductance(), &b, state, DEFAULT_TOL, 40 * n + 1000);
    if stats.converged {
        Ok(stats)
    } else {
        Err(SolveError::NotConverged { stats })
    }
}

/// Implicit backward-Euler transient stepper with a fixed time step.
///
/// Each step solves `(C/dt + G)·T⁺ = C/dt·T + P + G_amb·T_amb`, an SPD
/// system handled by warm-started CG. Unconditionally stable, first-order
/// accurate; choose `dt` well below the fastest time constant you care to
/// resolve.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::{library, GridMapping};
/// use hotiron_thermal::circuit::{build_circuit, DieGeometry};
/// use hotiron_thermal::package::{OilSiliconPackage, Package};
/// use hotiron_thermal::solve::BackwardEuler;
///
/// let plan = library::uniform_die(0.02, 0.02);
/// let map = GridMapping::new(&plan, 4, 4);
/// let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
/// let circuit = build_circuit(&map, die, &Package::OilSilicon(OilSiliconPackage::paper_default()));
/// let mut stepper = BackwardEuler::new(&circuit, 1e-3);
/// let mut state = vec![318.15; circuit.node_count()];
/// let power = vec![200.0 / 16.0; 16];
/// stepper.step(&mut state, &power, 318.15)?;
/// assert!(state[0] > 318.15); // the die started heating
/// # Ok::<(), hotiron_thermal::solve::SolveError>(())
/// ```
#[derive(Debug)]
pub struct BackwardEuler<'c> {
    circuit: &'c ThermalCircuit,
    dt: f64,
    a: CsrMatrix,
    c_over_dt: Vec<f64>,
}

impl<'c> BackwardEuler<'c> {
    /// Creates a stepper with time step `dt` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn new(circuit: &'c ThermalCircuit, dt: f64) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive, got {dt}");
        let c_over_dt: Vec<f64> = circuit.capacitance().iter().map(|c| c / dt).collect();
        let a = circuit.conductance().add_diagonal(&c_over_dt);
        Self { circuit, dt, a, c_over_dt }
    }

    /// The fixed time step, s.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Advances `state` (kelvin) by one step under the given per-silicon-cell
    /// power (W) and ambient (K).
    ///
    /// # Errors
    ///
    /// [`SolveError::NotConverged`] if the inner CG stalls.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length.
    pub fn step(
        &self,
        state: &mut [f64],
        si_cell_power: &[f64],
        ambient: f64,
    ) -> Result<SolveStats, SolveError> {
        assert_eq!(state.len(), self.circuit.node_count());
        let mut b = self.circuit.rhs(si_cell_power, ambient);
        for i in 0..b.len() {
            b[i] += self.c_over_dt[i] * state[i];
        }
        let n = state.len();
        let stats = conjugate_gradient(&self.a, &b, state, DEFAULT_TOL, 40 * n + 1000);
        if stats.converged {
            Ok(stats)
        } else {
            Err(SolveError::NotConverged { stats })
        }
    }

    /// Advances `state` by `duration` seconds in fixed steps (the trailing
    /// partial step, if any, uses a temporary stepper).
    ///
    /// # Errors
    ///
    /// Propagates the first convergence failure.
    pub fn advance(
        &self,
        state: &mut [f64],
        si_cell_power: &[f64],
        ambient: f64,
        duration: f64,
    ) -> Result<(), SolveError> {
        assert!(duration >= 0.0, "duration must be non-negative");
        let whole = (duration / self.dt).floor() as usize;
        for _ in 0..whole {
            self.step(state, si_cell_power, ambient)?;
        }
        let rem = duration - whole as f64 * self.dt;
        if rem > 1e-12 * self.dt.max(1.0) {
            let tail = BackwardEuler::new(self.circuit, rem);
            tail.step(state, si_cell_power, ambient)?;
        }
        Ok(())
    }
}

/// Explicit adaptive 4th-order Runge-Kutta stepper (HotSpot's scheme).
///
/// Accuracy-adaptive via step doubling; stability-limited by the network's
/// fastest time constant, so it is best for short windows and as an
/// independent check on [`BackwardEuler`].
#[derive(Debug)]
pub struct Rk4Adaptive<'c> {
    circuit: &'c ThermalCircuit,
    /// Per-node inverse capacitance, 1/(J/K).
    inv_cap: Vec<f64>,
    /// Local error tolerance (kelvin) per step used by the doubling test.
    pub tolerance: f64,
}

impl<'c> Rk4Adaptive<'c> {
    /// Creates the stepper with a default 0.001 K local error tolerance.
    pub fn new(circuit: &'c ThermalCircuit) -> Self {
        let inv_cap = circuit.capacitance().iter().map(|c| 1.0 / c).collect();
        Self { circuit, inv_cap, tolerance: 1e-3 }
    }

    /// dT/dt = (P + b − G·T) / C.
    fn derivative(&self, state: &[f64], b: &[f64], out: &mut [f64]) {
        self.circuit.conductance().mul_vec_into(state, out);
        for i in 0..state.len() {
            out[i] = (b[i] - out[i]) * self.inv_cap[i];
        }
    }

    fn rk4_step(&self, state: &[f64], b: &[f64], h: f64, out: &mut Vec<f64>) {
        let n = state.len();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        self.derivative(state, b, &mut k1);
        for i in 0..n {
            tmp[i] = state[i] + 0.5 * h * k1[i];
        }
        self.derivative(&tmp, b, &mut k2);
        for i in 0..n {
            tmp[i] = state[i] + 0.5 * h * k2[i];
        }
        self.derivative(&tmp, b, &mut k3);
        for i in 0..n {
            tmp[i] = state[i] + h * k3[i];
        }
        self.derivative(&tmp, b, &mut k4);
        out.clear();
        out.extend(
            (0..n).map(|i| state[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i])),
        );
    }

    /// A conservative stability-based initial step: the smallest `C/G_ii`.
    pub fn suggested_step(&self) -> f64 {
        let g = self.circuit.conductance();
        let mut min_tau = f64::INFINITY;
        for i in 0..g.dim() {
            let tau = self.circuit.capacitance()[i] / g.diagonal(i);
            min_tau = min_tau.min(tau);
        }
        min_tau / 2.0
    }

    /// Advances `state` by `duration` seconds, adapting the internal step.
    ///
    /// # Panics
    ///
    /// Panics if the adapted step underflows (network too stiff for an
    /// explicit scheme — use [`BackwardEuler`]).
    pub fn advance(
        &self,
        state: &mut Vec<f64>,
        si_cell_power: &[f64],
        ambient: f64,
        duration: f64,
    ) {
        let b = self.circuit.rhs(si_cell_power, ambient);
        let mut remaining = duration;
        let mut h = self.suggested_step().min(duration.max(1e-30));
        let mut full = Vec::new();
        let mut half1 = Vec::new();
        let mut half2 = Vec::new();
        while remaining > 1e-15 * duration.max(1.0) {
            let step = h.min(remaining);
            self.rk4_step(state, &b, step, &mut full);
            self.rk4_step(state, &b, step / 2.0, &mut half1);
            self.rk4_step(&half1, &b, step / 2.0, &mut half2);
            let err = full
                .iter()
                .zip(&half2)
                .map(|(a, c)| (a - c).abs())
                .fold(0.0f64, f64::max);
            if err <= self.tolerance || step < 1e-12 {
                assert!(step >= 1e-12 || err.is_finite(), "RK4 step underflow: system too stiff");
                *state = half2.clone();
                remaining -= step;
                if err < self.tolerance / 4.0 {
                    h = step * 2.0;
                }
            } else {
                h = step / 2.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{build_circuit, DieGeometry};
    use crate::package::{AirSinkPackage, OilSiliconPackage, Package};
    use hotiron_floorplan::{library, GridMapping};

    const AMBIENT: f64 = 318.15; // 45 °C

    fn oil_circuit(rows: usize) -> ThermalCircuit {
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, rows, rows);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        build_circuit(&map, die, &Package::OilSilicon(OilSiliconPackage::paper_default()))
    }

    fn air_circuit(rows: usize) -> ThermalCircuit {
        let plan = library::uniform_die(0.02, 0.02);
        let map = GridMapping::new(&plan, rows, rows);
        let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
        build_circuit(&map, die, &Package::AirSink(AirSinkPackage::paper_default()))
    }

    #[test]
    fn steady_energy_balance() {
        // In steady state, total heat into ambient equals total power.
        let c = oil_circuit(8);
        let p = vec![200.0 / 64.0; 64];
        let mut state = vec![AMBIENT; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut state).unwrap();
        let q_out: f64 = state
            .iter()
            .zip(c.ambient_conductance())
            .map(|(t, g)| g * (t - AMBIENT))
            .sum();
        assert!((q_out - 200.0).abs() < 0.01, "q_out = {q_out}");
    }

    #[test]
    fn steady_uniform_power_matches_lumped_rconv() {
        // Uniform 200 W over the die with Rconv ≈ 1.0 K/W: the average die
        // temperature rise is ≈ 200 K (the Fig 2 scenario, which settles
        // around 520 K from a 318 K ambient in the paper's plot).
        let c = oil_circuit(16);
        let p = vec![200.0 / 256.0; 256];
        let mut state = vec![AMBIENT; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut state).unwrap();
        let si = c.silicon_slice(&state);
        let avg: f64 = si.iter().sum::<f64>() / si.len() as f64;
        let rise = avg - AMBIENT;
        assert!(rise > 160.0 && rise < 260.0, "avg rise = {rise} K");
    }

    #[test]
    fn steady_zero_power_is_ambient() {
        let c = air_circuit(6);
        let p = vec![0.0; 36];
        let mut state = vec![300.0; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut state).unwrap();
        for t in &state {
            assert!((t - AMBIENT).abs() < 1e-6, "{t}");
        }
    }

    #[test]
    fn air_steady_energy_balance() {
        let c = air_circuit(8);
        let p = vec![50.0 / 64.0; 64];
        let mut state = vec![AMBIENT; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut state).unwrap();
        let q_out: f64 = state
            .iter()
            .zip(c.ambient_conductance())
            .map(|(t, g)| g * (t - AMBIENT))
            .sum();
        assert!((q_out - 50.0).abs() < 0.005, "q_out = {q_out}");
    }

    #[test]
    fn backward_euler_approaches_steady_state() {
        let c = oil_circuit(8);
        let p = vec![200.0 / 64.0; 64];
        let mut steady = vec![AMBIENT; c.node_count()];
        solve_steady(&c, &p, AMBIENT, &mut steady).unwrap();

        let be = BackwardEuler::new(&c, 0.05);
        let mut state = vec![AMBIENT; c.node_count()];
        // The paper's Fig 2 shows settling within ~2-3 s; integrate 20 s to
        // be safely converged.
        be.advance(&mut state, &p, AMBIENT, 20.0).unwrap();
        let avg_err = state
            .iter()
            .zip(&steady)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / state.len() as f64;
        assert!(avg_err < 1.0, "avg |T - T_steady| = {avg_err} K");
    }

    #[test]
    fn backward_euler_conserves_monotonic_warmup() {
        let c = oil_circuit(6);
        let p = vec![100.0 / 36.0; 36];
        let be = BackwardEuler::new(&c, 0.01);
        let mut state = vec![AMBIENT; c.node_count()];
        let mut last = AMBIENT;
        for _ in 0..20 {
            be.step(&mut state, &p, AMBIENT).unwrap();
            let t = state[0];
            assert!(t >= last - 1e-9, "warmup must be monotonic");
            last = t;
        }
        assert!(last > AMBIENT + 1.0);
    }

    #[test]
    fn rk4_agrees_with_backward_euler() {
        let c = oil_circuit(4);
        let p = vec![50.0 / 16.0; 16];
        let mut s_be = vec![AMBIENT; c.node_count()];
        let mut s_rk = s_be.clone();
        // Short window with a small BE step so first-order error is small.
        let be = BackwardEuler::new(&c, 1e-4);
        be.advance(&mut s_be, &p, AMBIENT, 0.05).unwrap();
        let rk = Rk4Adaptive::new(&c);
        rk.advance(&mut s_rk, &p, AMBIENT, 0.05);
        for (a, b) in s_be.iter().zip(&s_rk) {
            assert!((a - b).abs() < 0.25, "BE {a} vs RK4 {b}");
        }
    }

    #[test]
    fn advance_handles_partial_steps() {
        let c = oil_circuit(4);
        let p = vec![10.0 / 16.0; 16];
        let be = BackwardEuler::new(&c, 0.01);
        let mut a = vec![AMBIENT; c.node_count()];
        be.advance(&mut a, &p, AMBIENT, 0.025).unwrap();
        // Same total duration in uneven chunks.
        let mut b = vec![AMBIENT; c.node_count()];
        be.advance(&mut b, &p, AMBIENT, 0.02).unwrap();
        be.advance(&mut b, &p, AMBIENT, 0.005).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn backward_euler_rejects_bad_dt() {
        let c = oil_circuit(2);
        let _ = BackwardEuler::new(&c, 0.0);
    }
}
