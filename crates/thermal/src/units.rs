//! Temperature unit helpers.
//!
//! The solvers work in kelvin throughout; the paper reports everything in
//! degrees Celsius. These helpers keep the conversions in one place.

/// 0 °C in kelvin.
pub const ZERO_CELSIUS: f64 = 273.15;

/// Converts °C to K.
///
/// # Examples
///
/// ```
/// assert_eq!(hotiron_thermal::units::celsius_to_kelvin(45.0), 318.15);
/// ```
pub fn celsius_to_kelvin(c: f64) -> f64 {
    c + ZERO_CELSIUS
}

/// Converts K to °C.
pub fn kelvin_to_celsius(k: f64) -> f64 {
    k - ZERO_CELSIUS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for c in [-40.0, 0.0, 45.0, 137.0] {
            assert!((kelvin_to_celsius(celsius_to_kelvin(c)) - c).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_ambient() {
        // Fig 12's ambient of 45 °C.
        assert!((celsius_to_kelvin(45.0) - 318.15).abs() < 1e-12);
    }
}
