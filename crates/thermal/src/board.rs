//! The board-level intermediate representation (IR).
//!
//! A [`Board`] composes placed [`LayerStack`]s over a shared PCB substrate:
//! each [`Placement`] positions a die stack at an `(x, y)` offset (board
//! frame, origin at the PCB's lower-left corner) with an optional quarter
//! -turn [`Rotation`], and [`ViaField`]s add anisotropic through-plane
//! conductance patches — the exposed-pad via arrays of a QFN-style package —
//! that shunt the die attach straight through the resin-filled board.
//!
//! The IR mirrors the layer-stack design one level up: validation is
//! explicit ([`Board::validate`] returns a typed [`BoardError`] naming the
//! offending placement, via or PCB parameter), and every board has a
//! deterministic FNV-1a [`content hash`](Board::content_hash) extending the
//! stack scheme, so assembled board circuits flow through the same bounded
//! circuit cache as single-stack circuits.
//!
//! A board with no PCB (`pcb: None`, built via [`Board::free_standing`])
//! holds exactly one placement and lowers to **bitwise-identically** the
//! same circuit as
//! [`build_circuit_from_stack`](crate::circuit::build_circuit_from_stack) —
//! the anchor that keeps every single-package golden at zero drift while the
//! assembler itself is shared.
//!
//! # Grid discipline
//!
//! Every conduction plane of a board — each placement layer and the PCB
//! itself — is discretized on one shared `rows × cols` grid (cell *sizes*
//! differ per plane; a 12 mm die and a 100 mm board each spread their own
//! extent over the grid). One resolution for every plane keeps the
//! assembled circuit a uniform stack of `rows × cols` planes, exactly the
//! structure the geometric multigrid hierarchy coarsens; heterogeneous
//! per-placement grids would demote the whole board to plain CG.

use crate::materials::Material;
use crate::stack::{hash_boundary, Boundary, DieGeometry, Fnv, LayerStack, StackError};
use std::error::Error;
use std::fmt;

/// Quarter-turn rotation of a placed stack about its own lower-left corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rotation {
    /// No rotation.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
}

impl Rotation {
    /// The rotation in degrees.
    pub fn degrees(self) -> u32 {
        match self {
            Rotation::R0 => 0,
            Rotation::R90 => 90,
            Rotation::R180 => 180,
            Rotation::R270 => 270,
        }
    }

    /// Parses a quarter-turn angle in degrees.
    pub fn from_degrees(d: u32) -> Option<Self> {
        Some(match d {
            0 => Rotation::R0,
            90 => Rotation::R90,
            180 => Rotation::R180,
            270 => Rotation::R270,
            _ => return None,
        })
    }

    /// Footprint of a `w × h` die under this rotation.
    pub fn footprint(self, w: f64, h: f64) -> (f64, f64) {
        match self {
            Rotation::R0 | Rotation::R180 => (w, h),
            Rotation::R90 | Rotation::R270 => (h, w),
        }
    }

    /// Maps a die-local point (origin at the die's lower-left corner) into
    /// footprint coordinates (origin at the footprint's lower-left corner).
    pub fn apply(self, x: f64, y: f64, w: f64, h: f64) -> (f64, f64) {
        match self {
            Rotation::R0 => (x, y),
            Rotation::R90 => (h - y, x),
            Rotation::R180 => (w - x, h - y),
            Rotation::R270 => (y, w - x),
        }
    }

    fn hash_tag(self) -> u8 {
        match self {
            Rotation::R0 => 0,
            Rotation::R90 => 1,
            Rotation::R180 => 2,
            Rotation::R270 => 3,
        }
    }
}

/// The shared PCB substrate every placement couples through.
#[derive(Debug, Clone, PartialEq)]
pub struct PcbSpec {
    /// Board width, m (x extent).
    pub width: f64,
    /// Board height, m (y extent).
    pub height: f64,
    /// Board thickness, m.
    pub thickness: f64,
    /// Board bulk material (typically [`crate::materials::PCB`]).
    pub material: Material,
    /// Boundary under the PCB back face: `Insulated` or `Lumped` (natural
    /// or forced convection off the board back). An oil film on the board
    /// back is rejected by [`Board::validate`].
    pub bottom: Boundary,
}

/// One die stack placed on the board.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Placement designator (`u1`, `cpu`, …), used in reports and errors.
    pub name: String,
    /// Die geometry of this stack.
    pub die: DieGeometry,
    /// The stack itself. When the board has a PCB the stack's bottom
    /// boundary must be `Insulated` — heat leaves through the board.
    pub stack: LayerStack,
    /// Board-frame x of the footprint's lower-left corner, m.
    pub x: f64,
    /// Board-frame y of the footprint's lower-left corner, m.
    pub y: f64,
    /// Quarter-turn rotation of the footprint.
    pub rotation: Rotation,
}

impl Placement {
    /// Footprint extent on the board, m.
    pub fn footprint(&self) -> (f64, f64) {
        self.rotation.footprint(self.die.width, self.die.height)
    }
}

/// A rectangular through-plane conductance patch: a thermal-via array
/// (e.g. the exposed-pad vias under a QFN) shunting the die attach through
/// the PCB. Purely anisotropic — vias add vertical conductance only, never
/// lateral spreading.
#[derive(Debug, Clone, PartialEq)]
pub struct ViaField {
    /// Field designator, used in errors and reports.
    pub name: String,
    /// Board-frame x of the patch's lower-left corner, m.
    pub x: f64,
    /// Board-frame y of the patch's lower-left corner, m.
    pub y: f64,
    /// Patch width, m.
    pub width: f64,
    /// Patch height, m.
    pub height: f64,
    /// Through-plane conductance per unit area, W/(K·m²), of the via array
    /// (copper fill fraction × k_cu / t_pcb for a plated-via field).
    pub conductance_per_area: f64,
}

impl ViaField {
    /// Overlap area between this patch and an axis-aligned rectangle
    /// `[x0, x1] × [y0, y1]`, m².
    pub fn overlap_area(&self, x0: f64, x1: f64, y0: f64, y1: f64) -> f64 {
        let w = (x1.min(self.x + self.width) - x0.max(self.x)).max(0.0);
        let h = (y1.min(self.y + self.height) - y0.max(self.y)).max(0.0);
        w * h
    }
}

/// A multi-package board: placed stacks over an optional shared PCB, plus
/// via fields. See the module docs for the grid discipline.
#[derive(Debug, Clone, PartialEq)]
pub struct Board {
    /// Grid rows shared by every conduction plane.
    pub rows: usize,
    /// Grid columns shared by every conduction plane.
    pub cols: usize,
    /// The PCB substrate; `None` is the degenerate free-standing form
    /// (exactly one placement, no coupling plane).
    pub pcb: Option<PcbSpec>,
    /// Placed stacks, in placement order (which fixes node numbering).
    pub placements: Vec<Placement>,
    /// Via fields over the PCB.
    pub vias: Vec<ViaField>,
}

impl Board {
    /// A board with a PCB and no placements yet.
    pub fn new(rows: usize, cols: usize, pcb: PcbSpec) -> Self {
        Self { rows, cols, pcb: Some(pcb), placements: Vec::new(), vias: Vec::new() }
    }

    /// The degenerate single-package board: no PCB, one placement. Lowers
    /// bitwise-identically to the placement's own stack circuit.
    pub fn free_standing(rows: usize, cols: usize, placement: Placement) -> Self {
        Self { rows, cols, pcb: None, placements: vec![placement], vias: Vec::new() }
    }

    /// Adds a placement (builder style).
    #[must_use]
    pub fn with_placement(mut self, p: Placement) -> Self {
        self.placements.push(p);
        self
    }

    /// Adds a via field (builder style).
    #[must_use]
    pub fn with_via(mut self, v: ViaField) -> Self {
        self.vias.push(v);
        self
    }

    /// Total conduction planes of the assembled circuit: every placement
    /// layer plus the PCB plane when present.
    pub fn plane_count(&self) -> usize {
        self.placements.iter().map(|p| p.stack.layers.len()).sum::<usize>()
            + usize::from(self.pcb.is_some())
    }

    /// Checks the board, returning the first offending placement, via or
    /// PCB parameter.
    ///
    /// # Errors
    ///
    /// Any [`BoardError`] variant except `GridMismatch` (which only arises
    /// at assembly time, against concrete grid mappings).
    pub fn validate(&self) -> Result<(), BoardError> {
        if self.placements.is_empty() {
            return Err(BoardError::NoPlacements);
        }
        if self.rows == 0 || self.cols == 0 {
            return Err(BoardError::BadGrid {
                reason: format!(
                    "grid {}x{} must be positive in both dimensions",
                    self.rows, self.cols
                ),
            });
        }
        for (i, p) in self.placements.iter().enumerate() {
            if p.name.is_empty() {
                return Err(BoardError::BadPlacement {
                    placement: format!("#{i}"),
                    reason: "placement name must be non-empty".into(),
                });
            }
            if self.placements[i + 1..].iter().any(|q| q.name == p.name) {
                return Err(BoardError::DuplicatePlacement { placement: p.name.clone() });
            }
            // On a PCB board a fully insulated stack is legal — its heat
            // leaves through the board coupling — so validate against a
            // stand-in lumped bottom; the real bottom must be insulated and
            // is checked below. Free-standing placements validate as-is.
            if self.pcb.is_some() {
                let mut probe = p.stack.clone();
                probe.bottom = Boundary::Lumped { r_total: 1.0, c_total: 0.0 };
                probe.validate(p.die)
            } else {
                p.stack.validate(p.die)
            }
            .map_err(|source| BoardError::InvalidStack { placement: p.name.clone(), source })?;
            for (what, v) in [("x", p.x), ("y", p.y)] {
                if !v.is_finite() || v < 0.0 {
                    return Err(BoardError::BadPlacement {
                        placement: p.name.clone(),
                        reason: format!("offset {what} = {v} must be finite and non-negative"),
                    });
                }
            }
        }
        let Some(pcb) = &self.pcb else {
            if self.placements.len() != 1 {
                return Err(BoardError::UncoupledPlacements { count: self.placements.len() });
            }
            if let Some(v) = self.vias.first() {
                return Err(BoardError::BadVia {
                    via: v.name.clone(),
                    reason: "via fields require a PCB to conduct through".into(),
                });
            }
            return Ok(());
        };
        for (what, v) in
            [("width", pcb.width), ("height", pcb.height), ("thickness", pcb.thickness)]
        {
            if !(v.is_finite() && v > 0.0) {
                return Err(BoardError::BadPcb { reason: format!("{what} must be positive") });
            }
        }
        match &pcb.bottom {
            Boundary::Insulated => {}
            Boundary::Lumped { r_total, c_total } => {
                if !(r_total.is_finite() && *r_total > 0.0) {
                    return Err(BoardError::BadPcb {
                        reason: format!("lumped resistance {r_total} must be positive"),
                    });
                }
                if !(c_total.is_finite() && *c_total >= 0.0) {
                    return Err(BoardError::BadPcb {
                        reason: format!("lumped capacitance {c_total} must be non-negative"),
                    });
                }
            }
            Boundary::OilFilm(_) => {
                return Err(BoardError::BadPcb {
                    reason: "oil film on the PCB back is not supported; use a lumped film".into(),
                });
            }
        }
        for p in &self.placements {
            if p.stack.bottom != Boundary::Insulated {
                return Err(BoardError::PlacementBottomNotInsulated { placement: p.name.clone() });
            }
            let (fw, fh) = p.footprint();
            if p.x + fw > pcb.width + 1e-12 || p.y + fh > pcb.height + 1e-12 {
                return Err(BoardError::PlacementOutOfBounds {
                    placement: p.name.clone(),
                    x: p.x,
                    y: p.y,
                    footprint_w: fw,
                    footprint_h: fh,
                    board_w: pcb.width,
                    board_h: pcb.height,
                });
            }
        }
        for (i, a) in self.placements.iter().enumerate() {
            let (aw, ah) = a.footprint();
            for b in &self.placements[i + 1..] {
                let (bw, bh) = b.footprint();
                let overlap_w = (a.x + aw).min(b.x + bw) - a.x.max(b.x);
                let overlap_h = (a.y + ah).min(b.y + bh) - a.y.max(b.y);
                if overlap_w > 1e-12 && overlap_h > 1e-12 {
                    return Err(BoardError::PlacementsOverlap {
                        first: a.name.clone(),
                        second: b.name.clone(),
                    });
                }
            }
        }
        for v in &self.vias {
            if v.name.is_empty() {
                return Err(BoardError::BadVia {
                    via: "<unnamed>".into(),
                    reason: "via field name must be non-empty".into(),
                });
            }
            for (what, val) in [("width", v.width), ("height", v.height)] {
                if !(val.is_finite() && val > 0.0) {
                    return Err(BoardError::BadVia {
                        via: v.name.clone(),
                        reason: format!("{what} must be positive"),
                    });
                }
            }
            if !(v.conductance_per_area.is_finite() && v.conductance_per_area >= 0.0) {
                return Err(BoardError::BadVia {
                    via: v.name.clone(),
                    reason: format!(
                        "conductance per area {} must be finite and non-negative",
                        v.conductance_per_area
                    ),
                });
            }
            if !v.x.is_finite()
                || !v.y.is_finite()
                || v.x < 0.0
                || v.y < 0.0
                || v.x + v.width > pcb.width + 1e-12
                || v.y + v.height > pcb.height + 1e-12
            {
                return Err(BoardError::BadVia {
                    via: v.name.clone(),
                    reason: format!(
                        "patch [{}, {}] + {}x{} m lies outside the {}x{} m board",
                        v.x, v.y, v.width, v.height, pcb.width, pcb.height
                    ),
                });
            }
        }
        let pcb_cooled = matches!(pcb.bottom, Boundary::Lumped { .. });
        let any_top = self.placements.iter().any(|p| p.stack.top != Boundary::Insulated);
        if !pcb_cooled && !any_top {
            return Err(BoardError::NoAmbientPath);
        }
        Ok(())
    }

    /// Deterministic FNV-1a hash over the board's physical content,
    /// extending [`LayerStack::content_hash`]: grid resolution, PCB
    /// geometry/material/boundary, each placement (name, die, stack hash,
    /// offset, rotation) and each via field. Combined with nothing else it
    /// keys the circuit cache — the grid is already part of the board.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.str("board");
        h.usize(self.rows);
        h.usize(self.cols);
        match &self.pcb {
            None => h.u8(0),
            Some(p) => {
                h.u8(1);
                h.f64(p.width);
                h.f64(p.height);
                h.f64(p.thickness);
                h.str(p.material.name());
                h.f64(p.material.conductivity());
                h.f64(p.material.volumetric_heat_capacity());
                hash_boundary(&mut h, &p.bottom);
            }
        }
        h.usize(self.placements.len());
        for p in &self.placements {
            h.str(&p.name);
            h.f64(p.die.width);
            h.f64(p.die.height);
            h.f64(p.die.thickness);
            h.u64(p.stack.content_hash());
            h.f64(p.x);
            h.f64(p.y);
            h.u8(p.rotation.hash_tag());
        }
        h.usize(self.vias.len());
        for v in &self.vias {
            h.str(&v.name);
            h.f64(v.x);
            h.f64(v.y);
            h.f64(v.width);
            h.f64(v.height);
            h.f64(v.conductance_per_area);
        }
        h.finish()
    }
}

/// Typed validation error for a board. Every variant names the offending
/// placement, via field or PCB parameter.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BoardError {
    /// The board has no placements.
    NoPlacements,
    /// The shared grid resolution is unusable.
    BadGrid {
        /// What is wrong with it.
        reason: String,
    },
    /// A placement has a non-physical parameter (offset, name).
    BadPlacement {
        /// Name (or `#index`) of the offending placement.
        placement: String,
        /// What is wrong with it.
        reason: String,
    },
    /// Two placements share one designator.
    DuplicatePlacement {
        /// The duplicated name.
        placement: String,
    },
    /// A placement's stack failed its own validation.
    InvalidStack {
        /// Name of the offending placement.
        placement: String,
        /// The underlying stack error (naming the offending layer).
        source: StackError,
    },
    /// Multiple placements but no PCB plane to couple them.
    UncoupledPlacements {
        /// How many placements the board has.
        count: usize,
    },
    /// The PCB substrate has a non-physical parameter.
    BadPcb {
        /// What is wrong with it.
        reason: String,
    },
    /// A placed stack's bottom boundary is not insulated although the board
    /// has a PCB (heat must leave through the board, not around it).
    PlacementBottomNotInsulated {
        /// Name of the offending placement.
        placement: String,
    },
    /// A placement's footprint extends past the board edge.
    PlacementOutOfBounds {
        /// Name of the offending placement.
        placement: String,
        /// Footprint lower-left x, m.
        x: f64,
        /// Footprint lower-left y, m.
        y: f64,
        /// Footprint width (after rotation), m.
        footprint_w: f64,
        /// Footprint height (after rotation), m.
        footprint_h: f64,
        /// Board width, m.
        board_w: f64,
        /// Board height, m.
        board_h: f64,
    },
    /// Two placement footprints overlap.
    PlacementsOverlap {
        /// First offending placement.
        first: String,
        /// Second offending placement.
        second: String,
    },
    /// A via field has a non-physical parameter or lies off the board.
    BadVia {
        /// Name of the offending via field.
        via: String,
        /// What is wrong with it.
        reason: String,
    },
    /// Nothing on the board reaches ambient (PCB back insulated and every
    /// placement top insulated).
    NoAmbientPath,
    /// A grid mapping handed to the assembler disagrees with the board's
    /// shared resolution.
    GridMismatch {
        /// Name of the offending placement.
        placement: String,
        /// The board's shared rows.
        expected_rows: usize,
        /// The board's shared cols.
        expected_cols: usize,
        /// The mapping's rows.
        rows: usize,
        /// The mapping's cols.
        cols: usize,
    },
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoPlacements => write!(f, "board has no placements"),
            Self::BadGrid { reason } => write!(f, "invalid board grid: {reason}"),
            Self::BadPlacement { placement, reason } => {
                write!(f, "placement `{placement}`: {reason}")
            }
            Self::DuplicatePlacement { placement } => {
                write!(f, "duplicate placement name `{placement}`")
            }
            Self::InvalidStack { placement, source } => {
                write!(f, "placement `{placement}`: {source}")
            }
            Self::UncoupledPlacements { count } => write!(
                f,
                "{count} placements but no PCB plane to couple them; \
                 give the board a PCB or use a single free-standing placement"
            ),
            Self::BadPcb { reason } => write!(f, "invalid PCB: {reason}"),
            Self::PlacementBottomNotInsulated { placement } => write!(
                f,
                "placement `{placement}`: stack bottom must be insulated when the board \
                 has a PCB (heat leaves through the board)"
            ),
            Self::PlacementOutOfBounds {
                placement,
                x,
                y,
                footprint_w,
                footprint_h,
                board_w,
                board_h,
            } => write!(
                f,
                "placement `{placement}` at ({x}, {y}) with footprint {footprint_w}x{footprint_h} m \
                 extends past the {board_w}x{board_h} m board"
            ),
            Self::PlacementsOverlap { first, second } => {
                write!(f, "placements `{first}` and `{second}` overlap")
            }
            Self::BadVia { via, reason } => write!(f, "via field `{via}`: {reason}"),
            Self::NoAmbientPath => write!(
                f,
                "board has no path to ambient: PCB back is insulated and every placement \
                 top is insulated"
            ),
            Self::GridMismatch { placement, expected_rows, expected_cols, rows, cols } => write!(
                f,
                "placement `{placement}`: grid mapping is {rows}x{cols} but the board's \
                 shared grid is {expected_rows}x{expected_cols}"
            ),
        }
    }
}

impl Error for BoardError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::InvalidStack { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::{PCB, SILICON};
    use crate::stack::Layer;

    fn die12() -> DieGeometry {
        DieGeometry { width: 0.012, height: 0.012, thickness: 0.5e-3 }
    }

    fn placed(name: &str, x: f64, y: f64) -> Placement {
        let stack = LayerStack::new(vec![Layer::new("silicon", SILICON, 0.5e-3)], 0)
            .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 });
        Placement { name: name.into(), die: die12(), stack, x, y, rotation: Rotation::R0 }
    }

    fn pcb_spec() -> PcbSpec {
        PcbSpec {
            width: 0.08,
            height: 0.06,
            thickness: 1.6e-3,
            material: PCB,
            bottom: Boundary::Lumped { r_total: 4.0, c_total: 200.0 },
        }
    }

    fn duo() -> Board {
        Board::new(16, 16, pcb_spec())
            .with_placement(insulated_bottom(placed("u1", 0.01, 0.01)))
            .with_placement(insulated_bottom(placed("u2", 0.05, 0.03)))
    }

    fn insulated_bottom(p: Placement) -> Placement {
        // placed() already leaves the bottom insulated; named for clarity.
        p
    }

    #[test]
    fn valid_board_passes() {
        assert_eq!(duo().validate(), Ok(()));
    }

    #[test]
    fn free_standing_requires_one_placement() {
        let b = Board {
            rows: 8,
            cols: 8,
            pcb: None,
            placements: vec![placed("a", 0.0, 0.0), placed("b", 0.0, 0.0)],
            vias: vec![],
        };
        let e = b.validate().unwrap_err();
        assert!(matches!(e, BoardError::UncoupledPlacements { count: 2 }));
        assert!(e.to_string().contains("no PCB"), "{e}");
    }

    #[test]
    fn out_of_bounds_placement_is_named() {
        let b = Board::new(8, 8, pcb_spec())
            .with_placement(insulated_bottom(placed("edge", 0.075, 0.01)));
        let e = b.validate().unwrap_err();
        assert!(matches!(e, BoardError::PlacementOutOfBounds { .. }));
        assert!(e.to_string().contains("edge"), "{e}");
    }

    #[test]
    fn rotation_moves_the_footprint_bound() {
        // A 12x4 mm die at x = 70 mm fits R0 (ends at 82 > 80? no: 70+12=82
        // exceeds) — use a die that fits only when rotated.
        let die = DieGeometry { width: 0.012, height: 0.004, thickness: 0.5e-3 };
        let stack = LayerStack::new(vec![Layer::new("silicon", SILICON, 0.5e-3)], 0)
            .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 });
        let mut p =
            Placement { name: "tall".into(), die, stack, x: 0.07, y: 0.01, rotation: Rotation::R0 };
        let b = |p: Placement| Board::new(8, 8, pcb_spec()).with_placement(p);
        assert!(matches!(b(p.clone()).validate(), Err(BoardError::PlacementOutOfBounds { .. })));
        p.rotation = Rotation::R90;
        assert_eq!(b(p).validate(), Ok(()));
    }

    #[test]
    fn overlap_names_both_placements() {
        let b = Board::new(8, 8, pcb_spec())
            .with_placement(placed("u1", 0.01, 0.01))
            .with_placement(placed("u2", 0.015, 0.015));
        let e = b.validate().unwrap_err();
        match &e {
            BoardError::PlacementsOverlap { first, second } => {
                assert_eq!((first.as_str(), second.as_str()), ("u1", "u2"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(e.to_string().contains("u1") && e.to_string().contains("u2"), "{e}");
    }

    #[test]
    fn pcb_board_requires_insulated_placement_bottoms() {
        let mut p = placed("u1", 0.01, 0.01);
        p.stack = p.stack.with_bottom(Boundary::Lumped { r_total: 1.0, c_total: 1.0 });
        let b = Board::new(8, 8, pcb_spec()).with_placement(p);
        let e = b.validate().unwrap_err();
        assert!(matches!(e, BoardError::PlacementBottomNotInsulated { .. }));
        assert!(e.to_string().contains("u1"), "{e}");
    }

    #[test]
    fn invalid_stack_carries_source() {
        let mut p = placed("u9", 0.01, 0.01);
        p.stack.layers[0].thickness = -1.0;
        let b = Board::new(8, 8, pcb_spec()).with_placement(p);
        let e = b.validate().unwrap_err();
        assert!(matches!(e, BoardError::InvalidStack { .. }));
        assert!(e.to_string().contains("u9"), "names the placement: {e}");
        assert!(e.to_string().contains("silicon"), "names the layer: {e}");
        assert!(Error::source(&e).is_some(), "source() exposes the StackError");
    }

    #[test]
    fn via_outside_board_is_rejected() {
        let b = duo().with_via(ViaField {
            name: "pad9".into(),
            x: 0.079,
            y: 0.0,
            width: 0.01,
            height: 0.01,
            conductance_per_area: 1e4,
        });
        let e = b.validate().unwrap_err();
        assert!(matches!(e, BoardError::BadVia { .. }));
        assert!(e.to_string().contains("pad9"), "{e}");
    }

    #[test]
    fn fully_insulated_board_is_rejected() {
        let mut b = duo();
        b.pcb.as_mut().unwrap().bottom = Boundary::Insulated;
        for p in &mut b.placements {
            p.stack.top = Boundary::Insulated;
        }
        assert_eq!(b.validate(), Err(BoardError::NoAmbientPath));
    }

    #[test]
    fn oil_on_pcb_back_is_rejected() {
        let mut b = duo();
        b.pcb.as_mut().unwrap().bottom = Boundary::OilFilm(crate::stack::OilFilm {
            fluid: crate::fluid::MINERAL_OIL,
            velocity: 1.0,
            direction: crate::convection::FlowDirection::LeftToRight,
            local_h: false,
            local_boundary_layer: false,
        });
        let e = b.validate().unwrap_err();
        assert!(matches!(e, BoardError::BadPcb { .. }));
        assert!(e.to_string().contains("oil film"), "{e}");
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let a = duo();
        assert_eq!(a.content_hash(), duo().content_hash());
        // Offset moves a package: different hash.
        let mut b = duo();
        b.placements[1].x += 1e-3;
        assert_ne!(a.content_hash(), b.content_hash());
        // Rotation matters.
        let mut c = duo();
        c.placements[0].rotation = Rotation::R90;
        assert_ne!(a.content_hash(), c.content_hash());
        // A via field matters, and so does its conductance.
        let v = ViaField {
            name: "pad1".into(),
            x: 0.01,
            y: 0.01,
            width: 0.008,
            height: 0.008,
            conductance_per_area: 4e4,
        };
        let d = duo().with_via(v.clone());
        assert_ne!(a.content_hash(), d.content_hash());
        let mut v2 = v;
        v2.conductance_per_area = 5e4;
        let e = duo().with_via(v2);
        assert_ne!(d.content_hash(), e.content_hash());
        // PCB thickness matters.
        let mut f = duo();
        f.pcb.as_mut().unwrap().thickness = 1.0e-3;
        assert_ne!(a.content_hash(), f.content_hash());
    }

    #[test]
    fn rotation_apply_round_trips_quarter_turns() {
        let (w, h) = (0.012, 0.004);
        // R90 then R270 of the rotated frame is identity.
        let (x, y) = (0.003, 0.001);
        let (rx, ry) = Rotation::R90.apply(x, y, w, h);
        let (fw, fh) = Rotation::R90.footprint(w, h);
        let (bx, by) = Rotation::R270.apply(rx, ry, fw, fh);
        assert!((bx - x).abs() < 1e-15 && (by - y).abs() < 1e-15, "({bx}, {by})");
        assert_eq!(Rotation::from_degrees(180), Some(Rotation::R180));
        assert_eq!(Rotation::from_degrees(45), None);
        assert_eq!(Rotation::R270.degrees(), 270);
    }
}
