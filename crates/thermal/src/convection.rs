//! Laminar flat-plate convection correlations (the paper's Eqns 1–4, 7–8).
//!
//! These formulas come from Cengel, *Heat and Mass Transfer* (the paper's
//! ref \[3\]) and are the heart of the OIL-SILICON package model:
//!
//! * average coefficient `h_L = 0.664 (k/L) Re_L^1/2 Pr^1/3`      (Eqn 2)
//! * overall resistance `R_conv = 1 / (h_L · A_chip)`             (Eqn 1)
//! * oil capacitance `C_conv = ρ · c_p · A_chip · δ_t`            (Eqn 3)
//! * boundary-layer thickness `δ_t = 4.91 L / (Pr^1/3 √Re_L)`     (Eqn 4)
//! * local coefficient `h(x) = 0.332 (k/x) Re_x^1/2 Pr^1/3`       (Eqn 8)
//! * local resistance `R_local = 1 / (h(x) · A_local)`            (Eqn 7)
//!
//! The local coefficient is largest at the flow's leading edge and decays as
//! `1/√x`, which is why the oil-flow *direction* moves hot spots (§4.2).

use crate::fluid::Fluid;

/// Reynolds number above which a flat-plate boundary layer transitions to
/// turbulence; the laminar correlations are invalid beyond it.
pub const LAMINAR_RE_LIMIT: f64 = 5.0e5;

/// Direction of coolant flow across the die, in floorplan coordinates
/// (x grows rightward, y grows upward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowDirection {
    /// Flow enters at the left edge (x = 0) and exits at the right.
    LeftToRight,
    /// Flow enters at the right edge and exits at the left.
    RightToLeft,
    /// Flow enters at the bottom edge (y = 0) and exits at the top.
    BottomToTop,
    /// Flow enters at the top edge and exits at the bottom.
    TopToBottom,
}

impl FlowDirection {
    /// All four directions, in the column order of the paper's Fig 11.
    pub const ALL: [FlowDirection; 4] = [
        FlowDirection::LeftToRight,
        FlowDirection::RightToLeft,
        FlowDirection::BottomToTop,
        FlowDirection::TopToBottom,
    ];

    /// Distance (m) of the point `(x, y)` from the leading edge of a
    /// `width` x `height` die for this flow direction.
    pub fn distance_from_leading_edge(self, x: f64, y: f64, width: f64, height: f64) -> f64 {
        match self {
            FlowDirection::LeftToRight => x,
            FlowDirection::RightToLeft => width - x,
            FlowDirection::BottomToTop => y,
            FlowDirection::TopToBottom => height - y,
        }
    }

    /// Length of the die along the flow (the `L` of Eqns 2 and 4).
    pub fn flow_length(self, width: f64, height: f64) -> f64 {
        match self {
            FlowDirection::LeftToRight | FlowDirection::RightToLeft => width,
            FlowDirection::BottomToTop | FlowDirection::TopToBottom => height,
        }
    }

    /// Human-readable label matching the paper's Fig 11 column headers.
    pub fn label(self) -> &'static str {
        match self {
            FlowDirection::LeftToRight => "left to right",
            FlowDirection::RightToLeft => "right to left",
            FlowDirection::BottomToTop => "bottom to top",
            FlowDirection::TopToBottom => "top to bottom",
        }
    }
}

impl std::fmt::Display for FlowDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A laminar coolant flow over a flat plate of length `length` (m) along the
/// flow at bulk `velocity` (m/s).
///
/// # Examples
///
/// ```
/// use hotiron_thermal::convection::LaminarFlow;
/// use hotiron_thermal::fluid::MINERAL_OIL;
///
/// // The paper's validation setup: 10 m/s oil over a 20 mm die.
/// let flow = LaminarFlow::new(MINERAL_OIL, 10.0, 0.02);
/// let r = flow.overall_resistance(0.02 * 0.02);
/// assert!((r - 1.0).abs() < 0.05, "Rconv = {r} K/W (paper: ~1.0)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaminarFlow {
    fluid: Fluid,
    velocity: f64,
    length: f64,
}

impl LaminarFlow {
    /// Creates a flow; `length` is the plate length along the flow direction.
    ///
    /// # Panics
    ///
    /// Panics if `velocity` or `length` is not strictly positive and finite.
    pub fn new(fluid: Fluid, velocity: f64, length: f64) -> Self {
        assert!(velocity.is_finite() && velocity > 0.0, "velocity must be positive");
        assert!(length.is_finite() && length > 0.0, "length must be positive");
        Self { fluid, velocity, length }
    }

    /// The coolant fluid.
    pub fn fluid(&self) -> &Fluid {
        &self.fluid
    }

    /// Bulk velocity, m/s.
    pub fn velocity(&self) -> f64 {
        self.velocity
    }

    /// Plate length along the flow, m.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Overall Reynolds number `Re_L`.
    pub fn reynolds(&self) -> f64 {
        self.fluid.reynolds(self.velocity, self.length)
    }

    /// Whether the whole plate stays in the laminar regime.
    pub fn is_laminar(&self) -> bool {
        self.reynolds() < LAMINAR_RE_LIMIT
    }

    /// Average heat-transfer coefficient `h_L` (Eqn 2), W/(m²·K).
    pub fn average_h(&self) -> f64 {
        0.664
            * (self.fluid.conductivity() / self.length)
            * self.reynolds().sqrt()
            * self.fluid.prandtl().cbrt()
    }

    /// Overall convective resistance over plate area `area` (Eqn 1), K/W.
    pub fn overall_resistance(&self, area: f64) -> f64 {
        1.0 / (self.average_h() * area)
    }

    /// Local heat-transfer coefficient at distance `x` (m) from the leading
    /// edge (Eqn 8), W/(m²·K).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not strictly positive (the correlation is singular
    /// at the leading edge; callers evaluate at cell centers).
    pub fn local_h(&self, x: f64) -> f64 {
        assert!(x > 0.0, "local h is singular at the leading edge");
        let re_x = self.fluid.reynolds(self.velocity, x);
        0.332 * (self.fluid.conductivity() / x) * re_x.sqrt() * self.fluid.prandtl().cbrt()
    }

    /// Local convective resistance over a patch of `area` m² centered at
    /// distance `x` from the leading edge (Eqn 7), K/W.
    pub fn local_resistance(&self, x: f64, area: f64) -> f64 {
        1.0 / (self.local_h(x) * area)
    }

    /// Thermal boundary-layer thickness at the trailing edge `δ_t` (Eqn 4), m.
    pub fn boundary_layer_thickness(&self) -> f64 {
        4.91 * self.length / (self.fluid.prandtl().cbrt() * self.reynolds().sqrt())
    }

    /// Local thermal boundary-layer thickness at distance `x` from the
    /// leading edge, m (Eqn 4 evaluated with `L = x`).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not strictly positive.
    pub fn local_boundary_layer_thickness(&self, x: f64) -> f64 {
        assert!(x > 0.0, "boundary layer undefined at the leading edge");
        let re_x = self.fluid.reynolds(self.velocity, x);
        4.91 * x / (self.fluid.prandtl().cbrt() * re_x.sqrt())
    }

    /// Effective oil thermal capacitance over plate area `area` (Eqn 3), J/K.
    pub fn effective_capacitance(&self, area: f64) -> f64 {
        self.fluid.volumetric_heat_capacity() * area * self.boundary_layer_thickness()
    }

    /// The velocity needed to reach a target overall resistance `r_target`
    /// (K/W) over `area` m², holding fluid and length fixed.
    ///
    /// From Eqns 1–2, `R ∝ 1/√u`, so `u = u_0 · (R_0/R_target)²`.
    ///
    /// Used by the paper's §5.1.1 observation that 0.3 K/W would need an
    /// unrealistic ~100 m/s oil flow.
    pub fn velocity_for_resistance(&self, r_target: f64, area: f64) -> f64 {
        assert!(r_target > 0.0, "target resistance must be positive");
        let r0 = self.overall_resistance(area);
        self.velocity * (r0 / r_target).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::MINERAL_OIL;

    fn paper_flow() -> LaminarFlow {
        LaminarFlow::new(MINERAL_OIL, 10.0, 0.02)
    }

    #[test]
    fn paper_rconv_is_about_one() {
        // §3.2: "The equivalent convection thermal resistance is about 1.0 K/W."
        let r = paper_flow().overall_resistance(4e-4);
        assert!((r - 1.0).abs() < 0.05, "Rconv = {r}");
    }

    #[test]
    fn paper_boundary_layer_is_order_100um() {
        // §4.1.2: "about 100 µm thick for a 10 m/s oil flow".
        let d = paper_flow().boundary_layer_thickness();
        assert!(d > 5e-5 && d < 3e-4, "δt = {d}");
    }

    #[test]
    fn flow_is_laminar() {
        assert!(paper_flow().is_laminar());
    }

    #[test]
    fn local_h_decays_downstream() {
        let f = paper_flow();
        let h1 = f.local_h(0.002);
        let h2 = f.local_h(0.018);
        assert!(h1 > h2, "leading edge must cool best: {h1} vs {h2}");
        // 1/sqrt(x) decay: h(x)·sqrt(x) constant.
        let c1 = h1 * 0.002f64.sqrt();
        let c2 = h2 * 0.018f64.sqrt();
        assert!((c1 / c2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn average_h_is_integral_of_local() {
        // hL = (1/L)∫h(x)dx, and for h ∝ x^-1/2 the mean is 2·h(L), i.e.
        // 0.664 = 2 × 0.332.
        let f = paper_flow();
        assert!((f.average_h() - 2.0 * f.local_h(f.length())).abs() < 1e-6);
    }

    #[test]
    fn capacitance_matches_eqn3() {
        let f = paper_flow();
        let c = f.effective_capacitance(4e-4);
        let by_hand = MINERAL_OIL.density()
            * MINERAL_OIL.specific_heat()
            * 4e-4
            * f.boundary_layer_thickness();
        assert!((c - by_hand).abs() < 1e-12);
        // The oil film's capacitance is tiny compared to the silicon die's
        // 0.35 J/K (§4.1.2: "much smaller even compared to that of silicon").
        assert!(c < 0.35);
    }

    #[test]
    fn resistance_scales_inverse_sqrt_velocity() {
        let f1 = LaminarFlow::new(MINERAL_OIL, 10.0, 0.02);
        let f2 = LaminarFlow::new(MINERAL_OIL, 40.0, 0.02);
        let r1 = f1.overall_resistance(4e-4);
        let r2 = f2.overall_resistance(4e-4);
        assert!((r1 / r2 - 2.0).abs() < 1e-9, "R ∝ 1/√u");
    }

    #[test]
    fn velocity_for_resistance_is_consistent() {
        let f = paper_flow();
        let u = f.velocity_for_resistance(0.3, 4e-4);
        let f2 = LaminarFlow::new(MINERAL_OIL, u, 0.02);
        assert!((f2.overall_resistance(4e-4) - 0.3).abs() < 1e-6);
        // §5.1.1: ~100 m/s would be needed for 0.3 K/W — "unrealistic".
        assert!(u > 60.0 && u < 200.0, "u = {u}");
    }

    #[test]
    fn directions_distance_from_leading_edge() {
        use FlowDirection::*;
        let (w, h) = (0.016, 0.016);
        assert_eq!(LeftToRight.distance_from_leading_edge(0.004, 0.0, w, h), 0.004);
        assert_eq!(RightToLeft.distance_from_leading_edge(0.004, 0.0, w, h), 0.012);
        assert_eq!(BottomToTop.distance_from_leading_edge(0.0, 0.01, w, h), 0.01);
        assert!((TopToBottom.distance_from_leading_edge(0.0, 0.01, w, h) - 0.006).abs() < 1e-12);
        assert_eq!(LeftToRight.flow_length(w, h), w);
        assert_eq!(TopToBottom.flow_length(w, h), h);
    }

    #[test]
    fn direction_labels_match_fig11() {
        assert_eq!(FlowDirection::ALL[0].to_string(), "left to right");
        assert_eq!(FlowDirection::ALL[3].to_string(), "top to bottom");
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn local_h_rejects_leading_edge() {
        let _ = paper_flow().local_h(0.0);
    }
}
