//! Minimal sparse linear algebra for thermal RC networks.
//!
//! The conductance matrix of an RC thermal network is symmetric positive
//! definite (strictly diagonally dominant once every node has a path to the
//! ambient), so a Jacobi-preconditioned conjugate-gradient solver is both
//! simple and robust. A triplet-based [`TripletMatrix`] builder assembles the
//! network; [`CsrMatrix`] is the compressed solve-time form.

use std::fmt;

use crate::pool;

/// Coordinate-format builder for a square sparse matrix.
///
/// Duplicate entries are summed on conversion to CSR, which makes circuit
/// "stamping" (adding each conductance to four entries) natural.
///
/// # Examples
///
/// ```
/// use hotiron_thermal::sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2);
/// // Stamp a 1 S conductance between nodes 0 and 1.
/// t.add(0, 0, 1.0);
/// t.add(1, 1, 1.0);
/// t.add(0, 1, -1.0);
/// t.add(1, 0, -1.0);
/// let m = t.to_csr();
/// assert_eq!(m.mul_vec(&[1.0, 0.0]), vec![1.0, -1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TripletMatrix {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `n x n` builder.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "matrix too large for u32 indices");
        Self { n, entries: Vec::new() }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` at `(row, col)`; repeated additions accumulate.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds or `value` is not finite.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index ({row},{col}) out of bounds for n={}", self.n);
        assert!(value.is_finite(), "matrix entries must be finite");
        if value != 0.0 {
            self.entries.push((row as u32, col as u32, value));
        }
    }

    /// Stamps a two-terminal conductance `g` (S ≡ W/K) between nodes `a`
    /// and `b`: adds `+g` to both diagonals and `-g` off-diagonal.
    ///
    /// # Panics
    ///
    /// Panics if `g` is negative, non-finite, or `a == b`.
    pub fn stamp_conductance(&mut self, a: usize, b: usize, g: f64) {
        assert!(g.is_finite() && g >= 0.0, "conductance must be non-negative, got {g}");
        assert_ne!(a, b, "conductance endpoints must differ");
        if g == 0.0 {
            return;
        }
        self.add(a, a, g);
        self.add(b, b, g);
        self.add(a, b, -g);
        self.add(b, a, -g);
    }

    /// Stamps a conductance from node `a` to a Dirichlet (fixed-temperature)
    /// ground node: only the diagonal gets `+g`; the right-hand side
    /// contribution `g·T_ground` is the caller's responsibility.
    pub fn stamp_grounded_conductance(&mut self, a: usize, g: f64) {
        assert!(g.is_finite() && g >= 0.0, "conductance must be non-negative, got {g}");
        if g > 0.0 {
            self.add(a, a, g);
        }
    }

    /// Converts to CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut row_counts = vec![0u32; self.n + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut prev: Option<(u32, u32)> = None;
        for &(r, c, v) in &sorted {
            if prev == Some((r, c)) {
                *values.last_mut().expect("entry exists when prev is set") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_counts[r as usize + 1] += 1;
                prev = Some((r, c));
            }
        }
        for i in 0..self.n {
            row_counts[i + 1] += row_counts[i];
        }
        CsrMatrix { n: self.n, row_ptr: row_counts, col_idx, values }
    }
}

/// Compressed sparse row matrix.
#[derive(Clone)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrMatrix").field("n", &self.n).field("nnz", &self.values.len()).finish()
    }
}

impl CsrMatrix {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw CSR row offsets (`dim() + 1` entries).
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Raw CSR column indices, row-major.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw stored values, parallel to [`col_indices`](Self::col_indices).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The entries of row `i` as `(column, value)` pairs.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&c, &v)| (c as usize, v))
    }

    /// The diagonal entry of row `i` (0 if absent).
    pub fn diagonal(&self, i: usize) -> f64 {
        self.row(i).find(|&(c, _)| c == i).map_or(0.0, |(_, v)| v)
    }

    /// Dense matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// `y = A·x` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from `dim()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        // Row-partitioned across the pool: each row's accumulation is an
        // independent left-to-right fold, so the result is bitwise identical
        // at any thread count.
        let pool = pool::current();
        pool::fill_chunks(&pool, y, |_, start, chunk| {
            for (k, yi) in chunk.iter_mut().enumerate() {
                let i = start + k;
                let lo = self.row_ptr[i] as usize;
                let hi = self.row_ptr[i + 1] as usize;
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k] as usize];
                }
                *yi = acc;
            }
        });
    }

    /// Returns `A + D` where `D` is a diagonal given as a vector (used to
    /// form the backward-Euler operator `G + C/dt`).
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != dim()`.
    pub fn add_diagonal(&self, diag: &[f64]) -> CsrMatrix {
        assert_eq!(diag.len(), self.n);
        let mut t = TripletMatrix::new(self.n);
        for (i, d) in diag.iter().enumerate() {
            for (c, v) in self.row(i) {
                t.add(i, c, v);
            }
            t.add(i, i, *d);
        }
        t.to_csr()
    }

    /// Checks symmetry within a relative tolerance (debug aid).
    pub fn is_symmetric(&self, rel_tol: f64) -> bool {
        for i in 0..self.n {
            for (j, v) in self.row(i) {
                let vt = self.row(j).find(|&(c, _)| c == i).map_or(0.0, |(_, v)| v);
                let scale = v.abs().max(vt.abs()).max(1e-300);
                if (v - vt).abs() / scale > rel_tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Which algorithm produced a [`SolveStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Jacobi-preconditioned conjugate gradient.
    Cg,
    /// Conjugate gradient preconditioned by a geometric multigrid V-cycle
    /// ([`crate::multigrid::Multigrid`]).
    MgCg,
    /// Gauss–Seidel sweeps.
    GaussSeidel,
    /// Sparse LDLᵀ direct factorization ([`crate::cholesky::LdlFactor`]).
    Ldlt,
    /// Green's-function spectral evaluation ([`crate::greens`]): fast cosine
    /// transforms against a precomputed unit-source response.
    Spectral,
}

impl SolveMethod {
    /// Short lowercase label for telemetry output.
    pub fn label(self) -> &'static str {
        match self {
            Self::Cg => "cg",
            Self::MgCg => "mg-cg",
            Self::GaussSeidel => "gauss-seidel",
            Self::Ldlt => "ldlt",
            Self::Spectral => "spectral",
        }
    }
}

/// Outcome of one linear solve, iterative or direct.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// Which solver ran.
    pub method: SolveMethod,
    /// Iterations used (CG/Gauss–Seidel; iterative-refinement count for
    /// direct solves, usually 0).
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Seconds spent factorizing the operator — charged to the solve that
    /// triggered the factorization, 0.0 when a cached factor was reused or
    /// the method is iterative.
    pub factor_seconds: f64,
    /// Stored non-zeros of the factor `L` (including the unit diagonal);
    /// 0 for iterative methods.
    pub factor_nnz: usize,
    /// Number of solves performed against the same operator so far,
    /// including this one (direct steppers amortize one factorization over
    /// many solves; iterative solves always report 1).
    pub solve_count: usize,
    /// Threads the solve's parallel kernels could dispatch on (the size of
    /// the active [`pool`]); 1 for fully serial solves. Results are bitwise
    /// identical at any value — see the [`pool`] module docs.
    pub threads: usize,
    /// Whether the solve started from a previously computed solution instead
    /// of a cold (all-ambient or zero) initial guess. Set by the layers that
    /// manage warm-start caches (e.g. `ThermalModel::steady_state`).
    pub warm_start: bool,
    /// Per-level multigrid telemetry when the solve was preconditioned by a
    /// V-cycle ([`SolveMethod::MgCg`]); `None` otherwise.
    pub multigrid: Option<crate::multigrid::MgStats>,
}

impl SolveStats {
    /// Stats for an iterative solve (no factorization to report).
    pub fn iterative(
        method: SolveMethod,
        iterations: usize,
        relative_residual: f64,
        converged: bool,
    ) -> Self {
        Self {
            method,
            iterations,
            relative_residual,
            converged,
            factor_seconds: 0.0,
            factor_nnz: 0,
            solve_count: 1,
            threads: 1,
            warm_start: false,
            multigrid: None,
        }
    }

    /// Returns the stats with the thread count recorded.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Jacobi-preconditioned conjugate gradient for SPD systems.
///
/// Solves `A·x = b`, starting from the provided `x` (warm start). Returns
/// solve statistics; `x` holds the solution on return.
///
/// # Panics
///
/// Panics if dimensions disagree or the matrix has a non-positive diagonal
/// entry (which would mean a floating node in the thermal network).
///
/// # Examples
///
/// ```
/// use hotiron_thermal::sparse::{TripletMatrix, conjugate_gradient};
///
/// let mut t = TripletMatrix::new(2);
/// t.add(0, 0, 4.0);
/// t.add(1, 1, 3.0);
/// t.add(0, 1, 1.0);
/// t.add(1, 0, 1.0);
/// let a = t.to_csr();
/// let mut x = vec![0.0; 2];
/// let stats = conjugate_gradient(&a, &[1.0, 2.0], &mut x, 1e-12, 100);
/// assert!(stats.converged);
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-9);
/// ```
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iter: usize,
) -> SolveStats {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let pool = pool::current();
    let threads = pool.threads();
    let finish = |iterations, relative_residual, converged| {
        SolveStats::iterative(SolveMethod::Cg, iterations, relative_residual, converged)
            .with_threads(threads)
    };
    let mut inv_diag = vec![0.0; n];
    for (i, slot) in inv_diag.iter_mut().enumerate() {
        let d = a.diagonal(i);
        assert!(d > 0.0, "node {i} has non-positive diagonal {d}: floating node?");
        *slot = 1.0 / d;
    }
    let b_norm = norm2(b);
    if b_norm == 0.0 {
        x.iter_mut().for_each(|v| *v = 0.0);
        return finish(0, 0.0, true);
    }

    let mut r = vec![0.0; n];
    a.mul_vec_into(x, &mut r);
    pool::fill_chunks(&pool, &mut r, |_, start, chunk| {
        for (k, ri) in chunk.iter_mut().enumerate() {
            *ri = b[start + k] - *ri;
        }
    });
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(&ri, &di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut res = norm2(&r) / b_norm;
    if res <= rel_tol {
        return finish(0, res, true);
    }
    for it in 1..=max_iter {
        a.mul_vec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Numerical breakdown; report divergence.
            return finish(it, res, false);
        }
        let alpha = rz / pap;
        pool::fill_chunks2(&pool, x, &mut r, |_, start, xc, rc| {
            for (k, (xi, ri)) in xc.iter_mut().zip(rc.iter_mut()).enumerate() {
                let i = start + k;
                *xi += alpha * p[i];
                *ri -= alpha * ap[i];
            }
        });
        res = norm2(&r) / b_norm;
        if res <= rel_tol {
            return finish(it, res, true);
        }
        pool::fill_chunks(&pool, &mut z, |_, start, chunk| {
            for (k, zi) in chunk.iter_mut().enumerate() {
                *zi = r[start + k] * inv_diag[start + k];
            }
        });
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        pool::fill_chunks(&pool, &mut p, |_, start, chunk| {
            for (k, pi) in chunk.iter_mut().enumerate() {
                *pi = z[start + k] + beta * *pi;
            }
        });
    }
    finish(max_iter, res, false)
}

/// Gauss–Seidel sweeps for the same systems; slower than CG but useful as an
/// independent cross-check in tests.
///
/// # Panics
///
/// Panics on dimension mismatch or a zero diagonal.
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_sweeps: usize,
) -> SolveStats {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let b_norm = norm2(b);
    if b_norm == 0.0 {
        // Zero RHS of an SPD system has the unique solution x = 0; clamping
        // b_norm instead would divide a tiny absolute residual by 1e-300 and
        // report spurious non-convergence.
        x.iter_mut().for_each(|v| *v = 0.0);
        return SolveStats::iterative(SolveMethod::GaussSeidel, 0, 0.0, true);
    }
    let mut res = f64::INFINITY;
    for sweep in 1..=max_sweeps {
        for i in 0..n {
            let mut sigma = 0.0;
            let mut diag = 0.0;
            for (j, v) in a.row(i) {
                if j == i {
                    diag = v;
                } else {
                    sigma += v * x[j];
                }
            }
            assert!(diag != 0.0, "zero diagonal at row {i}");
            x[i] = (b[i] - sigma) / diag;
        }
        // Residual check every few sweeps to amortize the SpMV.
        if sweep % 4 == 0 || sweep == max_sweeps {
            let ax = a.mul_vec(x);
            let r: f64 = ax.iter().zip(b).map(|(axi, bi)| (bi - axi) * (bi - axi)).sum();
            res = r.sqrt() / b_norm;
            if res <= rel_tol {
                return SolveStats::iterative(SolveMethod::GaussSeidel, sweep, res, true);
            }
        }
    }
    SolveStats::iterative(SolveMethod::GaussSeidel, max_sweeps, res, false)
}

/// Reverse Cuthill–McKee fill-reducing ordering.
///
/// Returns a permutation `perm` with `perm[new] = old`: the node that lands
/// at position `new` in the reordered matrix. On mesh-like graphs (thermal RC
/// grids) this concentrates the profile near the diagonal, which keeps the
/// LDLᵀ factor in [`crate::cholesky`] close to banded and cuts fill-in by an
/// order of magnitude versus natural ordering.
///
/// The algorithm is the classic one: pick a minimum-degree start node per
/// connected component (a cheap pseudo-peripheral heuristic), BFS visiting
/// neighbors in ascending-degree order, then reverse the whole sequence.
/// Disconnected components are handled by restarting from the unvisited node
/// of minimum degree.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Vec<usize> {
    let n = a.dim();
    let degree: Vec<usize> = (0..n).map(|i| a.row(i).count()).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut neighbors: Vec<usize> = Vec::new();
    while order.len() < n {
        // Unvisited node of minimum degree starts the next component.
        let start = (0..n)
            .filter(|&i| !visited[i])
            .min_by_key(|&i| degree[i])
            .expect("order.len() < n implies an unvisited node exists");
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbors.clear();
            neighbors.extend(a.row(u).map(|(j, _)| j).filter(|&j| !visited[j]));
            neighbors.sort_unstable_by_key(|&j| degree[j]);
            for &j in &neighbors {
                visited[j] = true;
                queue.push_back(j);
            }
        }
    }
    order.reverse();
    order
}

/// Dot product via the deterministic fixed-chunk partial-sum tree: partials
/// are computed per [`pool::CHUNK`]-sized chunk (in parallel when the vector
/// is long enough) and summed in ascending chunk order, so the grouping —
/// and thus the floating-point result — depends only on the length, never on
/// the thread count. Shared with [`crate::multigrid`]'s preconditioned CG so
/// both solvers inherit the same bitwise-determinism guarantee.
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    let pool = pool::current();
    pool::det_sum_of(&pool, a.len().min(b.len()), |lo, hi| {
        a[lo..hi].iter().zip(&b[lo..hi]).map(|(x, y)| x * y).sum()
    })
}

pub(crate) fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Tridiagonal [-1, 2, -1] plus a ground at both ends: SPD.
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.add(i, i, 2.0);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn csr_conversion_sums_duplicates() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.5);
        t.add(1, 0, -1.0);
        let m = t.to_csr();
        assert_eq!(m.diagonal(0), 3.5);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn csr_handles_empty_rows() {
        let mut t = TripletMatrix::new(4);
        t.add(0, 0, 1.0);
        t.add(3, 3, 1.0);
        let m = t.to_csr();
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(2).count(), 0);
        let y = m.mul_vec(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn stamp_conductance_is_symmetric() {
        let mut t = TripletMatrix::new(3);
        t.stamp_conductance(0, 1, 2.0);
        t.stamp_conductance(1, 2, 0.5);
        t.stamp_grounded_conductance(2, 1.0);
        let m = t.to_csr();
        assert!(m.is_symmetric(1e-12));
        // Row sums: grounded node keeps positive row sum.
        let ones = vec![1.0; 3];
        let y = m.mul_vec(&ones);
        assert!((y[0]).abs() < 1e-12);
        assert!((y[1]).abs() < 1e-12);
        assert!((y[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 200;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = conjugate_gradient(&a, &b, &mut x, 1e-10, 10 * n);
        assert!(stats.converged, "{stats:?}");
        let ax = a.mul_vec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_warm_start_uses_fewer_iterations() {
        let n = 300;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let mut x_cold = vec![0.0; n];
        let cold = conjugate_gradient(&a, &b, &mut x_cold, 1e-10, 10 * n);
        // Warm start at the solution: immediate convergence.
        let mut x_warm = x_cold.clone();
        let warm = conjugate_gradient(&a, &b, &mut x_warm, 1e-8, 10 * n);
        assert_eq!(warm.iterations, 0, "cold {cold:?} warm {warm:?}");
        assert!(cold.iterations > 0);
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = laplacian_1d(10);
        let mut x = vec![5.0; 10];
        let stats = conjugate_gradient(&a, &[0.0; 10], &mut x, 1e-12, 100);
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gauss_seidel_agrees_with_cg() {
        let n = 50;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        assert!(conjugate_gradient(&a, &b, &mut x1, 1e-12, 10000).converged);
        assert!(gauss_seidel(&a, &b, &mut x2, 1e-12, 100000).converged);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn add_diagonal_changes_only_diagonal() {
        let a = laplacian_1d(5);
        let d = vec![10.0; 5];
        let b = a.add_diagonal(&d);
        for i in 0..5 {
            assert!((b.diagonal(i) - (a.diagonal(i) + 10.0)).abs() < 1e-12);
        }
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn gauss_seidel_zero_rhs_returns_zero() {
        // Regression: the old code clamped ‖b‖ to 1e-300, so a zero RHS
        // reported relative residuals around 1e+300 and never "converged".
        let a = laplacian_1d(10);
        let mut x = vec![5.0; 10];
        let stats = gauss_seidel(&a, &[0.0; 10], &mut x, 1e-12, 100);
        assert!(stats.converged, "{stats:?}");
        assert_eq!(stats.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = laplacian_1d(37);
        let perm = reverse_cuthill_mckee(&a);
        let mut seen = [false; 37];
        for &p in &perm {
            assert!(!seen[p], "duplicate index {p}");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_path() {
        // A path graph whose nodes are scattered (stride permutation) has a
        // huge bandwidth under natural order; RCM should recover ~1.
        let n = 101;
        let scatter: Vec<usize> = (0..n).map(|i| (i * 37) % n).collect();
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.add(scatter[i], scatter[i], 2.0);
            if i + 1 < n {
                t.stamp_conductance(scatter[i], scatter[i + 1], 1.0);
            }
        }
        let a = t.to_csr();
        let bandwidth = |perm: &[usize]| -> usize {
            let mut inv = vec![0usize; n];
            for (new, &old) in perm.iter().enumerate() {
                inv[old] = new;
            }
            (0..n)
                .flat_map(|i| a.row(i).map(move |(j, _)| (i, j)))
                .map(|(i, j)| inv[i].abs_diff(inv[j]))
                .max()
                .unwrap_or(0)
        };
        let natural: Vec<usize> = (0..n).collect();
        let rcm = reverse_cuthill_mckee(&a);
        assert!(bandwidth(&natural) > 10);
        assert!(bandwidth(&rcm) <= 2, "rcm bandwidth {}", bandwidth(&rcm));
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint triangles.
        let mut t = TripletMatrix::new(6);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            t.stamp_conductance(a, b, 1.0);
        }
        let perm = reverse_cuthill_mckee(&t.to_csr());
        let mut seen = [false; 6];
        for &p in &perm {
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_bounds_checked() {
        let mut t = TripletMatrix::new(2);
        t.add(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-positive diagonal")]
    fn cg_rejects_floating_node() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        // Node 1 has no diagonal: floating.
        let a = t.to_csr();
        let mut x = vec![0.0; 2];
        let _ = conjugate_gradient(&a, &[1.0, 1.0], &mut x, 1e-10, 10);
    }
}
