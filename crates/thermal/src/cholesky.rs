//! Sparse LDLᵀ (Cholesky) direct factorization for the SPD operators of
//! thermal RC networks.
//!
//! The backward-Euler operator `C/dt + G` is fixed for a whole transient run,
//! so factoring it once and back-substituting per step beats re-running
//! conjugate gradient every step by a wide margin on the grids this crate
//! cares about (a 32×32 OIL-SILICON grid is ~2k nodes). The implementation
//! follows the classic up-looking algorithm of Davis's `ldl.c` (elimination
//! tree + per-column symbolic pattern walk), adapted to this crate's CSR
//! storage: since the assembled matrices are symmetric, CSR row `k` doubles
//! as CSC column `k`, and a fill-reducing permutation is applied by mapping
//! indices through [`crate::sparse::reverse_cuthill_mckee`] on the fly.
//!
//! No pivoting is performed — none is needed: factorization fails with
//! [`FactorError::NonPositivePivot`] exactly when the matrix is not positive
//! definite, which for a thermal circuit means a floating node or a sign
//! error upstream, and callers fall back to CG for diagnosis.
//!
//! Besides the transient stepper, this factorization is the coarsest-level
//! solver of the geometric multigrid hierarchy
//! ([`crate::multigrid::Multigrid`]): the V-cycle agglomerates the grid down
//! to a few hundred unknowns and solves that level exactly via
//! [`LdlFactor::solve_with_scratch`], which keeps the whole preconditioner
//! symmetric positive definite.
//!
//! # Examples
//!
//! ```
//! use hotiron_thermal::cholesky::LdlFactor;
//! use hotiron_thermal::sparse::TripletMatrix;
//!
//! let mut t = TripletMatrix::new(3);
//! t.stamp_conductance(0, 1, 2.0);
//! t.stamp_conductance(1, 2, 0.5);
//! t.stamp_grounded_conductance(2, 1.0);
//! let a = t.to_csr();
//! let f = LdlFactor::factor(&a).unwrap();
//! let x = f.solve(&[1.0, 0.0, 0.0]);
//! let ax = a.mul_vec(&x);
//! assert!((ax[0] - 1.0).abs() < 1e-12 && ax[1].abs() < 1e-12);
//! ```

use std::fmt;
use std::time::Instant;

use crate::sparse::{reverse_cuthill_mckee, CsrMatrix};

/// Why a factorization attempt failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FactorError {
    /// The pivot `D[k]` for the given (original, pre-permutation) node index
    /// was not strictly positive: the matrix is not positive definite.
    NonPositivePivot {
        /// Original node index whose elimination produced the bad pivot.
        index: usize,
        /// The offending pivot value.
        value: f64,
    },
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositivePivot { index, value } => write!(
                f,
                "non-positive pivot {value:e} at node {index}: matrix is not positive definite \
                 (floating node or sign error in assembly?)"
            ),
        }
    }
}

impl std::error::Error for FactorError {}

/// A sparse LDLᵀ factorization `P·A·Pᵀ = L·D·Lᵀ` of an SPD matrix.
///
/// `L` is unit lower triangular stored by columns, `D` a positive diagonal,
/// and `P` a fill-reducing permutation. Solves cost two sweeps over the
/// non-zeros of `L` plus a diagonal scale — no iteration, no tolerance.
#[derive(Debug, Clone)]
pub struct LdlFactor {
    n: usize,
    /// `perm[new] = old` — row/column of `A` placed at position `new`.
    perm: Vec<usize>,
    /// Column pointers of `L` (length `n + 1`).
    lp: Vec<usize>,
    /// Row indices of the strictly-lower entries of `L`, by column.
    li: Vec<u32>,
    /// Values matching `li`.
    lx: Vec<f64>,
    /// The diagonal `D` (all entries strictly positive).
    d: Vec<f64>,
    /// Wall-clock seconds the symbolic + numeric factorization took.
    factor_seconds: f64,
}

impl LdlFactor {
    /// Factors `a` using a reverse Cuthill–McKee fill-reducing ordering.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::NonPositivePivot`] if `a` is not positive
    /// definite.
    ///
    /// # Panics
    ///
    /// Panics if `a` is structurally asymmetric enough that an upper-triangle
    /// entry has no mirrored lower entry; assembled RC matrices are exactly
    /// symmetric so this indicates a caller bug.
    pub fn factor(a: &CsrMatrix) -> Result<Self, FactorError> {
        Self::factor_with_ordering(a, reverse_cuthill_mckee(a))
    }

    /// Factors `a` under a caller-supplied permutation (`perm[new] = old`).
    ///
    /// Useful for testing orderings against each other; most callers want
    /// [`LdlFactor::factor`].
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::NonPositivePivot`] if `a` is not positive
    /// definite.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..a.dim()`.
    pub fn factor_with_ordering(a: &CsrMatrix, perm: Vec<usize>) -> Result<Self, FactorError> {
        let start = Instant::now();
        let n = a.dim();
        assert_eq!(perm.len(), n, "permutation length must equal matrix dimension");
        let mut iperm = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n && iperm[old] == usize::MAX, "perm is not a permutation");
            iperm[old] = new;
        }

        // Column k of the permuted upper triangle, read through the CSR rows:
        // A is symmetric, so row perm[k] of A holds column k of P·A·Pᵀ once
        // its indices are mapped through iperm and filtered to new-index ≤ k.
        let (perm_ref, iperm_ref) = (&perm, &iperm);
        let upper_col = move |k: usize| {
            a.row(perm_ref[k]).filter_map(move |(old_j, v)| {
                let i = iperm_ref[old_j];
                (i <= k).then_some((i, v))
            })
        };

        // Symbolic pass: elimination tree + per-column non-zero counts.
        let mut parent = vec![usize::MAX; n];
        let mut flag = vec![usize::MAX; n];
        let mut lnz = vec![0usize; n];
        for k in 0..n {
            flag[k] = k;
            for (i, _) in upper_col(k) {
                let mut i = i;
                while flag[i] != k {
                    if parent[i] == usize::MAX {
                        parent[i] = k;
                    }
                    lnz[i] += 1;
                    flag[i] = k;
                    i = parent[i];
                }
            }
        }
        let mut lp = vec![0usize; n + 1];
        for k in 0..n {
            lp[k + 1] = lp[k] + lnz[k];
        }
        let total_nnz = lp[n];

        // Numeric pass (up-looking): for each column k, scatter column k of A
        // into the dense workspace Y, replay the pattern in elimination-tree
        // order, and emit row k of L (== column entries of earlier columns).
        let mut li = vec![0u32; total_nnz];
        let mut lx = vec![0.0f64; total_nnz];
        let mut d = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut pattern = vec![0usize; n];
        let mut fill = vec![0usize; n]; // entries emitted so far per column
        flag.iter_mut().for_each(|f| *f = usize::MAX);
        for k in 0..n {
            let mut top = n;
            flag[k] = k;
            for (i, v) in upper_col(k) {
                y[i] += v;
                let mut len = 0;
                let mut i = i;
                while flag[i] != k {
                    pattern[len] = i;
                    len += 1;
                    flag[i] = k;
                    i = parent[i];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    pattern[top] = pattern[len];
                }
            }
            d[k] = y[k];
            y[k] = 0.0;
            for &i in &pattern[top..n] {
                let yi = y[i];
                y[i] = 0.0;
                let p2 = lp[i] + fill[i];
                for p in lp[i]..p2 {
                    y[li[p] as usize] -= lx[p] * yi;
                }
                let l_ki = yi / d[i];
                d[k] -= l_ki * yi;
                li[p2] = k as u32;
                lx[p2] = l_ki;
                fill[i] += 1;
            }
            // `<=` plus an explicit NaN test (rather than `!(d > 0)`) so a
            // poisoned pivot is rejected, not silently divided by.
            if d[k] <= 0.0 || d[k].is_nan() {
                return Err(FactorError::NonPositivePivot { index: perm[k], value: d[k] });
            }
        }

        let factor_seconds = start.elapsed().as_secs_f64();
        Ok(Self { n, perm, lp, li, lx, d, factor_seconds })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored non-zeros of `L`, including the implicit unit diagonal.
    pub fn nnz_l(&self) -> usize {
        self.lx.len() + self.n
    }

    /// Wall-clock seconds spent factorizing.
    pub fn factor_seconds(&self) -> f64 {
        self.factor_seconds
    }

    /// Solves `A·x = b`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A·x = b` into a caller-provided buffer (`b` and `x` may not
    /// alias; `x`'s prior contents are ignored).
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `dim()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let mut y = vec![0.0; self.n];
        self.solve_with_scratch(b, x, &mut y);
    }

    /// [`solve_into`] with a caller-provided scratch vector, for hot loops
    /// that solve against the same factor thousands of times and want zero
    /// allocations per call. `scratch` is resized to `dim()` as needed; its
    /// contents are ignored and overwritten.
    ///
    /// [`solve_into`]: LdlFactor::solve_into
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differs from `dim()`.
    pub fn solve_with_scratch(&self, b: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n);
        assert_eq!(x.len(), self.n);
        scratch.resize(self.n, 0.0);
        let y = &mut scratch[..];
        // Permute: y = P·b.
        for (yi, &old) in y.iter_mut().zip(&self.perm) {
            *yi = b[old];
        }
        let (li, lx) = (&self.li[..], &self.lx[..]);
        // SAFETY invariant for the unchecked `y` accesses below: every entry
        // of `li` is a strictly-lower row index produced by the numeric pass
        // (`li[p2] = k as u32` with `k < n`), and `y` has length `n` (resized
        // above), so `li[p] as usize` is always in bounds.
        // Forward: L·z = y (unit diagonal, columns in order). Column-oriented
        // scatter; slice windows let the compiler drop the li/lx bounds
        // checks.
        for j in 0..self.n {
            let yj = y[j];
            if yj != 0.0 {
                let (lo, hi) = (self.lp[j], self.lp[j + 1]);
                for (&i, &v) in li[lo..hi].iter().zip(&lx[lo..hi]) {
                    // SAFETY: `i < n == y.len()` (see invariant above).
                    unsafe { *y.get_unchecked_mut(i as usize) -= v * yj };
                }
            }
        }
        // Backward: Lᵀ·v = w with the diagonal solve D·w = z fused in
        // (descending j, so every y[i] read below is already final). The dot
        // product runs over four accumulators: a single running sum would
        // serialize on FP-add latency, which dominates this sweep for the
        // short (≈10-entry) columns RCM produces.
        for j in (0..self.n).rev() {
            let (lo, hi) = (self.lp[j], self.lp[j + 1]);
            let (idx, vals) = (&li[lo..hi], &lx[lo..hi]);
            let mut acc = [0.0f64; 4];
            let mut ic = idx.chunks_exact(4);
            let mut vc = vals.chunks_exact(4);
            // SAFETY for the four reads: each index comes from `li` (see
            // invariant above).
            for (ii, vv) in (&mut ic).zip(&mut vc) {
                unsafe {
                    acc[0] += vv[0] * y.get_unchecked(ii[0] as usize);
                    acc[1] += vv[1] * y.get_unchecked(ii[1] as usize);
                    acc[2] += vv[2] * y.get_unchecked(ii[2] as usize);
                    acc[3] += vv[3] * y.get_unchecked(ii[3] as usize);
                }
            }
            for (&i, &v) in ic.remainder().iter().zip(vc.remainder()) {
                // SAFETY: `i < n == y.len()` (see invariant above).
                acc[0] += v * unsafe { y.get_unchecked(i as usize) };
            }
            y[j] = y[j] / self.d[j] - (acc[0] + acc[1]) - (acc[2] + acc[3]);
        }
        // Un-permute: x = Pᵀ·v.
        for (&yi, &old) in y.iter().zip(&self.perm) {
            x[old] = yi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::{conjugate_gradient, TripletMatrix};

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.add(i, i, 2.0);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    fn grid_2d(nx: usize, ny: usize) -> CsrMatrix {
        let idx = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    t.stamp_conductance(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < ny {
                    t.stamp_conductance(idx(x, y), idx(x, y + 1), 1.0);
                }
                t.stamp_grounded_conductance(idx(x, y), 0.01);
            }
        }
        t.to_csr()
    }

    #[test]
    fn factors_and_solves_identity() {
        let mut t = TripletMatrix::new(4);
        for i in 0..4 {
            t.add(i, i, 1.0);
        }
        let f = LdlFactor::factor(&t.to_csr()).unwrap();
        let b = [3.0, -1.0, 0.5, 2.0];
        assert_eq!(f.solve(&b), b.to_vec());
        assert_eq!(f.nnz_l(), 4); // diagonal only
    }

    #[test]
    fn solves_tridiagonal_exactly() {
        let n = 64;
        let a = laplacian_1d(n);
        let f = LdlFactor::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let x = f.solve(&b);
        let ax = a.mul_vec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-10, "{axi} vs {bi}");
        }
    }

    #[test]
    fn agrees_with_cg_on_2d_grid() {
        let a = grid_2d(12, 9);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let f = LdlFactor::factor(&a).unwrap();
        let x_direct = f.solve(&b);
        let mut x_cg = vec![0.0; n];
        assert!(conjugate_gradient(&a, &b, &mut x_cg, 1e-13, 10 * n).converged);
        for (u, v) in x_direct.iter().zip(&x_cg) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn rcm_ordering_reduces_fill_on_grid() {
        let a = grid_2d(16, 16);
        let natural = LdlFactor::factor_with_ordering(&a, (0..a.dim()).collect()).unwrap();
        let rcm = LdlFactor::factor(&a).unwrap();
        assert!(
            rcm.nnz_l() <= natural.nnz_l(),
            "rcm {} vs natural {}",
            rcm.nnz_l(),
            natural.nnz_l()
        );
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(1, 1, -1.0);
        let err = LdlFactor::factor(&t.to_csr()).unwrap_err();
        match err {
            FactorError::NonPositivePivot { index, value } => {
                assert_eq!(index, 1);
                assert!(value < 0.0);
            }
        }
    }

    #[test]
    fn rejects_semidefinite_floating_network() {
        // Pure conductance between two nodes, no ground: singular.
        let mut t = TripletMatrix::new(2);
        t.stamp_conductance(0, 1, 1.0);
        assert!(LdlFactor::factor(&t.to_csr()).is_err());
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = grid_2d(5, 5);
        let f = LdlFactor::factor(&a).unwrap();
        let b: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let mut x = vec![0.0; 25];
        f.solve_into(&b, &mut x);
        assert_eq!(x, f.solve(&b));
    }

    #[test]
    fn factor_telemetry_is_populated() {
        let a = grid_2d(8, 8);
        let f = LdlFactor::factor(&a).unwrap();
        assert_eq!(f.dim(), 64);
        assert!(f.nnz_l() >= 64);
        assert!(f.factor_seconds() >= 0.0);
    }
}
