//! The layer-stack intermediate representation (IR).
//!
//! A [`LayerStack`] is the open, composable description of everything the
//! circuit assemblers consume: an ordered bottom→top list of conduction
//! [`Layer`]s (one of which is the silicon die) bracketed by two typed
//! [`Boundary`] attachments. The closed [`Package`](crate::package::Package)
//! enum *lowers* into this IR via
//! [`Package::to_stack`](crate::package::Package::to_stack); scenario files,
//! fuzzers and user code can build stacks directly and express
//! configurations the enum cannot (bare-die forced air, oil washing the
//! spreader top, extra plates, ...).
//!
//! Validation is explicit: [`LayerStack::validate`] returns a typed
//! [`StackError`] naming the offending layer or boundary instead of the
//! assembly-time `panic!`s the package enum used to rely on.
//!
//! Every stack also has a deterministic [`content hash`](LayerStack::content_hash)
//! over its physical content (names, material properties, thicknesses,
//! plate sides, boundaries). Combined with the die geometry and grid
//! resolution it keys the process-wide circuit cache
//! ([`circuit::build_circuit_cached`](crate::circuit::build_circuit_cached)),
//! so repeated solves over the same stack share one assembled circuit — and
//! with it the lazily built multigrid hierarchy — across experiments.

use crate::convection::FlowDirection;
use crate::fluid::Fluid;
use crate::materials::Material;
use std::error::Error;
use std::fmt;

/// Geometry of the die a stack is assembled around.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieGeometry {
    /// Die width, m.
    pub width: f64,
    /// Die height, m.
    pub height: f64,
    /// Die (bulk silicon) thickness, m.
    pub thickness: f64,
}

/// One conduction layer of a stack.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer name, used in reports, node-kind introspection and errors.
    pub name: String,
    /// Layer material.
    pub material: Material,
    /// Layer thickness, m.
    pub thickness: f64,
    /// `None`: the layer covers exactly the die footprint. `Some(side)`:
    /// a square plate of this side length with a peripheral ring node
    /// (spreader, heatsink, substrate, PCB).
    pub side: Option<f64>,
}

impl Layer {
    /// A die-footprint layer.
    pub fn new(name: impl Into<String>, material: Material, thickness: f64) -> Self {
        Self { name: name.into(), material, thickness, side: None }
    }

    /// An oversized square plate layer.
    pub fn plate(name: impl Into<String>, material: Material, thickness: f64, side: f64) -> Self {
        Self { name: name.into(), material, thickness, side: Some(side) }
    }
}

/// A distributed laminar coolant film on an exposed stack surface
/// (the paper's Eqns 1–4, 7–8).
#[derive(Debug, Clone, PartialEq)]
pub struct OilFilm {
    /// The coolant.
    pub fluid: Fluid,
    /// Bulk flow velocity, m/s.
    pub velocity: f64,
    /// Flow direction across the surface.
    pub direction: FlowDirection,
    /// Position-dependent `h(x)` of Eqn 8 (true) or the uniform average
    /// `h_L` of Eqn 2 (false).
    pub local_h: bool,
    /// Local boundary-layer thickness `δt(x)` for the film capacitance
    /// (true) or the trailing-edge value of Eqn 4 (false).
    pub local_boundary_layer: bool,
}

/// Boundary attached above the top layer or below the bottom layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Boundary {
    /// Adiabatic surface.
    Insulated,
    /// Lumped coolant (forced-air heatsink, natural convection at a PCB):
    /// total resistance (K/W) and capacitance (J/K), half-split around one
    /// coolant node.
    Lumped {
        /// Total surface-to-ambient resistance, K/W.
        r_total: f64,
        /// Lumped coolant capacitance, J/K.
        c_total: f64,
    },
    /// Distributed laminar film, one oil node per surface cell.
    OilFilm(OilFilm),
}

impl Boundary {
    fn describe(&self) -> &'static str {
        match self {
            Boundary::Insulated => "insulated",
            Boundary::Lumped { .. } => "lumped",
            Boundary::OilFilm(_) => "oil film",
        }
    }
}

/// Which end of the stack a boundary error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundarySide {
    /// The boundary above the top layer.
    Top,
    /// The boundary below the bottom layer.
    Bottom,
}

impl fmt::Display for BoundarySide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BoundarySide::Top => "top",
            BoundarySide::Bottom => "bottom",
        })
    }
}

/// Typed validation error for a layer stack. Every variant names the
/// offending layer or boundary so CLI surfaces (`figures`, `hotiron-verify`)
/// can report actionable messages instead of panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StackError {
    /// The stack has no conduction layers.
    EmptyStack,
    /// `si_index` does not point inside `layers`.
    SiliconIndexOutOfRange {
        /// The claimed silicon index.
        si_index: usize,
        /// Number of layers in the stack.
        layers: usize,
    },
    /// The die geometry itself is unusable.
    BadDie {
        /// What is wrong with it.
        reason: String,
    },
    /// A layer has a non-physical property.
    BadLayer {
        /// Name of the offending layer.
        layer: String,
        /// What is wrong with it.
        reason: String,
    },
    /// An oversized plate is smaller than the die it must cover.
    PlateSmallerThanDie {
        /// Name of the offending plate layer.
        layer: String,
        /// The plate's side, m.
        side: f64,
        /// The die's larger extent, m.
        die_extent: f64,
    },
    /// A boundary attachment has a non-physical parameter.
    BadBoundary {
        /// Which end of the stack.
        side: BoundarySide,
        /// What is wrong with it.
        reason: String,
    },
    /// A package requested a cooling combination that cannot be lowered
    /// (e.g. `PcbCooling::Oil` on an AIR-SINK package, which has no oil
    /// flow to wash the PCB with).
    IncompatibleCooling {
        /// Why the combination is invalid.
        reason: String,
    },
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyStack => write!(f, "layer stack has no conduction layers"),
            Self::SiliconIndexOutOfRange { si_index, layers } => {
                write!(f, "silicon index {si_index} out of range for {layers} layer(s)")
            }
            Self::BadDie { reason } => write!(f, "invalid die geometry: {reason}"),
            Self::BadLayer { layer, reason } => write!(f, "layer `{layer}`: {reason}"),
            Self::PlateSmallerThanDie { layer, side, die_extent } => write!(
                f,
                "plate `{layer}` ({side} m) is smaller than the die ({die_extent} m); \
                 oversized plates must cover the die"
            ),
            Self::BadBoundary { side, reason } => write!(f, "{side} boundary: {reason}"),
            Self::IncompatibleCooling { reason } => write!(f, "incompatible cooling: {reason}"),
        }
    }
}

impl Error for StackError {}

/// An ordered bottom→top stack of conduction layers bracketed by two
/// boundary attachments — the IR every assembler consumes.
///
/// # Examples
///
/// A bare die losing heat through a lumped convection path — a stack the
/// closed `Package` enum could not express:
///
/// ```
/// use hotiron_thermal::materials::SILICON;
/// use hotiron_thermal::stack::{Boundary, DieGeometry, Layer, LayerStack};
///
/// let stack = LayerStack::new(vec![Layer::new("silicon", SILICON, 0.5e-3)], 0)
///     .with_top(Boundary::Lumped { r_total: 2.0, c_total: 50.0 });
/// let die = DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 };
/// assert!(stack.validate(die).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStack {
    /// Conduction layers, bottom→top.
    pub layers: Vec<Layer>,
    /// Index of the silicon (power-dissipating) layer in `layers`.
    pub si_index: usize,
    /// Boundary below `layers[0]`.
    pub bottom: Boundary,
    /// Boundary above `layers[len - 1]`.
    pub top: Boundary,
}

impl LayerStack {
    /// Creates a stack with insulated boundaries.
    pub fn new(layers: Vec<Layer>, si_index: usize) -> Self {
        Self { layers, si_index, bottom: Boundary::Insulated, top: Boundary::Insulated }
    }

    /// Sets the boundary above the top layer.
    pub fn with_top(mut self, top: Boundary) -> Self {
        self.top = top;
        self
    }

    /// Sets the boundary below the bottom layer.
    pub fn with_bottom(mut self, bottom: Boundary) -> Self {
        self.bottom = bottom;
        self
    }

    /// The silicon layer.
    ///
    /// # Panics
    ///
    /// Panics if `si_index` is out of range (a stack that failed
    /// [`validate`](Self::validate)).
    pub fn silicon(&self) -> &Layer {
        &self.layers[self.si_index]
    }

    /// Layers strictly above the silicon layer, bottom→top.
    pub fn above_silicon(&self) -> &[Layer] {
        &self.layers[self.si_index + 1..]
    }

    /// Layers strictly below the silicon layer, bottom→top.
    pub fn below_silicon(&self) -> &[Layer] {
        &self.layers[..self.si_index]
    }

    /// Checks the stack against a die geometry, returning the first
    /// offending layer or boundary.
    ///
    /// # Errors
    ///
    /// Any [`StackError`] variant except `IncompatibleCooling` (which only
    /// arises while lowering a `Package`).
    pub fn validate(&self, die: DieGeometry) -> Result<(), StackError> {
        if self.layers.is_empty() {
            return Err(StackError::EmptyStack);
        }
        if self.si_index >= self.layers.len() {
            return Err(StackError::SiliconIndexOutOfRange {
                si_index: self.si_index,
                layers: self.layers.len(),
            });
        }
        for (what, v) in
            [("width", die.width), ("height", die.height), ("thickness", die.thickness)]
        {
            if !(v.is_finite() && v > 0.0) {
                return Err(StackError::BadDie { reason: format!("{what} must be positive") });
            }
        }
        let die_extent = die.width.max(die.height);
        for layer in &self.layers {
            if layer.name.is_empty() {
                return Err(StackError::BadLayer {
                    layer: "<unnamed>".into(),
                    reason: "layer name must be non-empty".into(),
                });
            }
            if !(layer.thickness.is_finite() && layer.thickness > 0.0) {
                return Err(StackError::BadLayer {
                    layer: layer.name.clone(),
                    reason: format!("thickness {} must be positive", layer.thickness),
                });
            }
            if let Some(side) = layer.side {
                if !(side.is_finite() && side > 0.0) {
                    return Err(StackError::BadLayer {
                        layer: layer.name.clone(),
                        reason: format!("plate side {side} must be positive"),
                    });
                }
                if side < die_extent {
                    return Err(StackError::PlateSmallerThanDie {
                        layer: layer.name.clone(),
                        side,
                        die_extent,
                    });
                }
            }
        }
        for (side, boundary) in
            [(BoundarySide::Top, &self.top), (BoundarySide::Bottom, &self.bottom)]
        {
            match boundary {
                Boundary::Insulated => {}
                Boundary::Lumped { r_total, c_total } => {
                    if !(r_total.is_finite() && *r_total > 0.0) {
                        return Err(StackError::BadBoundary {
                            side,
                            reason: format!("lumped resistance {r_total} must be positive"),
                        });
                    }
                    if !(c_total.is_finite() && *c_total >= 0.0) {
                        return Err(StackError::BadBoundary {
                            side,
                            reason: format!("lumped capacitance {c_total} must be non-negative"),
                        });
                    }
                }
                Boundary::OilFilm(film) => {
                    if !(film.velocity.is_finite() && film.velocity > 0.0) {
                        return Err(StackError::BadBoundary {
                            side,
                            reason: format!("oil velocity {} must be positive", film.velocity),
                        });
                    }
                }
            }
        }
        if matches!(self.top, Boundary::Insulated) && matches!(self.bottom, Boundary::Insulated) {
            return Err(StackError::BadBoundary {
                side: BoundarySide::Top,
                reason: format!(
                    "both boundaries are insulated (top {}, bottom {}); \
                     the stack has no path to ambient",
                    self.top.describe(),
                    self.bottom.describe()
                ),
            });
        }
        Ok(())
    }

    /// Deterministic FNV-1a hash over the stack's physical content: layer
    /// names, material properties (bit-exact), thicknesses, plate sides,
    /// silicon index and both boundaries. Two stacks that assemble to
    /// identical circuits over the same die and grid hash identically; any
    /// physical difference changes the hash.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.usize(self.layers.len());
        for layer in &self.layers {
            h.str(&layer.name);
            h.str(layer.material.name());
            h.f64(layer.material.conductivity());
            h.f64(layer.material.volumetric_heat_capacity());
            h.f64(layer.thickness);
            match layer.side {
                None => h.u8(0),
                Some(s) => {
                    h.u8(1);
                    h.f64(s);
                }
            }
        }
        h.usize(self.si_index);
        hash_boundary(&mut h, &self.bottom);
        hash_boundary(&mut h, &self.top);
        h.finish()
    }
}

pub(crate) fn hash_boundary(h: &mut Fnv, b: &Boundary) {
    match b {
        Boundary::Insulated => h.u8(0),
        Boundary::Lumped { r_total, c_total } => {
            h.u8(1);
            h.f64(*r_total);
            h.f64(*c_total);
        }
        Boundary::OilFilm(film) => {
            h.u8(2);
            h.str(film.fluid.name());
            h.f64(film.fluid.conductivity());
            h.f64(film.fluid.density());
            h.f64(film.fluid.specific_heat());
            h.f64(film.fluid.dynamic_viscosity());
            h.f64(film.velocity);
            h.u8(match film.direction {
                FlowDirection::LeftToRight => 0,
                FlowDirection::RightToLeft => 1,
                FlowDirection::BottomToTop => 2,
                FlowDirection::TopToBottom => 3,
            });
            h.u8(film.local_h as u8);
            h.u8(film.local_boundary_layer as u8);
        }
    }
}

/// Minimal dependency-free FNV-1a 64-bit hasher. Floats hash by their raw
/// bit pattern, so hashing is exact (no epsilon surprises) and stable
/// across platforms.
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Self(Self::OFFSET)
    }

    pub(crate) fn u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.u8(b);
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        // Length terminator: "ab"+"c" must not collide with "a"+"bc".
        self.usize(s.len());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::MINERAL_OIL;
    use crate::materials::{COPPER, INTERFACE, SILICON};

    fn die() -> DieGeometry {
        DieGeometry { width: 0.02, height: 0.02, thickness: 0.5e-3 }
    }

    fn bare_die() -> LayerStack {
        LayerStack::new(vec![Layer::new("silicon", SILICON, 0.5e-3)], 0)
            .with_top(Boundary::Lumped { r_total: 1.0, c_total: 10.0 })
    }

    #[test]
    fn valid_stack_passes() {
        assert!(bare_die().validate(die()).is_ok());
    }

    #[test]
    fn empty_stack_rejected() {
        let s = LayerStack::new(vec![], 0);
        assert_eq!(s.validate(die()), Err(StackError::EmptyStack));
    }

    #[test]
    fn silicon_index_checked() {
        let mut s = bare_die();
        s.si_index = 3;
        assert!(matches!(s.validate(die()), Err(StackError::SiliconIndexOutOfRange { .. })));
    }

    #[test]
    fn undersized_plate_names_layer() {
        let mut s = bare_die();
        s.layers.push(Layer::plate("tiny-spreader", COPPER, 1e-3, 0.01));
        let err = s.validate(die()).unwrap_err();
        match &err {
            StackError::PlateSmallerThanDie { layer, side, die_extent } => {
                assert_eq!(layer, "tiny-spreader");
                assert_eq!(*side, 0.01);
                assert_eq!(*die_extent, 0.02);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("tiny-spreader"), "{err}");
    }

    #[test]
    fn bad_thickness_names_layer() {
        let mut s = bare_die();
        s.layers.push(Layer::new("interface", INTERFACE, -1e-6));
        let err = s.validate(die()).unwrap_err();
        assert!(err.to_string().contains("interface"), "{err}");
    }

    #[test]
    fn bad_boundary_rejected() {
        let s = bare_die().with_top(Boundary::Lumped { r_total: 0.0, c_total: 1.0 });
        assert!(matches!(
            s.validate(die()),
            Err(StackError::BadBoundary { side: BoundarySide::Top, .. })
        ));
        let s = bare_die().with_top(Boundary::OilFilm(OilFilm {
            fluid: MINERAL_OIL,
            velocity: f64::NAN,
            direction: FlowDirection::LeftToRight,
            local_h: true,
            local_boundary_layer: true,
        }));
        assert!(matches!(s.validate(die()), Err(StackError::BadBoundary { .. })));
    }

    #[test]
    fn fully_insulated_stack_rejected() {
        let s = LayerStack::new(vec![Layer::new("silicon", SILICON, 0.5e-3)], 0);
        let err = s.validate(die()).unwrap_err();
        assert!(err.to_string().contains("no path to ambient"), "{err}");
    }

    #[test]
    fn bad_die_rejected() {
        let bad = DieGeometry { width: 0.0, ..die() };
        assert!(matches!(bare_die().validate(bad), Err(StackError::BadDie { .. })));
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let a = bare_die();
        let b = bare_die();
        assert_eq!(a.content_hash(), b.content_hash());

        let mut c = bare_die();
        c.layers[0].thickness = 0.4e-3;
        assert_ne!(a.content_hash(), c.content_hash());

        let d = bare_die().with_top(Boundary::Lumped { r_total: 1.0, c_total: 11.0 });
        assert_ne!(a.content_hash(), d.content_hash());

        let e = bare_die().with_bottom(Boundary::OilFilm(OilFilm {
            fluid: MINERAL_OIL,
            velocity: 10.0,
            direction: FlowDirection::LeftToRight,
            local_h: true,
            local_boundary_layer: true,
        }));
        assert_ne!(a.content_hash(), e.content_hash());
        // Direction matters.
        let mut f = e.clone();
        if let Boundary::OilFilm(film) = &mut f.bottom {
            film.direction = FlowDirection::TopToBottom;
        }
        assert_ne!(e.content_hash(), f.content_hash());
    }

    #[test]
    fn hash_distinguishes_name_boundaries() {
        // "ab" + "c" must not collide with "a" + "bc".
        let mut a = Fnv::new();
        a.str("ab");
        a.str("c");
        let mut b = Fnv::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn accessors_split_around_silicon() {
        let s = LayerStack::new(
            vec![
                Layer::new("interconnect", INTERFACE, 12e-6),
                Layer::new("silicon", SILICON, 0.5e-3),
                Layer::new("interface", INTERFACE, 20e-6),
                Layer::plate("spreader", COPPER, 1e-3, 0.03),
            ],
            1,
        );
        assert_eq!(s.silicon().name, "silicon");
        assert_eq!(s.below_silicon().len(), 1);
        assert_eq!(s.above_silicon().len(), 2);
        assert_eq!(s.above_silicon()[1].name, "spreader");
    }

    #[test]
    fn error_display_is_informative() {
        let e = StackError::IncompatibleCooling {
            reason: "PcbCooling::Oil requires an OilSilicon package".into(),
        };
        assert!(e.to_string().contains("OilSilicon"));
        let e = StackError::BadBoundary {
            side: BoundarySide::Bottom,
            reason: "oil velocity -1 must be positive".into(),
        };
        assert!(e.to_string().starts_with("bottom boundary"));
    }
}
