//! Spectral backend: precomputed Green's-function response of a laterally
//! uniform [`crate::stack::LayerStack`], evaluated per power map in
//! O(n log n) by fast cosine transforms — steady solves through
//! [`SpectralResponse`], exact-exponential transient stepping through
//! [`SpectralTransient`].
//!
//! # Method
//!
//! For a qualifying stack the assembled cell-block operator is *laterally
//! shift-invariant* with adiabatic (mirror / method-of-images) edges: every
//! cell of a layer has the same x-, y- and vertical conductances and the
//! same boundary-film load. The DCT-II basis `cos(πk(2j+1)/(2N))` — the
//! discrete even extension that the continuous method of images performs
//! with mirrored sources — diagonalizes that operator exactly, so one
//! steady solve becomes:
//!
//! 1. forward 2-D DCT of the power map (rise variables `u = T − T_amb`
//!    make the right-hand side *only* the silicon-layer power, because the
//!    conductance rows sum to the ambient conductances);
//! 2. for each lateral mode `(kc, kr)`, an `L×L` tridiagonal solve across
//!    the layers with precomputed LU factors (`L = 1` for bare-die stacks:
//!    a single multiply by the precomputed unit-source response);
//! 3. inverse 2-D DCT per layer, then exact back-substitution of the
//!    eliminated per-cell oil nodes and the Schur-complemented lumped
//!    coolant nodes.
//!
//! Per-cell oil nodes with a globally uniform film coefficient are
//! eliminated exactly (`g·g_amb/(g+g_amb)` onto the cell diagonal); lumped
//! coolant plates are handled exactly through a dense Schur complement of
//! size = number of coolant nodes. The result matches the direct solver to
//! FFT roundoff (~1e-12 K), far inside the cross-backend fuzz tolerance.
//!
//! # Qualification
//!
//! [`SpectralParams::from_circuit`] walks the assembled CSR matrix (not the
//! stack description) and rejects, naming the offending layer:
//!
//! * oversized plates (ring nodes perturb edge-cell rows → not
//!   shift-invariant);
//! * position-dependent oil films (`local_h`: per-cell diagonal varies);
//! * grids whose dimensions are not powers of two (radix-2 transforms);
//! * any structure the walk cannot classify (defense against future
//!   stamping changes — the row-sum identity is re-checked per cell).
//!
//! Responses are cached in the bounded [`ResponseCache`] LRU beside the
//! circuit cache, keyed by a digest of the extracted spectral parameters
//! (which the stack `content_hash()` and grid determine), so repeated
//! solves against the same (stack, grid) pay the plan once.

use crate::circuit::{CacheCounters, NodeKind, ThermalCircuit};
use crate::fft::{Dct2, Dct2Scratch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Process-wide response cache capacity (distinct (stack, grid) responses).
pub const RESPONSE_CACHE_CAPACITY: usize = 16;

/// Relative slack when checking that a conductance family is uniform: the
/// assembler computes each family from identical inputs, so bit-identical
/// values are expected and this only absorbs benign last-bit noise.
const UNIFORM_REL_TOL: f64 = 1e-9;

/// Why a circuit does not qualify for the spectral backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ineligible {
    /// Human-readable disqualification, naming the offending layer.
    pub reason: String,
}

impl std::fmt::Display for Ineligible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for Ineligible {}

fn bail(reason: impl Into<String>) -> Ineligible {
    Ineligible { reason: reason.into() }
}

/// One eliminated per-cell oil node: exact back-substitution data.
#[derive(Debug, Clone, PartialEq)]
struct OilNode {
    /// Index in the full state vector.
    node: usize,
    /// The cell it loads (full node index, `< nl·n`).
    cell: usize,
    /// Cell↔oil conductance, W/K.
    g: f64,
    /// Oil↔ambient conductance, W/K.
    g_amb: f64,
}

/// One lumped coolant node, kept exactly via a Schur complement.
#[derive(Debug, Clone, PartialEq)]
struct CoolantNode {
    /// Index in the full state vector.
    node: usize,
    /// Coolant↔ambient conductance, W/K.
    g_amb: f64,
    /// Per-layer uniform cell↔coolant conductance, W/K per cell.
    couplings: Vec<(usize, f64)>,
}

/// Spectral description of a qualifying circuit, extracted by walking the
/// assembled matrix. Two circuits with equal [`digest`] have identical
/// operators (and identical node numbering, which is deterministic in the
/// grid and layer count), so they can share one [`SpectralResponse`].
///
/// [`digest`]: SpectralParams::digest
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralParams {
    rows: usize,
    cols: usize,
    /// Conduction layers.
    nl: usize,
    /// Layer receiving the power map.
    si_layer: usize,
    /// Per-layer lateral conductances, W/K (0 when the dimension is 1).
    gx: Vec<f64>,
    gy: Vec<f64>,
    /// Inter-layer conductances, W/K (`nl − 1` entries).
    vert: Vec<f64>,
    /// Per-layer uniform extra diagonal: eliminated oil films plus coolant
    /// couplings, W/K per cell.
    diag_extra: Vec<f64>,
    oil: Vec<OilNode>,
    coolants: Vec<CoolantNode>,
    /// Full state-vector length of the source circuit.
    node_count: usize,
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 { 0xcbf2_9ce4_8422_2325 } else { seed };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn mix_usize(h: u64, v: usize) -> u64 {
    fnv1a(h, &(v as u64).to_le_bytes())
}

fn mix_f64(h: u64, v: f64) -> u64 {
    fnv1a(h, &v.to_bits().to_le_bytes())
}

/// `|a − b| ≤ tol·max(|a|,|b|)`.
fn close_rel(a: f64, b: f64) -> bool {
    (a - b).abs() <= UNIFORM_REL_TOL * a.abs().max(b.abs())
}

/// Records `v` into a uniform-family slot, failing with `what` on mismatch.
fn set_uniform(
    slot: &mut Option<f64>,
    v: f64,
    what: impl Fn() -> String,
) -> Result<(), Ineligible> {
    match slot {
        None => {
            *slot = Some(v);
            Ok(())
        }
        Some(prev) if close_rel(*prev, v) => Ok(()),
        Some(prev) => Err(bail(format!("{} ({prev} W/K vs {v} W/K)", what()))),
    }
}

impl SpectralParams {
    /// Extracts the spectral description of `circuit`, or explains why the
    /// circuit does not qualify.
    ///
    /// # Errors
    ///
    /// [`Ineligible`] naming the disqualifying layer or structure.
    pub fn from_circuit(circuit: &ThermalCircuit) -> Result<Self, Ineligible> {
        if let Some(board) = circuit.board_nodes() {
            return Err(bail(format!(
                "board circuit: {} package(s) couple through the shared PCB plane, which \
                 breaks the lateral shift-invariance the spectral path requires; use the \
                 multigrid or CG solver",
                board.placements.len()
            )));
        }
        let rows = circuit.grid_rows();
        let cols = circuit.grid_cols();
        let n = rows * cols;
        if !rows.is_power_of_two() || !cols.is_power_of_two() {
            return Err(bail(format!(
                "grid {rows}×{cols} is not a power of two in both dimensions \
                 (radix-2 spectral transforms)"
            )));
        }
        let kinds = circuit.node_kinds();
        let names = circuit.layer_names();
        let g = circuit.conductance();
        let amb = circuit.ambient_conductance();
        let layer_name =
            |l: usize| names.get(l).map(String::as_str).unwrap_or("<unknown>").to_owned();

        if let Some(l) = kinds.iter().find_map(|k| match k {
            NodeKind::Ring { layer } => Some(*layer),
            _ => None,
        }) {
            return Err(bail(format!(
                "layer `{}` is an oversized plate: its peripheral ring nodes break lateral \
                 shift-invariance",
                layer_name(l)
            )));
        }

        let cells = kinds.iter().filter(|k| matches!(k, NodeKind::Cell { .. })).count();
        if n == 0 || !cells.is_multiple_of(n) {
            return Err(bail(format!("cannot tile {cells} cell nodes into {rows}×{cols} layers")));
        }
        let nl = cells / n;

        // Boundary nodes: per-cell oil films and lumped coolants.
        let mut oil = Vec::new();
        let mut coolants = Vec::new();
        for (i, kind) in kinds.iter().enumerate() {
            match kind {
                NodeKind::Oil => {
                    let mut neighbors = g.row(i).filter(|&(j, _)| j != i);
                    let (cell, val) =
                        neighbors.next().ok_or_else(|| bail("oil node with no cell coupling"))?;
                    if neighbors.next().is_some() || !matches!(kinds[cell], NodeKind::Cell { .. }) {
                        return Err(bail(
                            "oil node coupled to more than one cell: unrecognized stamping",
                        ));
                    }
                    if amb[i] <= 0.0 || -val <= 0.0 {
                        return Err(bail("oil node with non-positive conductance"));
                    }
                    oil.push(OilNode { node: i, cell, g: -val, g_amb: amb[i] });
                }
                NodeKind::Coolant => {
                    let mut per_layer: HashMap<usize, (f64, usize)> = HashMap::new();
                    for (j, val) in g.row(i).filter(|&(j, _)| j != i) {
                        let NodeKind::Cell { layer } = kinds[j] else {
                            return Err(bail(
                                "coolant coupled to a non-cell node: unrecognized stamping",
                            ));
                        };
                        let gv = -val;
                        let entry = per_layer.entry(layer).or_insert((gv, 0));
                        if !close_rel(entry.0, gv) {
                            return Err(bail(format!(
                                "coolant plate over layer `{}` couples non-uniformly \
                                 ({} W/K vs {gv} W/K per cell)",
                                layer_name(layer),
                                entry.0
                            )));
                        }
                        entry.1 += 1;
                    }
                    let mut couplings = Vec::new();
                    for (layer, (gv, count)) in per_layer {
                        if count != n {
                            return Err(bail(format!(
                                "coolant plate covers {count} of {n} cells of layer `{}`",
                                layer_name(layer)
                            )));
                        }
                        couplings.push((layer, gv));
                    }
                    couplings.sort_by_key(|&(l, _)| l);
                    coolants.push(CoolantNode { node: i, g_amb: amb[i], couplings });
                }
                NodeKind::Cell { .. } | NodeKind::Ring { .. } => {}
            }
        }

        // Cell blocks: extract the uniform lateral / vertical families and
        // re-check the row-sum identity per cell.
        let mut gx: Vec<Option<f64>> = vec![None; nl];
        let mut gy: Vec<Option<f64>> = vec![None; nl];
        let mut vert: Vec<Option<f64>> = vec![None; nl.saturating_sub(1)];
        for l in 0..nl {
            for r in 0..rows {
                for c in 0..cols {
                    let i = l * n + r * cols + c;
                    if !matches!(kinds[i], NodeKind::Cell { layer } if layer == l) {
                        return Err(bail("cell nodes are not layer-major: unrecognized layout"));
                    }
                    if amb[i] != 0.0 {
                        return Err(bail(format!(
                            "cell of layer `{}` is grounded directly: unrecognized stamping",
                            layer_name(l)
                        )));
                    }
                    let mut offsum = 0.0;
                    for (j, val) in g.row(i).filter(|&(j, _)| j != i) {
                        let gv = -val;
                        offsum += gv;
                        let lateral = |axis: &str| {
                            format!(
                                "layer `{}` {axis}-conductance varies across the grid",
                                layer_name(l)
                            )
                        };
                        if c + 1 < cols && j == i + 1 {
                            set_uniform(&mut gx[l], gv, || lateral("x"))?;
                        } else if c > 0 && j == i - 1 {
                            set_uniform(&mut gx[l], gv, || lateral("x"))?;
                        } else if r + 1 < rows && j == i + cols {
                            set_uniform(&mut gy[l], gv, || lateral("y"))?;
                        } else if r > 0 && j == i - cols {
                            set_uniform(&mut gy[l], gv, || lateral("y"))?;
                        } else if l + 1 < nl && j == i + n {
                            set_uniform(&mut vert[l], gv, || {
                                format!(
                                    "vertical conductance `{}`↔`{}` varies across the grid",
                                    layer_name(l),
                                    layer_name(l + 1)
                                )
                            })?;
                        } else if l > 0 && j == i - n {
                            set_uniform(&mut vert[l - 1], gv, || {
                                format!(
                                    "vertical conductance `{}`↔`{}` varies across the grid",
                                    layer_name(l - 1),
                                    layer_name(l)
                                )
                            })?;
                        } else if matches!(kinds[j], NodeKind::Oil | NodeKind::Coolant) {
                            // Captured by the boundary pass (symmetric matrix).
                        } else {
                            return Err(bail(format!(
                                "unclassifiable coupling at cell {i} of layer `{}`",
                                layer_name(l)
                            )));
                        }
                    }
                    let diag = g.diagonal(i);
                    if !close_rel(diag, offsum) {
                        return Err(bail(format!(
                            "cell {i} of layer `{}` breaks the row-sum identity \
                             (diag {diag} vs couplings {offsum})",
                            layer_name(l)
                        )));
                    }
                }
            }
        }

        // Fold the eliminated oil films into per-layer diagonals; a film
        // whose contribution varies per cell (local h) disqualifies.
        let mut oil_diag = vec![0.0f64; nl * n];
        for o in &oil {
            oil_diag[o.cell] += o.g * o.g_amb / (o.g + o.g_amb);
        }
        let mut diag_extra = vec![0.0f64; nl];
        for l in 0..nl {
            let plane = &oil_diag[l * n..(l + 1) * n];
            let first = plane[0];
            if plane.iter().any(|&v| !close_rel(v, first)) {
                return Err(bail(format!(
                    "boundary film on layer `{}` varies per cell (position-dependent h); \
                     the spectral path needs laterally uniform properties",
                    layer_name(l)
                )));
            }
            diag_extra[l] = first;
        }
        for cool in &coolants {
            for &(layer, gv) in &cool.couplings {
                diag_extra[layer] += gv;
            }
        }

        let si_layer = circuit.si_offset() / n;
        Ok(Self {
            rows,
            cols,
            nl,
            si_layer,
            gx: gx.into_iter().map(|v| v.unwrap_or(0.0)).collect(),
            gy: gy.into_iter().map(|v| v.unwrap_or(0.0)).collect(),
            vert: vert
                .into_iter()
                .collect::<Option<Vec<f64>>>()
                .ok_or_else(|| bail("adjacent layers without a vertical coupling"))?,
            diag_extra,
            oil,
            coolants,
            node_count: circuit.node_count(),
        })
    }

    /// Content digest: equal digests ⇒ interchangeable responses.
    pub fn digest(&self) -> u64 {
        let mut h = mix_usize(0, self.rows);
        h = mix_usize(h, self.cols);
        h = mix_usize(h, self.nl);
        h = mix_usize(h, self.si_layer);
        for v in self.gx.iter().chain(&self.gy).chain(&self.vert).chain(&self.diag_extra) {
            h = mix_f64(h, *v);
        }
        for o in &self.oil {
            h = mix_usize(h, o.node);
            h = mix_usize(h, o.cell);
            h = mix_f64(h, o.g);
            h = mix_f64(h, o.g_amb);
        }
        for c in &self.coolants {
            h = mix_usize(h, c.node);
            h = mix_f64(h, c.g_amb);
            for &(l, gv) in &c.couplings {
                h = mix_usize(h, l);
                h = mix_f64(h, gv);
            }
        }
        mix_usize(h, self.node_count)
    }

    /// Grid cells per layer.
    fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

/// Small dense LU with partial pivoting for the coolant Schur complement
/// (dimension = number of coolant nodes, typically 0–2).
#[derive(Debug, Clone)]
struct SmallLu {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl SmallLu {
    fn factor(mut a: Vec<f64>, n: usize) -> Self {
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let p = (k..n)
                .max_by(|&i, &j| a[i * n + k].abs().total_cmp(&a[j * n + k].abs()))
                .expect("non-empty pivot column");
            if p != k {
                piv.swap(k, p);
                for c in 0..n {
                    a.swap(k * n + c, p * n + c);
                }
            }
            let pivot = a[k * n + k];
            for i in k + 1..n {
                let m = a[i * n + k] / pivot;
                a[i * n + k] = m;
                for c in k + 1..n {
                    a[i * n + c] -= m * a[k * n + c];
                }
            }
        }
        Self { n, lu: a, piv }
    }

    fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.lu[i * n + k] * x[k];
            }
        }
        for i in (0..n).rev() {
            for k in i + 1..n {
                x[i] -= self.lu[i * n + k] * x[k];
            }
            x[i] /= self.lu[i * n + i];
        }
        x
    }
}

/// Reusable buffers for [`SpectralResponse::solve_into`]: nothing is
/// allocated on the solve path once this exists.
#[derive(Debug)]
pub struct SpectralScratch {
    /// Spatial planes, layer-major, `nl·n`.
    planes: Vec<f64>,
    /// Spectral planes (transposed mode layout), `nl·n`.
    spec: Vec<f64>,
    dct: Dct2Scratch,
}

/// The precomputed unit-source response of one qualifying (stack, grid):
/// transform plans, per-mode tridiagonal LU factors across layers, and the
/// coolant Schur complement. Build once (cached in [`ResponseCache`]),
/// solve any power map in O(n log n).
#[derive(Debug)]
pub struct SpectralResponse {
    params: SpectralParams,
    dct: Dct2,
    /// Thomas multipliers, `(nl−1)·n`, mode-major within each layer plane.
    factor_m: Vec<f64>,
    /// Reciprocal pivots, `nl·n`.
    factor_invd: Vec<f64>,
    /// Per-coolant spatial correction columns `W = A⁻¹B`, each `nl·n`.
    w_planes: Vec<Vec<f64>>,
    /// LU of the Schur complement `S = D − BᵀW`.
    schur: Option<SmallLu>,
    build_seconds: f64,
}

impl SpectralResponse {
    /// Precomputes the response for `params`.
    pub fn build(params: SpectralParams) -> Self {
        let start = Instant::now();
        let n = params.cells();
        let (rows, cols, nl) = (params.rows, params.cols, params.nl);
        let dct = Dct2::new(rows, cols);
        let lambda = |k: usize, dim: usize| {
            let s = (std::f64::consts::PI * k as f64 / (2.0 * dim as f64)).sin();
            4.0 * s * s
        };
        // Mode layout matches Dct2::forward_into: m = kc·rows + kr.
        let mut factor_m = vec![0.0; nl.saturating_sub(1) * n];
        let mut factor_invd = vec![0.0; nl * n];
        for kc in 0..cols {
            let lx = lambda(kc, cols);
            for kr in 0..rows {
                let m = kc * rows + kr;
                let ly = lambda(kr, rows);
                let a = |l: usize| {
                    params.gx[l] * lx
                        + params.gy[l] * ly
                        + params.diag_extra[l]
                        + if l > 0 { params.vert[l - 1] } else { 0.0 }
                        + if l + 1 < nl { params.vert[l] } else { 0.0 }
                };
                let mut d = a(0);
                factor_invd[m] = 1.0 / d;
                for l in 1..nl {
                    let mult = params.vert[l - 1] / d;
                    factor_m[(l - 1) * n + m] = mult;
                    d = a(l) - params.vert[l - 1] * mult;
                    factor_invd[l * n + m] = 1.0 / d;
                }
            }
        }
        let mut resp = Self {
            params,
            dct,
            factor_m,
            factor_invd,
            w_planes: Vec::new(),
            schur: None,
            build_seconds: 0.0,
        };
        // Coolant Schur complement: W = A⁻¹B column per coolant,
        // S = D − BᵀW (coolants never inter-couple, so D is diagonal).
        let m = resp.params.coolants.len();
        if m > 0 {
            let mut scratch = resp.scratch();
            let mut w_planes = Vec::with_capacity(m);
            for cool in resp.params.coolants.clone() {
                scratch.planes.fill(0.0);
                for &(layer, gv) in &cool.couplings {
                    scratch.planes[layer * n..(layer + 1) * n].fill(-gv);
                }
                let SpectralScratch { planes, spec, dct } = &mut scratch;
                resp.solve_planes(planes, spec, dct);
                w_planes.push(planes.clone());
            }
            let mut s = vec![0.0; m * m];
            for (jj, cool_j) in resp.params.coolants.iter().enumerate() {
                let d_jj: f64 = cool_j.g_amb
                    + cool_j.couplings.iter().map(|&(_, gv)| gv * n as f64).sum::<f64>();
                for kk in 0..m {
                    let mut bt_w = 0.0;
                    for &(layer, gv) in &cool_j.couplings {
                        let plane = &w_planes[kk][layer * n..(layer + 1) * n];
                        bt_w += -gv * plane.iter().sum::<f64>();
                    }
                    s[jj * m + kk] = if jj == kk { d_jj } else { 0.0 } - bt_w;
                }
            }
            resp.w_planes = w_planes;
            resp.schur = Some(SmallLu::factor(s, m));
        }
        resp.build_seconds = start.elapsed().as_secs_f64();
        resp
    }

    /// Parameters this response was built from.
    pub fn params(&self) -> &SpectralParams {
        &self.params
    }

    /// Wall-clock seconds the precomputation took.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Allocates solve scratch sized for this response.
    pub fn scratch(&self) -> SpectralScratch {
        let sz = self.params.nl * self.params.cells();
        SpectralScratch { planes: vec![0.0; sz], spec: vec![0.0; sz], dct: self.dct.scratch() }
    }

    /// Solves `A·u = b` over the cell block: `planes` holds the layer-major
    /// spatial right-hand side on entry and the spatial solution on return.
    fn solve_planes(&self, planes: &mut [f64], spec: &mut [f64], dct: &mut Dct2Scratch) {
        let n = self.params.cells();
        let nl = self.params.nl;
        for l in 0..nl {
            let plane = &mut planes[l * n..(l + 1) * n];
            // A zero plane transforms to zero: skip the pass (typical case:
            // power only enters the silicon layer).
            if plane.iter().all(|&v| v == 0.0) {
                spec[l * n..(l + 1) * n].fill(0.0);
            } else {
                self.dct.forward_into(plane, &mut spec[l * n..(l + 1) * n], dct);
            }
        }
        // Thomas sweeps across layers, vectorized over modes.
        for l in 1..nl {
            let (prev, cur) = spec.split_at_mut(l * n);
            let prev = &prev[(l - 1) * n..];
            let mult = &self.factor_m[(l - 1) * n..l * n];
            for ((z, &zp), &mu) in cur[..n].iter_mut().zip(prev.iter()).zip(mult.iter()) {
                *z += mu * zp;
            }
        }
        {
            let last = &mut spec[(nl - 1) * n..nl * n];
            let invd = &self.factor_invd[(nl - 1) * n..nl * n];
            for (z, &d) in last.iter_mut().zip(invd.iter()) {
                *z *= d;
            }
        }
        for l in (0..nl.saturating_sub(1)).rev() {
            let v = self.params.vert[l];
            let (cur, next) = spec.split_at_mut((l + 1) * n);
            let cur = &mut cur[l * n..];
            let next = &next[..n];
            let invd = &self.factor_invd[l * n..(l + 1) * n];
            for ((z, &zn), &d) in cur.iter_mut().zip(next.iter()).zip(invd.iter()) {
                *z = (*z + v * zn) * d;
            }
        }
        for l in 0..nl {
            self.dct.inverse_into(
                &mut spec[l * n..(l + 1) * n],
                &mut planes[l * n..(l + 1) * n],
                dct,
            );
        }
    }

    /// Steady solve: fills `state` (full node vector, kelvin) for the given
    /// silicon-layer cell powers (W) and ambient (K). Returns the relative
    /// energy-balance residual `|ΣP − Σ g_amb·(T − T_amb)| / ΣP`, which for
    /// this exact method sits at FFT roundoff and doubles as the reported
    /// solver residual.
    ///
    /// # Panics
    ///
    /// Panics if `si_cell_power` is not `rows·cols` long or `state` is not
    /// the source circuit's node count.
    pub fn solve_into(
        &self,
        si_cell_power: &[f64],
        ambient: f64,
        state: &mut [f64],
        scratch: &mut SpectralScratch,
    ) -> f64 {
        let n = self.params.cells();
        let nl = self.params.nl;
        assert_eq!(si_cell_power.len(), n, "power map must cover the grid");
        assert_eq!(state.len(), self.params.node_count, "state must cover every node");
        let SpectralScratch { planes, spec, dct } = scratch;
        // Rise variables u = T − T_amb: the RHS is the power map alone
        // (zero everywhere except the silicon plane, which is overwritten).
        let si = self.params.si_layer;
        planes[..si * n].fill(0.0);
        planes[(si + 1) * n..].fill(0.0);
        planes[si * n..(si + 1) * n].copy_from_slice(si_cell_power);
        self.solve_planes(planes, spec, dct);
        // Coolant correction: y = S⁻¹(−Bᵀt), u = t − W·y.
        let mut y = Vec::new();
        if let Some(schur) = &self.schur {
            let mut bt = Vec::with_capacity(self.params.coolants.len());
            for cool in &self.params.coolants {
                let mut acc = 0.0;
                for &(layer, gv) in &cool.couplings {
                    acc += -gv * planes[layer * n..(layer + 1) * n].iter().sum::<f64>();
                }
                bt.push(-acc);
            }
            y = schur.solve(&bt);
            for (w, &yj) in self.w_planes.iter().zip(&y) {
                for (p, &wv) in planes.iter_mut().zip(w.iter()) {
                    *p -= yj * wv;
                }
            }
        }
        for (s, &u) in state[..nl * n].iter_mut().zip(planes.iter()) {
            *s = ambient + u;
        }
        for o in &self.params.oil {
            state[o.node] = ambient + o.g / (o.g + o.g_amb) * planes[o.cell];
        }
        let mut heat_out = 0.0;
        for (cool, &yj) in self.params.coolants.iter().zip(&y) {
            state[cool.node] = ambient + yj;
            heat_out += cool.g_amb * yj;
        }
        for o in &self.params.oil {
            heat_out += o.g_amb * (state[o.node] - ambient);
        }
        let p_in: f64 = si_cell_power.iter().sum();
        (p_in - heat_out).abs() / p_in.abs().max(f64::MIN_POSITIVE)
    }

    /// Convenience wrapper that allocates scratch per call (tests, oracles).
    pub fn solve(&self, si_cell_power: &[f64], ambient: f64, state: &mut [f64]) -> f64 {
        let mut scratch = self.scratch();
        self.solve_into(si_cell_power, ambient, state, &mut scratch)
    }
}

// ---------------------------------------------------------------------------
// Spectral transient stepping
// ---------------------------------------------------------------------------

/// One per-cell oil film kept as an explicit pendant plane in every lateral
/// mode. The steady path folds oil onto the cell diagonal as
/// `g·g_amb/(g+g_amb)`, which is only exact when the oil node carries no
/// stored heat; the transient path keeps the plane and its capacitance.
#[derive(Debug, Clone)]
struct OilPlane {
    /// Conduction layer the plane loads.
    layer: usize,
    /// Uniform cell↔oil conductance, W/K.
    g: f64,
    /// Uniform oil↔ambient conductance, W/K.
    g_amb: f64,
    /// Uniform per-cell oil capacitance, J/K.
    cap: f64,
    /// Oil node index per in-plane cell, row-major.
    nodes: Vec<usize>,
}

/// One lumped coolant mass. A coolant couples uniformly to every cell of a
/// layer, so in the DCT basis it talks only to the DC mode; the symmetrized
/// variable `v = √n·u_c` keeps the DC block symmetric with mass `C_c`.
#[derive(Debug, Clone)]
struct CoolantSlot {
    /// Index in the full state vector.
    node: usize,
    /// Coolant↔ambient conductance, W/K.
    g_amb: f64,
    /// Lumped capacitance, J/K.
    cap: f64,
    /// Per-layer uniform cell↔coolant conductance, W/K per cell.
    couplings: Vec<(usize, f64)>,
}

/// Exact running energy accounting of a spectral transient trajectory,
/// integrated in closed form from the DC mode (plane sums and lumped nodes
/// are exactly the DC coordinates, so no quadrature error enters).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyLedger {
    /// `∫P dt` — joules delivered by the power trace.
    pub power_in_j: f64,
    /// `ΔE` — change in stored thermal energy `Σ C·(T − T_amb)`.
    pub stored_j: f64,
    /// `∫ Σ g_amb·(T − T_amb) dt` — joules returned to ambient.
    pub outflow_j: f64,
}

impl EnergyLedger {
    /// `|in − stored − out|` relative to the largest term.
    pub fn residual_rel(&self) -> f64 {
        let scale = self.power_in_j.abs().max(self.stored_j.abs()).max(self.outflow_j.abs());
        (self.power_in_j - self.stored_j - self.outflow_j).abs() / scale.max(f64::MIN_POSITIVE)
    }
}

/// Modal state of one transient trajectory plus its running energy ledger.
#[derive(Debug, Clone)]
pub struct TransientState {
    /// Eigen-coordinates, mode-major with a uniform slot stride.
    z: Vec<f64>,
    ledger: EnergyLedger,
}

impl TransientState {
    /// The exact energy ledger accumulated since construction (or the last
    /// [`reset_ledger`](Self::reset_ledger)).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Zeroes the ledger without touching the thermal state.
    pub fn reset_ledger(&mut self) {
        self.ledger = EnergyLedger::default();
    }
}

/// Reusable buffers for [`SpectralTransient`] stepping: nothing is allocated
/// on the per-step or per-frame path once this exists.
#[derive(Debug)]
pub struct TransientScratch {
    /// One spatial plane (`rows·cols`).
    plane: Vec<f64>,
    /// One spectral plane.
    spec: Vec<f64>,
    /// Previous DC-mode coordinates, for the energy ledger.
    dc: Vec<f64>,
    dct: Dct2Scratch,
}

/// Deterministic cyclic Jacobi eigendecomposition of the symmetric
/// `dim×dim` matrix in `a` (row-major; clobbered). Writes the orthogonal
/// eigenvector matrix into `q` (columns are eigenvectors) and the
/// eigenvalues into `lam`, in slot order. The sweep order is fixed and
/// data-independent, so the decomposition is bitwise reproducible.
fn jacobi_eigen(a: &mut [f64], q: &mut [f64], lam: &mut [f64], dim: usize) {
    q[..dim * dim].fill(0.0);
    for i in 0..dim {
        q[i * dim + i] = 1.0;
    }
    if dim > 1 {
        let frob: f64 = a[..dim * dim].iter().map(|v| v * v).sum();
        let stop = frob * 1e-30;
        for _sweep in 0..64 {
            let mut off = 0.0;
            for p in 0..dim {
                for r in p + 1..dim {
                    off += a[p * dim + r] * a[p * dim + r];
                }
            }
            if 2.0 * off <= stop {
                break;
            }
            for p in 0..dim - 1 {
                for r in p + 1..dim {
                    let apr = a[p * dim + r];
                    if apr == 0.0 {
                        continue;
                    }
                    let theta = (a[r * dim + r] - a[p * dim + p]) / (2.0 * apr);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..dim {
                        let akp = a[k * dim + p];
                        let akr = a[k * dim + r];
                        a[k * dim + p] = c * akp - s * akr;
                        a[k * dim + r] = s * akp + c * akr;
                    }
                    for k in 0..dim {
                        let apk = a[p * dim + k];
                        let ark = a[r * dim + k];
                        a[p * dim + k] = c * apk - s * ark;
                        a[r * dim + k] = s * apk + c * ark;
                    }
                    for k in 0..dim {
                        let qkp = q[k * dim + p];
                        let qkr = q[k * dim + r];
                        q[k * dim + p] = c * qkp - s * qkr;
                        q[k * dim + r] = s * qkp + c * qkr;
                    }
                }
            }
        }
    }
    for i in 0..dim {
        lam[i] = a[i * dim + i];
    }
}

/// Spectral transient stepper: the exact matrix exponential of a qualifying
/// circuit, advanced one `dt` at a time.
///
/// # Method
///
/// The same DCT-II basis that diagonalizes the steady operator turns the
/// transient system `M u̇ = −K u + p` into independent per-mode chains of
/// length `L` = layers + oil planes (+ coolant slots in the DC mode, which
/// are the only mode a uniformly coupled lumped node talks to). Each chain
/// is symmetrized with `B = M^{−1/2} K M^{−1/2}` and eigendecomposed once
/// at build time, after which one step is the exact update
/// `z_i ← e^{−λ_i dt}·z_i + φ_i(dt)·q_i` with `φ = (1 − e^{−λ dt})/λ` —
/// no time-discretization error for piecewise-constant power. One step
/// costs one forward 2-D DCT of the power map plus an O(L) per-mode
/// recurrence; one emitted frame costs one inverse DCT. All hot-path work
/// is pool-partitioned over the fixed deterministic chunks, so results are
/// bitwise identical across thread counts.
///
/// # Qualification
///
/// On top of [`SpectralParams::from_circuit`], the transient path needs
/// laterally uniform *capacitances*: per-layer uniform cell heat capacity,
/// per-layer uniform oil `(g, g_amb, c)` individually (the steady fold
/// only needs the combined film conductance uniform), and full oil plane
/// coverage. [`Ineligible`] names the first violation.
#[derive(Debug)]
pub struct SpectralTransient {
    params: SpectralParams,
    dt: f64,
    dct: Dct2,
    /// Slot stride per mode: layers + oil planes + coolant slots. Coolant
    /// slots are live only in the DC mode; elsewhere their table entries
    /// decay nothing and inject nothing.
    stride: usize,
    /// Live slots in every non-DC mode (layers + oil planes).
    base: usize,
    oil_planes: Vec<OilPlane>,
    coolants: Vec<CoolantSlot>,
    /// Square roots / reciprocal square roots of the per-slot masses.
    sqrt_m: Vec<f64>,
    inv_sqrt_m: Vec<f64>,
    /// `e^{−λ_i dt}` per (mode, slot), `n·stride`.
    exp_tab: Vec<f64>,
    /// `φ_i(dt)·Q_m[si,i]/√c_si` per (mode, slot): power-injection gain.
    gain_tab: Vec<f64>,
    /// `Q_m[si,i]/√c_si` per (mode, slot): silicon-plane emission row
    /// (identical to the injection row because the modes are symmetrized).
    out_si: Vec<f64>,
    /// Per-mode eigenvector blocks, `stride²` apiece (`dim²` used).
    q_all: Vec<f64>,
    /// DC-mode `φ_i(dt)` and `(dt − φ_i)/λ_i`, for the exact ledger.
    phi_dc: Vec<f64>,
    intw_dc: Vec<f64>,
    /// Stored-energy and ambient-outflow weights in DC eigen coordinates.
    e_store: Vec<f64>,
    e_out: Vec<f64>,
    build_seconds: f64,
}

impl SpectralTransient {
    /// Builds the exact stepper for `circuit` at step `dt`, or explains why
    /// the circuit does not qualify.
    ///
    /// # Errors
    ///
    /// [`Ineligible`] naming the disqualifying layer or structure.
    ///
    /// # Panics
    ///
    /// Panics unless `dt` is positive and finite.
    pub fn new(circuit: &ThermalCircuit, dt: f64) -> Result<Self, Ineligible> {
        assert!(dt > 0.0 && dt.is_finite(), "time step must be positive");
        let start = Instant::now();
        let params = SpectralParams::from_circuit(circuit)?;
        let n = params.cells();
        let nl = params.nl;
        let names = circuit.layer_names();
        let layer_name =
            |l: usize| names.get(l).map(String::as_str).unwrap_or("<unknown>").to_owned();
        let cap = circuit.capacitance();

        let mut layer_cap = Vec::with_capacity(nl);
        for l in 0..nl {
            let plane = &cap[l * n..(l + 1) * n];
            let first = plane[0];
            if first <= 0.0 || plane.iter().any(|&v| !close_rel(v, first)) {
                return Err(bail(format!(
                    "cell capacitance of layer `{}` varies across the grid; the spectral \
                     transient path needs laterally uniform heat capacity",
                    layer_name(l)
                )));
            }
            layer_cap.push(first);
        }

        // Oil films: exactly one full uniform pendant plane per loaded
        // layer, with g, g_amb and capacitance each uniform on their own.
        let mut by_layer: HashMap<usize, Vec<&OilNode>> = HashMap::new();
        for o in &params.oil {
            by_layer.entry(o.cell / n).or_default().push(o);
        }
        let mut oil_layers: Vec<usize> = by_layer.keys().copied().collect();
        oil_layers.sort_unstable();
        let mut oil_planes = Vec::with_capacity(oil_layers.len());
        for layer in oil_layers {
            let group = &by_layer[&layer];
            let varies = |what: &str| {
                bail(format!(
                    "oil film {what} over layer `{}` varies per cell; the spectral \
                     transient path needs each film property uniform on its own",
                    layer_name(layer)
                ))
            };
            let mut nodes = vec![usize::MAX; n];
            let first = group[0];
            let (g, g_amb, c) = (first.g, first.g_amb, cap[first.node]);
            for o in group {
                let idx = o.cell - layer * n;
                if nodes[idx] != usize::MAX {
                    return Err(bail(format!(
                        "two oil films load one cell of layer `{}`: not a single plane",
                        layer_name(layer)
                    )));
                }
                nodes[idx] = o.node;
                if !close_rel(o.g, g) {
                    return Err(varies("conductance"));
                }
                if !close_rel(o.g_amb, g_amb) {
                    return Err(varies("ambient conductance"));
                }
                if !close_rel(cap[o.node], c) {
                    return Err(varies("capacitance"));
                }
            }
            if nodes.contains(&usize::MAX) {
                return Err(bail(format!(
                    "oil film covers only part of layer `{}`; the spectral transient \
                     path needs a full uniform plane",
                    layer_name(layer)
                )));
            }
            if c <= 0.0 {
                return Err(bail(format!(
                    "oil film over layer `{}` has non-positive capacitance",
                    layer_name(layer)
                )));
            }
            oil_planes.push(OilPlane { layer, g, g_amb, cap: c, nodes });
        }

        let coolants: Vec<CoolantSlot> = params
            .coolants
            .iter()
            .map(|c| {
                if cap[c.node] <= 0.0 {
                    return Err(bail("coolant node with non-positive capacitance"));
                }
                Ok(CoolantSlot {
                    node: c.node,
                    g_amb: c.g_amb,
                    cap: cap[c.node],
                    couplings: c.couplings.clone(),
                })
            })
            .collect::<Result<_, _>>()?;

        let base = nl + oil_planes.len();
        let stride = base + coolants.len();
        let mut mass = vec![0.0; stride];
        mass[..nl].copy_from_slice(&layer_cap);
        for (p, plane) in oil_planes.iter().enumerate() {
            mass[nl + p] = plane.cap;
        }
        for (j, cool) in coolants.iter().enumerate() {
            mass[base + j] = cool.cap;
        }
        let sqrt_m: Vec<f64> = mass.iter().map(|m| m.sqrt()).collect();
        let inv_sqrt_m: Vec<f64> = sqrt_m.iter().map(|m| 1.0 / m).collect();

        // Mode-independent raw layer diagonal: vertical couplings plus oil
        // and coolant loads. This is the *unfolded* diagonal — diag_extra's
        // steady oil fold would be wrong here, the oil slots are explicit.
        let mut diag0 = vec![0.0; nl];
        for (l, d) in diag0.iter_mut().enumerate() {
            if l > 0 {
                *d += params.vert[l - 1];
            }
            if l + 1 < nl {
                *d += params.vert[l];
            }
        }
        for plane in &oil_planes {
            diag0[plane.layer] += plane.g;
        }
        for cool in &coolants {
            for &(l, gv) in &cool.couplings {
                diag0[l] += gv;
            }
        }

        let (rows, cols) = (params.rows, params.cols);
        let lambda = |k: usize, dim: usize| {
            let s = (std::f64::consts::PI * k as f64 / (2.0 * dim as f64)).sin();
            4.0 * s * s
        };
        let nn = n as f64;
        let si = params.si_layer;
        let mut exp_tab = vec![1.0; n * stride];
        let mut gain_tab = vec![0.0; n * stride];
        let mut out_si = vec![0.0; n * stride];
        let mut q_all = vec![0.0; n * stride * stride];
        let mut phi_dc = vec![0.0; stride];
        let mut intw_dc = vec![0.0; stride];
        let mut k_mat = vec![0.0; stride * stride];
        let mut lam = vec![0.0; stride];
        for kc in 0..cols {
            let lx = lambda(kc, cols);
            for kr in 0..rows {
                let m = kc * rows + kr;
                let ly = lambda(kr, rows);
                let dim = if m == 0 { stride } else { base };
                k_mat[..dim * dim].fill(0.0);
                for l in 0..nl {
                    k_mat[l * dim + l] = params.gx[l] * lx + params.gy[l] * ly + diag0[l];
                    if l + 1 < nl {
                        k_mat[l * dim + l + 1] = -params.vert[l];
                        k_mat[(l + 1) * dim + l] = -params.vert[l];
                    }
                }
                for (p, plane) in oil_planes.iter().enumerate() {
                    let s = nl + p;
                    k_mat[s * dim + s] = plane.g + plane.g_amb;
                    k_mat[s * dim + plane.layer] = -plane.g;
                    k_mat[plane.layer * dim + s] = -plane.g;
                }
                if m == 0 {
                    for (j, cool) in coolants.iter().enumerate() {
                        let t = base + j;
                        let mut d = cool.g_amb;
                        for &(l, gv) in &cool.couplings {
                            d += gv * nn;
                            k_mat[t * dim + l] = -(gv * nn.sqrt());
                            k_mat[l * dim + t] = k_mat[t * dim + l];
                        }
                        k_mat[t * dim + t] = d;
                    }
                }
                // Symmetrize with the masses: B = M^{−1/2} K M^{−1/2}.
                for r in 0..dim {
                    for c in 0..dim {
                        k_mat[r * dim + c] *= inv_sqrt_m[r] * inv_sqrt_m[c];
                    }
                }
                let qm = &mut q_all[m * stride * stride..][..dim * dim];
                jacobi_eigen(&mut k_mat[..dim * dim], qm, &mut lam[..dim], dim);
                for i in 0..dim {
                    let l = lam[i].max(0.0);
                    let x = l * dt;
                    let phi = if l > 0.0 { -(-x).exp_m1() / l } else { dt };
                    let o = qm[si * dim + i] * inv_sqrt_m[si];
                    exp_tab[m * stride + i] = (-x).exp();
                    out_si[m * stride + i] = o;
                    gain_tab[m * stride + i] = phi * o;
                    if m == 0 {
                        phi_dc[i] = phi;
                        // (dt − φ)/λ, by series when λ·dt is cancellation-prone.
                        intw_dc[i] = if x > 1e-4 {
                            (dt - phi) / l
                        } else {
                            dt * dt * 0.5 * (1.0 - x / 3.0 + x * x / 12.0)
                        };
                    }
                }
            }
        }

        // Energy ledger weights, folded into DC eigen coordinates: stored
        // energy and ambient outflow are linear in the DC plane sums (and
        // lumped temperatures), i.e. fixed vectors dotted with z_DC.
        let mut w_store = vec![0.0; stride];
        let mut w_out = vec![0.0; stride];
        w_store[..nl].copy_from_slice(&layer_cap);
        for (p, plane) in oil_planes.iter().enumerate() {
            w_store[nl + p] = plane.cap;
            w_out[nl + p] = plane.g_amb;
        }
        for (j, cool) in coolants.iter().enumerate() {
            w_store[base + j] = cool.cap / nn.sqrt();
            w_out[base + j] = cool.g_amb / nn.sqrt();
        }
        let qdc = &q_all[..stride * stride];
        let mut e_store = vec![0.0; stride];
        let mut e_out = vec![0.0; stride];
        for i in 0..stride {
            for s in 0..stride {
                e_store[i] += w_store[s] * inv_sqrt_m[s] * qdc[s * stride + i];
                e_out[i] += w_out[s] * inv_sqrt_m[s] * qdc[s * stride + i];
            }
        }

        let dct = Dct2::new(rows, cols);
        Ok(Self {
            params,
            dt,
            dct,
            stride,
            base,
            oil_planes,
            coolants,
            sqrt_m,
            inv_sqrt_m,
            exp_tab,
            gain_tab,
            out_si,
            q_all,
            phi_dc,
            intw_dc,
            e_store,
            e_out,
            build_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// The step length this stepper was factored for.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Parameters this stepper was built from.
    pub fn params(&self) -> &SpectralParams {
        &self.params
    }

    /// Wall-clock seconds the precomputation took.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Allocates stepping scratch sized for this stepper.
    pub fn scratch(&self) -> TransientScratch {
        let n = self.params.cells();
        TransientScratch {
            plane: vec![0.0; n],
            spec: vec![0.0; n],
            dc: vec![0.0; self.stride],
            dct: self.dct.scratch(),
        }
    }

    /// All-ambient initial state with a zeroed ledger.
    pub fn state(&self) -> TransientState {
        TransientState {
            z: vec![0.0; self.params.cells() * self.stride],
            ledger: EnergyLedger::default(),
        }
    }

    /// Loads an arbitrary full node state (kelvin) into modal coordinates.
    /// Not a hot path: allocates freely.
    ///
    /// # Panics
    ///
    /// Panics unless `state` covers the source circuit's node count.
    pub fn state_from(
        &self,
        state: &[f64],
        ambient: f64,
        scratch: &mut TransientScratch,
    ) -> TransientState {
        assert_eq!(state.len(), self.params.node_count, "state must cover every node");
        let n = self.params.cells();
        let nl = self.params.nl;
        let stride = self.stride;
        // w = M^{1/2}·y, spectral, slot-plane-major: w[s·n + m].
        let mut w = vec![0.0; n * self.base];
        for l in 0..nl {
            for (dst, &t) in scratch.plane.iter_mut().zip(&state[l * n..(l + 1) * n]) {
                *dst = t - ambient;
            }
            self.dct.forward_into(&mut scratch.plane, &mut scratch.spec, &mut scratch.dct);
            for (dst, &v) in w[l * n..(l + 1) * n].iter_mut().zip(scratch.spec.iter()) {
                *dst = self.sqrt_m[l] * v;
            }
        }
        for (p, plane) in self.oil_planes.iter().enumerate() {
            let s = nl + p;
            for (dst, &node) in scratch.plane.iter_mut().zip(&plane.nodes) {
                *dst = state[node] - ambient;
            }
            self.dct.forward_into(&mut scratch.plane, &mut scratch.spec, &mut scratch.dct);
            for (dst, &v) in w[s * n..(s + 1) * n].iter_mut().zip(scratch.spec.iter()) {
                *dst = self.sqrt_m[s] * v;
            }
        }
        let mut ts = self.state();
        for m in 0..n {
            let dim = if m == 0 { stride } else { self.base };
            let qm = &self.q_all[m * stride * stride..][..dim * dim];
            let zm = &mut ts.z[m * stride..][..dim];
            for (i, zi) in zm.iter_mut().enumerate() {
                let mut acc = 0.0;
                for s in 0..self.base {
                    acc += qm[s * dim + i] * w[s * n + m];
                }
                *zi = acc;
            }
        }
        // Coolant slots enter the DC mode only: w = √C_c·(√n·u_c).
        if !self.coolants.is_empty() {
            let dim = stride;
            let qm = &self.q_all[..dim * dim];
            for (j, cool) in self.coolants.iter().enumerate() {
                let s = self.base + j;
                let wv = self.sqrt_m[s] * (state[cool.node] - ambient) * (n as f64).sqrt();
                for (i, zi) in ts.z[..dim].iter_mut().enumerate() {
                    *zi += qm[s * dim + i] * wv;
                }
            }
        }
        ts
    }

    /// Writes the modal state back into a full node vector (kelvin).
    /// Not a hot path: allocates freely.
    ///
    /// # Panics
    ///
    /// Panics unless `state` covers the source circuit's node count.
    pub fn store_into(
        &self,
        ts: &TransientState,
        ambient: f64,
        state: &mut [f64],
        scratch: &mut TransientScratch,
    ) {
        assert_eq!(state.len(), self.params.node_count, "state must cover every node");
        let n = self.params.cells();
        let nl = self.params.nl;
        let stride = self.stride;
        let mut y = vec![0.0; n * self.base];
        for m in 0..n {
            let dim = if m == 0 { stride } else { self.base };
            let qm = &self.q_all[m * stride * stride..][..dim * dim];
            let zm = &ts.z[m * stride..][..dim];
            for s in 0..self.base {
                let mut acc = 0.0;
                for (i, &zi) in zm.iter().enumerate() {
                    acc += qm[s * dim + i] * zi;
                }
                y[s * n + m] = acc * self.inv_sqrt_m[s];
            }
        }
        for l in 0..nl {
            scratch.spec.copy_from_slice(&y[l * n..(l + 1) * n]);
            self.dct.inverse_into(&mut scratch.spec, &mut scratch.plane, &mut scratch.dct);
            for (dst, &u) in state[l * n..(l + 1) * n].iter_mut().zip(scratch.plane.iter()) {
                *dst = ambient + u;
            }
        }
        for (p, plane) in self.oil_planes.iter().enumerate() {
            let s = nl + p;
            scratch.spec.copy_from_slice(&y[s * n..(s + 1) * n]);
            self.dct.inverse_into(&mut scratch.spec, &mut scratch.plane, &mut scratch.dct);
            for (&node, &u) in plane.nodes.iter().zip(scratch.plane.iter()) {
                state[node] = ambient + u;
            }
        }
        if !self.coolants.is_empty() {
            let dim = stride;
            let qm = &self.q_all[..dim * dim];
            for (j, cool) in self.coolants.iter().enumerate() {
                let s = self.base + j;
                let mut acc = 0.0;
                for (i, &zi) in ts.z[..dim].iter().enumerate() {
                    acc += qm[s * dim + i] * zi;
                }
                state[cool.node] = ambient + acc * self.inv_sqrt_m[s] / (n as f64).sqrt();
            }
        }
    }

    /// Advances one `dt` step under the given silicon power map (W/cell).
    ///
    /// # Panics
    ///
    /// Panics unless `si_cell_power` covers the grid.
    pub fn step(
        &self,
        ts: &mut TransientState,
        si_cell_power: &[f64],
        scratch: &mut TransientScratch,
    ) {
        self.transform_power(si_cell_power, scratch);
        let TransientScratch { spec, dc, .. } = scratch;
        self.advance_modes(ts, spec, 1, dc);
    }

    /// Advances `steps` equal steps under one constant power map, paying the
    /// forward transform once.
    ///
    /// # Panics
    ///
    /// Panics unless `si_cell_power` covers the grid.
    pub fn advance(
        &self,
        ts: &mut TransientState,
        si_cell_power: &[f64],
        steps: usize,
        scratch: &mut TransientScratch,
    ) {
        self.transform_power(si_cell_power, scratch);
        let TransientScratch { spec, dc, .. } = scratch;
        self.advance_modes(ts, spec, steps, dc);
    }

    /// Forward DCT of the power map into `scratch.spec`.
    fn transform_power(&self, si_cell_power: &[f64], scratch: &mut TransientScratch) {
        let n = self.params.cells();
        assert_eq!(si_cell_power.len(), n, "power map must cover the grid");
        if si_cell_power.iter().all(|&v| v == 0.0) {
            scratch.spec.fill(0.0);
        } else {
            scratch.plane.copy_from_slice(si_cell_power);
            self.dct.forward_into(&mut scratch.plane, &mut scratch.spec, &mut scratch.dct);
        }
    }

    /// The exact modal update, `steps` times under one spectral power map,
    /// with the per-step DC-mode energy ledger.
    fn advance_modes(
        &self,
        ts: &mut TransientState,
        spec: &[f64],
        steps: usize,
        dc_old: &mut [f64],
    ) {
        let stride = self.stride;
        let pool = crate::pool::current();
        let (exp_t, gain_t) = (&self.exp_tab, &self.gain_tab);
        for _ in 0..steps {
            dc_old.copy_from_slice(&ts.z[..stride]);
            crate::pool::fill_chunks(&pool, &mut ts.z, |_, start, chunk| {
                for (k, zv) in chunk.iter_mut().enumerate() {
                    let idx = start + k;
                    *zv = exp_t[idx] * *zv + gain_t[idx] * spec[idx / stride];
                }
            });
            // Exact step integrals from the DC mode: ∫z_i dt over the step
            // is z⁰_i·φ_i + q_i·(dt − φ_i)/λ_i for source q_i.
            let p0 = spec[0];
            let (mut stored, mut out) = (0.0, 0.0);
            for (i, &z_old) in dc_old.iter().enumerate().take(stride) {
                let q_i = self.out_si[i] * p0;
                let int_z = z_old * self.phi_dc[i] + q_i * self.intw_dc[i];
                out += self.e_out[i] * int_z;
                stored += self.e_store[i] * (ts.z[i] - z_old);
            }
            ts.ledger.power_in_j += p0 * self.dt;
            ts.ledger.stored_j += stored;
            ts.ledger.outflow_j += out;
        }
    }

    /// Emits the silicon-plane temperature frame (kelvin) for the current
    /// state: one spectral projection plus one inverse DCT.
    ///
    /// # Panics
    ///
    /// Panics unless `frame` covers the grid.
    pub fn emit_si(
        &self,
        ts: &TransientState,
        ambient: f64,
        frame: &mut [f64],
        scratch: &mut TransientScratch,
    ) {
        let n = self.params.cells();
        assert_eq!(frame.len(), n, "frame must cover the grid");
        let stride = self.stride;
        let pool = crate::pool::current();
        let (z, out) = (&ts.z, &self.out_si);
        crate::pool::fill_chunks(&pool, &mut scratch.spec, |_, start, chunk| {
            for (k, dst) in chunk.iter_mut().enumerate() {
                let m = start + k;
                let mut acc = 0.0;
                for i in 0..stride {
                    acc += out[m * stride + i] * z[m * stride + i];
                }
                *dst = acc;
            }
        });
        self.dct.inverse_into(&mut scratch.spec, frame, &mut scratch.dct);
        for t in frame.iter_mut() {
            *t += ambient;
        }
    }
}

struct LruEntry {
    response: Arc<SpectralResponse>,
    last_used: u64,
}

struct LruState {
    map: HashMap<u64, LruEntry>,
    tick: u64,
}

/// Bounded LRU of precomputed spectral responses, keyed by
/// [`SpectralParams::digest`]. Lives beside [`crate::circuit::CircuitCache`]
/// with the same discipline: builds run outside the lock, a lost race keeps
/// the first insert, and hit/miss/eviction counters feed the serve stats.
pub struct ResponseCache {
    inner: Mutex<LruState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResponseCache {
    /// An empty cache holding at most `capacity` responses.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            inner: Mutex::new(LruState { map: HashMap::new(), tick: 0 }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide shared cache.
    pub fn process() -> &'static ResponseCache {
        static PROCESS: OnceLock<ResponseCache> = OnceLock::new();
        PROCESS.get_or_init(|| ResponseCache::new(RESPONSE_CACHE_CAPACITY))
    }

    /// Returns the cached response for `params`, building and inserting on
    /// a miss. The boolean reports a cache hit.
    pub fn get_or_build(&self, params: SpectralParams) -> (Arc<SpectralResponse>, bool) {
        let key = params.digest();
        if let Some(hit) = self.touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit, true);
        }
        let built = Arc::new(SpectralResponse::build(params));
        let mut state = self.inner.lock().expect("response cache poisoned");
        let stamp = state.tick;
        if let Some(entry) = state.map.get_mut(&key) {
            entry.last_used = stamp;
            let existing = entry.response.clone();
            state.tick += 1;
            drop(state);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (existing, true);
        }
        if state.map.len() >= self.capacity {
            let lru = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map at capacity");
            state.map.remove(&lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let stamp = state.tick;
        state.tick += 1;
        state.map.insert(key, LruEntry { response: built.clone(), last_used: stamp });
        drop(state);
        self.misses.fetch_add(1, Ordering::Relaxed);
        (built, false)
    }

    fn touch(&self, key: u64) -> Option<Arc<SpectralResponse>> {
        let mut state = self.inner.lock().expect("response cache poisoned");
        let tick = state.tick;
        let entry = state.map.get_mut(&key)?;
        entry.last_used = tick;
        let response = entry.response.clone();
        state.tick += 1;
        Some(response)
    }

    /// Hit/miss/eviction counters and occupancy (shape shared with the
    /// circuit cache so both render identically in `stats`).
    pub fn counters(&self) -> CacheCounters {
        let len = self.inner.lock().expect("response cache poisoned").map.len();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
        }
    }

    /// Drops every cached response (counters keep accumulating).
    pub fn clear(&self) {
        self.inner.lock().expect("response cache poisoned").map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{build_circuit_from_stack, DieGeometry};
    use crate::materials::{INTERFACE, SILICON};
    use crate::package::{AirSinkPackage, OilSiliconPackage, Package};
    use crate::solve::{solve_steady_with, SolverChoice};
    use crate::stack::{Boundary, Layer, LayerStack};
    use hotiron_floorplan::{library, GridMapping};

    const AMBIENT: f64 = 318.15;

    fn die() -> DieGeometry {
        let plan = library::ev6();
        DieGeometry { width: plan.width(), height: plan.height(), thickness: 0.5e-3 }
    }

    fn bare_die_stack() -> LayerStack {
        LayerStack::new(vec![Layer::new("silicon", SILICON, die().thickness)], 0)
            .with_top(Boundary::Lumped { r_total: 2.0, c_total: 30.0 })
    }

    fn ramp_power(n: usize, total: f64) -> Vec<f64> {
        let weight: f64 = (0..n).map(|i| 1.0 + i as f64).sum();
        (0..n).map(|i| total * (1.0 + i as f64) / weight).collect()
    }

    fn spectral_vs_direct(stack: &LayerStack, grid: (usize, usize), tol: f64) {
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, grid.0, grid.1);
        let circuit = build_circuit_from_stack(&mapping, die(), stack).expect("circuit");
        let params = SpectralParams::from_circuit(&circuit).expect("eligible");
        let resp = SpectralResponse::build(params);
        let p = ramp_power(grid.0 * grid.1, 40.0);
        let mut spectral = vec![0.0; circuit.node_count()];
        let energy_rel = resp.solve(&p, AMBIENT, &mut spectral);
        assert!(energy_rel < 1e-10, "energy residual {energy_rel}");
        let mut direct = vec![AMBIENT; circuit.node_count()];
        solve_steady_with(&circuit, &p, AMBIENT, &mut direct, SolverChoice::Direct)
            .expect("direct solve");
        let worst = spectral.iter().zip(&direct).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(worst <= tol, "spectral vs direct diverge by {worst} K");
    }

    #[test]
    fn bare_die_matches_direct() {
        spectral_vs_direct(&bare_die_stack(), (16, 16), 1e-9);
    }

    #[test]
    fn non_square_grid_matches_direct() {
        spectral_vs_direct(&bare_die_stack(), (8, 32), 1e-9);
    }

    #[test]
    fn multi_layer_stack_matches_direct() {
        // Two full-size conduction layers: exercises the cross-layer
        // tridiagonal path (no plates, so still shift-invariant).
        let d = die();
        let stack = LayerStack::new(
            vec![
                Layer::new("silicon", SILICON, d.thickness),
                Layer::new("interface", INTERFACE, 2.0e-5),
            ],
            0,
        )
        .with_top(Boundary::Lumped { r_total: 1.0, c_total: 40.0 });
        spectral_vs_direct(&stack, (16, 16), 1e-9);
    }

    #[test]
    fn uniform_oil_package_matches_direct() {
        // Global-h oil: per-cell oil nodes eliminated exactly and
        // back-substituted into the full state.
        let stack = Package::OilSilicon(OilSiliconPackage::paper_default().with_uniform_h())
            .to_stack(die())
            .expect("stack");
        spectral_vs_direct(&stack, (16, 16), 1e-9);
    }

    #[test]
    fn plates_are_ineligible_and_named() {
        let stack =
            Package::AirSink(AirSinkPackage::paper_default()).to_stack(die()).expect("stack");
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, 16, 16);
        let circuit = build_circuit_from_stack(&mapping, die(), &stack).expect("circuit");
        let err = SpectralParams::from_circuit(&circuit).expect_err("plates disqualify");
        assert!(err.reason.contains("oversized plate"), "got: {}", err.reason);
    }

    #[test]
    fn local_h_oil_is_ineligible_and_named() {
        let stack =
            Package::OilSilicon(OilSiliconPackage::paper_default()).to_stack(die()).expect("stack");
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, 16, 16);
        let circuit = build_circuit_from_stack(&mapping, die(), &stack).expect("circuit");
        let err = SpectralParams::from_circuit(&circuit).expect_err("local h disqualifies");
        assert!(
            err.reason.contains("silicon") && err.reason.contains("varies per cell"),
            "got: {}",
            err.reason
        );
    }

    #[test]
    fn non_pow2_grid_is_ineligible() {
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, 12, 12);
        let circuit =
            build_circuit_from_stack(&mapping, die(), &bare_die_stack()).expect("circuit");
        let err = SpectralParams::from_circuit(&circuit).expect_err("non-pow2 disqualifies");
        assert!(err.reason.contains("power of two"), "got: {}", err.reason);
    }

    #[test]
    fn response_cache_hits_and_evicts() {
        let cache = ResponseCache::new(2);
        let plan = library::ev6();
        let build = |grid: usize| {
            let mapping = GridMapping::new(&plan, grid, grid);
            let circuit =
                build_circuit_from_stack(&mapping, die(), &bare_die_stack()).expect("circuit");
            SpectralParams::from_circuit(&circuit).expect("eligible")
        };
        let (_, hit) = cache.get_or_build(build(8));
        assert!(!hit);
        let (_, hit) = cache.get_or_build(build(8));
        assert!(hit, "same params must hit");
        cache.get_or_build(build(16));
        cache.get_or_build(build(32)); // evicts the LRU entry (grid 8)
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions, c.len), (1, 3, 1, 2));
    }

    /// BE Richardson reference: steps backward Euler at `dt/2` and `dt/4`
    /// over `t = dt·steps` and extrapolates, leaving an O(dt²) remainder.
    fn richardson_be(
        circuit: &crate::circuit::ThermalCircuit,
        power: &[f64],
        dt: f64,
        steps: usize,
    ) -> Vec<f64> {
        let be_run = |h: f64, k: usize| {
            let be = crate::solve::BackwardEuler::new(circuit, h);
            let mut state = vec![AMBIENT; circuit.node_count()];
            for _ in 0..k {
                be.step(&mut state, power, AMBIENT).expect("BE step");
            }
            state
        };
        let half = be_run(dt / 2.0, steps * 2);
        let quarter = be_run(dt / 4.0, steps * 4);
        quarter.iter().zip(&half).map(|(&f, &c)| 2.0 * f - c).collect()
    }

    fn transient_vs_richardson(stack: &LayerStack, grid: usize, tol: f64) {
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, grid, grid);
        let circuit = build_circuit_from_stack(&mapping, die(), stack).expect("circuit");
        let (dt, steps) = (1e-3, 16);
        let stepper = SpectralTransient::new(&circuit, dt).expect("transient-eligible");
        let mut scratch = stepper.scratch();
        let mut ts = stepper.state();
        let p = ramp_power(grid * grid, 30.0);
        stepper.advance(&mut ts, &p, steps, &mut scratch);
        let mut state = vec![0.0; circuit.node_count()];
        stepper.store_into(&ts, AMBIENT, &mut state, &mut scratch);
        let reference = richardson_be(&circuit, &p, dt, steps);
        let worst = state.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(worst <= tol, "spectral transient vs BE Richardson diverge by {worst} K");
        assert!(
            ts.ledger().residual_rel() < 1e-10,
            "ledger residual {}",
            ts.ledger().residual_rel()
        );
    }

    #[test]
    fn transient_matches_richardson_be_bare_die() {
        transient_vs_richardson(&bare_die_stack(), 8, 2e-4);
    }

    #[test]
    fn transient_matches_richardson_be_uniform_oil() {
        let stack = Package::OilSilicon(OilSiliconPackage::paper_default().with_uniform_film())
            .to_stack(die())
            .expect("stack");
        transient_vs_richardson(&stack, 8, 2e-4);
    }

    #[test]
    fn transient_warmup_is_monotone_and_reaches_steady() {
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, 16, 16);
        let circuit =
            build_circuit_from_stack(&mapping, die(), &bare_die_stack()).expect("circuit");
        let dt = 6.0;
        let stepper = SpectralTransient::new(&circuit, dt).expect("transient-eligible");
        let mut scratch = stepper.scratch();
        let mut ts = stepper.state();
        let p = ramp_power(256, 40.0);
        let mut prev = vec![AMBIENT; 256];
        let mut frame = vec![0.0; 256];
        // Exact exponential stepping reproduces the positive semigroup: a
        // warmup from ambient under constant power rises at every cell.
        for step in 0..200 {
            stepper.advance(&mut ts, &p, 1, &mut scratch);
            stepper.emit_si(&ts, AMBIENT, &mut frame, &mut scratch);
            for (i, (&now, &before)) in frame.iter().zip(&prev).enumerate() {
                assert!(
                    now >= before - 1e-9,
                    "cell {i} cooled during warmup at step {step}: {before} -> {now}"
                );
            }
            prev.copy_from_slice(&frame);
        }
        // 1200 s is ~20 lumped-boundary time constants: the movie tail
        // must sit on the steady spectral solution.
        let resp =
            SpectralResponse::build(SpectralParams::from_circuit(&circuit).expect("eligible"));
        let mut steady = vec![0.0; circuit.node_count()];
        resp.solve(&p, AMBIENT, &mut steady);
        let worst =
            frame.iter().zip(&steady[..256]).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(worst < 1e-6, "transient tail vs steady diverge by {worst} K");
        assert!(ts.ledger().residual_rel() < 1e-10, "ledger drifted");
    }

    #[test]
    fn transient_is_linear_in_power_trace() {
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, 16, 16);
        let circuit =
            build_circuit_from_stack(&mapping, die(), &bare_die_stack()).expect("circuit");
        let stepper = SpectralTransient::new(&circuit, 1e-2).expect("transient-eligible");
        let mut scratch = stepper.scratch();
        let pa = ramp_power(256, 20.0);
        let pb: Vec<f64> = (0..256).map(|i| if i == 101 { 12.0 } else { 0.125 }).collect();
        let mut run = |traces: &[&[f64]]| {
            let mut ts = stepper.state();
            let mut frame = vec![0.0; 256];
            for p in traces {
                stepper.step(&mut ts, p, &mut scratch);
            }
            stepper.emit_si(&ts, AMBIENT, &mut frame, &mut scratch);
            frame
        };
        let fa = run(&[&pa, &pa, &pb]);
        let fb = run(&[&pb, &pa, &pa]);
        // Same three steps with the power traces scaled and summed: the
        // modal update is linear, so frames must superpose.
        let mixed: Vec<Vec<f64>> = (0..3)
            .map(|s| {
                let (ta, tb): (&[f64], &[f64]) = match s {
                    0 => (&pa, &pb),
                    1 => (&pa, &pa),
                    _ => (&pb, &pa),
                };
                ta.iter().zip(tb).map(|(a, b)| 2.0 * a + 0.5 * b).collect()
            })
            .collect();
        let mut ts = stepper.state();
        let mut fc = vec![0.0; 256];
        for p in &mixed {
            stepper.step(&mut ts, p, &mut scratch);
        }
        stepper.emit_si(&ts, AMBIENT, &mut fc, &mut scratch);
        for i in 0..256 {
            let lin = AMBIENT + 2.0 * (fa[i] - AMBIENT) + 0.5 * (fb[i] - AMBIENT);
            assert!(
                (fc[i] - lin).abs() < 1e-9,
                "trace superposition broken at cell {i}: {} vs {lin}",
                fc[i]
            );
        }
    }

    #[test]
    fn be_error_halves_with_dt_against_exact_stepper() {
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, 8, 8);
        let circuit =
            build_circuit_from_stack(&mapping, die(), &bare_die_stack()).expect("circuit");
        let p = ramp_power(64, 25.0);
        let horizon = 0.032;
        // Exact reference at the horizon (any dt works; the update is the
        // true matrix exponential for constant power).
        let stepper = SpectralTransient::new(&circuit, horizon / 8.0).expect("eligible");
        let mut scratch = stepper.scratch();
        let mut ts = stepper.state();
        stepper.advance(&mut ts, &p, 8, &mut scratch);
        let mut exact = vec![0.0; circuit.node_count()];
        stepper.store_into(&ts, AMBIENT, &mut exact, &mut scratch);
        let be_err = |steps: usize| {
            let be = crate::solve::BackwardEuler::new(&circuit, horizon / steps as f64);
            let mut state = vec![AMBIENT; circuit.node_count()];
            for _ in 0..steps {
                be.step(&mut state, &p, AMBIENT).expect("BE step");
            }
            state.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
        };
        let (coarse, fine) = (be_err(16), be_err(32));
        let ratio = coarse / fine;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "backward Euler should converge at first order: errors {coarse} / {fine} = {ratio}"
        );
    }

    #[test]
    fn movie_is_bitwise_identical_across_thread_counts() {
        use crate::pool::{with_pool, WorkerPool};
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, 128, 128);
        let stack = Package::OilSilicon(OilSiliconPackage::paper_default().with_uniform_film())
            .to_stack(die())
            .expect("stack");
        let circuit = build_circuit_from_stack(&mapping, die(), &stack).expect("circuit");
        let n = 128 * 128;
        let p = ramp_power(n, 80.0);
        let movie = |threads: usize| {
            let pool = std::sync::Arc::new(WorkerPool::new(threads));
            with_pool(&pool, || {
                let stepper = SpectralTransient::new(&circuit, 1e-3).expect("eligible");
                let mut scratch = stepper.scratch();
                let mut ts = stepper.state();
                let mut frames = Vec::with_capacity(100);
                let mut frame = vec![0.0; n];
                for _ in 0..100 {
                    stepper.step(&mut ts, &p, &mut scratch);
                    stepper.emit_si(&ts, AMBIENT, &mut frame, &mut scratch);
                    frames.extend(frame.iter().map(|v| v.to_bits()));
                }
                (frames, *ts.ledger())
            })
        };
        let (serial, ledger_1) = movie(1);
        let (parallel, ledger_n) = movie(4);
        assert_eq!(serial, parallel, "100-frame movie must be bitwise thread-independent");
        assert_eq!(ledger_1, ledger_n, "energy ledger must be thread-independent");
        assert!(ledger_1.residual_rel() < 1e-10, "ledger residual {}", ledger_1.residual_rel());
    }

    #[test]
    fn state_roundtrip_preserves_full_state() {
        let stack = Package::OilSilicon(OilSiliconPackage::paper_default().with_uniform_film())
            .to_stack(die())
            .expect("stack");
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, 16, 16);
        let circuit = build_circuit_from_stack(&mapping, die(), &stack).expect("circuit");
        let stepper = SpectralTransient::new(&circuit, 1e-3).expect("eligible");
        let mut scratch = stepper.scratch();
        let mut ts = stepper.state();
        stepper.advance(&mut ts, &ramp_power(256, 30.0), 10, &mut scratch);
        let mut state = vec![0.0; circuit.node_count()];
        stepper.store_into(&ts, AMBIENT, &mut state, &mut scratch);
        let reloaded = stepper.state_from(&state, AMBIENT, &mut scratch);
        let mut state2 = vec![0.0; circuit.node_count()];
        stepper.store_into(&reloaded, AMBIENT, &mut state2, &mut scratch);
        let worst = state.iter().zip(&state2).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(worst < 1e-9, "load/store roundtrip drifts by {worst} K");
    }

    #[test]
    fn solve_is_linear_in_power() {
        let plan = library::ev6();
        let mapping = GridMapping::new(&plan, 16, 16);
        let circuit =
            build_circuit_from_stack(&mapping, die(), &bare_die_stack()).expect("circuit");
        let resp =
            SpectralResponse::build(SpectralParams::from_circuit(&circuit).expect("eligible"));
        let n = circuit.node_count();
        let pa = ramp_power(256, 20.0);
        let pb: Vec<f64> = (0..256).map(|i| if i == 37 { 15.0 } else { 0.25 }).collect();
        let combo: Vec<f64> = pa.iter().zip(&pb).map(|(a, b)| 2.0 * a + 0.5 * b).collect();
        let (mut ua, mut ub, mut uc) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        resp.solve(&pa, AMBIENT, &mut ua);
        resp.solve(&pb, AMBIENT, &mut ub);
        resp.solve(&combo, AMBIENT, &mut uc);
        for i in 0..n {
            let lin = AMBIENT + 2.0 * (ua[i] - AMBIENT) + 0.5 * (ub[i] - AMBIENT);
            assert!((uc[i] - lin).abs() < 1e-9, "superposition broken at node {i}");
        }
    }
}
