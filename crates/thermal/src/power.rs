//! Per-block power assignments.

use hotiron_floorplan::{Floorplan, FloorplanError};

/// Power dissipated by each floorplan block, in watts, aligned with the
/// floorplan's block order.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::library;
/// use hotiron_thermal::power::PowerMap;
///
/// let plan = library::ev6();
/// let mut p = PowerMap::zeros(&plan);
/// p.set(&plan, "IntReg", 2.0)?;
/// assert!((p.total() - 2.0).abs() < 1e-12);
/// # Ok::<(), hotiron_floorplan::FloorplanError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMap {
    values: Vec<f64>,
}

impl PowerMap {
    /// All-zero power map for a floorplan.
    pub fn zeros(plan: &Floorplan) -> Self {
        Self { values: vec![0.0; plan.len()] }
    }

    /// Builds from `(block name, watts)` pairs; unnamed blocks get 0 W.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::UnknownBlock`] for names not in the plan.
    pub fn from_pairs<'a>(
        plan: &Floorplan,
        pairs: impl IntoIterator<Item = (&'a str, f64)>,
    ) -> Result<Self, FloorplanError> {
        let mut map = Self::zeros(plan);
        for (name, w) in pairs {
            map.set(plan, name, w)?;
        }
        Ok(map)
    }

    /// Builds from a raw per-block vector in floorplan order.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the plan's block count or any value
    /// is negative or non-finite.
    pub fn from_vec(plan: &Floorplan, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), plan.len(), "one power value per block");
        for (i, v) in values.iter().enumerate() {
            assert!(v.is_finite() && *v >= 0.0, "block {i}: power must be non-negative, got {v}");
        }
        Self { values }
    }

    /// Uniform power density `density` (W/m²) over every block.
    pub fn uniform_density(plan: &Floorplan, density: f64) -> Self {
        assert!(density.is_finite() && density >= 0.0, "density must be non-negative");
        Self { values: plan.iter().map(|b| b.area() * density).collect() }
    }

    /// Sets one block's power in watts.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::UnknownBlock`] if the name is unknown.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or non-finite.
    pub fn set(&mut self, plan: &Floorplan, name: &str, watts: f64) -> Result<(), FloorplanError> {
        assert!(watts.is_finite() && watts >= 0.0, "power must be non-negative, got {watts}");
        let i = plan.require_block_index(name)?;
        self.values[i] = watts;
        Ok(())
    }

    /// Power of block `index`, W.
    pub fn get(&self, index: usize) -> f64 {
        self.values[index]
    }

    /// The per-block values in floorplan order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total chip power, W.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Returns a new map with every block scaled by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "scale factor must be non-negative");
        Self { values: self.values.iter().map(|v| v * factor).collect() }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the map has no blocks.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotiron_floorplan::library;

    #[test]
    fn from_pairs_and_total() {
        let plan = library::ev6();
        let p = PowerMap::from_pairs(&plan, [("IntReg", 2.0), ("Dcache", 3.0)]).unwrap();
        assert!((p.total() - 5.0).abs() < 1e-12);
        assert_eq!(p.get(plan.block_index("IntReg").unwrap()), 2.0);
    }

    #[test]
    fn unknown_block_errors() {
        let plan = library::ev6();
        assert!(PowerMap::from_pairs(&plan, [("Nope", 1.0)]).is_err());
    }

    #[test]
    fn uniform_density_total_matches_area() {
        let plan = library::uniform_die(0.02, 0.02);
        let p = PowerMap::uniform_density(&plan, 200.0 / 4e-4);
        assert!((p.total() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn scaled() {
        let plan = library::ev6();
        let p = PowerMap::from_pairs(&plan, [("L2", 10.0)]).unwrap().scaled(0.5);
        assert!((p.total() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_power() {
        let plan = library::ev6();
        let mut p = PowerMap::zeros(&plan);
        let _ = p.set(&plan, "L2", -1.0);
    }
}
