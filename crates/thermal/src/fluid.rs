//! Coolant fluid properties.

/// Thermophysical properties of a coolant fluid.
///
/// # Examples
///
/// ```
/// use hotiron_thermal::fluid::MINERAL_OIL;
///
/// // IR-transparent mineral oil is a poor conductor but very viscous,
/// // giving the laminar flow regime the paper's correlations assume.
/// assert!(MINERAL_OIL.prandtl() > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fluid {
    name: &'static str,
    /// Thermal conductivity, W/(m·K).
    conductivity: f64,
    /// Density, kg/m³.
    density: f64,
    /// Specific heat, J/(kg·K).
    specific_heat: f64,
    /// Dynamic viscosity, Pa·s.
    dynamic_viscosity: f64,
}

impl Fluid {
    /// Creates a fluid from its four thermophysical properties.
    ///
    /// # Panics
    ///
    /// Panics if any property is not strictly positive.
    pub const fn new(
        name: &'static str,
        conductivity: f64,
        density: f64,
        specific_heat: f64,
        dynamic_viscosity: f64,
    ) -> Self {
        assert!(conductivity > 0.0, "conductivity must be positive");
        assert!(density > 0.0, "density must be positive");
        assert!(specific_heat > 0.0, "specific heat must be positive");
        assert!(dynamic_viscosity > 0.0, "viscosity must be positive");
        Self { name, conductivity, density, specific_heat, dynamic_viscosity }
    }

    /// Fluid name.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Thermal conductivity, W/(m·K).
    pub const fn conductivity(&self) -> f64 {
        self.conductivity
    }

    /// Density, kg/m³.
    pub const fn density(&self) -> f64 {
        self.density
    }

    /// Specific heat, J/(kg·K).
    pub const fn specific_heat(&self) -> f64 {
        self.specific_heat
    }

    /// Dynamic viscosity, Pa·s.
    pub const fn dynamic_viscosity(&self) -> f64 {
        self.dynamic_viscosity
    }

    /// Kinematic viscosity `ν = μ/ρ`, m²/s.
    pub fn kinematic_viscosity(&self) -> f64 {
        self.dynamic_viscosity / self.density
    }

    /// Prandtl number `Pr = μ·cp / k` (dimensionless).
    pub fn prandtl(&self) -> f64 {
        self.dynamic_viscosity * self.specific_heat / self.conductivity
    }

    /// Volumetric heat capacity `ρ·cp`, J/(m³·K).
    pub fn volumetric_heat_capacity(&self) -> f64 {
        self.density * self.specific_heat
    }

    /// Reynolds number for flow at `velocity` (m/s) over a plate of length
    /// `length` (m): `Re = u·L/ν`.
    pub fn reynolds(&self, velocity: f64, length: f64) -> f64 {
        velocity * length / self.kinematic_viscosity()
    }
}

/// IR-transparent mineral oil, as used for infrared thermal imaging of bare
/// dice (the cooling setup of Mesa-Martinez et al. that the paper models).
///
/// With these properties a 10 m/s flow over a 20 mm die gives an equivalent
/// convection resistance of ≈1.0 K/W and a thermal boundary layer of
/// ≈170 µm, matching the paper's §3.2 validation setup and its "about
/// 100 µm thick" remark in §4.1.2.
pub const MINERAL_OIL: Fluid = Fluid::new("mineral-oil", 0.13, 870.0, 1900.0, 0.03);

/// Dry air at ≈40 °C (forced-air heatsink coolant).
pub const AIR: Fluid = Fluid::new("air", 0.027, 1.127, 1007.0, 1.9e-5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let f = Fluid::new("f", 0.5, 1000.0, 2000.0, 0.01);
        assert!((f.kinematic_viscosity() - 1e-5).abs() < 1e-12);
        assert!((f.prandtl() - 40.0).abs() < 1e-9);
        assert!((f.volumetric_heat_capacity() - 2e6).abs() < 1.0);
        assert!((f.reynolds(2.0, 0.05) - 1e4).abs() < 1e-6);
    }

    #[test]
    fn mineral_oil_regime() {
        // High-Pr, laminar at the paper's 10 m/s over 20 mm.
        let re = MINERAL_OIL.reynolds(10.0, 0.02);
        assert!(re < 5e5, "flow must be laminar, Re = {re}");
        assert!(re > 1e3);
        assert!(MINERAL_OIL.prandtl() > 100.0);
    }

    #[test]
    fn air_is_low_prandtl() {
        let pr = AIR.prandtl();
        assert!(pr > 0.6 && pr < 0.8, "air Pr = {pr}");
    }
}

/// Water at ≈40 °C (forced liquid cooling, §2.1's taxonomy).
pub const WATER: Fluid = Fluid::new("water", 0.63, 992.0, 4180.0, 6.5e-4);

#[cfg(test)]
mod water_tests {
    use super::*;
    use crate::convection::LaminarFlow;

    #[test]
    fn water_cools_far_better_than_oil_at_equal_speed() {
        // §2.1: forced water cooling is the serious-overclocker option.
        // Same 2 m/s flow over the same 20 mm plate (both laminar).
        let water = LaminarFlow::new(WATER, 2.0, 0.02);
        let oil = LaminarFlow::new(MINERAL_OIL, 2.0, 0.02);
        assert!(water.is_laminar() && oil.is_laminar());
        let rw = water.overall_resistance(4e-4);
        let ro = oil.overall_resistance(4e-4);
        assert!(rw < 0.35 * ro, "water {rw} vs oil {ro} K/W");
    }

    #[test]
    fn water_properties_are_physical() {
        assert!((WATER.prandtl() - 4.3).abs() < 1.0, "Pr {}", WATER.prandtl());
        assert!(WATER.volumetric_heat_capacity() > 4.0e6);
    }
}
