//! Dependency-free iterative FFT and fast cosine transforms.
//!
//! The spectral steady-state backend ([`crate::greens`]) needs unnormalized
//! DCT-II / inverse pairs along both axes of a row-major grid: the DCT-II
//! basis `cos(πk(2n+1)/(2N))` diagonalizes the half-sample-mirrored Neumann
//! Laplacian that [`crate::circuit`] stamps for adiabatic lateral edges.
//! Everything here is plain `f64` slices — no complex type, no external
//! crates, and no allocation after plan construction ([`FftPlan::new`] /
//! [`Dct2::new`] precompute twiddle, bit-reversal and reorder tables; the
//! per-call buffers live in a caller-owned [`Dct2Scratch`]).
//!
//! The cosine transforms run through one complex FFT of the *same* length
//! via the Makhoul even/odd reordering, and two real rows share each
//! complex transform (packed as real/imaginary parts, separated afterwards
//! by Hermitian symmetry), so a 2-D pass over `R` rows costs `R/2` complex
//! FFTs. Row pairs are independent, and the pool partition is fixed by row
//! index (never by thread count), so results are bitwise identical at any
//! `HOTIRON_THREADS` — same convention as the kernels in [`crate::pool`].
//!
//! The butterfly core is mixed-radix: a multiply-free radix-4 leaf covers
//! the first two stages, and on x86-64 with AVX2+FMA (one cached runtime
//! probe; the scalar path is the fallback and the reference) the remaining
//! stages run four modes per vector, pairwise-fused into radix-4 passes.
//! The Makhoul pack/unpack, quarter-wave twiddle passes, and the 2-D
//! transpose have matching vector kernels.

use crate::pool;
use std::sync::Arc;

/// Row pairs handled per pool task in the 2-D passes: big enough to
/// amortize dispatch, small enough to load-balance a 1-thread pool's
/// cooperating caller against worker threads.
const PAIRS_PER_TASK: usize = 8;

/// Precomputed tables for one transform length (a power of two).
///
/// Holds the radix-2 twiddles (per-stage, contiguous in access order), the
/// bit-reversal permutation, and the quarter-wave twiddles `e^{±iπk/(2N)}`
/// used by the DCT-II post-pass / DCT-III pre-pass.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation as its transposition list (`i < r` pairs
    /// only), so the permute pass touches exactly the elements that move.
    swaps: Vec<(u32, u32)>,
    /// Stage-concatenated forward twiddles `e^{-iπj/half}`: for the stage
    /// with half-block `h`, entries `h-1 .. 2h-1` hold `j = 0..h`.
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
    /// `cos(πk/(2n))`, `sin(πk/(2n))` for `k in 0..n`.
    ct: Vec<f64>,
    st: Vec<f64>,
}

impl FftPlan {
    /// Builds tables for length `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two (including `1`).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        let bits = n.trailing_zeros();
        let mut swaps = Vec::new();
        if n > 1 {
            for i in 0..n {
                let r = ((i as u32).reverse_bits() >> (32 - bits)) as usize;
                if i < r {
                    swaps.push((i as u32, r as u32));
                }
            }
        }
        // One entry per butterfly column across all stages: n - 1 total.
        let mut tw_re = Vec::with_capacity(n.saturating_sub(1));
        let mut tw_im = Vec::with_capacity(n.saturating_sub(1));
        let mut half = 1;
        while half < n {
            for j in 0..half {
                let angle = -std::f64::consts::PI * j as f64 / half as f64;
                tw_re.push(angle.cos());
                tw_im.push(angle.sin());
            }
            half *= 2;
        }
        let (ct, st) = (0..n)
            .map(|k| {
                let a = std::f64::consts::PI * k as f64 / (2.0 * n as f64);
                (a.cos(), a.sin())
            })
            .unzip();
        Self { n, swaps, tw_re, tw_im, ct, st }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    fn permute(&self, re: &mut [f64], im: &mut [f64]) {
        for &(i, r) in &self.swaps {
            re.swap(i as usize, r as usize);
            im.swap(i as usize, r as usize);
        }
    }

    /// In-place forward DFT `X[k] = Σ x[j]·e^{-2πijk/n}` over split
    /// real/imaginary slices.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from the plan length.
    pub fn forward(&self, re: &mut [f64], im: &mut [f64]) {
        assert_eq!(re.len(), self.n);
        assert_eq!(im.len(), self.n);
        self.permute(re, im);
        self.stages::<false>(re, im);
    }

    /// In-place inverse DFT with `1/n` scaling: `inverse(forward(x)) = x`.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from the plan length.
    pub fn inverse(&self, re: &mut [f64], im: &mut [f64]) {
        assert_eq!(re.len(), self.n);
        assert_eq!(im.len(), self.n);
        self.inverse_unscaled(re, im);
        let scale = 1.0 / self.n as f64;
        for (r, i) in re.iter_mut().zip(im.iter_mut()) {
            *r *= scale;
            *i *= scale;
        }
    }

    /// Inverse DFT without the `1/n` normalization: [`idct2_pair`] folds the
    /// scale into its interleaving pass instead of paying a separate sweep.
    ///
    /// [`idct2_pair`]: FftPlan::idct2_pair
    fn inverse_unscaled(&self, re: &mut [f64], im: &mut [f64]) {
        self.permute(re, im);
        self.stages::<true>(re, im);
    }

    /// Butterfly stages after the bit-reversal permute. `CONJ` selects the
    /// conjugated (inverse) twiddles. The first two stages have trivial
    /// twiddles `{1, ∓i}` and fuse into one multiply-free radix-4 leaf;
    /// stages with `half ≥ 4` run the AVX2+FMA kernel when the CPU has it
    /// (one runtime check, cached) and a scalar loop otherwise.
    fn stages<const CONJ: bool>(&self, re: &mut [f64], im: &mut [f64]) {
        let n = self.n;
        if n == 1 {
            return;
        }
        if n == 2 {
            let (r0, r1) = (re[0], re[1]);
            let (i0, i1) = (im[0], im[1]);
            re[0] = r0 + r1;
            re[1] = r0 - r1;
            im[0] = i0 + i1;
            im[1] = i0 - i1;
            return;
        }
        radix4_leaf::<CONJ>(re, im);
        let mut half = 4;
        let mut toff = 3;
        let wide = avx2_fma_available();
        while half < n {
            #[cfg(target_arch = "x86_64")]
            if wide {
                // Safety: gated on the cached runtime AVX2+FMA probe.
                if half * 2 < n {
                    // Fuse two consecutive radix-2 stages (`half`, `2·half`)
                    // into one radix-4 pass: the `2·half` stage only needs
                    // its first `half` twiddles (the rest are `-i` rotations
                    // applied in-register).
                    let q = half;
                    unsafe {
                        x86::stage4::<CONJ>(
                            re,
                            im,
                            q,
                            &self.tw_re[q - 1..2 * q - 1],
                            &self.tw_im[q - 1..2 * q - 1],
                            &self.tw_re[2 * q - 1..3 * q - 1],
                            &self.tw_im[2 * q - 1..3 * q - 1],
                        )
                    };
                    half *= 4;
                    toff = half - 1;
                } else {
                    let twr = &self.tw_re[toff..toff + half];
                    let twi = &self.tw_im[toff..toff + half];
                    unsafe { x86::stage::<CONJ>(re, im, half, twr, twi) };
                    toff += half;
                    half *= 2;
                }
                continue;
            }
            let _ = wide;
            let twr = &self.tw_re[toff..toff + half];
            let twi = &self.tw_im[toff..toff + half];
            stage_scalar::<CONJ>(re, im, half, twr, twi);
            toff += half;
            half *= 2;
        }
    }

    /// Unnormalized DCT-II of two rows at once:
    /// `X[k] = Σ_j x[j]·cos(πk(2j+1)/(2n))`, written back over `a` and `b`.
    ///
    /// `cr`/`ci` are length-`n` work buffers (the packed complex transform).
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from the plan length.
    pub fn dct2_pair(&self, a: &mut [f64], b: &mut [f64], cr: &mut [f64], ci: &mut [f64]) {
        let n = self.n;
        assert_eq!(a.len(), n);
        assert_eq!(b.len(), n);
        if n == 1 {
            return; // X[0] = x[0]
        }
        let wide = n >= 8 && avx2_fma_available();
        // Makhoul reordering: evens ascending, odds descending.
        #[cfg(target_arch = "x86_64")]
        if wide {
            // Safety: gated on the cached runtime AVX2+FMA probe; n ≥ 8.
            unsafe {
                x86::makhoul_pack(a, b, cr, ci);
                self.forward(cr, ci);
                x86::dct2_post(a, b, cr, ci, &self.ct, &self.st);
            }
            return;
        }
        let _ = wide;
        for j in 0..n / 2 {
            cr[j] = a[2 * j];
            ci[j] = b[2 * j];
            cr[n - 1 - j] = a[2 * j + 1];
            ci[n - 1 - j] = b[2 * j + 1];
        }
        self.forward(cr, ci);
        // Split the packed spectrum by Hermitian symmetry and apply the
        // quarter-wave post-twiddle; k and n-k come from the same V[k].
        dct2_post_scalar(a, b, cr, ci, &self.ct, &self.st);
    }

    /// Exact inverse of [`dct2_pair`] (a scaled DCT-III), two spectra at
    /// once, written back over `a` and `b`:
    /// `x[j] = X[0]/n + (2/n)·Σ_{k≥1} X[k]·cos(πk(2j+1)/(2n))`.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from the plan length.
    ///
    /// [`dct2_pair`]: FftPlan::dct2_pair
    pub fn idct2_pair(&self, a: &mut [f64], b: &mut [f64], cr: &mut [f64], ci: &mut [f64]) {
        let n = self.n;
        assert_eq!(a.len(), n);
        assert_eq!(b.len(), n);
        if n == 1 {
            return;
        }
        // Rebuild the packed spectrum: V[k] = (X[k] - i·X[n-k])·e^{iπk/(2n)},
        // U = V_a + i·V_b.
        cr[0] = a[0];
        ci[0] = b[0];
        let scale = 1.0 / n as f64;
        let wide = n >= 8 && avx2_fma_available();
        #[cfg(target_arch = "x86_64")]
        if wide {
            // Safety: gated on the cached runtime AVX2+FMA probe; n ≥ 8.
            unsafe {
                x86::idct2_pre(a, b, cr, ci, &self.ct, &self.st);
                self.inverse_unscaled(cr, ci);
                x86::makhoul_unpack_scaled(cr, ci, a, b, scale);
            }
            return;
        }
        let _ = wide;
        idct2_pre_scalar(a, b, cr, ci, &self.ct, &self.st);
        self.inverse_unscaled(cr, ci);
        for j in 0..n / 2 {
            a[2 * j] = scale * cr[j];
            b[2 * j] = scale * ci[j];
            a[2 * j + 1] = scale * cr[n - 1 - j];
            b[2 * j + 1] = scale * ci[n - 1 - j];
        }
    }
}

/// Fused first two butterfly stages (`half = 1` and `half = 2`) over
/// bit-reversed data: every twiddle is `1` or `∓i`, so a 4-point DFT per
/// block needs no multiplies at all.
fn radix4_leaf<const CONJ: bool>(re: &mut [f64], im: &mut [f64]) {
    for (r, i) in re.chunks_exact_mut(4).zip(im.chunks_exact_mut(4)) {
        let (r0, r1) = (r[0] + r[1], r[0] - r[1]);
        let (i0, i1) = (i[0] + i[1], i[0] - i[1]);
        let (r2, r3) = (r[2] + r[3], r[2] - r[3]);
        let (i2, i3) = (i[2] + i[3], i[2] - i[3]);
        r[0] = r0 + r2;
        i[0] = i0 + i2;
        r[2] = r0 - r2;
        i[2] = i0 - i2;
        if CONJ {
            r[1] = r1 - i3;
            i[1] = i1 + r3;
            r[3] = r1 + i3;
            i[3] = i1 - r3;
        } else {
            r[1] = r1 + i3;
            i[1] = i1 - r3;
            r[3] = r1 - i3;
            i[3] = i1 + r3;
        }
    }
}

/// Portable butterfly stage for `half ≥ 4`: the fallback when the CPU lacks
/// AVX2/FMA (and the reference the SIMD kernel is tested against).
fn stage_scalar<const CONJ: bool>(
    re: &mut [f64],
    im: &mut [f64],
    half: usize,
    twr: &[f64],
    twi: &[f64],
) {
    let len = half * 2;
    for (br, bi) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
        let (ar, cr) = br.split_at_mut(half);
        let (ai, ci) = bi.split_at_mut(half);
        for j in 0..half {
            let (wr, wi) = if CONJ { (twr[j], -twi[j]) } else { (twr[j], twi[j]) };
            let xr = cr[j] * wr - ci[j] * wi;
            let xi = cr[j] * wi + ci[j] * wr;
            cr[j] = ar[j] - xr;
            ci[j] = ai[j] - xi;
            ar[j] += xr;
            ai[j] += xi;
        }
    }
}

/// DCT-II post-pass: splits the packed length-`n` spectrum `cr + i·ci` by
/// Hermitian symmetry and applies the quarter-wave twiddle, writing the two
/// real spectra over `a` and `b`. `k` and `n-k` come from the same `V[k]`.
fn dct2_post_scalar(a: &mut [f64], b: &mut [f64], cr: &[f64], ci: &[f64], ct: &[f64], st: &[f64]) {
    let n = a.len();
    let h = n / 2;
    a[0] = cr[0];
    b[0] = ci[0];
    a[h] = ct[h] * cr[h];
    b[h] = ct[h] * ci[h];
    for k in 1..h {
        let nk = n - k;
        let va_re = 0.5 * (cr[k] + cr[nk]);
        let va_im = 0.5 * (ci[k] - ci[nk]);
        let vb_re = 0.5 * (ci[k] + ci[nk]);
        let vb_im = 0.5 * (cr[nk] - cr[k]);
        a[k] = ct[k] * va_re + st[k] * va_im;
        b[k] = ct[k] * vb_re + st[k] * vb_im;
        a[nk] = ct[nk] * va_re - st[nk] * va_im;
        b[nk] = ct[nk] * vb_re - st[nk] * vb_im;
    }
}

/// DCT-III pre-pass (`k in 1..n`; the caller seeds `k = 0`): rebuilds the
/// packed spectrum from the two real spectra in `a` and `b`.
fn idct2_pre_scalar(a: &[f64], b: &[f64], cr: &mut [f64], ci: &mut [f64], ct: &[f64], st: &[f64]) {
    let n = a.len();
    for k in 1..n {
        let nk = n - k;
        let va_re = a[k] * ct[k] + a[nk] * st[k];
        let va_im = a[k] * st[k] - a[nk] * ct[k];
        let vb_re = b[k] * ct[k] + b[nk] * st[k];
        let vb_im = b[k] * st[k] - b[nk] * ct[k];
        cr[k] = va_re - vb_im;
        ci[k] = va_im + vb_re;
    }
}

/// Cached runtime probe for the AVX2+FMA butterfly kernel. The choice is
/// per-process and identical on every thread, so thread-count determinism
/// is unaffected.
fn avx2_fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static PROBE: OnceLock<bool> = OnceLock::new();
        *PROBE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2+FMA butterfly stage: four modes per vector, contiguous loads
    //! (`half ≥ 4` keeps every lane in-bounds with no remainder loop).
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must have verified AVX2 and FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stage<const CONJ: bool>(
        re: &mut [f64],
        im: &mut [f64],
        half: usize,
        twr: &[f64],
        twi: &[f64],
    ) {
        debug_assert!(half >= 4 && half.is_multiple_of(4));
        debug_assert_eq!(twr.len(), half);
        debug_assert_eq!(twi.len(), half);
        let len = half * 2;
        let blocks = re.len() / len;
        for b in 0..blocks {
            let base = b * len;
            let mut j = 0;
            while j < half {
                let ar = _mm256_loadu_pd(re.as_ptr().add(base + j));
                let ai = _mm256_loadu_pd(im.as_ptr().add(base + j));
                let cr = _mm256_loadu_pd(re.as_ptr().add(base + half + j));
                let ci = _mm256_loadu_pd(im.as_ptr().add(base + half + j));
                let wr = _mm256_loadu_pd(twr.as_ptr().add(j));
                let wi = _mm256_loadu_pd(twi.as_ptr().add(j));
                // x = c·w (w conjugated on the inverse path).
                let (xr, xi) = if CONJ {
                    (
                        _mm256_fmadd_pd(ci, wi, _mm256_mul_pd(cr, wr)),
                        _mm256_fmsub_pd(ci, wr, _mm256_mul_pd(cr, wi)),
                    )
                } else {
                    (
                        _mm256_fmsub_pd(cr, wr, _mm256_mul_pd(ci, wi)),
                        _mm256_fmadd_pd(cr, wi, _mm256_mul_pd(ci, wr)),
                    )
                };
                _mm256_storeu_pd(re.as_mut_ptr().add(base + half + j), _mm256_sub_pd(ar, xr));
                _mm256_storeu_pd(im.as_mut_ptr().add(base + half + j), _mm256_sub_pd(ai, xi));
                _mm256_storeu_pd(re.as_mut_ptr().add(base + j), _mm256_add_pd(ar, xr));
                _mm256_storeu_pd(im.as_mut_ptr().add(base + j), _mm256_add_pd(ai, xi));
                j += 4;
            }
        }
    }

    /// Reverses the four lanes of a vector.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rev(v: __m256d) -> __m256d {
        _mm256_permute4x64_pd(v, 0x1B)
    }

    /// Complex multiply `x·w` (four lanes); `CONJ` conjugates `w`.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn cmul<const CONJ: bool>(
        xr: __m256d,
        xi: __m256d,
        wr: __m256d,
        wi: __m256d,
    ) -> (__m256d, __m256d) {
        if CONJ {
            (
                _mm256_fmadd_pd(xi, wi, _mm256_mul_pd(xr, wr)),
                _mm256_fmsub_pd(xi, wr, _mm256_mul_pd(xr, wi)),
            )
        } else {
            (
                _mm256_fmsub_pd(xr, wr, _mm256_mul_pd(xi, wi)),
                _mm256_fmadd_pd(xr, wi, _mm256_mul_pd(xi, wr)),
            )
        }
    }

    /// Fused pair of radix-2 stages (`half = q` then `half = 2q`) over
    /// blocks of `4q`: one pass over the data instead of two. Writing
    /// `W1[j] = e^{∓iπj/q}`, `W2[j] = e^{∓iπj/(2q)}`, the `2q`-stage twiddle
    /// for the upper half is `W2[q+j] = ∓i·W2[j]`, folded into a lane swap.
    ///
    /// # Safety
    ///
    /// AVX2+FMA verified at runtime; `q ≥ 4` and a multiple of 4; twiddle
    /// slices hold `q` entries each.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stage4<const CONJ: bool>(
        re: &mut [f64],
        im: &mut [f64],
        q: usize,
        tw1r: &[f64],
        tw1i: &[f64],
        tw2r: &[f64],
        tw2i: &[f64],
    ) {
        debug_assert!(q >= 4 && q.is_multiple_of(4));
        debug_assert!(tw1r.len() == q && tw2r.len() == q);
        let len = 4 * q;
        let blocks = re.len() / len;
        for blk in 0..blocks {
            let base = blk * len;
            let mut j = 0;
            while j < q {
                let w1r = _mm256_loadu_pd(tw1r.as_ptr().add(j));
                let w1i = _mm256_loadu_pd(tw1i.as_ptr().add(j));
                let w2r = _mm256_loadu_pd(tw2r.as_ptr().add(j));
                let w2i = _mm256_loadu_pd(tw2i.as_ptr().add(j));
                let ar = _mm256_loadu_pd(re.as_ptr().add(base + j));
                let ai = _mm256_loadu_pd(im.as_ptr().add(base + j));
                let br = _mm256_loadu_pd(re.as_ptr().add(base + q + j));
                let bi = _mm256_loadu_pd(im.as_ptr().add(base + q + j));
                let cr = _mm256_loadu_pd(re.as_ptr().add(base + 2 * q + j));
                let ci = _mm256_loadu_pd(im.as_ptr().add(base + 2 * q + j));
                let dr = _mm256_loadu_pd(re.as_ptr().add(base + 3 * q + j));
                let di = _mm256_loadu_pd(im.as_ptr().add(base + 3 * q + j));
                // First stage: butterflies (A, B) and (C, D) with W1.
                let (tbr, tbi) = cmul::<CONJ>(br, bi, w1r, w1i);
                let (tdr, tdi) = cmul::<CONJ>(dr, di, w1r, w1i);
                let a1r = _mm256_add_pd(ar, tbr);
                let a1i = _mm256_add_pd(ai, tbi);
                let b1r = _mm256_sub_pd(ar, tbr);
                let b1i = _mm256_sub_pd(ai, tbi);
                let c1r = _mm256_add_pd(cr, tdr);
                let c1i = _mm256_add_pd(ci, tdi);
                let d1r = _mm256_sub_pd(cr, tdr);
                let d1i = _mm256_sub_pd(ci, tdi);
                // Second stage: (A1, C1) with W2[j], (B1, D1) with ∓i·W2[j].
                let (ur, ui) = cmul::<CONJ>(c1r, c1i, w2r, w2i);
                let (sr, si) = cmul::<CONJ>(d1r, d1i, w2r, w2i);
                let (vr, vi) = if CONJ {
                    (_mm256_sub_pd(_mm256_setzero_pd(), si), sr)
                } else {
                    (si, _mm256_sub_pd(_mm256_setzero_pd(), sr))
                };
                _mm256_storeu_pd(re.as_mut_ptr().add(base + j), _mm256_add_pd(a1r, ur));
                _mm256_storeu_pd(im.as_mut_ptr().add(base + j), _mm256_add_pd(a1i, ui));
                _mm256_storeu_pd(re.as_mut_ptr().add(base + q + j), _mm256_add_pd(b1r, vr));
                _mm256_storeu_pd(im.as_mut_ptr().add(base + q + j), _mm256_add_pd(b1i, vi));
                _mm256_storeu_pd(re.as_mut_ptr().add(base + 2 * q + j), _mm256_sub_pd(a1r, ur));
                _mm256_storeu_pd(im.as_mut_ptr().add(base + 2 * q + j), _mm256_sub_pd(a1i, ui));
                _mm256_storeu_pd(re.as_mut_ptr().add(base + 3 * q + j), _mm256_sub_pd(b1r, vr));
                _mm256_storeu_pd(im.as_mut_ptr().add(base + 3 * q + j), _mm256_sub_pd(b1i, vi));
                j += 4;
            }
        }
    }

    /// Makhoul reordering of two real rows into one packed complex row:
    /// evens ascending at the front, odds descending at the back.
    ///
    /// # Safety
    ///
    /// AVX2+FMA verified at runtime; `n = a.len()` must be ≥ 8 (so `n/2` is
    /// a multiple of 4).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn makhoul_pack(a: &[f64], b: &[f64], cr: &mut [f64], ci: &mut [f64]) {
        let n = a.len();
        debug_assert!(n >= 8 && n.is_multiple_of(8));
        let h = n / 2;
        let mut j = 0;
        while j < h {
            for (src, dst) in [(a.as_ptr(), cr.as_mut_ptr()), (b.as_ptr(), ci.as_mut_ptr())] {
                let v0 = _mm256_loadu_pd(src.add(2 * j));
                let v1 = _mm256_loadu_pd(src.add(2 * j + 4));
                let t0 = _mm256_permute2f128_pd(v0, v1, 0x20);
                let t1 = _mm256_permute2f128_pd(v0, v1, 0x31);
                let evens = _mm256_unpacklo_pd(t0, t1);
                let odds = _mm256_unpackhi_pd(t0, t1);
                _mm256_storeu_pd(dst.add(j), evens);
                _mm256_storeu_pd(dst.add(n - 4 - j), rev(odds));
            }
            j += 4;
        }
    }

    /// Inverse of [`makhoul_pack`]: interleaves the packed complex row back
    /// into two real rows, folding in the deferred `1/n` FFT normalization.
    ///
    /// # Safety
    ///
    /// Same contract as [`makhoul_pack`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn makhoul_unpack_scaled(
        cr: &[f64],
        ci: &[f64],
        a: &mut [f64],
        b: &mut [f64],
        scale: f64,
    ) {
        let n = a.len();
        debug_assert!(n >= 8 && n.is_multiple_of(8));
        let h = n / 2;
        let sc = _mm256_set1_pd(scale);
        let mut j = 0;
        while j < h {
            for (src, dst) in [(cr.as_ptr(), a.as_mut_ptr()), (ci.as_ptr(), b.as_mut_ptr())] {
                let evens = _mm256_mul_pd(sc, _mm256_loadu_pd(src.add(j)));
                let odds = rev(_mm256_mul_pd(sc, _mm256_loadu_pd(src.add(n - 4 - j))));
                let lo = _mm256_unpacklo_pd(evens, odds);
                let hi = _mm256_unpackhi_pd(evens, odds);
                _mm256_storeu_pd(dst.add(2 * j), _mm256_permute2f128_pd(lo, hi, 0x20));
                _mm256_storeu_pd(dst.add(2 * j + 4), _mm256_permute2f128_pd(lo, hi, 0x31));
            }
            j += 4;
        }
    }

    /// Vector form of [`super::dct2_post_scalar`]: the `k`-side runs forward
    /// loads, the `n-k` side reversed loads/stores; the two never overlap
    /// because `k < n/2 < n-k`.
    ///
    /// # Safety
    ///
    /// AVX2+FMA verified at runtime; all six slices share `a.len() = n ≥ 8`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dct2_post(
        a: &mut [f64],
        b: &mut [f64],
        cr: &[f64],
        ci: &[f64],
        ct: &[f64],
        st: &[f64],
    ) {
        let n = a.len();
        let h = n / 2;
        a[0] = cr[0];
        b[0] = ci[0];
        a[h] = ct[h] * cr[h];
        b[h] = ct[h] * ci[h];
        let half_v = _mm256_set1_pd(0.5);
        let mut k = 1;
        while k < h.min(4) {
            let nk = n - k;
            let va_re = 0.5 * (cr[k] + cr[nk]);
            let va_im = 0.5 * (ci[k] - ci[nk]);
            let vb_re = 0.5 * (ci[k] + ci[nk]);
            let vb_im = 0.5 * (cr[nk] - cr[k]);
            a[k] = ct[k] * va_re + st[k] * va_im;
            b[k] = ct[k] * vb_re + st[k] * vb_im;
            a[nk] = ct[nk] * va_re - st[nk] * va_im;
            b[nk] = ct[nk] * vb_re - st[nk] * vb_im;
            k += 1;
        }
        k = 4;
        while k + 4 <= h {
            let rk = _mm256_loadu_pd(cr.as_ptr().add(k));
            let ik = _mm256_loadu_pd(ci.as_ptr().add(k));
            let rn = rev(_mm256_loadu_pd(cr.as_ptr().add(n - k - 3)));
            let i_n = rev(_mm256_loadu_pd(ci.as_ptr().add(n - k - 3)));
            let va_re = _mm256_mul_pd(half_v, _mm256_add_pd(rk, rn));
            let va_im = _mm256_mul_pd(half_v, _mm256_sub_pd(ik, i_n));
            let vb_re = _mm256_mul_pd(half_v, _mm256_add_pd(ik, i_n));
            let vb_im = _mm256_mul_pd(half_v, _mm256_sub_pd(rn, rk));
            let ctk = _mm256_loadu_pd(ct.as_ptr().add(k));
            let stk = _mm256_loadu_pd(st.as_ptr().add(k));
            let ctn = rev(_mm256_loadu_pd(ct.as_ptr().add(n - k - 3)));
            let stn = rev(_mm256_loadu_pd(st.as_ptr().add(n - k - 3)));
            _mm256_storeu_pd(
                a.as_mut_ptr().add(k),
                _mm256_fmadd_pd(ctk, va_re, _mm256_mul_pd(stk, va_im)),
            );
            _mm256_storeu_pd(
                b.as_mut_ptr().add(k),
                _mm256_fmadd_pd(ctk, vb_re, _mm256_mul_pd(stk, vb_im)),
            );
            _mm256_storeu_pd(
                a.as_mut_ptr().add(n - k - 3),
                rev(_mm256_fmsub_pd(ctn, va_re, _mm256_mul_pd(stn, va_im))),
            );
            _mm256_storeu_pd(
                b.as_mut_ptr().add(n - k - 3),
                rev(_mm256_fmsub_pd(ctn, vb_re, _mm256_mul_pd(stn, vb_im))),
            );
            k += 4;
        }
    }

    /// Vector form of [`super::idct2_pre_scalar`] (`k in 1..n`; caller seeds
    /// `k = 0`). Reads `a`/`b` at `k` and `n-k`, writes only `cr[k]`/`ci[k]`
    /// — distinct buffers, so the overlapping read window is harmless.
    ///
    /// # Safety
    ///
    /// AVX2+FMA verified at runtime; all six slices share `a.len() = n ≥ 8`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn idct2_pre(
        a: &[f64],
        b: &[f64],
        cr: &mut [f64],
        ci: &mut [f64],
        ct: &[f64],
        st: &[f64],
    ) {
        let n = a.len();
        let mut k = 1;
        while k < 4 {
            let nk = n - k;
            let va_re = a[k] * ct[k] + a[nk] * st[k];
            let va_im = a[k] * st[k] - a[nk] * ct[k];
            let vb_re = b[k] * ct[k] + b[nk] * st[k];
            let vb_im = b[k] * st[k] - b[nk] * ct[k];
            cr[k] = va_re - vb_im;
            ci[k] = va_im + vb_re;
            k += 1;
        }
        k = 4;
        while k + 4 <= n {
            let ak = _mm256_loadu_pd(a.as_ptr().add(k));
            let bk = _mm256_loadu_pd(b.as_ptr().add(k));
            let an = rev(_mm256_loadu_pd(a.as_ptr().add(n - k - 3)));
            let bn = rev(_mm256_loadu_pd(b.as_ptr().add(n - k - 3)));
            let ctk = _mm256_loadu_pd(ct.as_ptr().add(k));
            let stk = _mm256_loadu_pd(st.as_ptr().add(k));
            let va_re = _mm256_fmadd_pd(ak, ctk, _mm256_mul_pd(an, stk));
            let va_im = _mm256_fmsub_pd(ak, stk, _mm256_mul_pd(an, ctk));
            let vb_re = _mm256_fmadd_pd(bk, ctk, _mm256_mul_pd(bn, stk));
            let vb_im = _mm256_fmsub_pd(bk, stk, _mm256_mul_pd(bn, ctk));
            _mm256_storeu_pd(cr.as_mut_ptr().add(k), _mm256_sub_pd(va_re, vb_im));
            _mm256_storeu_pd(ci.as_mut_ptr().add(k), _mm256_add_pd(va_im, vb_re));
            k += 4;
        }
    }

    /// Cache-blocked transpose built from a 4×4 register micro-kernel.
    ///
    /// # Safety
    ///
    /// AVX2 verified at runtime; `rows` and `cols` multiples of 4 with
    /// `src.len() = dst.len() = rows·cols`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn transpose4(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
        const TILE: usize = 32;
        debug_assert!(rows.is_multiple_of(4) && cols.is_multiple_of(4));
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + TILE).min(rows);
            let mut c0 = 0;
            while c0 < cols {
                let c1 = (c0 + TILE).min(cols);
                let mut r = r0;
                while r < r1 {
                    let mut c = c0;
                    while c < c1 {
                        let a0 = _mm256_loadu_pd(sp.add(r * cols + c));
                        let a1 = _mm256_loadu_pd(sp.add((r + 1) * cols + c));
                        let a2 = _mm256_loadu_pd(sp.add((r + 2) * cols + c));
                        let a3 = _mm256_loadu_pd(sp.add((r + 3) * cols + c));
                        let t0 = _mm256_unpacklo_pd(a0, a1);
                        let t1 = _mm256_unpackhi_pd(a0, a1);
                        let t2 = _mm256_unpacklo_pd(a2, a3);
                        let t3 = _mm256_unpackhi_pd(a2, a3);
                        _mm256_storeu_pd(
                            dp.add(c * rows + r),
                            _mm256_permute2f128_pd(t0, t2, 0x20),
                        );
                        _mm256_storeu_pd(
                            dp.add((c + 1) * rows + r),
                            _mm256_permute2f128_pd(t1, t3, 0x20),
                        );
                        _mm256_storeu_pd(
                            dp.add((c + 2) * rows + r),
                            _mm256_permute2f128_pd(t0, t2, 0x31),
                        );
                        _mm256_storeu_pd(
                            dp.add((c + 3) * rows + r),
                            _mm256_permute2f128_pd(t1, t3, 0x31),
                        );
                        c += 4;
                    }
                    r += 4;
                }
                c0 = c1;
            }
            r0 = r1;
        }
    }
}

/// Reusable buffers for the 2-D passes: one complex work pair per pool
/// task plus a zero row for pairing an odd row count.
#[derive(Debug)]
pub struct Dct2Scratch {
    /// Task-indexed complex work arena, `2·dim` per task.
    arena: Vec<f64>,
    /// Zero row used as the silent partner of an unpaired last row.
    zero: Vec<f64>,
    dim: usize,
    tasks: usize,
}

/// 2-D separable DCT-II/inverse over a row-major `rows × cols` grid.
///
/// The forward transform leaves the spectrum *transposed* —
/// `spec[kc·rows + kr]` where `kc` indexes frequency along x (columns) and
/// `kr` along y (rows) — which is exactly the layout the per-mode solves in
/// [`crate::greens`] consume; the inverse accepts that layout and restores
/// row-major spatial data.
#[derive(Debug, Clone)]
pub struct Dct2 {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
}

/// Raw pointer wrapper marking the disjoint-slice hand-out below as safe to
/// share across pool tasks (same pattern as `pool::SliceParts`).
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// wrapper, keeping the `Sync` impl in effect under RFC 2229 capture.
    fn get(&self) -> *mut f64 {
        self.0
    }
}

impl Dct2 {
    /// Builds plans for a `rows × cols` grid (both powers of two).
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are powers of two.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, row_plan: FftPlan::new(cols), col_plan: FftPlan::new(rows) }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Allocates scratch sized for this plan (reusable across calls).
    pub fn scratch(&self) -> Dct2Scratch {
        let dim = self.rows.max(self.cols);
        let pairs = self.rows.max(self.cols).div_ceil(2);
        let tasks = pairs.div_ceil(PAIRS_PER_TASK).max(1);
        Dct2Scratch { arena: vec![0.0; 2 * dim * tasks], zero: vec![0.0; dim], dim, tasks }
    }

    /// One DCT pass along every length-`width` row of `data`
    /// (`height × width`, row-major), parallel over row pairs.
    fn pass(
        &self,
        plan: &FftPlan,
        data: &mut [f64],
        height: usize,
        width: usize,
        scratch: &mut Dct2Scratch,
        inverse: bool,
    ) {
        debug_assert_eq!(data.len(), height * width);
        debug_assert!(width <= scratch.dim);
        let pairs = height.div_ceil(2);
        let tasks = pairs.div_ceil(PAIRS_PER_TASK);
        debug_assert!(tasks <= scratch.tasks);
        let pool = pool::current();
        let data_ptr = SendPtr(data.as_mut_ptr());
        let arena_ptr = SendPtr(scratch.arena.as_mut_ptr());
        let zero_ptr = SendPtr(scratch.zero.as_mut_ptr());
        let arena_stride = 2 * scratch.dim;
        pool.for_each_task(tasks, |t| {
            // Safety: task `t` touches only rows `2·t·PAIRS_PER_TASK ..`
            // of `data`, arena slot `t`, and (for the final odd row) the
            // zero row — regions disjoint across tasks; the zero row is
            // only reached by the last pair of the last task.
            let (cr, ci) = unsafe {
                let base = arena_ptr.get().add(t * arena_stride);
                (
                    std::slice::from_raw_parts_mut(base, width),
                    std::slice::from_raw_parts_mut(base.add(scratch.dim), width),
                )
            };
            let first = t * PAIRS_PER_TASK;
            let last = ((t + 1) * PAIRS_PER_TASK).min(pairs);
            for p in first..last {
                let (a, b) = unsafe {
                    let a =
                        std::slice::from_raw_parts_mut(data_ptr.get().add(2 * p * width), width);
                    let b = if 2 * p + 1 < height {
                        std::slice::from_raw_parts_mut(
                            data_ptr.get().add((2 * p + 1) * width),
                            width,
                        )
                    } else {
                        std::slice::from_raw_parts_mut(zero_ptr.get(), width)
                    };
                    (a, b)
                };
                if inverse {
                    plan.idct2_pair(a, b, cr, ci);
                } else {
                    plan.dct2_pair(a, b, cr, ci);
                }
            }
        });
        if height % 2 == 1 {
            // The zero row absorbed half a transform; re-zero for reuse.
            scratch.zero[..width].fill(0.0);
        }
    }

    /// Forward 2-D DCT-II: consumes row-major `src` (clobbered by the row
    /// pass) and writes the transposed spectrum into `dst`
    /// (`cols × rows`, `dst[kc·rows + kr]`).
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `rows·cols`.
    pub fn forward_into(&self, src: &mut [f64], dst: &mut [f64], scratch: &mut Dct2Scratch) {
        let (r, c) = (self.rows, self.cols);
        assert_eq!(src.len(), r * c);
        assert_eq!(dst.len(), r * c);
        self.pass(&self.row_plan, src, r, c, scratch, false);
        transpose(src, dst, r, c);
        self.pass(&self.col_plan, dst, c, r, scratch, false);
    }

    /// Inverse of [`forward_into`]: consumes the transposed spectrum in
    /// `spec` (clobbered) and writes row-major spatial data into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `rows·cols`.
    ///
    /// [`forward_into`]: Dct2::forward_into
    pub fn inverse_into(&self, spec: &mut [f64], dst: &mut [f64], scratch: &mut Dct2Scratch) {
        let (r, c) = (self.rows, self.cols);
        assert_eq!(spec.len(), r * c);
        assert_eq!(dst.len(), r * c);
        self.pass(&self.col_plan, spec, c, r, scratch, true);
        transpose(spec, dst, c, r);
        self.pass(&self.row_plan, dst, r, c, scratch, true);
    }
}

/// Cache-blocked out-of-place transpose: `src` is `rows × cols`, `dst`
/// becomes `cols × rows`. Dispatches to a 4×4 AVX micro-kernel when both
/// dimensions allow it.
fn transpose(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    const TILE: usize = 32;
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    #[cfg(target_arch = "x86_64")]
    if rows.is_multiple_of(4) && cols.is_multiple_of(4) && avx2_fma_available() {
        // Safety: gated on the cached runtime AVX2+FMA probe; both
        // dimensions are multiples of 4.
        unsafe { x86::transpose4(src, dst, rows, cols) };
        return;
    }
    for r0 in (0..rows).step_by(TILE) {
        for c0 in (0..cols).step_by(TILE) {
            for r in r0..(r0 + TILE).min(rows) {
                for c in c0..(c0 + TILE).min(cols) {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// Convenience used by tests and oracles: pool used for the 2-D passes.
pub fn pool_threads() -> usize {
    pool::current().threads()
}

/// Reference O(N²) DCT-II, the ground truth the fast path is tested
/// against: `X[k] = Σ_j x[j]·cos(πk(2j+1)/(2N))`.
pub fn naive_dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            x.iter()
                .enumerate()
                .map(|(j, &v)| {
                    v * (std::f64::consts::PI * k as f64 * (2 * j + 1) as f64 / (2.0 * n as f64))
                        .cos()
                })
                .sum()
        })
        .collect()
}

/// Deterministic test-signal generator (xorshift; no `rand` dependency in
/// the hot crate).
pub fn test_signal(n: usize, mut seed: u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

#[allow(dead_code)]
fn _assert_send_sync(p: Arc<Dct2>) -> impl Send + Sync {
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{with_pool, WorkerPool};
    use std::sync::Arc;

    fn close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        let scale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * scale, "mismatch at {i}: {x} vs {y} (scale {scale})");
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let xr = test_signal(n, 0xABCD ^ n as u64);
            let xi = test_signal(n, 0x1234 ^ n as u64);
            let mut re = xr.clone();
            let mut im = xi.clone();
            FftPlan::new(n).forward(&mut re, &mut im);
            for k in 0..n {
                let (mut sr, mut si) = (0.0, 0.0);
                for j in 0..n {
                    let a = -2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                    sr += xr[j] * a.cos() - xi[j] * a.sin();
                    si += xr[j] * a.sin() + xi[j] * a.cos();
                }
                assert!((re[k] - sr).abs() < 1e-9 && (im[k] - si).abs() < 1e-9, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn fft_round_trip_is_identity() {
        for n in [2usize, 16, 64, 256] {
            let xr = test_signal(n, 7);
            let xi = test_signal(n, 11);
            let mut re = xr.clone();
            let mut im = xi.clone();
            let plan = FftPlan::new(n);
            plan.forward(&mut re, &mut im);
            plan.inverse(&mut re, &mut im);
            close(&re, &xr, 1e-13);
            close(&im, &xi, 1e-13);
        }
    }

    #[test]
    fn dct_pair_matches_naive_dct() {
        for n in [2usize, 4, 8, 64, 128] {
            let a0 = test_signal(n, 3 * n as u64 + 1);
            let b0 = test_signal(n, 5 * n as u64 + 2);
            let plan = FftPlan::new(n);
            let (mut a, mut b) = (a0.clone(), b0.clone());
            let (mut cr, mut ci) = (vec![0.0; n], vec![0.0; n]);
            plan.dct2_pair(&mut a, &mut b, &mut cr, &mut ci);
            close(&a, &naive_dct2(&a0), 1e-12);
            close(&b, &naive_dct2(&b0), 1e-12);
        }
    }

    #[test]
    fn dct_round_trip_is_identity() {
        for n in [2usize, 8, 32, 256] {
            let a0 = test_signal(n, 21);
            let b0 = test_signal(n, 23);
            let plan = FftPlan::new(n);
            let (mut a, mut b) = (a0.clone(), b0.clone());
            let (mut cr, mut ci) = (vec![0.0; n], vec![0.0; n]);
            plan.dct2_pair(&mut a, &mut b, &mut cr, &mut ci);
            plan.idct2_pair(&mut a, &mut b, &mut cr, &mut ci);
            close(&a, &a0, 1e-13);
            close(&b, &b0, 1e-13);
        }
    }

    #[test]
    fn dct_parseval_identity_holds() {
        // Orthogonality of the DCT-II basis:
        // Σ x² = X[0]²/N + (2/N)·Σ_{k≥1} X[k]².
        let n = 64;
        let x = test_signal(n, 99);
        let spatial: f64 = x.iter().map(|v| v * v).sum();
        let mut a = x.clone();
        let mut b = vec![0.0; n];
        let (mut cr, mut ci) = (vec![0.0; n], vec![0.0; n]);
        FftPlan::new(n).dct2_pair(&mut a, &mut b, &mut cr, &mut ci);
        let spectral =
            a[0] * a[0] / n as f64 + 2.0 / n as f64 * a[1..].iter().map(|v| v * v).sum::<f64>();
        assert!(
            (spatial - spectral).abs() <= 1e-12 * spatial.abs(),
            "Parseval violated: {spatial} vs {spectral}"
        );
    }

    #[test]
    fn dct_impulse_gives_sampled_cosine() {
        // A delta at position j transforms to cos(πk(2j+1)/(2N)) exactly.
        let n = 32;
        let j = 5;
        let mut a = vec![0.0; n];
        a[j] = 1.0;
        let mut b = vec![0.0; n];
        let (mut cr, mut ci) = (vec![0.0; n], vec![0.0; n]);
        FftPlan::new(n).dct2_pair(&mut a, &mut b, &mut cr, &mut ci);
        for (k, &got) in a.iter().enumerate() {
            let want =
                (std::f64::consts::PI * k as f64 * (2 * j + 1) as f64 / (2.0 * n as f64)).cos();
            assert!((got - want).abs() < 1e-13, "k={k}: {got} vs {want}");
        }
    }

    #[test]
    fn dct_is_linear() {
        let n = 64;
        let x = test_signal(n, 41);
        let y = test_signal(n, 43);
        let plan = FftPlan::new(n);
        let (mut cr, mut ci) = (vec![0.0; n], vec![0.0; n]);
        let (alpha, beta) = (2.5, -0.75);
        let mut combo: Vec<f64> = x.iter().zip(&y).map(|(xv, yv)| alpha * xv + beta * yv).collect();
        let mut z = vec![0.0; n];
        plan.dct2_pair(&mut combo, &mut z, &mut cr, &mut ci);
        let (mut fx, mut fy) = (x.clone(), y.clone());
        plan.dct2_pair(&mut fx, &mut fy, &mut cr, &mut ci);
        let expect: Vec<f64> = fx.iter().zip(&fy).map(|(xv, yv)| alpha * xv + beta * yv).collect();
        close(&combo, &expect, 1e-12);
    }

    #[test]
    fn dct2d_round_trip_and_naive_agreement() {
        for (r, c) in [(4usize, 8usize), (8, 8), (16, 4), (1, 8), (8, 1)] {
            let plan = Dct2::new(r, c);
            let mut scratch = plan.scratch();
            let src0 = test_signal(r * c, (r * 31 + c) as u64);
            let mut src = src0.clone();
            let mut spec = vec![0.0; r * c];
            plan.forward_into(&mut src, &mut spec, &mut scratch);
            // Separable naive check: DCT rows then columns.
            let mut rows_done = vec![0.0; r * c];
            for row in 0..r {
                let t = naive_dct2(&src0[row * c..(row + 1) * c]);
                rows_done[row * c..(row + 1) * c].copy_from_slice(&t);
            }
            for kc in 0..c {
                let col: Vec<f64> = (0..r).map(|row| rows_done[row * c + kc]).collect();
                let t = naive_dct2(&col);
                for (kr, v) in t.iter().enumerate() {
                    let got = spec[kc * r + kr];
                    assert!((got - v).abs() < 1e-11, "({r}x{c}) mode ({kc},{kr})");
                }
            }
            let mut back = vec![0.0; r * c];
            plan.inverse_into(&mut spec, &mut back, &mut scratch);
            close(&back, &src0, 1e-13);
        }
    }

    #[test]
    fn dct2d_bitwise_deterministic_across_thread_counts() {
        // Same convention as the pool kernels: the row-pair partition is
        // fixed by index, so 1 thread and N threads must agree *bitwise*.
        let (r, c) = (32, 64);
        let plan = Dct2::new(r, c);
        let src0 = test_signal(r * c, 0xDE7E_2141);
        let run = |threads: usize| {
            let pool = Arc::new(WorkerPool::new(threads));
            with_pool(&pool, || {
                let mut scratch = plan.scratch();
                let mut src = src0.clone();
                let mut spec = vec![0.0; r * c];
                plan.forward_into(&mut src, &mut spec, &mut scratch);
                let mut back = vec![0.0; r * c];
                plan.inverse_into(&mut spec, &mut back, &mut scratch);
                (spec, back)
            })
        };
        let (spec1, back1) = run(1);
        for threads in [2usize, 4] {
            let (spec_n, back_n) = run(threads);
            assert!(
                spec1.iter().zip(&spec_n).all(|(a, b)| a.to_bits() == b.to_bits()),
                "forward spectrum differs at {threads} threads"
            );
            assert!(
                back1.iter().zip(&back_n).all(|(a, b)| a.to_bits() == b.to_bits()),
                "round trip differs at {threads} threads"
            );
        }
    }
}
