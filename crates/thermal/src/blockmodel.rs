//! Block-granularity compact model (HotSpot's "block mode").
//!
//! One RC node per floorplan block instead of a grid: orders of magnitude
//! fewer unknowns, at the cost of intra-block temperature detail. Useful
//! for design-space sweeps and as an independent coarse cross-check of the
//! grid model (`crate::model::ThermalModel`).
//!
//! Simplifications relative to the grid model (documented deviations, both
//! in the spirit of HotSpot's own block mode):
//!
//! * the spreader and heatsink are single isothermal nodes (copper's
//!   conductivity makes this a good approximation — §4.2 of the paper);
//! * each block couples to the oil through the local coefficient `h(x)`
//!   evaluated at the block center, so flow-direction effects survive.

use crate::circuit::DieGeometry;
use crate::convection::LaminarFlow;
use crate::materials::SILICON;
use crate::package::Package;
use crate::pool;
use crate::power::PowerMap;
use crate::solve::SolveError;
use crate::sparse::{CsrMatrix, TripletMatrix};
use crate::stack::{Boundary, Layer, LayerStack, StackError};
use crate::units::kelvin_to_celsius;
use hotiron_floorplan::{Block, Floorplan};

/// Edge-adjacency tolerance as a fraction of the die's smaller dimension.
const EDGE_TOL: f64 = 1e-9;

/// A block-granularity thermal model of one die in one package.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::library;
/// use hotiron_thermal::blockmodel::BlockModel;
/// use hotiron_thermal::package::{OilSiliconPackage, Package};
/// use hotiron_thermal::power::PowerMap;
///
/// let plan = library::ev6();
/// let model = BlockModel::new(
///     plan.clone(),
///     Package::OilSilicon(OilSiliconPackage::paper_default()),
///     0.5e-3,
///     318.15,
/// );
/// let power = PowerMap::from_pairs(&plan, [("IntReg", 2.0)])?;
/// let temps = model.steady_celsius(&power)?;
/// let int_reg = temps[plan.block_index("IntReg").unwrap()];
/// assert!(int_reg > 45.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BlockModel {
    plan: Floorplan,
    g: CsrMatrix,
    ambient_g: Vec<f64>,
    cap: Vec<f64>,
    ambient: f64,
    node_count: usize,
}

impl BlockModel {
    /// Builds the block-granularity network by lowering the package through
    /// [`Package::to_stack`] (see [`BlockModel::from_stack`] for the open
    /// route).
    ///
    /// # Panics
    ///
    /// Panics if `die_thickness` or `ambient` is not positive, or if the
    /// package does not lower to a valid stack (use
    /// [`BlockModel::from_stack`] for a fallible build).
    pub fn new(plan: Floorplan, package: Package, die_thickness: f64, ambient: f64) -> Self {
        assert!(die_thickness > 0.0, "die thickness must be positive");
        let die =
            DieGeometry { width: plan.width(), height: plan.height(), thickness: die_thickness };
        let stack = package.to_stack(die).unwrap_or_else(|e| panic!("cannot lower package: {e}"));
        Self::from_stack(plan, &stack, ambient).unwrap_or_else(|e| panic!("invalid stack: {e}"))
    }

    /// Builds the block-granularity network from a [`LayerStack`].
    ///
    /// Block mode models only the **primary** (top) heat path: layers below
    /// the silicon and the bottom boundary are ignored, matching HotSpot's
    /// block mode, which has no secondary path either.
    ///
    /// # Errors
    ///
    /// Any [`StackError`] from validation, plus
    /// [`StackError::IncompatibleCooling`] when the top boundary is
    /// insulated (block mode would then have no path to ambient).
    ///
    /// # Panics
    ///
    /// Panics if `ambient` is not positive.
    pub fn from_stack(
        plan: Floorplan,
        stack: &LayerStack,
        ambient: f64,
    ) -> Result<Self, StackError> {
        assert!(ambient > 0.0, "ambient must be positive kelvin");
        let die_thickness = stack.layers.get(stack.si_index).map_or(0.0, |l| l.thickness);
        let die = DieGeometry {
            width: plan.width(),
            height: plan.height(),
            thickness: if die_thickness > 0.0 { die_thickness } else { 1.0 },
        };
        stack.validate(die)?;
        if matches!(stack.top, Boundary::Insulated) {
            return Err(StackError::IncompatibleCooling {
                reason: "block mode models only the primary (top) heat path, \
                         but the stack's top boundary is insulated"
                    .into(),
            });
        }
        let die_thickness = stack.silicon().thickness;
        let nb = plan.len();
        // Worst case: one oil node per block, one node per plate layer,
        // plus a few lumped nodes.
        let max_nodes = 2 * nb + stack.layers.len() + 4;
        let mut t = TripletMatrix::new(max_nodes);
        let mut cap = vec![0.0; max_nodes];
        let mut ambient_g = vec![0.0; max_nodes];

        // Silicon block nodes: capacitance + lateral couplings. The O(nb²)
        // pairwise adjacency scan fans out per source block on the pool
        // (worthwhile only past a few dozen blocks); the couplings are then
        // stamped serially in (i, j) order, so the matrix is identical to
        // the serial scan's at any thread count.
        let blocks: Vec<&Block> = plan.iter().collect();
        let scan_row = |i: usize| -> Vec<(usize, f64)> {
            let b = blocks[i];
            (i + 1..nb)
                .filter_map(|j| lateral_conductance(b, blocks[j], die_thickness).map(|g| (j, g)))
                .collect()
        };
        let rows: Vec<Vec<(usize, f64)>> = if nb >= 64 {
            let p = pool::current();
            pool::map_tasks(&p, nb, scan_row)
        } else {
            (0..nb).map(scan_row).collect()
        };
        for (i, b) in plan.iter().enumerate() {
            cap[i] = SILICON.capacitance(b.area() * die_thickness);
            for &(j, g) in &rows[i] {
                t.stamp_conductance(i, j, g);
            }
        }

        let used = stamp_primary(&plan, stack, &mut t, &mut cap, &mut ambient_g, nb);

        // Shrink to the used node count.
        let full = t.to_csr();
        let mut t2 = TripletMatrix::new(used);
        for i in 0..used {
            for (j, v) in full.row(i) {
                if j < used && v != 0.0 {
                    t2.add(i, j, v);
                }
            }
        }
        cap.truncate(used);
        ambient_g.truncate(used);
        Ok(Self { plan, g: t2.to_csr(), ambient_g, cap, ambient, node_count: used })
    }

    /// The floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.plan
    }

    /// Number of RC nodes (blocks + package).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Per-node heat capacities, J/K (blocks first, package nodes after).
    pub fn capacitance(&self) -> &[f64] {
        &self.cap
    }

    /// Steady-state block temperatures, °C, floorplan order.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotConverged`] if CG stalls.
    pub fn steady_celsius(&self, power: &PowerMap) -> Result<Vec<f64>, SolveError> {
        assert_eq!(power.len(), self.plan.len(), "one power per block");
        let n = self.node_count;
        let mut b: Vec<f64> = self.ambient_g.iter().map(|g| g * self.ambient).collect();
        for (i, p) in power.values().iter().enumerate() {
            b[i] += p;
        }
        let mut state = vec![self.ambient; n];
        let stats = crate::sparse::conjugate_gradient(&self.g, &b, &mut state, 1e-11, 20 * n + 500);
        if !stats.converged {
            return Err(SolveError::NotConverged { stats });
        }
        Ok(state[..self.plan.len()].iter().map(|&k| kelvin_to_celsius(k)).collect())
    }
}

/// Conductance between two blocks sharing an edge, or `None`.
fn lateral_conductance(a: &Block, b: &Block, t_si: f64) -> Option<f64> {
    let k = SILICON.conductivity();
    // Vertical shared edge (a right of b or b right of a).
    let share_y = (a.top().min(b.top()) - a.bottom().max(b.bottom())).max(0.0);
    let share_x = (a.right().min(b.right()) - a.left().max(b.left())).max(0.0);
    let touches_x = (a.right() - b.left()).abs() < EDGE_TOL + 1e-9
        || (b.right() - a.left()).abs() < EDGE_TOL + 1e-9;
    if touches_x && share_y > 0.0 {
        let dist = (a.width() + b.width()) / 2.0;
        return Some(k * t_si * share_y / dist);
    }
    // Horizontal shared edge.
    let touches_y = (a.top() - b.bottom()).abs() < EDGE_TOL + 1e-9
        || (b.top() - a.bottom()).abs() < EDGE_TOL + 1e-9;
    if touches_y && share_x > 0.0 {
        let dist = (a.height() + b.height()) / 2.0;
        return Some(k * t_si * share_x / dist);
    }
    None
}

/// An isothermal plate node created while walking the stack upward.
struct PlateNode<'a> {
    node: usize,
    layer: &'a Layer,
    side: f64,
    /// Area through which heat entered this plate from below (the die
    /// footprint for the first plate, the plate below's footprint after).
    entry_area: f64,
}

/// Stamps the primary (above-silicon) heat path of a validated stack:
/// die-footprint layers fold into series resistances, oversized plates
/// become isothermal nodes, and the top boundary attaches to the last plate
/// (or directly to the blocks when there is none). Returns the node count
/// used.
fn stamp_primary(
    plan: &Floorplan,
    stack: &LayerStack,
    t: &mut TripletMatrix,
    cap: &mut [f64],
    ambient_g: &mut [f64],
    next: usize,
) -> usize {
    let die_thickness = stack.silicon().thickness;
    let die_area = plan.width() * plan.height();
    let mut next = next;
    let mut folded: Vec<&Layer> = Vec::new();
    let mut prev: Option<PlateNode<'_>> = None;

    for def in stack.above_silicon() {
        let Some(side) = def.side else {
            folded.push(def);
            continue;
        };
        let node = next;
        next += 1;
        cap[node] = def.material.capacitance(side * side * def.thickness);
        match &prev {
            None => {
                // Per block: half die + folded layers + half plate.
                for (i, b) in plan.iter().enumerate() {
                    let mut r = 0.5 * SILICON.vertical_resistance(die_thickness, b.area());
                    for f in &folded {
                        r += f.material.vertical_resistance(f.thickness, b.area());
                    }
                    r += 0.5 * def.material.vertical_resistance(def.thickness, b.area());
                    t.stamp_conductance(i, node, 1.0 / r);
                }
                prev = Some(PlateNode { node, layer: def, side, entry_area: die_area });
            }
            Some(lower) => {
                // Plate to plate: half lower (through its entry footprint) +
                // folded layers + half upper (through the lower's footprint).
                let lower_sq = lower.side * lower.side;
                let mut r = 0.5
                    * lower
                        .layer
                        .material
                        .vertical_resistance(lower.layer.thickness, lower.entry_area);
                for f in &folded {
                    r += f.material.vertical_resistance(f.thickness, lower_sq);
                }
                r += 0.5 * def.material.vertical_resistance(def.thickness, lower_sq);
                t.stamp_conductance(lower.node, node, 1.0 / r);
                prev = Some(PlateNode { node, layer: def, side, entry_area: lower_sq });
            }
        }
        folded.clear();
    }

    match &stack.top {
        Boundary::Insulated => {
            // Rejected by the from_stack pre-check.
        }
        Boundary::Lumped { r_total, c_total } => {
            let coolant = next;
            next += 1;
            cap[coolant] = c_total.max(1e-9);
            let g_half_total = 2.0 / r_total;
            match &prev {
                Some(plate) => {
                    let g = if folded.is_empty() {
                        g_half_total
                    } else {
                        let plate_sq = plate.side * plate.side;
                        let mut r = r_total / 2.0;
                        for f in &folded {
                            r += f.material.vertical_resistance(f.thickness, plate_sq);
                        }
                        1.0 / r
                    };
                    t.stamp_conductance(plate.node, coolant, g);
                }
                None => {
                    // Directly over the bare die: apportion by block area, as
                    // the grid assembler apportions by cell area.
                    for (i, b) in plan.iter().enumerate() {
                        let g = if folded.is_empty() {
                            g_half_total * (b.area() / die_area)
                        } else {
                            let mut r = (r_total / 2.0) * (die_area / b.area());
                            for f in &folded {
                                r += f.material.vertical_resistance(f.thickness, b.area());
                            }
                            1.0 / r
                        };
                        t.stamp_conductance(i, coolant, g);
                    }
                }
            }
            t.stamp_grounded_conductance(coolant, g_half_total);
            ambient_g[coolant] = g_half_total;
        }
        Boundary::OilFilm(spec) => match &prev {
            None => {
                // Oil over the bare die: one oil node per block at the block
                // center's local h(x).
                let (w, h) = (plan.width(), plan.height());
                let length = spec.direction.flow_length(w, h);
                let flow = LaminarFlow::new(spec.fluid, spec.velocity, length);
                for (i, b) in plan.iter().enumerate() {
                    let (cx, cy) = b.center();
                    let x = spec
                        .direction
                        .distance_from_leading_edge(cx, cy, w, h)
                        .max(length / 1000.0);
                    let h_loc = if spec.local_h { flow.local_h(x) } else { flow.average_h() };
                    let delta = if spec.local_boundary_layer {
                        flow.local_boundary_layer_thickness(x)
                    } else {
                        flow.boundary_layer_thickness()
                    };
                    let g = 2.0 * h_loc * b.area();
                    let node = next;
                    next += 1;
                    cap[node] =
                        (spec.fluid.volumetric_heat_capacity() * b.area() * delta).max(1e-12);
                    let g_in = if folded.is_empty() {
                        g
                    } else {
                        let mut r = 1.0 / g;
                        for f in &folded {
                            r += f.material.vertical_resistance(f.thickness, b.area());
                        }
                        1.0 / r
                    };
                    t.stamp_conductance(i, node, g_in);
                    t.stamp_grounded_conductance(node, g);
                    ambient_g[node] = g;
                }
            }
            Some(plate) => {
                // Oil washing the top plate (e.g. the spreader): a single oil
                // node at the plate's average h over its full footprint.
                let length = spec.direction.flow_length(plate.side, plate.side);
                let flow = LaminarFlow::new(spec.fluid, spec.velocity, length);
                let area = plate.side * plate.side;
                let g = 2.0 * flow.average_h() * area;
                let delta = flow.boundary_layer_thickness();
                let oil = next;
                next += 1;
                cap[oil] = (spec.fluid.volumetric_heat_capacity() * area * delta).max(1e-12);
                let g_in = if folded.is_empty() {
                    g
                } else {
                    let mut r = 1.0 / g;
                    for f in &folded {
                        r += f.material.vertical_resistance(f.thickness, area);
                    }
                    1.0 / r
                };
                t.stamp_conductance(plate.node, oil, g_in);
                t.stamp_grounded_conductance(oil, g);
                ambient_g[oil] = g;
            }
        },
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, ThermalModel};
    use crate::package::{AirSinkPackage, OilSiliconPackage};
    use hotiron_floorplan::library;

    const AMBIENT: f64 = 318.15;

    #[test]
    fn oil_block_model_matches_grid_model_ordering() {
        let plan = library::ev6();
        let power = PowerMap::from_pairs(&plan, [("IntReg", 3.0), ("Dcache", 5.0)]).unwrap();
        let bm = BlockModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            0.5e-3,
            AMBIENT,
        );
        let bt = bm.steady_celsius(&power).unwrap();
        let gm = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(16, 16),
        )
        .unwrap();
        let gt = gm.steady_state(&power).unwrap().block_celsius();
        // Hottest and coolest blocks agree between the two discretizations.
        let argmax = |v: &[f64]| v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(argmax(&bt), argmax(&gt));
        // Powered blocks agree within a generous compact-vs-compact band.
        for name in ["IntReg", "Dcache"] {
            let i = plan.block_index(name).unwrap();
            let (a, b) = (bt[i] - 45.0, gt[i] - 45.0);
            let rel = (a - b).abs() / b.max(1.0);
            assert!(rel < 0.5, "{name}: block {a} vs grid {b}");
        }
    }

    #[test]
    fn air_block_model_energy_balance() {
        let plan = library::ev6();
        let power = PowerMap::from_pairs(&plan, [("IntReg", 4.0), ("L2", 10.0)]).unwrap();
        let bm = BlockModel::new(
            plan.clone(),
            Package::AirSink(AirSinkPackage::paper_default()),
            0.5e-3,
            AMBIENT,
        );
        let temps = bm.steady_celsius(&power).unwrap();
        // Average rise ≈ P·Rconv since the sink is isothermal.
        let avg_rise = {
            let mut num = 0.0;
            let mut den = 0.0;
            for (i, b) in plan.iter().enumerate() {
                num += temps[i] * b.area();
                den += b.area();
            }
            num / den - 45.0
        };
        assert!((avg_rise - 14.0).abs() < 4.0, "avg rise {avg_rise} vs P*Rconv = 14");
    }

    #[test]
    fn block_model_flow_direction_effects_survive() {
        let plan = library::ev6();
        let power = PowerMap::from_pairs(&plan, [("IntReg", 3.0)]).unwrap();
        let t_for = |dir| {
            let bm = BlockModel::new(
                plan.clone(),
                Package::OilSilicon(OilSiliconPackage::paper_default().with_direction(dir)),
                0.5e-3,
                AMBIENT,
            );
            let i = plan.block_index("IntReg").unwrap();
            bm.steady_celsius(&power).unwrap()[i]
        };
        use crate::convection::FlowDirection::*;
        assert!(t_for(TopToBottom) < t_for(BottomToTop) - 2.0);
    }

    #[test]
    fn block_model_is_small_and_fast() {
        let plan = library::ev6();
        let bm = BlockModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            0.5e-3,
            AMBIENT,
        );
        // 18 blocks + 18 oil nodes.
        assert_eq!(bm.node_count(), 36);
        let gm = ThermalModel::new(
            plan,
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default(),
        )
        .unwrap();
        assert!(bm.node_count() < gm.circuit().node_count() / 10);
    }

    #[test]
    fn stack_route_matches_package_route_bitwise() {
        // Lowering through the IR and direct package construction must agree
        // bit for bit in block mode, for both paper packages.
        let plan = library::ev6();
        let die = DieGeometry { width: plan.width(), height: plan.height(), thickness: 0.5e-3 };
        let power = PowerMap::from_pairs(&plan, [("IntReg", 3.0), ("L2", 9.0)]).unwrap();
        for pkg in [
            Package::AirSink(crate::package::AirSinkPackage::paper_default()),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
        ] {
            let direct = BlockModel::new(plan.clone(), pkg, 0.5e-3, AMBIENT);
            let stack = pkg.to_stack(die).unwrap();
            let via_stack = BlockModel::from_stack(plan.clone(), &stack, AMBIENT).unwrap();
            assert_eq!(direct.node_count(), via_stack.node_count(), "{}", pkg.label());
            assert_eq!(direct.capacitance(), via_stack.capacitance(), "{}", pkg.label());
            let a = direct.steady_celsius(&power).unwrap();
            let b = via_stack.steady_celsius(&power).unwrap();
            assert_eq!(a, b, "{} temperatures must be bitwise equal", pkg.label());
        }
    }

    #[test]
    fn insulated_top_is_rejected_in_block_mode() {
        let plan = library::ev6();
        let stack = crate::stack::LayerStack::new(
            vec![crate::stack::Layer::new("silicon", SILICON, 0.5e-3)],
            0,
        )
        .with_bottom(crate::stack::Boundary::Lumped { r_total: 5.0, c_total: 10.0 });
        let err = BlockModel::from_stack(plan, &stack, AMBIENT).unwrap_err();
        assert!(matches!(err, StackError::IncompatibleCooling { .. }), "{err:?}");
    }

    #[test]
    fn oil_washed_spreader_runs_in_block_mode() {
        // Inexpressible under the old enum: oil washing the spreader top.
        let plan = library::ev6();
        let air = crate::package::AirSinkPackage::paper_default();
        let stack = crate::stack::LayerStack::new(
            vec![
                crate::stack::Layer::new("silicon", SILICON, 0.5e-3),
                crate::stack::Layer::new(
                    "interface",
                    air.interface_material,
                    air.interface_thickness,
                ),
                crate::stack::Layer::plate(
                    "spreader",
                    air.spreader.material,
                    air.spreader.thickness,
                    air.spreader.side,
                ),
            ],
            0,
        )
        .with_top(crate::stack::Boundary::OilFilm(crate::stack::OilFilm {
            fluid: crate::fluid::MINERAL_OIL,
            velocity: 10.0,
            direction: crate::convection::FlowDirection::LeftToRight,
            local_h: true,
            local_boundary_layer: true,
        }));
        let bm = BlockModel::from_stack(plan.clone(), &stack, AMBIENT).unwrap();
        // 18 blocks + spreader + 1 oil node.
        assert_eq!(bm.node_count(), plan.len() + 2);
        let power = PowerMap::from_pairs(&plan, [("IntReg", 3.0)]).unwrap();
        let temps = bm.steady_celsius(&power).unwrap();
        let i = plan.block_index("IntReg").unwrap();
        assert!(temps[i] > 45.0, "powered block must heat: {}", temps[i]);
    }

    #[test]
    fn lateral_conductance_detects_shared_edges() {
        let a = Block::new("a", 1e-3, 1e-3, 0.0, 0.0);
        let b = Block::new("b", 1e-3, 1e-3, 1e-3, 0.0);
        let c = Block::new("c", 1e-3, 1e-3, 5e-3, 0.0);
        assert!(lateral_conductance(&a, &b, 0.5e-3).is_some());
        assert!(lateral_conductance(&a, &c, 0.5e-3).is_none());
        // Corner contact only: zero shared length, no coupling.
        let d = Block::new("d", 1e-3, 1e-3, 1e-3, 1e-3);
        assert!(lateral_conductance(&a, &d, 0.5e-3).is_none());
        // Symmetric.
        let g1 = lateral_conductance(&a, &b, 0.5e-3).unwrap();
        let g2 = lateral_conductance(&b, &a, 0.5e-3).unwrap();
        assert!((g1 - g2).abs() < 1e-15);
    }
}

impl BlockModel {
    /// Advances a transient state by `duration` seconds under constant
    /// power using backward Euler with step `dt`. `state` holds kelvin per
    /// node ([`BlockModel::initial_state`] to start from ambient).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotConverged`] if an inner solve stalls.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length or `dt`/`duration` are not
    /// positive.
    pub fn advance(
        &self,
        state: &mut [f64],
        power: &PowerMap,
        dt: f64,
        duration: f64,
    ) -> Result<(), SolveError> {
        assert_eq!(state.len(), self.node_count, "state length mismatch");
        assert!(dt > 0.0 && duration >= 0.0, "dt and duration must be positive");
        let c_over_dt: Vec<f64> = self.cap.iter().map(|c| c / dt).collect();
        let a = self.g.add_diagonal(&c_over_dt);
        let steps = (duration / dt).round().max(1.0) as usize;
        for _ in 0..steps {
            let mut b: Vec<f64> = self.ambient_g.iter().map(|g| g * self.ambient).collect();
            for (i, p) in power.values().iter().enumerate() {
                b[i] += p;
            }
            for i in 0..b.len() {
                b[i] += c_over_dt[i] * state[i];
            }
            let stats =
                crate::sparse::conjugate_gradient(&a, &b, state, 1e-11, 20 * self.node_count + 500);
            if !stats.converged {
                return Err(SolveError::NotConverged { stats });
            }
        }
        Ok(())
    }

    /// An all-ambient state vector.
    pub fn initial_state(&self) -> Vec<f64> {
        vec![self.ambient; self.node_count]
    }

    /// Block temperatures (°C) from a state vector.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length.
    pub fn block_celsius_of(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.node_count);
        state[..self.plan.len()].iter().map(|&k| kelvin_to_celsius(k)).collect()
    }
}

#[cfg(test)]
mod transient_tests {
    use super::*;
    use crate::package::{AirSinkPackage, OilSiliconPackage};
    use hotiron_floorplan::library;

    #[test]
    fn block_transient_approaches_block_steady() {
        let plan = library::ev6();
        let bm = BlockModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            0.5e-3,
            318.15,
        );
        let power = PowerMap::from_pairs(&plan, [("Icache", 10.0)]).unwrap();
        let steady = bm.steady_celsius(&power).unwrap();
        let mut state = bm.initial_state();
        bm.advance(&mut state, &power, 0.02, 8.0).unwrap();
        let now = bm.block_celsius_of(&state);
        let i = plan.block_index("Icache").unwrap();
        assert!((now[i] - steady[i]).abs() < 1.0, "{} vs {}", now[i], steady[i]);
    }

    #[test]
    fn block_transient_short_term_difference_survives() {
        // The paper's headline transient asymmetry is visible even at block
        // granularity: after 3 ms of cooling AIR sheds far more of its rise.
        let plan = library::ev6();
        let power = PowerMap::from_pairs(&plan, [("IntReg", 4.0)]).unwrap();
        let zero = PowerMap::zeros(&plan);
        let recovery = |pkg: Package| {
            let bm = BlockModel::new(plan.clone(), pkg, 0.5e-3, 318.15);
            let mut state = bm.initial_state();
            // Warm to steady, then 3 ms off.
            bm.advance(&mut state, &power, 0.05, 400.0).unwrap();
            let i = plan.block_index("IntReg").unwrap();
            let t0 = bm.block_celsius_of(&state)[i];
            bm.advance(&mut state, &zero, 2.5e-4, 3e-3).unwrap();
            let t1 = bm.block_celsius_of(&state)[i];
            (t0 - t1) / (t0 - 45.0)
        };
        let air = recovery(Package::AirSink(AirSinkPackage::paper_default()));
        let oil = recovery(Package::OilSilicon(OilSiliconPackage::paper_default()));
        assert!(air > 2.0 * oil, "air {air:.3} vs oil {oil:.3}");
    }
}
