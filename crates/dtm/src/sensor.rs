//! On-die thermal sensors.

use hotiron_thermal::Solution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single point thermal sensor at die coordinates `(x, y)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensor {
    /// Label for reports.
    pub name: String,
    /// x position on the die, m.
    pub x: f64,
    /// y position on the die, m.
    pub y: f64,
    /// Gaussian read noise, °C (1σ).
    pub noise_sigma: f64,
    /// Static calibration offset, °C.
    pub offset: f64,
}

impl Sensor {
    /// A noiseless, offset-free sensor.
    pub fn ideal(name: impl Into<String>, x: f64, y: f64) -> Self {
        Self { name: name.into(), x, y, noise_sigma: 0.0, offset: 0.0 }
    }

    /// Adds read noise (1σ, °C).
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise must be non-negative");
        self.noise_sigma = sigma;
        self
    }

    /// Adds a static offset (°C).
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }
}

/// A set of sensors with shared sampling characteristics.
///
/// # Examples
///
/// ```
/// use hotiron_dtm::{Sensor, SensorArray};
///
/// let arr = SensorArray::new(
///     vec![Sensor::ideal("s0", 1e-3, 1e-3)],
///     60e-6, // §5.2's 60 µs sampling interval
///     0.1,   // 0.1 °C quantization
///     42,
/// );
/// assert_eq!(arr.len(), 1);
/// ```
#[derive(Debug)]
pub struct SensorArray {
    sensors: Vec<Sensor>,
    /// Minimum time between samples, s.
    sample_interval: f64,
    /// Reading quantization step, °C (0 = continuous).
    quantization: f64,
    rng: StdRng,
}

impl SensorArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if `sensors` is empty, the interval is not positive, or the
    /// quantization is negative.
    pub fn new(sensors: Vec<Sensor>, sample_interval: f64, quantization: f64, seed: u64) -> Self {
        assert!(!sensors.is_empty(), "need at least one sensor");
        assert!(sample_interval > 0.0, "sample interval must be positive");
        assert!(quantization >= 0.0, "quantization must be non-negative");
        Self { sensors, sample_interval, quantization, rng: StdRng::seed_from_u64(seed) }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the array is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// The sensors.
    pub fn sensors(&self) -> &[Sensor] {
        &self.sensors
    }

    /// Minimum time between samples, s.
    pub fn sample_interval(&self) -> f64 {
        self.sample_interval
    }

    /// Reads every sensor from a thermal solution, applying offset, noise
    /// and quantization. Returns °C per sensor.
    pub fn read(&mut self, sol: &Solution<'_>) -> Vec<f64> {
        self.read_with(|s| sol.celsius_at(s.x, s.y))
    }

    /// Reads every sensor from a raw row-major °C field covering a
    /// `width x height` plane — the board mode: the field is a PCB
    /// back-face plane (or any exported grid), so the array models the
    /// contactless board-back characterization setup without the sensors
    /// knowing where the field came from. Sampling is nearest-cell;
    /// sensors outside the plane clamp to the edge cell.
    ///
    /// # Panics
    ///
    /// Panics if `field.len() != rows * cols` or a dimension is zero.
    pub fn read_field(
        &mut self,
        field: &[f64],
        rows: usize,
        cols: usize,
        width: f64,
        height: f64,
    ) -> Vec<f64> {
        assert!(rows > 0 && cols > 0, "field grid must be positive");
        assert_eq!(field.len(), rows * cols, "field length must match its grid");
        self.read_with(|s| {
            let c = ((s.x / width * cols as f64) as usize).min(cols - 1);
            let r = ((s.y / height * rows as f64) as usize).min(rows - 1);
            field[r * cols + c]
        })
    }

    /// Shared sensing path: per-sensor truth lookup, then offset, noise
    /// and quantization.
    fn read_with(&mut self, truth: impl Fn(&Sensor) -> f64) -> Vec<f64> {
        let q = self.quantization;
        self.sensors
            .iter()
            .map(|s| {
                let mut t = truth(s) + s.offset;
                if s.noise_sigma > 0.0 {
                    // Box–Muller from two uniforms; StdRng is deterministic.
                    let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = self.rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    t += s.noise_sigma * z;
                }
                if q > 0.0 {
                    t = (t / q).round() * q;
                }
                t
            })
            .collect()
    }

    /// The hottest reading across the array, °C.
    pub fn read_max(&mut self, sol: &Solution<'_>) -> f64 {
        self.read(sol).into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    /// A uniform `m x m` grid of ideal sensors over a `width x height` die.
    pub fn uniform_grid(m: usize, width: f64, height: f64, seed: u64) -> Self {
        assert!(m > 0, "grid must have at least one sensor");
        let mut sensors = Vec::with_capacity(m * m);
        for iy in 0..m {
            for ix in 0..m {
                sensors.push(Sensor::ideal(
                    format!("s{ix}_{iy}"),
                    (ix as f64 + 0.5) * width / m as f64,
                    (iy as f64 + 0.5) * height / m as f64,
                ));
            }
        }
        Self::new(sensors, 60e-6, 0.0, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotiron_floorplan::library;
    use hotiron_thermal::{ModelConfig, OilSiliconPackage, Package, PowerMap, ThermalModel};

    fn solved_model() -> (ThermalModel, PowerMap) {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(16, 16),
        )
        .unwrap();
        let power = PowerMap::from_pairs(&plan, [("IntReg", 3.0)]).unwrap();
        (model, power)
    }

    #[test]
    fn ideal_sensor_reads_field() {
        let (model, power) = solved_model();
        let sol = model.steady_state(&power).unwrap();
        let plan = model.floorplan();
        let (x, y) = plan.block("IntReg").unwrap().center();
        let mut arr = SensorArray::new(vec![Sensor::ideal("hot", x, y)], 60e-6, 0.0, 1);
        let r = arr.read(&sol);
        assert!((r[0] - sol.celsius_at(x, y)).abs() < 1e-12);
        assert!(r[0] > sol.celsius_at(1e-3, 1e-3), "hot-spot sensor reads hotter than corner");
    }

    #[test]
    fn offset_and_quantization_apply() {
        let (model, power) = solved_model();
        let sol = model.steady_state(&power).unwrap();
        let mut arr =
            SensorArray::new(vec![Sensor::ideal("s", 8e-3, 8e-3).with_offset(5.0)], 60e-6, 1.0, 1);
        let r = arr.read(&sol)[0];
        let truth = sol.celsius_at(8e-3, 8e-3) + 5.0;
        assert!((r - truth).abs() <= 0.5 + 1e-12, "quantized to 1 °C: {r} vs {truth}");
        assert!((r - r.round()).abs() < 1e-9, "reading lies on the 1 °C grid");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let (model, power) = solved_model();
        let sol = model.steady_state(&power).unwrap();
        let mk = |seed| {
            SensorArray::new(vec![Sensor::ideal("s", 8e-3, 8e-3).with_noise(0.5)], 60e-6, 0.0, seed)
        };
        let a = mk(9).read(&sol);
        let b = mk(9).read(&sol);
        let c = mk(10).read(&sol);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_has_plausible_spread() {
        let (model, power) = solved_model();
        let sol = model.steady_state(&power).unwrap();
        let mut arr =
            SensorArray::new(vec![Sensor::ideal("s", 8e-3, 8e-3).with_noise(1.0)], 60e-6, 0.0, 3);
        let truth = sol.celsius_at(8e-3, 8e-3);
        let n = 500;
        let readings: Vec<f64> = (0..n).map(|_| arr.read(&sol)[0]).collect();
        let mean = readings.iter().sum::<f64>() / n as f64;
        let var = readings.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - truth).abs() < 0.2, "mean {mean} truth {truth}");
        assert!((var.sqrt() - 1.0).abs() < 0.25, "σ {}", var.sqrt());
    }

    #[test]
    fn uniform_grid_covers_die() {
        let arr = SensorArray::uniform_grid(4, 0.016, 0.016, 1);
        assert_eq!(arr.len(), 16);
        for s in arr.sensors() {
            assert!(s.x > 0.0 && s.x < 0.016);
            assert!(s.y > 0.0 && s.y < 0.016);
        }
    }

    #[test]
    fn read_field_samples_nearest_cell() {
        // 2x3 plane over 3 cm x 2 cm: cell (r=1, c=2) holds 50 °C.
        let field = vec![20.0, 21.0, 22.0, 30.0, 31.0, 50.0];
        let mut arr = SensorArray::new(
            vec![
                Sensor::ideal("hot", 0.025, 0.015),  // inside cell (1, 2)
                Sensor::ideal("edge", 0.031, 0.021), // past both extents: clamps to (1, 2)
                Sensor::ideal("cold", 0.001, 0.001), // cell (0, 0)
            ],
            60e-6,
            0.0,
            1,
        );
        let r = arr.read_field(&field, 2, 3, 0.03, 0.02);
        assert_eq!(r, vec![50.0, 50.0, 20.0]);
    }

    #[test]
    fn read_field_applies_offset_and_quantization() {
        let field = vec![40.26];
        let mut arr = SensorArray::new(
            vec![Sensor::ideal("s", 0.5e-3, 0.5e-3).with_offset(2.0)],
            60e-6,
            0.5,
            1,
        );
        let r = arr.read_field(&field, 1, 1, 1e-3, 1e-3)[0];
        assert!((r - 42.5).abs() < 1e-12, "offset then quantized to 0.5 °C: {r}");
    }

    #[test]
    #[should_panic(expected = "field length must match its grid")]
    fn read_field_rejects_mismatched_grid() {
        let mut arr = SensorArray::uniform_grid(2, 0.01, 0.01, 1);
        arr.read_field(&[1.0, 2.0, 3.0], 2, 2, 0.01, 0.01);
    }

    #[test]
    fn read_max_picks_hottest() {
        let (model, power) = solved_model();
        let sol = model.steady_state(&power).unwrap();
        let plan = model.floorplan();
        let (hx, hy) = plan.block("IntReg").unwrap().center();
        let mut arr = SensorArray::new(
            vec![Sensor::ideal("cold", 1e-3, 1e-3), Sensor::ideal("hot", hx, hy)],
            60e-6,
            0.0,
            1,
        );
        let max = arr.read_max(&sol);
        assert!((max - sol.celsius_at(hx, hy)).abs() < 1e-12);
    }
}
