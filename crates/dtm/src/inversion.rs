//! Temperature→power reverse engineering (§5.4).
//!
//! IR studies (Hamann et al., Mesa-Martinez et al.) invert measured thermal
//! maps into per-block power estimates. Because the steady compact model is
//! *linear* in block power, the silicon field is `T = A·p + T_amb` where
//! column `j` of `A` is the unit response of block `j`. The inverter builds
//! `A` with one steady solve per block and recovers `p` by least squares.
//!
//! The paper's warning: if the inversion model ignores the oil-flow
//! direction (uniform `h`), downstream cores *appear* to burn more power —
//! an artifact this module reproduces (see the `figures inversion` bench).

use hotiron_thermal::{PowerMap, ThermalError, ThermalModel};

/// Least-squares power estimator for a given (assumed) thermal model.
///
/// # Examples
///
/// ```
/// use hotiron_floorplan::library;
/// use hotiron_dtm::PowerInverter;
/// use hotiron_thermal::{ModelConfig, OilSiliconPackage, Package, PowerMap, ThermalModel};
///
/// let plan = library::multicore(2, 2, 0.016, 0.016);
/// let model = ThermalModel::new(
///     plan.clone(),
///     Package::OilSilicon(OilSiliconPackage::paper_default()),
///     ModelConfig::paper_default().with_grid(8, 8),
/// )?;
/// let truth = PowerMap::from_vec(&plan, vec![5.0, 3.0, 4.0, 6.0]);
/// let observed = model.steady_state(&truth)?;
/// let inv = PowerInverter::new(&model)?;
/// let est = inv.invert(observed.silicon_cells())?;
/// for (e, t) in est.iter().zip(truth.values()) {
///     assert!((e - t).abs() < 0.2, "estimate {e} vs truth {t}");
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PowerInverter<'m> {
    model: &'m ThermalModel,
    /// Unit responses: `basis[j][cell]` = silicon rise (K) for 1 W in block j.
    basis: Vec<Vec<f64>>,
}

impl<'m> PowerInverter<'m> {
    /// Precomputes the unit-response basis (one steady solve per block).
    ///
    /// # Errors
    ///
    /// Propagates steady-solve failures.
    pub fn new(model: &'m ThermalModel) -> Result<Self, ThermalError> {
        let plan = model.floorplan();
        let ambient = model.ambient();
        let mut basis = Vec::with_capacity(plan.len());
        for j in 0..plan.len() {
            let mut values = vec![0.0; plan.len()];
            values[j] = 1.0;
            let p = PowerMap::from_vec(plan, values);
            let sol = model.steady_state(&p)?;
            basis.push(sol.silicon_cells().iter().map(|t| t - ambient).collect());
        }
        Ok(Self { model, basis })
    }

    /// Estimates per-block powers (W) from an observed silicon temperature
    /// field (kelvin, one entry per grid cell).
    ///
    /// # Errors
    ///
    /// Returns an error if the normal equations are singular (degenerate
    /// floorplan/grid combination).
    ///
    /// # Panics
    ///
    /// Panics if `observed_cells` has the wrong length.
    pub fn invert(&self, observed_cells: &[f64]) -> Result<Vec<f64>, ThermalError> {
        let n_cells = self.model.mapping().cell_count();
        assert_eq!(observed_cells.len(), n_cells, "one temperature per grid cell");
        let nb = self.basis.len();
        let ambient = self.model.ambient();
        let rise: Vec<f64> = observed_cells.iter().map(|t| t - ambient).collect();
        // Ridge-regularized normal equations: (AᵀA + λI) p = Aᵀ r. Blocks
        // smaller than a grid cell produce nearly collinear unit responses;
        // the tiny λ selects the minimum-norm split instead of huge
        // cancelling estimates, at negligible bias for well-conditioned
        // systems.
        let mut ata = vec![vec![0.0; nb]; nb];
        let mut atr = vec![0.0; nb];
        #[allow(clippy::needless_range_loop)] // symmetric fill touches two rows per entry
        for i in 0..nb {
            for j in i..nb {
                let v: f64 = self.basis[i].iter().zip(&self.basis[j]).map(|(a, b)| a * b).sum();
                ata[i][j] = v;
                if i != j {
                    ata[j][i] = v;
                }
            }
            atr[i] = self.basis[i].iter().zip(&rise).map(|(a, r)| a * r).sum();
        }
        let mean_diag: f64 = (0..nb).map(|i| ata[i][i]).sum::<f64>() / nb as f64;
        let lambda = 1e-6 * mean_diag;
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += lambda;
        }
        solve_dense(ata, atr)
            .ok_or_else(|| ThermalError::Config("singular inversion system".into()))
    }
}

/// Gaussian elimination with partial pivoting for the small dense normal
/// equations. Returns `None` if singular.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    #[allow(clippy::needless_range_loop)] // column-major elimination reads/writes many rows
    for col in 0..n {
        // Pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty range");
        if pivot_val < 1e-30 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for r in (col + 1)..n {
            let f = a[r][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in (row + 1)..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotiron_floorplan::library;
    use hotiron_thermal::{FlowDirection, ModelConfig, OilSiliconPackage, Package, ThermalModel};

    #[test]
    fn solve_dense_basic() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_dense(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_dense(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn self_inversion_recovers_power() {
        let plan = library::multicore(2, 2, 0.016, 0.016);
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(12, 12),
        )
        .unwrap();
        let truth = PowerMap::from_vec(&plan, vec![2.0, 8.0, 5.0, 3.0]);
        let obs = model.steady_state(&truth).unwrap();
        let inv = PowerInverter::new(&model).unwrap();
        let est = inv.invert(obs.silicon_cells()).unwrap();
        for (e, t) in est.iter().zip(truth.values()) {
            assert!((e - t).abs() < 0.05, "est {e} vs truth {t}");
        }
    }

    #[test]
    fn direction_unaware_inversion_biases_downstream_cores() {
        // The §5.4 artifact: chip cooled with left→right oil flow, but the
        // inversion model assumes uniform h. Each core truly burns the same
        // power; the estimate must inflate downstream (right) cores.
        let plan = library::multicore(4, 1, 0.02, 0.01);
        let cfg = ModelConfig::paper_default().with_grid(8, 16);
        let real = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(
                OilSiliconPackage::paper_default().with_direction(FlowDirection::LeftToRight),
            ),
            cfg,
        )
        .unwrap();
        let assumed = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default().with_uniform_h()),
            cfg,
        )
        .unwrap();
        let truth = PowerMap::from_vec(&plan, vec![4.0; 4]);
        let obs = real.steady_state(&truth).unwrap();
        let inv = PowerInverter::new(&assumed).unwrap();
        let est = inv.invert(obs.silicon_cells()).unwrap();
        assert!(
            est[3] > est[0] * 1.05,
            "downstream core must look hotter → more estimated power: {est:?}"
        );
    }
}
