//! Threshold-triggered dynamic thermal management.

/// Whether DTM is currently throttling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DtmState {
    /// Full speed.
    Running,
    /// Throttled (dynamic power scaled down).
    Engaged,
}

/// Cumulative DTM statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DtmStats {
    /// Number of distinct engagements.
    pub engagements: usize,
    /// Total time spent throttled, s.
    pub throttled_time: f64,
    /// Total observed time, s.
    pub total_time: f64,
    /// Samples where the *true* temperature exceeded the trigger while DTM
    /// was not engaged (missed violations).
    pub missed_violations: usize,
}

impl DtmStats {
    /// Fraction of time spent throttled — the performance-penalty proxy
    /// (`throttle` slows the core while engaged).
    pub fn duty(&self) -> f64 {
        if self.total_time > 0.0 {
            self.throttled_time / self.total_time
        } else {
            0.0
        }
    }
}

/// A threshold DTM controller with hysteresis and a minimum engagement
/// duration (the §5.1 "engagement duration" knob).
///
/// When the sensed maximum temperature crosses `trigger`, dynamic power is
/// scaled by `throttle` for at least `min_engagement` seconds, and until the
/// sensed temperature falls below `release`.
///
/// # Examples
///
/// ```
/// use hotiron_dtm::ThresholdDtm;
///
/// let mut dtm = ThresholdDtm::new(85.0, 82.0, 0.5, 3e-3);
/// assert_eq!(dtm.update(80.0, 80.0, 0.0), 1.0); // cool: full speed
/// assert_eq!(dtm.update(86.0, 86.0, 1e-3), 0.5); // hot: throttled
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdDtm {
    trigger: f64,
    release: f64,
    throttle: f64,
    min_engagement: f64,
    state: DtmState,
    engaged_at: f64,
    last_time: Option<f64>,
    stats: DtmStats,
}

impl ThresholdDtm {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if `release > trigger`, `throttle` is outside `(0, 1]`, or the
    /// engagement duration is negative.
    pub fn new(trigger: f64, release: f64, throttle: f64, min_engagement: f64) -> Self {
        assert!(release <= trigger, "release must not exceed trigger");
        assert!(throttle > 0.0 && throttle <= 1.0, "throttle factor must be in (0, 1]");
        assert!(min_engagement >= 0.0, "engagement duration must be non-negative");
        Self {
            trigger,
            release,
            throttle,
            min_engagement,
            state: DtmState::Running,
            engaged_at: 0.0,
            last_time: None,
            stats: DtmStats::default(),
        }
    }

    /// Trigger threshold, °C.
    pub fn trigger(&self) -> f64 {
        self.trigger
    }

    /// Current state.
    pub fn state(&self) -> DtmState {
        self.state
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DtmStats {
        self.stats
    }

    /// Advances the controller to time `now` with the *sensed* maximum
    /// temperature and the *true* maximum (for missed-violation accounting;
    /// pass the sensed value twice if ground truth is unknown). Returns the
    /// dynamic-power factor to apply: 1.0 (full speed) or the throttle
    /// factor.
    pub fn update(&mut self, sensed_max: f64, true_max: f64, now: f64) -> f64 {
        let dt = self.last_time.map_or(0.0, |t| (now - t).max(0.0));
        self.last_time = Some(now);
        self.stats.total_time += dt;
        if self.state == DtmState::Engaged {
            self.stats.throttled_time += dt;
        }
        match self.state {
            DtmState::Running => {
                if true_max > self.trigger && sensed_max <= self.trigger {
                    self.stats.missed_violations += 1;
                }
                if sensed_max > self.trigger {
                    self.state = DtmState::Engaged;
                    self.engaged_at = now;
                    self.stats.engagements += 1;
                }
            }
            DtmState::Engaged => {
                let held = now - self.engaged_at;
                if held >= self.min_engagement && sensed_max < self.release {
                    self.state = DtmState::Running;
                }
            }
        }
        match self.state {
            DtmState::Running => 1.0,
            DtmState::Engaged => self.throttle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engages_and_releases_with_hysteresis() {
        let mut dtm = ThresholdDtm::new(85.0, 82.0, 0.5, 0.0);
        assert_eq!(dtm.update(80.0, 80.0, 0.0), 1.0);
        assert_eq!(dtm.update(86.0, 86.0, 1.0), 0.5);
        // Between release and trigger: stays engaged.
        assert_eq!(dtm.update(83.0, 83.0, 2.0), 0.5);
        // Below release: released.
        assert_eq!(dtm.update(81.0, 81.0, 3.0), 1.0);
        assert_eq!(dtm.stats().engagements, 1);
    }

    #[test]
    fn honors_min_engagement() {
        let mut dtm = ThresholdDtm::new(85.0, 82.0, 0.5, 5.0);
        dtm.update(86.0, 86.0, 0.0);
        // Cool again immediately, but must stay engaged for 5 s.
        assert_eq!(dtm.update(70.0, 70.0, 1.0), 0.5);
        assert_eq!(dtm.update(70.0, 70.0, 4.9), 0.5);
        assert_eq!(dtm.update(70.0, 70.0, 5.1), 1.0);
    }

    #[test]
    fn accumulates_throttled_time() {
        let mut dtm = ThresholdDtm::new(85.0, 82.0, 0.5, 0.0);
        dtm.update(90.0, 90.0, 0.0);
        dtm.update(90.0, 90.0, 1.0);
        dtm.update(90.0, 90.0, 2.0);
        dtm.update(70.0, 70.0, 3.0);
        let s = dtm.stats();
        assert!((s.throttled_time - 3.0).abs() < 1e-12, "{s:?}");
        assert!((s.total_time - 3.0).abs() < 1e-12);
        assert!((s.duty() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_missed_violations() {
        let mut dtm = ThresholdDtm::new(85.0, 82.0, 0.5, 0.0);
        // Sensor under-reads: true temperature violates, sensed does not.
        dtm.update(84.0, 88.0, 0.0);
        assert_eq!(dtm.stats().missed_violations, 1);
        assert_eq!(dtm.state(), DtmState::Running);
    }

    #[test]
    fn repeated_engagements_counted() {
        let mut dtm = ThresholdDtm::new(85.0, 82.0, 0.5, 0.0);
        for i in 0..3 {
            let t = i as f64 * 2.0;
            dtm.update(90.0, 90.0, t);
            dtm.update(70.0, 70.0, t + 1.0);
        }
        assert_eq!(dtm.stats().engagements, 3);
    }

    #[test]
    #[should_panic(expected = "release must not exceed trigger")]
    fn rejects_inverted_hysteresis() {
        let _ = ThresholdDtm::new(80.0, 85.0, 0.5, 0.0);
    }
}

/// A dynamic-thermal-management controller: maps sensed temperature to a
/// dynamic-power factor.
pub trait DtmPolicy {
    /// Advances to time `now` (s) with the sensed and true maximum
    /// temperatures (°C); returns the dynamic-power factor in `(0, 1]`.
    fn update(&mut self, sensed_max: f64, true_max: f64, now: f64) -> f64;

    /// Cumulative statistics.
    fn stats(&self) -> DtmStats;
}

impl DtmPolicy for ThresholdDtm {
    fn update(&mut self, sensed_max: f64, true_max: f64, now: f64) -> f64 {
        ThresholdDtm::update(self, sensed_max, true_max, now)
    }

    fn stats(&self) -> DtmStats {
        ThresholdDtm::stats(self)
    }
}

/// Multi-state DVFS controller: a ladder of (frequency, voltage) states.
/// Dynamic power scales as `f·V²`; the controller steps down one state when
/// the sensed temperature exceeds `trigger` and back up when it falls below
/// `release`, with a minimum dwell time per state (the V/f switching cost).
///
/// # Examples
///
/// ```
/// use hotiron_dtm::policy::{DtmPolicy, DvfsDtm};
///
/// let mut dvfs = DvfsDtm::ev6_ladder(85.0, 80.0, 50e-6);
/// assert_eq!(dvfs.update(70.0, 70.0, 0.0), 1.0); // full speed
/// let f = dvfs.update(90.0, 90.0, 1e-3); // stepped down
/// assert!(f < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DvfsDtm {
    /// Dynamic-power factors per state, descending (state 0 = full speed).
    factors: Vec<f64>,
    /// Relative performance per state (frequency ratio).
    speeds: Vec<f64>,
    state: usize,
    trigger: f64,
    release: f64,
    min_dwell: f64,
    switched_at: f64,
    last_time: Option<f64>,
    stats: DtmStats,
}

impl DvfsDtm {
    /// Builds a DVFS ladder from `(frequency_ratio, voltage_ratio)` pairs,
    /// state 0 first.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty, ratios are out of `(0, 1]`, or
    /// `release > trigger`.
    pub fn new(states: &[(f64, f64)], trigger: f64, release: f64, min_dwell: f64) -> Self {
        assert!(!states.is_empty(), "need at least one DVFS state");
        assert!(release <= trigger, "release must not exceed trigger");
        assert!(min_dwell >= 0.0, "dwell must be non-negative");
        let mut factors = Vec::new();
        let mut speeds = Vec::new();
        for &(f, v) in states {
            assert!(f > 0.0 && f <= 1.0 && v > 0.0 && v <= 1.0, "ratios must be in (0,1]");
            factors.push(f * v * v);
            speeds.push(f);
        }
        Self {
            factors,
            speeds,
            state: 0,
            trigger,
            release,
            min_dwell,
            switched_at: f64::NEG_INFINITY,
            last_time: None,
            stats: DtmStats::default(),
        }
    }

    /// A 4-state ladder typical of the era: 100/85/70/55 % frequency with
    /// proportional voltage.
    pub fn ev6_ladder(trigger: f64, release: f64, min_dwell: f64) -> Self {
        Self::new(
            &[(1.0, 1.0), (0.85, 0.92), (0.70, 0.85), (0.55, 0.78)],
            trigger,
            release,
            min_dwell,
        )
    }

    /// The current state index (0 = fastest).
    pub fn state(&self) -> usize {
        self.state
    }

    /// Relative performance of the current state.
    pub fn speed(&self) -> f64 {
        self.speeds[self.state]
    }
}

impl DtmPolicy for DvfsDtm {
    fn update(&mut self, sensed_max: f64, true_max: f64, now: f64) -> f64 {
        let dt = self.last_time.map_or(0.0, |t| (now - t).max(0.0));
        self.last_time = Some(now);
        self.stats.total_time += dt;
        if self.state > 0 {
            self.stats.throttled_time += dt;
        }
        if true_max > self.trigger && sensed_max <= self.trigger && self.state == 0 {
            self.stats.missed_violations += 1;
        }
        let dwell_ok = now - self.switched_at >= self.min_dwell;
        if dwell_ok {
            if sensed_max > self.trigger && self.state + 1 < self.factors.len() {
                if self.state == 0 {
                    self.stats.engagements += 1;
                }
                self.state += 1;
                self.switched_at = now;
            } else if sensed_max < self.release && self.state > 0 {
                self.state -= 1;
                self.switched_at = now;
            }
        }
        self.factors[self.state]
    }

    fn stats(&self) -> DtmStats {
        self.stats
    }
}

#[cfg(test)]
mod dvfs_tests {
    use super::*;

    #[test]
    fn steps_down_and_up_the_ladder() {
        let mut d = DvfsDtm::ev6_ladder(85.0, 80.0, 0.0);
        assert_eq!(d.update(90.0, 90.0, 0.0), 0.85 * 0.92 * 0.92);
        assert_eq!(d.state(), 1);
        d.update(90.0, 90.0, 1.0);
        assert_eq!(d.state(), 2);
        d.update(90.0, 90.0, 2.0);
        assert_eq!(d.state(), 3);
        // Bottom of the ladder: stays.
        d.update(95.0, 95.0, 3.0);
        assert_eq!(d.state(), 3);
        // Cooling steps back up one at a time.
        d.update(70.0, 70.0, 4.0);
        assert_eq!(d.state(), 2);
        d.update(70.0, 70.0, 5.0);
        d.update(70.0, 70.0, 6.0);
        assert_eq!(d.state(), 0);
        assert_eq!(d.stats().engagements, 1);
    }

    #[test]
    fn dwell_time_limits_switching() {
        let mut d = DvfsDtm::ev6_ladder(85.0, 80.0, 1.0);
        d.update(90.0, 90.0, 0.0);
        assert_eq!(d.state(), 1);
        // Too soon to switch again.
        d.update(90.0, 90.0, 0.5);
        assert_eq!(d.state(), 1);
        d.update(90.0, 90.0, 1.5);
        assert_eq!(d.state(), 2);
    }

    #[test]
    fn cubic_power_scaling() {
        let d = DvfsDtm::new(&[(1.0, 1.0), (0.5, 0.5)], 85.0, 80.0, 0.0);
        assert!((d.factors[1] - 0.125).abs() < 1e-12, "f·V² = 0.5³");
    }

    #[test]
    fn hysteresis_band_is_stable() {
        let mut d = DvfsDtm::ev6_ladder(85.0, 80.0, 0.0);
        d.update(90.0, 90.0, 0.0);
        let s = d.state();
        // Between release and trigger: no movement either way.
        d.update(83.0, 83.0, 1.0);
        d.update(83.0, 83.0, 2.0);
        assert_eq!(d.state(), s);
    }

    #[test]
    #[should_panic(expected = "at least one DVFS state")]
    fn empty_ladder_rejected() {
        let _ = DvfsDtm::new(&[], 85.0, 80.0, 0.0);
    }
}
