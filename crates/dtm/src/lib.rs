//! Dynamic thermal management, on-chip sensing, IR cameras and power
//! reverse-engineering.
//!
//! Implements the architectural machinery of the paper's §5:
//!
//! * [`sensor`] — placed on-die thermal sensors with noise, quantization and
//!   a maximum sampling rate (§5.2–5.3);
//! * [`camera`] — an IR thermal camera model: finite frame rate and spatial
//!   blur, i.e. what the measurement rig *actually* records (§5.1's "IR
//!   could miss 3 ms emergencies");
//! * [`policy`] — threshold-triggered DTM with hysteresis, engagement
//!   duration and performance-penalty accounting (§5.1);
//! * [`placement`] — sensor-count/error trade-offs on a temperature field
//!   (§5.3–5.4);
//! * [`inversion`] — least-squares temperature→power reverse engineering,
//!   demonstrating the oil-flow-direction artifact (§5.4);
//! * [`closedloop`] — powersim → thermal → sensors → DTM feedback loop.

pub mod camera;
pub mod closedloop;
pub mod inversion;
pub mod placement;
pub mod policy;
pub mod sensor;
pub mod translate;

pub use camera::{FrameAccumulator, IrCamera};
pub use closedloop::{ClosedLoop, LoopReport};
pub use inversion::PowerInverter;
pub use policy::{DtmPolicy, DtmState, DtmStats, DvfsDtm, ThresholdDtm};
pub use sensor::{Sensor, SensorArray};
pub use translate::PackageTranslator;
