//! IR thermal camera model.
//!
//! An IR camera does not see the instantaneous temperature field: it
//! integrates over an exposure window at a finite frame rate, and its optics
//! blur the image. §5.1 of the paper points out that a typical frame
//! interval is *longer* than the ~3 ms thermal emergencies an AIR-SINK chip
//! exhibits, so IR recordings can miss violations entirely. This module
//! makes that concrete.

/// An IR thermal camera observing the die surface grid.
///
/// # Examples
///
/// ```
/// use hotiron_dtm::IrCamera;
///
/// let cam = IrCamera::new(1.0 / 30.0, 0.5e-3); // 30 fps, 0.5 mm optical blur
/// let frame = cam.capture(&[40.0, 60.0, 40.0, 60.0], 2, 2, 1e-3, 1e-3);
/// // Blur pulls the extremes together.
/// let max = frame.iter().cloned().fold(f64::MIN, f64::max);
/// assert!(max < 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrCamera {
    /// Time between frames, s.
    pub frame_interval: f64,
    /// Gaussian point-spread-function σ, m.
    pub psf_sigma: f64,
}

impl IrCamera {
    /// Creates a camera.
    ///
    /// # Panics
    ///
    /// Panics if the frame interval is not positive or the PSF is negative.
    pub fn new(frame_interval: f64, psf_sigma: f64) -> Self {
        assert!(frame_interval > 0.0, "frame interval must be positive");
        assert!(psf_sigma >= 0.0, "PSF sigma must be non-negative");
        Self { frame_interval, psf_sigma }
    }

    /// A typical mid-2000s research IR camera: 30 fps, 0.2 mm blur.
    pub fn typical() -> Self {
        Self::new(1.0 / 30.0, 0.2e-3)
    }

    /// Captures one frame from a row-major temperature grid (°C), applying
    /// the optical blur. `cell_w`/`cell_h` are the grid pitches in meters.
    ///
    /// # Panics
    ///
    /// Panics if `grid.len() != rows*cols`.
    pub fn capture(
        &self,
        grid: &[f64],
        rows: usize,
        cols: usize,
        cell_w: f64,
        cell_h: f64,
    ) -> Vec<f64> {
        assert_eq!(grid.len(), rows * cols, "grid dims mismatch");
        if self.psf_sigma == 0.0 {
            return grid.to_vec();
        }
        // Separable Gaussian blur, truncated at 3σ.
        let blur_1d =
            |field: &[f64], n_major: usize, n_minor: usize, pitch: f64, row_major: bool| {
                let radius = ((3.0 * self.psf_sigma / pitch).ceil() as isize).max(1);
                let kernel: Vec<f64> = (-radius..=radius)
                    .map(|k| {
                        let d = k as f64 * pitch;
                        (-d * d / (2.0 * self.psf_sigma * self.psf_sigma)).exp()
                    })
                    .collect();
                let ksum: f64 = kernel.iter().sum();
                let mut out = vec![0.0; field.len()];
                for maj in 0..n_major {
                    for min in 0..n_minor {
                        let mut acc = 0.0;
                        for (ki, kv) in kernel.iter().enumerate() {
                            let off = ki as isize - radius;
                            let m = (min as isize + off).clamp(0, n_minor as isize - 1) as usize;
                            let idx = if row_major { maj * n_minor + m } else { m * n_major + maj };
                            acc += kv * field[idx];
                        }
                        let idx = if row_major { maj * n_minor + min } else { min * n_major + maj };
                        out[idx] = acc / ksum;
                    }
                }
                out
            };
        let pass_x = blur_1d(grid, rows, cols, cell_w, true);
        blur_1d(&pass_x, cols, rows, cell_h, false)
    }

    /// Records a sequence of instantaneous fields sampled every `dt` seconds
    /// into camera frames: each frame is the time-average of the fields in
    /// its exposure window, blurred. Returns `(frame_time, frame)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if fields are empty or sizes disagree.
    pub fn record(
        &self,
        fields: &[Vec<f64>],
        dt: f64,
        rows: usize,
        cols: usize,
        cell_w: f64,
        cell_h: f64,
    ) -> Vec<(f64, Vec<f64>)> {
        assert!(!fields.is_empty(), "need at least one field");
        let per_frame = (self.frame_interval / dt).round().max(1.0) as usize;
        let mut frames = Vec::new();
        let mut i = 0;
        while i + per_frame <= fields.len() {
            let mut acc = vec![0.0; fields[i].len()];
            for f in &fields[i..i + per_frame] {
                assert_eq!(f.len(), acc.len(), "field sizes must agree");
                for (a, v) in acc.iter_mut().zip(f) {
                    *a += v;
                }
            }
            for a in &mut acc {
                *a /= per_frame as f64;
            }
            frames.push((
                (i + per_frame) as f64 * dt,
                self.capture(&acc, rows, cols, cell_w, cell_h),
            ));
            i += per_frame;
        }
        frames
    }

    /// The worst transient overshoot the camera *misses*: the difference
    /// between the true peak of `peak_series` (one value per instantaneous
    /// sample) and the peak of the per-frame time-averages.
    pub fn missed_overshoot(&self, peak_series: &[f64], dt: f64) -> f64 {
        assert!(!peak_series.is_empty(), "need samples");
        let true_peak = peak_series.iter().cloned().fold(f64::MIN, f64::max);
        let per_frame = (self.frame_interval / dt).round().max(1.0) as usize;
        let mut cam_peak = f64::MIN;
        let mut i = 0;
        while i + per_frame <= peak_series.len() {
            let avg: f64 = peak_series[i..i + per_frame].iter().sum::<f64>() / per_frame as f64;
            cam_peak = cam_peak.max(avg);
            i += per_frame;
        }
        if cam_peak == f64::MIN {
            // Trace shorter than one frame: the camera records nothing.
            return true_peak;
        }
        true_peak - cam_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_psf_is_identity() {
        let cam = IrCamera::new(0.01, 0.0);
        let g = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(cam.capture(&g, 2, 2, 1e-3, 1e-3), g);
    }

    #[test]
    fn blur_conserves_uniform_field() {
        let cam = IrCamera::new(0.01, 1e-3);
        let g = vec![50.0; 64];
        let f = cam.capture(&g, 8, 8, 0.5e-3, 0.5e-3);
        for v in f {
            assert!((v - 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn blur_reduces_peak() {
        let cam = IrCamera::new(0.01, 1e-3);
        let mut g = vec![40.0; 81];
        g[40] = 90.0; // single hot pixel
        let f = cam.capture(&g, 9, 9, 0.5e-3, 0.5e-3);
        let max = f.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 70.0, "peak must be smeared: {max}");
        assert!(max > 40.0);
    }

    #[test]
    fn record_time_averages_frames() {
        let cam = IrCamera::new(0.02, 0.0);
        // 1 ms fields; 20 per frame. Field alternates 0/10 → frame avg 5.
        let fields: Vec<Vec<f64>> =
            (0..40).map(|i| vec![if i % 2 == 0 { 0.0 } else { 10.0 }]).collect();
        let frames = cam.record(&fields, 1e-3, 1, 1, 1e-3, 1e-3);
        assert_eq!(frames.len(), 2);
        assert!((frames[0].1[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn camera_misses_short_spikes() {
        // §5.1: a 3 ms spike vanishes at a 33 ms frame interval.
        let cam = IrCamera::typical();
        let dt = 1e-3;
        let mut series = vec![60.0; 100];
        for s in series.iter_mut().take(53).skip(50) {
            *s = 85.0; // 3 ms excursion
        }
        let missed = cam.missed_overshoot(&series, dt);
        assert!(missed > 20.0, "camera must miss most of the spike, missed {missed}");
    }

    #[test]
    fn camera_sees_long_plateaus() {
        let cam = IrCamera::typical();
        let dt = 1e-3;
        let series = vec![85.0; 200]; // constant: nothing to miss
        let missed = cam.missed_overshoot(&series, dt);
        assert!(missed.abs() < 1e-9);
    }
}
