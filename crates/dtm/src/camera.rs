//! IR thermal camera model.
//!
//! An IR camera does not see the instantaneous temperature field: it
//! integrates over an exposure window at a finite frame rate, and its optics
//! blur the image. §5.1 of the paper points out that a typical frame
//! interval is *longer* than the ~3 ms thermal emergencies an AIR-SINK chip
//! exhibits, so IR recordings can miss violations entirely. This module
//! makes that concrete.

/// An IR thermal camera observing the die surface grid.
///
/// # Examples
///
/// ```
/// use hotiron_dtm::IrCamera;
///
/// let cam = IrCamera::new(1.0 / 30.0, 0.5e-3); // 30 fps, 0.5 mm optical blur
/// let frame = cam.capture(&[40.0, 60.0, 40.0, 60.0], 2, 2, 1e-3, 1e-3);
/// // Blur pulls the extremes together.
/// let max = frame.iter().cloned().fold(f64::MIN, f64::max);
/// assert!(max < 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrCamera {
    /// Time between frames, s.
    pub frame_interval: f64,
    /// Gaussian point-spread-function σ, m.
    pub psf_sigma: f64,
}

impl IrCamera {
    /// Creates a camera.
    ///
    /// # Panics
    ///
    /// Panics if the frame interval is not positive or the PSF is negative.
    pub fn new(frame_interval: f64, psf_sigma: f64) -> Self {
        assert!(frame_interval > 0.0, "frame interval must be positive");
        assert!(psf_sigma >= 0.0, "PSF sigma must be non-negative");
        Self { frame_interval, psf_sigma }
    }

    /// A typical mid-2000s research IR camera: 30 fps, 0.2 mm blur.
    pub fn typical() -> Self {
        Self::new(1.0 / 30.0, 0.2e-3)
    }

    /// Captures one frame from a row-major temperature grid (°C), applying
    /// the optical blur. `cell_w`/`cell_h` are the grid pitches in meters.
    ///
    /// # Panics
    ///
    /// Panics if `grid.len() != rows*cols`.
    pub fn capture(
        &self,
        grid: &[f64],
        rows: usize,
        cols: usize,
        cell_w: f64,
        cell_h: f64,
    ) -> Vec<f64> {
        assert_eq!(grid.len(), rows * cols, "grid dims mismatch");
        if self.psf_sigma == 0.0 {
            return grid.to_vec();
        }
        // Separable Gaussian blur, truncated at 3σ.
        let blur_1d =
            |field: &[f64], n_major: usize, n_minor: usize, pitch: f64, row_major: bool| {
                let radius = ((3.0 * self.psf_sigma / pitch).ceil() as isize).max(1);
                let kernel: Vec<f64> = (-radius..=radius)
                    .map(|k| {
                        let d = k as f64 * pitch;
                        (-d * d / (2.0 * self.psf_sigma * self.psf_sigma)).exp()
                    })
                    .collect();
                let ksum: f64 = kernel.iter().sum();
                let mut out = vec![0.0; field.len()];
                for maj in 0..n_major {
                    for min in 0..n_minor {
                        let mut acc = 0.0;
                        for (ki, kv) in kernel.iter().enumerate() {
                            let off = ki as isize - radius;
                            let m = (min as isize + off).clamp(0, n_minor as isize - 1) as usize;
                            let idx = if row_major { maj * n_minor + m } else { m * n_major + maj };
                            acc += kv * field[idx];
                        }
                        let idx = if row_major { maj * n_minor + min } else { min * n_major + maj };
                        out[idx] = acc / ksum;
                    }
                }
                out
            };
        let pass_x = blur_1d(grid, rows, cols, cell_w, true);
        blur_1d(&pass_x, cols, rows, cell_h, false)
    }

    /// Records a sequence of instantaneous fields sampled every `dt` seconds
    /// into camera frames: each frame is the time-average of the fields in
    /// its exposure window, blurred. Returns `(frame_time, frame)` pairs.
    ///
    /// Convenience wrapper over [`FrameAccumulator`], which is the streaming
    /// form for callers (transient steppers) that produce fields one at a
    /// time and should not buffer a whole movie's worth of instantaneous
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if fields are empty or sizes disagree.
    pub fn record(
        &self,
        fields: &[Vec<f64>],
        dt: f64,
        rows: usize,
        cols: usize,
        cell_w: f64,
        cell_h: f64,
    ) -> Vec<(f64, Vec<f64>)> {
        assert!(!fields.is_empty(), "need at least one field");
        let mut acc = FrameAccumulator::new(*self, dt, rows, cols, cell_w, cell_h);
        fields.iter().filter_map(|f| acc.push(f)).collect()
    }

    /// The worst transient overshoot the camera *misses*: the difference
    /// between the true peak of `peak_series` (one value per instantaneous
    /// sample) and the peak of the per-frame time-averages.
    pub fn missed_overshoot(&self, peak_series: &[f64], dt: f64) -> f64 {
        assert!(!peak_series.is_empty(), "need samples");
        let true_peak = peak_series.iter().cloned().fold(f64::MIN, f64::max);
        let per_frame = (self.frame_interval / dt).round().max(1.0) as usize;
        let mut cam_peak = f64::MIN;
        let mut i = 0;
        while i + per_frame <= peak_series.len() {
            let avg: f64 = peak_series[i..i + per_frame].iter().sum::<f64>() / per_frame as f64;
            cam_peak = cam_peak.max(avg);
            i += per_frame;
        }
        if cam_peak == f64::MIN {
            // Trace shorter than one frame: the camera records nothing.
            return true_peak;
        }
        true_peak - cam_peak
    }
}

/// Streaming camera-cadence batcher: feed instantaneous fields one at a time
/// and get a finished frame back whenever an exposure window completes.
///
/// This is how a transient stepper emits at camera rate without buffering
/// the whole movie: the stepper advances the model at its own `dt`, pushes
/// each emitted surface field here, and only the completed (time-averaged,
/// blurred) frames are kept. The arithmetic is identical to
/// [`IrCamera::record`] — same accumulation order, same average, same blur —
/// so batch and streaming recordings of the same samples are bitwise equal.
///
/// # Examples
///
/// ```
/// use hotiron_dtm::{FrameAccumulator, IrCamera};
///
/// let cam = IrCamera::new(2e-3, 0.0); // 2 ms exposure
/// let mut acc = FrameAccumulator::new(cam, 1e-3, 1, 1, 1e-3, 1e-3);
/// assert!(acc.push(&[10.0]).is_none()); // window half full
/// let (t, frame) = acc.push(&[20.0]).expect("window complete");
/// assert!((t - 2e-3).abs() < 1e-12);
/// assert!((frame[0] - 15.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FrameAccumulator {
    camera: IrCamera,
    dt: f64,
    rows: usize,
    cols: usize,
    cell_w: f64,
    cell_h: f64,
    /// Samples per exposure window (≥ 1).
    per_frame: usize,
    /// Running sum of the fields in the current window.
    acc: Vec<f64>,
    /// Fields accumulated in the current window so far.
    in_window: usize,
    /// Total fields consumed since construction (sets frame timestamps).
    consumed: usize,
}

impl FrameAccumulator {
    /// Creates an accumulator for fields sampled every `dt` seconds on a
    /// `rows`×`cols` grid with the given cell pitches (meters).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn new(
        camera: IrCamera,
        dt: f64,
        rows: usize,
        cols: usize,
        cell_w: f64,
        cell_h: f64,
    ) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        let per_frame = (camera.frame_interval / dt).round().max(1.0) as usize;
        Self {
            camera,
            dt,
            rows,
            cols,
            cell_w,
            cell_h,
            per_frame,
            acc: vec![0.0; rows * cols],
            in_window: 0,
            consumed: 0,
        }
    }

    /// Instantaneous samples per camera frame.
    pub fn samples_per_frame(&self) -> usize {
        self.per_frame
    }

    /// Consumes one instantaneous field; returns the finished
    /// `(frame_time, frame)` when this sample completes an exposure window,
    /// `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the grid size.
    pub fn push(&mut self, field: &[f64]) -> Option<(f64, Vec<f64>)> {
        assert_eq!(field.len(), self.acc.len(), "field sizes must agree");
        for (a, v) in self.acc.iter_mut().zip(field) {
            *a += v;
        }
        self.in_window += 1;
        self.consumed += 1;
        if self.in_window < self.per_frame {
            return None;
        }
        for a in &mut self.acc {
            *a /= self.per_frame as f64;
        }
        let frame = self.camera.capture(&self.acc, self.rows, self.cols, self.cell_w, self.cell_h);
        let time = self.consumed as f64 * self.dt;
        self.acc.iter_mut().for_each(|a| *a = 0.0);
        self.in_window = 0;
        Some((time, frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_psf_is_identity() {
        let cam = IrCamera::new(0.01, 0.0);
        let g = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(cam.capture(&g, 2, 2, 1e-3, 1e-3), g);
    }

    #[test]
    fn blur_conserves_uniform_field() {
        let cam = IrCamera::new(0.01, 1e-3);
        let g = vec![50.0; 64];
        let f = cam.capture(&g, 8, 8, 0.5e-3, 0.5e-3);
        for v in f {
            assert!((v - 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn blur_reduces_peak() {
        let cam = IrCamera::new(0.01, 1e-3);
        let mut g = vec![40.0; 81];
        g[40] = 90.0; // single hot pixel
        let f = cam.capture(&g, 9, 9, 0.5e-3, 0.5e-3);
        let max = f.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 70.0, "peak must be smeared: {max}");
        assert!(max > 40.0);
    }

    #[test]
    fn record_time_averages_frames() {
        let cam = IrCamera::new(0.02, 0.0);
        // 1 ms fields; 20 per frame. Field alternates 0/10 → frame avg 5.
        let fields: Vec<Vec<f64>> =
            (0..40).map(|i| vec![if i % 2 == 0 { 0.0 } else { 10.0 }]).collect();
        let frames = cam.record(&fields, 1e-3, 1, 1, 1e-3, 1e-3);
        assert_eq!(frames.len(), 2);
        assert!((frames[0].1[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_accumulator_matches_batch_record_bitwise() {
        // record() is now a wrapper over FrameAccumulator; this guards the
        // contract that a stepper streaming fields one at a time produces
        // exactly the frames a buffered recording would.
        let cam = IrCamera::new(5e-3, 0.4e-3);
        let fields: Vec<Vec<f64>> = (0..23)
            .map(|i| (0..16).map(|j| 40.0 + (i as f64 * 0.7 + j as f64 * 1.3).sin()).collect())
            .collect();
        let batch = cam.record(&fields, 1e-3, 4, 4, 0.5e-3, 0.5e-3);
        let mut acc = FrameAccumulator::new(cam, 1e-3, 4, 4, 0.5e-3, 0.5e-3);
        let streamed: Vec<(f64, Vec<f64>)> = fields.iter().filter_map(|f| acc.push(f)).collect();
        assert_eq!(acc.samples_per_frame(), 5);
        assert_eq!(batch.len(), 4, "23 samples at 5/frame = 4 complete frames");
        assert_eq!(batch.len(), streamed.len());
        for ((tb, fb), (ts, fs)) in batch.iter().zip(&streamed) {
            assert_eq!(tb.to_bits(), ts.to_bits());
            for (a, b) in fb.iter().zip(fs) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn camera_misses_short_spikes() {
        // §5.1: a 3 ms spike vanishes at a 33 ms frame interval.
        let cam = IrCamera::typical();
        let dt = 1e-3;
        let mut series = vec![60.0; 100];
        for s in series.iter_mut().take(53).skip(50) {
            *s = 85.0; // 3 ms excursion
        }
        let missed = cam.missed_overshoot(&series, dt);
        assert!(missed > 20.0, "camera must miss most of the spike, missed {missed}");
    }

    #[test]
    fn camera_sees_long_plateaus() {
        let cam = IrCamera::typical();
        let dt = 1e-3;
        let series = vec![85.0; 200]; // constant: nothing to miss
        let missed = cam.missed_overshoot(&series, dt);
        assert!(missed.abs() < 1e-9);
    }
}
