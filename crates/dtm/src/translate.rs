//! Cross-package translation (the paper's §6 future-work goal).
//!
//! *"It could be useful to ascertain the thermal response of a chip with
//! air-cooled heatsink based on the IR measurements from an oil-cooled bare
//! silicon die."*
//!
//! Because the steady compact model is linear in block power, a measured
//! OIL-SILICON thermal map can be inverted to a power map
//! ([`crate::inversion`]) and *re-simulated* under the AIR-SINK package —
//! turning the IR rig's misleading temperatures into package-correct
//! predictions. This is exactly the "simulation and measurement are
//! complementary" workflow the paper advocates.

use crate::inversion::PowerInverter;
use hotiron_thermal::{PowerMap, Solution, ThermalError, ThermalModel};

/// Translates steady thermal fields measured in one package (the rig) into
/// predicted fields for another (the target).
///
/// # Examples
///
/// ```
/// use hotiron_dtm::translate::PackageTranslator;
/// use hotiron_floorplan::library;
/// use hotiron_thermal::{
///     AirSinkPackage, ModelConfig, OilSiliconPackage, Package, PowerMap, ThermalModel,
/// };
///
/// let plan = library::multicore(2, 2, 0.016, 0.016);
/// let cfg = ModelConfig::paper_default().with_grid(8, 8);
/// let rig = ThermalModel::new(
///     plan.clone(),
///     Package::OilSilicon(OilSiliconPackage::paper_default()),
///     cfg,
/// )?;
/// let target = ThermalModel::new(
///     plan.clone(),
///     Package::AirSink(AirSinkPackage::paper_default()),
///     cfg,
/// )?;
/// let truth = PowerMap::from_vec(&plan, vec![2.0, 4.0, 3.0, 5.0]);
/// let measured = rig.steady_state(&truth)?;
///
/// let translator = PackageTranslator::new(&rig, &target)?;
/// let predicted = translator.translate_steady(measured.silicon_cells())?;
/// let direct = target.steady_state(&truth)?;
/// assert!((predicted.max_celsius() - direct.max_celsius()).abs() < 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PackageTranslator<'a> {
    target: &'a ThermalModel,
    inverter: PowerInverter<'a>,
}

impl<'a> PackageTranslator<'a> {
    /// Builds a translator from the measurement-rig model to the target
    /// package model. Both must share the same floorplan and grid.
    ///
    /// # Errors
    ///
    /// Propagates steady-solve failures while building the inversion basis.
    ///
    /// # Panics
    ///
    /// Panics if the two models' floorplans or grids differ.
    pub fn new(rig: &'a ThermalModel, target: &'a ThermalModel) -> Result<Self, ThermalError> {
        assert_eq!(rig.floorplan(), target.floorplan(), "rig and target must share a floorplan");
        assert_eq!(rig.mapping().rows(), target.mapping().rows(), "grid rows must match");
        assert_eq!(rig.mapping().cols(), target.mapping().cols(), "grid cols must match");
        Ok(Self { target, inverter: PowerInverter::new(rig)? })
    }

    /// Recovers the per-block power (W) behind a rig measurement. Negative
    /// least-squares estimates (measurement noise) are clamped to zero.
    ///
    /// # Errors
    ///
    /// Propagates inversion failures.
    pub fn recover_power(&self, observed_cells: &[f64]) -> Result<PowerMap, ThermalError> {
        let est = self.inverter.invert(observed_cells)?;
        let clamped: Vec<f64> = est.into_iter().map(|p| p.max(0.0)).collect();
        Ok(PowerMap::from_vec(self.target.floorplan(), clamped))
    }

    /// Predicts the target package's steady state from a rig measurement
    /// (silicon temperatures, kelvin, one per grid cell).
    ///
    /// # Errors
    ///
    /// Propagates inversion or steady-solve failures.
    pub fn translate_steady(&self, observed_cells: &[f64]) -> Result<Solution<'a>, ThermalError> {
        let power = self.recover_power(observed_cells)?;
        self.target.steady_state(&power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotiron_floorplan::library;
    use hotiron_thermal::{AirSinkPackage, FlowDirection, ModelConfig, OilSiliconPackage, Package};

    fn models() -> (ThermalModel, ThermalModel) {
        let plan = library::ev6();
        let cfg = ModelConfig::paper_default().with_grid(12, 12);
        let rig = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(
                OilSiliconPackage::paper_default().with_direction(FlowDirection::TopToBottom),
            ),
            cfg,
        )
        .unwrap();
        let target =
            ThermalModel::new(plan, Package::AirSink(AirSinkPackage::paper_default()), cfg)
                .unwrap();
        (rig, target)
    }

    #[test]
    fn translation_matches_direct_simulation() {
        let (rig, target) = models();
        let plan = rig.floorplan().clone();
        let truth =
            PowerMap::from_pairs(&plan, [("IntReg", 3.0), ("Dcache", 5.0), ("L2", 8.0)]).unwrap();
        let measured = rig.steady_state(&truth).unwrap();
        let translator = PackageTranslator::new(&rig, &target).unwrap();
        let predicted = translator.translate_steady(measured.silicon_cells()).unwrap();
        let direct = target.steady_state(&truth).unwrap();
        for name in ["IntReg", "Dcache", "L2", "FPMap"] {
            let a = predicted.block(name);
            let b = direct.block(name);
            assert!((a - b).abs() < 0.2, "{name}: {a} vs {b}");
        }
    }

    #[test]
    fn recovered_power_matches_truth() {
        let (rig, target) = models();
        let plan = rig.floorplan().clone();
        let truth = PowerMap::from_pairs(&plan, [("IntReg", 3.0), ("Icache", 6.0)]).unwrap();
        let measured = rig.steady_state(&truth).unwrap();
        let translator = PackageTranslator::new(&rig, &target).unwrap();
        let power = translator.recover_power(measured.silicon_cells()).unwrap();
        assert!((power.total() - truth.total()).abs() < 0.05 * truth.total());
    }

    #[test]
    fn translation_fixes_the_rigs_misleading_hot_spot() {
        // Under a top-to-bottom rig flow the hot spot is NOT where it will
        // be in the product package; translation restores the truth.
        let (rig, target) = models();
        let plan = rig.floorplan().clone();
        let cpu = hotiron_powersim::SyntheticCpu::new(
            hotiron_powersim::uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            hotiron_powersim::workload::gcc(),
            42,
        );
        let truth = PowerMap::from_vec(&plan, cpu.simulate(4_000).average());
        let measured = rig.steady_state(&truth).unwrap();
        let direct = target.steady_state(&truth).unwrap();
        let translator = PackageTranslator::new(&rig, &target).unwrap();
        let predicted = translator.translate_steady(measured.silicon_cells()).unwrap();
        // The raw rig temperatures are wildly off for the product package;
        // the translated prediction restores both the hot-spot identity and
        // its magnitude.
        assert!(
            (measured.hottest_block().1 - direct.hottest_block().1).abs() > 20.0,
            "rig reading must be unusable as-is: {:?} vs {:?}",
            measured.hottest_block(),
            direct.hottest_block()
        );
        assert_eq!(predicted.hottest_block().0, direct.hottest_block().0);
        assert!((predicted.hottest_block().1 - direct.hottest_block().1).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "share a floorplan")]
    fn rejects_mismatched_floorplans() {
        let cfg = ModelConfig::paper_default().with_grid(8, 8);
        let a = ThermalModel::new(
            library::ev6(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            cfg,
        )
        .unwrap();
        let b = ThermalModel::new(
            library::athlon64(),
            Package::AirSink(AirSinkPackage::paper_default()),
            cfg,
        )
        .unwrap();
        let _ = PackageTranslator::new(&a, &b);
    }
}
