//! Closed-loop simulation: synthetic CPU → thermal model → sensors → DTM.
//!
//! This is the full §5 pipeline: every power sample heats the die through
//! the thermal model; sensors sample the die at their own (slower) rate;
//! the DTM controller throttles dynamic power when the sensed temperature
//! crosses its threshold; throttling feeds back into the next power sample.

use crate::policy::{DtmPolicy, DtmStats, ThresholdDtm};
use crate::sensor::SensorArray;
use hotiron_powersim::{LeakageModel, SyntheticCpu};
use hotiron_thermal::{PowerMap, ThermalError, ThermalModel};

/// Time series produced by a closed-loop run.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Sample times, s.
    pub times: Vec<f64>,
    /// True maximum silicon temperature per sample, °C.
    pub true_max: Vec<f64>,
    /// Most recent sensed maximum per sample, °C.
    pub sensed_max: Vec<f64>,
    /// Dynamic-power factor in effect per sample (1.0 = full speed).
    pub throttle: Vec<f64>,
    /// Final DTM statistics.
    pub dtm_stats: DtmStats,
}

impl LoopReport {
    /// The fastest observed heating rate of the true maximum, °C/s.
    pub fn max_heating_rate(&self) -> f64 {
        self.true_max
            .windows(2)
            .zip(self.times.windows(2))
            .map(|(t, x)| (t[1] - t[0]) / (x[1] - x[0]).max(1e-30))
            .fold(0.0f64, f64::max)
    }

    /// Fraction of samples running throttled.
    pub fn throttled_fraction(&self) -> f64 {
        if self.throttle.is_empty() {
            return 0.0;
        }
        self.throttle.iter().filter(|&&f| f < 1.0).count() as f64 / self.throttle.len() as f64
    }

    /// Effective performance (1.0 = no throttling), the §5.1 penalty proxy.
    pub fn performance(&self) -> f64 {
        if self.throttle.is_empty() {
            return 1.0;
        }
        self.throttle.iter().sum::<f64>() / self.throttle.len() as f64
    }
}

/// The closed loop simulator, generic over the DTM policy
/// (defaults to the paper's threshold controller).
#[derive(Debug)]
pub struct ClosedLoop<'m, P: DtmPolicy = ThresholdDtm> {
    model: &'m ThermalModel,
    cpu: SyntheticCpu,
    sensors: SensorArray,
    dtm: P,
    leakage: Option<LeakageModel>,
}

impl<'m, P: DtmPolicy> ClosedLoop<'m, P> {
    /// Builds the loop around a thermal model.
    pub fn new(model: &'m ThermalModel, cpu: SyntheticCpu, sensors: SensorArray, dtm: P) -> Self {
        Self { model, cpu, sensors, dtm, leakage: None }
    }

    /// Enables temperature-dependent leakage feedback.
    pub fn with_leakage(mut self, model: LeakageModel) -> Self {
        self.leakage = Some(model);
        self
    }

    /// Runs `n_samples` power samples (one thermal step each) starting from
    /// the steady state of the workload's average power.
    ///
    /// # Errors
    ///
    /// Propagates thermal solver failures.
    pub fn run(&mut self, n_samples: usize) -> Result<LoopReport, ThermalError> {
        let plan = self.model.floorplan();
        let dt = self.cpu.workload().sample_period;
        let mut sim = self.model.transient(dt);

        // Initialize at the steady state of the average power (Fig 8/12
        // methodology).
        let warm = self.cpu.simulate(self.cpu.workload().period_samples());
        let avg = PowerMap::from_vec(plan, warm.average());
        sim.init_steady(&avg)?;

        let sensor_every = ((self.sensors.sample_interval() / dt).round() as usize).max(1);

        let mut report = LoopReport {
            times: Vec::with_capacity(n_samples),
            true_max: Vec::with_capacity(n_samples),
            sensed_max: Vec::with_capacity(n_samples),
            throttle: Vec::with_capacity(n_samples),
            dtm_stats: DtmStats::default(),
        };
        let mut factor = 1.0;
        let mut sensed = f64::MIN;
        let leak_temps: Option<Vec<f64>> = self.leakage.map(|_| vec![0.0; plan.len()]);
        let mut leak_temps = leak_temps;

        for i in 0..n_samples {
            // Power for this sample, with leakage feedback and throttling.
            if let Some(t) = leak_temps.as_mut() {
                let sol = sim.solution();
                let blocks = sol.block_celsius();
                for (slot, c) in t.iter_mut().zip(&blocks) {
                    *slot = c + 273.15;
                }
            }
            let raw = self.cpu.simulate_at(i, leak_temps.as_deref());
            let powers: Vec<f64> = raw
                .iter()
                .zip(self.cpu.units())
                .map(|(p, u)| {
                    let dynamic = (p - u.leakage).max(0.0);
                    u.leakage + dynamic * factor
                })
                .collect();
            let pm = PowerMap::from_vec(plan, powers);
            sim.run(&pm, dt)?;

            let sol = sim.solution();
            let t_max = sol.max_celsius();
            if i % sensor_every == 0 {
                sensed = self.sensors.read_max(&sol);
                factor = self.dtm.update(sensed, t_max, sim.time());
            }
            report.times.push(sim.time());
            report.true_max.push(t_max);
            report.sensed_max.push(sensed);
            report.throttle.push(factor);
        }
        report.dtm_stats = self.dtm.stats();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::SensorArray;
    use hotiron_floorplan::library;
    use hotiron_powersim::{uarch, workload};
    use hotiron_thermal::{AirSinkPackage, ModelConfig, OilSiliconPackage, Package, ThermalModel};

    fn loop_for(pkg: Package, trigger: f64) -> (ThermalModel, SyntheticCpu) {
        let plan = library::ev6();
        let model =
            ThermalModel::new(plan.clone(), pkg, ModelConfig::paper_default().with_grid(8, 8))
                .unwrap();
        let cpu = SyntheticCpu::new(
            uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            workload::gcc(),
            11,
        );
        let _ = trigger;
        (model, cpu)
    }

    #[test]
    fn loop_produces_consistent_series() {
        let (model, cpu) =
            loop_for(Package::AirSink(AirSinkPackage::paper_default().with_r_convec(0.3)), 80.0);
        let sensors = SensorArray::uniform_grid(4, 0.016, 0.016, 5);
        let dtm = ThresholdDtm::new(200.0, 195.0, 0.5, 1e-3); // never triggers
        let mut cl = ClosedLoop::new(&model, cpu, sensors, dtm);
        let r = cl.run(300).unwrap();
        assert_eq!(r.times.len(), 300);
        assert!(r.true_max.iter().all(|t| t.is_finite()));
        // Never throttled.
        assert!((r.performance() - 1.0).abs() < 1e-12);
        assert_eq!(r.dtm_stats.engagements, 0);
        // Times increase uniformly.
        assert!(r.times.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn dtm_throttles_when_hot() {
        let (model, cpu) = loop_for(Package::OilSilicon(OilSiliconPackage::paper_default()), 0.0);
        // Trigger well below the oil-rig operating temperature: DTM must
        // engage almost immediately.
        let sensors = SensorArray::uniform_grid(6, 0.016, 0.016, 5);
        let dtm = ThresholdDtm::new(50.0, 48.0, 0.4, 1e-3);
        let mut cl = ClosedLoop::new(&model, cpu, sensors, dtm);
        let r = cl.run(200).unwrap();
        assert!(r.dtm_stats.engagements >= 1, "{:?}", r.dtm_stats);
        assert!(r.performance() < 1.0);
        assert!(r.throttled_fraction() > 0.5);
    }

    #[test]
    fn leakage_feedback_runs() {
        let (model, cpu) = loop_for(Package::OilSilicon(OilSiliconPackage::paper_default()), 0.0);
        let sensors = SensorArray::uniform_grid(4, 0.016, 0.016, 5);
        let dtm = ThresholdDtm::new(500.0, 490.0, 0.5, 1e-3);
        let mut cl =
            ClosedLoop::new(&model, cpu, sensors, dtm).with_leakage(LeakageModel::node_130nm());
        let r = cl.run(100).unwrap();
        assert!(r.true_max.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn heating_rate_is_positive_under_bursts() {
        let (model, cpu) =
            loop_for(Package::AirSink(AirSinkPackage::paper_default().with_r_convec(0.3)), 0.0);
        let sensors = SensorArray::uniform_grid(4, 0.016, 0.016, 5);
        let dtm = ThresholdDtm::new(500.0, 490.0, 0.5, 1e-3);
        let mut cl = ClosedLoop::new(&model, cpu, sensors, dtm);
        let r = cl.run(400).unwrap();
        assert!(r.max_heating_rate() > 0.0);
    }
}

#[cfg(test)]
mod dvfs_loop_tests {
    use super::*;
    use crate::policy::DvfsDtm;
    use crate::sensor::SensorArray;
    use hotiron_floorplan::library;
    use hotiron_powersim::{uarch, workload};
    use hotiron_thermal::{ModelConfig, OilSiliconPackage, Package, ThermalModel};

    #[test]
    fn dvfs_policy_plugs_into_the_loop() {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(8, 8),
        )
        .unwrap();
        let cpu = SyntheticCpu::new(
            uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            workload::gcc(),
            11,
        );
        let sensors = SensorArray::uniform_grid(6, 0.016, 0.016, 5);
        // Trigger below the rig's operating point: the ladder must engage.
        let dvfs = DvfsDtm::ev6_ladder(60.0, 55.0, 50e-6);
        let mut cl = ClosedLoop::new(&model, cpu, sensors, dvfs);
        let r = cl.run(300).unwrap();
        assert!(r.dtm_stats.engagements >= 1);
        assert!(r.performance() < 1.0);
        // DVFS produces intermediate factors, not just on/off.
        let distinct: std::collections::BTreeSet<u64> =
            r.throttle.iter().map(|f| (f * 1e6) as u64).collect();
        assert!(distinct.len() >= 2, "ladder states used: {distinct:?}");
    }

    #[test]
    fn dvfs_saturates_at_the_ladder_floor_under_sustained_heat() {
        // The oil rig runs tens of kelvin over this trigger, so the ladder
        // must walk all the way down and hold its bottom state.
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(8, 8),
        )
        .unwrap();
        let cpu = SyntheticCpu::new(
            uarch::ev6_units(&plan).expect("ev6 units align to the floorplan"),
            workload::gcc(),
            11,
        );
        let sensors = SensorArray::uniform_grid(6, 0.016, 0.016, 5);
        let dvfs = DvfsDtm::ev6_ladder(60.0, 55.0, 50e-6);
        let floor = 0.55 * 0.78 * 0.78;
        let mut cl = ClosedLoop::new(&model, cpu, sensors, dvfs);
        let r = cl.run(400).unwrap();
        let min_factor = r.throttle.iter().cloned().fold(f64::MAX, f64::min);
        assert!((min_factor - floor).abs() < 1e-9, "bottom state reached: {min_factor}");
        assert!(r.throttled_fraction() > 0.9, "sustained violation keeps it throttled");
    }
}
