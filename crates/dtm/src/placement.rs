//! Sensor placement and error analysis (§5.3–5.4).
//!
//! The paper's argument: OIL-SILICON has much steeper on-die gradients, so
//! a sensor placed off the hot spot under-reads by more, which forces either
//! more sensors or larger guard margins (and hence more DTM false triggers).
//! These helpers quantify that trade-off on a solved temperature field.

use hotiron_thermal::Solution;

/// Worst-case under-read (°C) of a single sensor displaced by `offset`
/// meters from the hottest cell, probing the 8 compass directions.
pub fn misplacement_error(sol: &Solution<'_>, offset: f64) -> f64 {
    let (hx, hy) = sol.hottest_cell_position();
    let t_max = sol.celsius_at(hx, hy);
    let mut worst: f64 = 0.0;
    let d = std::f64::consts::FRAC_1_SQRT_2;
    for (dx, dy) in
        [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0), (d, d), (-d, d), (d, -d), (-d, -d)]
    {
        let t = sol.celsius_at(hx + dx * offset, hy + dy * offset);
        worst = worst.max(t_max - t);
    }
    worst
}

/// Under-read (°C) of a uniform `m x m` ideal sensor grid: the difference
/// between the true maximum and the hottest grid reading.
pub fn grid_under_read(sol: &Solution<'_>, m: usize, width: f64, height: f64) -> f64 {
    assert!(m > 0, "grid must have at least one sensor");
    let t_max = {
        let (hx, hy) = sol.hottest_cell_position();
        sol.celsius_at(hx, hy)
    };
    let mut best = f64::MIN;
    for iy in 0..m {
        for ix in 0..m {
            let x = (ix as f64 + 0.5) * width / m as f64;
            let y = (iy as f64 + 0.5) * height / m as f64;
            best = best.max(sol.celsius_at(x, y));
        }
    }
    t_max - best
}

/// The smallest uniform sensor grid (`m x m`) whose under-read is at most
/// `max_error` °C, up to `m_max` per side. Returns the total sensor count,
/// or `None` if even `m_max x m_max` is insufficient.
pub fn sensors_needed(
    sol: &Solution<'_>,
    max_error: f64,
    width: f64,
    height: f64,
    m_max: usize,
) -> Option<usize> {
    (1..=m_max).find(|&m| grid_under_read(sol, m, width, height) <= max_error).map(|m| m * m)
}

/// Sensor placement derived from a *measurement* field (e.g. an IR run in
/// the oil rig): the hottest cell position of `measured` — then evaluated on
/// the *operating* field. Returns `(under-read °C, measured position)`.
///
/// This is the §5.4 hazard: place the sensor where the oil rig says the hot
/// spot is, and in the real AIR-SINK package it under-reads.
pub fn cross_package_under_read(
    measured: &Solution<'_>,
    operating: &Solution<'_>,
) -> (f64, (f64, f64)) {
    let pos = measured.hottest_cell_position();
    let (ox, oy) = operating.hottest_cell_position();
    let true_max = operating.celsius_at(ox, oy);
    let read = operating.celsius_at(pos.0, pos.1);
    (true_max - read, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotiron_floorplan::library;
    use hotiron_thermal::{
        AirSinkPackage, FlowDirection, ModelConfig, OilSiliconPackage, Package, PowerMap,
        ThermalModel,
    };

    fn model(pkg: Package) -> ThermalModel {
        ThermalModel::new(library::ev6(), pkg, ModelConfig::paper_default().with_grid(16, 16))
            .unwrap()
    }

    fn power(plan: &hotiron_floorplan::Floorplan) -> PowerMap {
        PowerMap::from_pairs(plan, [("IntReg", 4.0), ("Dcache", 5.0), ("L2", 8.0)]).unwrap()
    }

    #[test]
    fn misplacement_error_grows_with_offset() {
        let m = model(Package::OilSilicon(OilSiliconPackage::paper_default()));
        let sol = m.steady_state(&power(m.floorplan())).unwrap();
        let e1 = misplacement_error(&sol, 1e-3);
        let e3 = misplacement_error(&sol, 3e-3);
        assert!(e3 >= e1, "larger offset, larger error: {e1} vs {e3}");
        assert!(e1 > 0.0);
    }

    #[test]
    fn oil_needs_more_sensors_than_air() {
        // §5.3's claim, made quantitative.
        let oil = model(Package::OilSilicon(OilSiliconPackage::paper_default()));
        let air = model(Package::AirSink(AirSinkPackage::paper_default()));
        let p_oil = power(oil.floorplan());
        let s_oil = oil.steady_state(&p_oil).unwrap();
        let s_air = air.steady_state(&p_oil).unwrap();
        let (w, h) = (0.016, 0.016);
        for m in [2usize, 4, 6] {
            let e_oil = grid_under_read(&s_oil, m, w, h);
            let e_air = grid_under_read(&s_air, m, w, h);
            assert!(e_oil >= e_air, "m={m}: oil error {e_oil} must be >= air error {e_air}");
        }
        let n_oil = sensors_needed(&s_oil, 3.0, w, h, 16);
        let n_air = sensors_needed(&s_air, 3.0, w, h, 16);
        assert!(n_air.is_some());
        if let (Some(no), Some(na)) = (n_oil, n_air) {
            assert!(no >= na, "oil {no} vs air {na}");
        }
    }

    #[test]
    fn denser_grid_reduces_error() {
        let m = model(Package::OilSilicon(OilSiliconPackage::paper_default()));
        let sol = m.steady_state(&power(m.floorplan())).unwrap();
        let e2 = grid_under_read(&sol, 2, 0.016, 0.016);
        let e8 = grid_under_read(&sol, 8, 0.016, 0.016);
        assert!(e8 <= e2, "denser grid can't be worse: {e8} vs {e2}");
    }

    #[test]
    fn cross_package_placement_under_reads() {
        // Sensor placed from a top-to-bottom oil measurement misses the
        // AIR-SINK hot spot (§5.4's Dcache-vs-IntReg example).
        let oil = model(Package::OilSilicon(
            OilSiliconPackage::paper_default().with_direction(FlowDirection::TopToBottom),
        ));
        let air = model(Package::AirSink(AirSinkPackage::paper_default()));
        let p = power(oil.floorplan());
        let s_oil = oil.steady_state(&p).unwrap();
        let s_air = air.steady_state(&p).unwrap();
        let (err, _) = cross_package_under_read(&s_oil, &s_air);
        assert!(err >= 0.0, "under-read cannot be negative: {err}");
    }
}

/// Greedily places `k` sensors to minimize the worst under-read across a
/// *set* of thermal solutions (e.g. several workloads): each step adds the
/// candidate cell position that most reduces the maximum over solutions of
/// `Tmax − best sensor reading`. Returns the chosen `(x, y)` positions and
/// the final worst under-read (K).
///
/// This is the design flow §5.3 implies: sensors must cover every workload
/// the chip will run, not just one thermal map.
///
/// # Panics
///
/// Panics if `solutions` is empty or `k` is zero.
pub fn greedy_placement(solutions: &[&Solution<'_>], k: usize) -> (Vec<(f64, f64)>, f64) {
    assert!(!solutions.is_empty(), "need at least one solution");
    assert!(k > 0, "need at least one sensor");
    // Candidates: the hottest cell of each solution plus a coarse grid.
    let mut candidates: Vec<(f64, f64)> =
        solutions.iter().map(|s| s.hottest_cell_position()).collect();
    let (w, h) = solutions[0].die_size();
    let m = 8;
    for iy in 0..m {
        for ix in 0..m {
            candidates.push(((ix as f64 + 0.5) * w / m as f64, (iy as f64 + 0.5) * h / m as f64));
        }
    }
    let worst_under_read = |chosen: &[(f64, f64)]| -> f64 {
        solutions
            .iter()
            .map(|s| {
                let (hx, hy) = s.hottest_cell_position();
                let t_max = s.celsius_at(hx, hy);
                let best = chosen.iter().map(|&(x, y)| s.celsius_at(x, y)).fold(f64::MIN, f64::max);
                t_max - best
            })
            .fold(f64::MIN, f64::max)
    };
    // Cover-the-worst greedy: each step serves the solution with the
    // largest remaining under-read, choosing the candidate that helps that
    // solution most (ties broken by the overall minimax objective). With
    // k >= #solutions this provably reaches zero error, which the 1-step
    // minimax greedy does not.
    let mut chosen: Vec<(f64, f64)> = Vec::with_capacity(k);
    for _ in 0..k {
        // Which solution is worst-covered right now?
        let worst_sol = solutions
            .iter()
            .max_by(|a, b| {
                let under = |s: &Solution<'_>| {
                    let (hx, hy) = s.hottest_cell_position();
                    let t_max = s.celsius_at(hx, hy);
                    let best =
                        chosen.iter().map(|&(x, y)| s.celsius_at(x, y)).fold(f64::MIN, f64::max);
                    if chosen.is_empty() {
                        f64::MAX
                    } else {
                        t_max - best
                    }
                };
                under(a).total_cmp(&under(b))
            })
            .expect("solutions non-empty");
        // Candidate that reads hottest on that solution.
        let best_c = candidates
            .iter()
            .copied()
            .max_by(|&(ax, ay), &(bx, by)| {
                worst_sol.celsius_at(ax, ay).total_cmp(&worst_sol.celsius_at(bx, by))
            })
            .expect("candidates non-empty");
        chosen.push(best_c);
    }
    let err = worst_under_read(&chosen);
    (chosen, err)
}

#[cfg(test)]
mod greedy_tests {
    use super::*;
    use hotiron_floorplan::library;
    use hotiron_thermal::{ModelConfig, OilSiliconPackage, Package, PowerMap, ThermalModel};

    #[test]
    fn greedy_covers_multiple_workloads() {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(16, 16),
        )
        .unwrap();
        // Two very different hot spots.
        let p1 = PowerMap::from_pairs(&plan, [("IntReg", 5.0)]).unwrap();
        let p2 = PowerMap::from_pairs(&plan, [("Icache", 8.0)]).unwrap();
        let s1 = model.steady_state(&p1).unwrap();
        let s2 = model.steady_state(&p2).unwrap();
        let sols = [&s1, &s2];
        let (pos1, err1) = greedy_placement(&sols, 1);
        let (pos2, err2) = greedy_placement(&sols, 2);
        assert_eq!(pos1.len(), 1);
        assert_eq!(pos2.len(), 2);
        // Two sensors cover two disjoint hot spots almost perfectly.
        assert!(err2 < 0.5, "two sensors suffice: {err2}");
        assert!(err2 <= err1 + 1e-9, "more sensors never hurt");
        assert!(err1 > err2, "one sensor cannot cover both: {err1}");
    }

    #[test]
    fn greedy_single_workload_hits_the_hot_spot() {
        let plan = library::ev6();
        let model = ThermalModel::new(
            plan.clone(),
            Package::OilSilicon(OilSiliconPackage::paper_default()),
            ModelConfig::paper_default().with_grid(16, 16),
        )
        .unwrap();
        let p = PowerMap::from_pairs(&plan, [("IntReg", 5.0)]).unwrap();
        let s = model.steady_state(&p).unwrap();
        let (pos, err) = greedy_placement(&[&s], 1);
        assert!(err < 1e-9, "single hot spot found exactly: {err}");
        let (hx, hy) = s.hottest_cell_position();
        assert!((pos[0].0 - hx).abs() < 1e-9 && (pos[0].1 - hy).abs() < 1e-9);
    }
}
