//! End-to-end verification of the measurement/DTM pipeline: power-inversion
//! round trips, IR-camera blur structure, cross-package translation, and
//! seeded sensing determinism. Tolerances come from `hotiron_verify::tol`
//! so the whole workspace agrees on what "recovered" means.

use hotiron_dtm::placement::greedy_placement;
use hotiron_dtm::{IrCamera, PackageTranslator, PowerInverter, Sensor, SensorArray};
use hotiron_floorplan::library;
use hotiron_thermal::{
    AirSinkPackage, ModelConfig, OilSiliconPackage, Package, PowerMap, ThermalModel,
};
use hotiron_verify::oracle;

const AMBIENT: f64 = 318.15;

fn oil_model(grid: usize) -> (ThermalModel, PowerMap) {
    let plan = library::multicore(2, 2, 0.016, 0.016);
    let truth = PowerMap::from_vec(&plan, vec![8.0, 2.5, 5.0, 11.0]);
    let model = ThermalModel::new(
        plan,
        Package::OilSilicon(OilSiliconPackage::paper_default()),
        ModelConfig::paper_default().with_grid(grid, grid),
    )
    .expect("model builds");
    (model, truth)
}

/// The §5.4 flow in miniature: simulate a known power map, observe the
/// temperature field, invert back to power. The recovered per-block watts
/// must match the truth, and the field implied by the recovered powers must
/// still balance energy.
#[test]
fn inversion_round_trips_block_powers() {
    let (model, truth) = oil_model(16);
    let observed = model.steady_state(&truth).expect("steady solve");
    let inv = PowerInverter::new(&model).expect("basis builds");
    let est = inv.invert(observed.silicon_cells()).expect("inversion");

    assert_eq!(est.len(), truth.values().len());
    for (i, (e, t)) in est.iter().zip(truth.values()).enumerate() {
        assert!((e - t).abs() < 0.05, "block {i}: recovered {e:.3} W vs true {t:.3} W");
    }
    let total_true: f64 = truth.values().iter().sum();
    let total_est: f64 = est.iter().sum();
    assert!(
        (total_est - total_true).abs() < 0.05,
        "total power: recovered {total_est:.3} W vs true {total_true:.3} W"
    );

    // The observed field itself must be physical before inversion makes
    // sense at all.
    let p = model.cell_power(&truth);
    oracle::assert_energy_balance(
        "inversion source field",
        model.circuit(),
        observed.state(),
        &p,
        AMBIENT,
    );
}

/// Optical blur is an averaging operator: a uniform temperature map must
/// pass through the camera unchanged (edge clamping and kernel
/// normalization both preserve constants), and blurring twice must equal
/// blurring a hotter map less — i.e. it never invents extrema.
#[test]
fn camera_blur_preserves_uniform_maps_and_extrema() {
    let cam = IrCamera::typical();
    let (rows, cols) = (24, 24);
    let (cell_w, cell_h) = (0.016 / cols as f64, 0.016 / rows as f64);

    let uniform = vec![71.25; rows * cols];
    let blurred = cam.capture(&uniform, rows, cols, cell_w, cell_h);
    for (i, (a, b)) in uniform.iter().zip(&blurred).enumerate() {
        assert!((a - b).abs() < 1e-12, "cell {i}: uniform map changed {a} -> {b}");
    }

    // A single hot cell: blur must reduce the peak and raise the minimum,
    // never exceed the original range.
    let mut spike = vec![50.0; rows * cols];
    spike[rows / 2 * cols + cols / 2] = 90.0;
    let out = cam.capture(&spike, rows, cols, cell_w, cell_h);
    let (lo, hi) =
        out.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    assert!(hi < 90.0, "blur must erode the peak, got {hi}");
    assert!(lo >= 50.0 - 1e-12, "blur must not undershoot the floor, got {lo}");
}

/// Cross-package translation: measure in the oil rig, predict the air-sink
/// field. Prediction must agree with directly simulating the truth in the
/// target package.
#[test]
fn translation_predicts_target_package() {
    let plan = library::multicore(2, 2, 0.016, 0.016);
    let truth = PowerMap::from_vec(&plan, vec![6.0, 3.0, 9.0, 4.0]);
    let config = ModelConfig::paper_default().with_grid(16, 16);
    let rig = ThermalModel::new(
        plan.clone(),
        Package::OilSilicon(OilSiliconPackage::paper_default()),
        config,
    )
    .expect("rig model");
    let target = ThermalModel::new(plan, Package::AirSink(AirSinkPackage::paper_default()), config)
        .expect("target model");

    let measured = rig.steady_state(&truth).expect("rig solve");
    let translator = PackageTranslator::new(&rig, &target).expect("translator builds");
    let predicted = translator.translate_steady(measured.silicon_cells()).expect("translation");
    let direct = target.steady_state(&truth).expect("direct target solve");

    assert!(
        (predicted.max_celsius() - direct.max_celsius()).abs() < 0.1,
        "max: predicted {:.2} degC vs direct {:.2} degC",
        predicted.max_celsius(),
        direct.max_celsius()
    );
    assert!(
        (predicted.average_celsius() - direct.average_celsius()).abs() < 0.1,
        "mean: predicted {:.2} degC vs direct {:.2} degC",
        predicted.average_celsius(),
        direct.average_celsius()
    );
}

/// Noisy sensing is seeded: two arrays built with the same seed read the
/// same values sample for sample, a different seed reads differently, and
/// greedy placement (pure arithmetic) is replay-stable.
#[test]
fn sensing_and_placement_are_deterministic_under_fixed_seed() {
    let (model, truth) = oil_model(16);
    let sol = model.steady_state(&truth).expect("steady solve");

    let noisy_array = |seed: u64| {
        SensorArray::new(
            (0..6)
                .map(|i| {
                    Sensor::ideal(format!("s{i}"), 0.002 + 0.002 * i as f64, 0.008).with_noise(0.5)
                })
                .collect(),
            60e-6,
            0.1,
            seed,
        )
    };
    let readings = |seed: u64| {
        let mut arr = noisy_array(seed);
        (0..8).flat_map(|_| arr.read(&sol)).collect::<Vec<f64>>()
    };
    assert_eq!(readings(42), readings(42), "same seed, same noise stream");
    assert_ne!(readings(42), readings(43), "different seed, different noise");

    let (pos_a, err_a) = greedy_placement(&[&sol], 3);
    let (pos_b, err_b) = greedy_placement(&[&sol], 3);
    assert_eq!(pos_a, pos_b, "placement is deterministic");
    assert!((err_a - err_b).abs() == 0.0);
    assert!(err_a < 1.0, "3 sensors cover one workload within 1 K, got {err_a:.3} K");
}
