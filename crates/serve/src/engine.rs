//! The solve engine: scenario resolution, request coalescing, and the
//! daemon-owned circuit cache.
//!
//! Coalescing sits *above* the LRU: concurrent identical requests elect one
//! leader that runs the full pipeline while followers block on a condvar and
//! share the leader's [`Solution`]. The in-flight key folds in the lowered
//! stack's [`content_hash`](hotiron_thermal::LayerStack::content_hash), the
//! canonical `.scn` text of the *effective* scenario (after power overrides)
//! and the fidelity tier — two requests coalesce exactly when they would run
//! byte-identical pipelines. Because followers never call into the cache,
//! `misses == 1 && hits == 0` on a fresh cache is proof that N concurrent
//! identical requests assembled exactly one circuit.

use crate::json::{obj, Json};
use crate::protocol::{FidelityTier, ScenarioSource, SolveRequest};
use hotiron_bench::common::{self, Fidelity};
use hotiron_bench::scenario::{self, PlanKind, PowerSpec, Scenario, Solution, SolverSpec};
use hotiron_thermal::{CircuitCache, LayerStack};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// A solve failure with its response code: `404` unknown scenario, `422`
/// unusable scenario content, `500` solver failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// HTTP-flavored response code.
    pub code: u16,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

impl std::error::Error for EngineError {}

fn unprocessable(message: impl Into<String>) -> EngineError {
    EngineError { code: 422, message: message.into() }
}

/// How a solve was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Ran the pipeline; the circuit came out of the cache.
    Hit,
    /// Ran the pipeline; the circuit was assembled.
    Miss,
    /// Joined another request's in-flight solve.
    Coalesced,
}

impl Disposition {
    /// The wire token (`"hit"` / `"miss"` / `"coalesced"`).
    pub fn token(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::Coalesced => "coalesced",
        }
    }
}

/// One in-flight solve: the leader publishes into `result` and wakes
/// followers through `cv`.
struct Inflight {
    result: Mutex<Option<Result<Arc<Solution>, EngineError>>>,
    cv: Condvar,
}

/// The daemon's solve engine. Shared across workers (`&Engine` is all the
/// hot path needs); owns the bounded circuit cache and the in-flight table.
pub struct Engine {
    cache: CircuitCache,
    inflight: Mutex<HashMap<u64, Arc<Inflight>>>,
    /// Process-wide solver default (`HOTIRON_SOLVER`); per-request `solver`
    /// still wins over it.
    process_solver: Option<SolverSpec>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("cache", &self.cache)
            .field("inflight", &self.inflight_len())
            .finish()
    }
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    // FNV-1a, seeded so successive fields chain into one digest.
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn coalesce_key(stack: &LayerStack, sc: &Scenario, fidelity: Fidelity) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &stack.content_hash().to_le_bytes());
    h = fnv1a(h, sc.to_scn().as_bytes());
    fnv1a(h, fidelity.pick(b"fast".as_slice(), b"paper".as_slice()))
}

/// The board form of the coalesce key. Board scenarios have no single stack
/// to hash (and an empty-layer placeholder that must never be lowered); the
/// canonical `.scn` text alone already pins every placement, via field and
/// override, so hashing it with a domain tag keeps board and stack keys
/// disjoint.
fn coalesce_key_board(sc: &Scenario, fidelity: Fidelity) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, b"board");
    h = fnv1a(h, sc.to_scn().as_bytes());
    fnv1a(h, fidelity.pick(b"fast".as_slice(), b"paper".as_slice()))
}

impl Engine {
    /// An engine whose circuit cache holds at most `cache_capacity` circuits.
    /// The process-wide solver default is read from `HOTIRON_SOLVER`
    /// (unknown tokens are ignored rather than refusing to start).
    pub fn new(cache_capacity: usize) -> Self {
        let process_solver =
            std::env::var("HOTIRON_SOLVER").ok().and_then(|tok| SolverSpec::from_token(tok.trim()));
        Self::with_process_solver(cache_capacity, process_solver)
    }

    /// An engine with an explicit process-wide solver default (tests; `new`
    /// reads it from the environment).
    pub fn with_process_solver(cache_capacity: usize, process_solver: Option<SolverSpec>) -> Self {
        Self {
            cache: CircuitCache::new(cache_capacity),
            inflight: Mutex::new(HashMap::new()),
            process_solver,
        }
    }

    /// The engine-owned circuit cache (for `/stats` and tests).
    pub fn cache(&self) -> &CircuitCache {
        &self.cache
    }

    /// Solves currently in flight (leaders with possible followers).
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().expect("inflight table poisoned").len()
    }

    /// Resolves a request to the effective scenario it will run: looks up or
    /// parses the scenario, then applies the power overrides (`power_w`
    /// replaces the source, `power_scale` multiplies whatever is left) and
    /// the solver override (request `solver` wins over `HOTIRON_SOLVER`,
    /// which wins over the scenario's own choice). The override lands before
    /// the coalesce key is computed, so requests for different solvers never
    /// share a solve.
    ///
    /// # Errors
    ///
    /// `404` for an unknown shipped name, `422` for unparsable or unusable
    /// content.
    pub fn resolve(&self, req: &SolveRequest) -> Result<(Scenario, Fidelity), EngineError> {
        let mut sc = match &req.scenario {
            ScenarioSource::Named(name) => {
                let text =
                    scenario::SHIPPED.iter().find(|(n, _)| n == name).map(|(_, t)| *t).ok_or_else(
                        || EngineError {
                            code: 404,
                            message: format!(
                                "unknown scenario `{name}` (shipped: {})",
                                scenario::SHIPPED
                                    .iter()
                                    .map(|(n, _)| *n)
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        },
                    )?;
                scenario::parse(text).expect("shipped scenarios parse")
            }
            ScenarioSource::Inline(text) => {
                scenario::parse(text).map_err(|e| unprocessable(e.to_string()))?
            }
        };
        if let Some(watts) = req.power_w {
            if sc.board.is_some() {
                return Err(unprocessable(
                    "power_w cannot override a board scenario (power is per-[place]; use power_scale)",
                ));
            }
            sc.power = PowerSpec::Uniform(watts);
        }
        if let Some(scale) = req.power_scale {
            if sc.board.is_some() {
                // Boards scale every placement's power together — the
                // board-level analogue of scaling the single die's source.
                for place in &mut sc.places {
                    place.power = scale_power_spec(&place.power, place.plan, scale);
                }
            } else {
                sc.power = scale_power_spec(&sc.power, sc.plan, scale);
            }
        }
        if let Some(spec) = req.solver.or(self.process_solver) {
            sc.solver = spec;
        }
        let fidelity = match req.fidelity {
            FidelityTier::Fast => Fidelity::Fast,
            FidelityTier::Paper => Fidelity::Paper,
        };
        Ok((sc, fidelity))
    }

    /// Runs (or joins) the solve for `req`.
    ///
    /// # Errors
    ///
    /// [`EngineError`] with the response code; followers receive the
    /// leader's error verbatim.
    pub fn solve(&self, req: &SolveRequest) -> Result<(Arc<Solution>, Disposition), EngineError> {
        let (sc, fidelity) = self.resolve(req)?;
        let key = if sc.board.is_some() {
            coalesce_key_board(&sc, fidelity)
        } else {
            let stack = sc.stack().map_err(|e| unprocessable(e.to_string()))?;
            coalesce_key(&stack, &sc, fidelity)
        };

        let (entry, leader) = {
            let mut inflight = self.inflight.lock().expect("inflight table poisoned");
            match inflight.get(&key) {
                Some(entry) => (Arc::clone(entry), false),
                None => {
                    let entry = Arc::new(Inflight { result: Mutex::new(None), cv: Condvar::new() });
                    inflight.insert(key, Arc::clone(&entry));
                    (entry, true)
                }
            }
        };

        if !leader {
            let mut slot = entry.result.lock().expect("inflight slot poisoned");
            while slot.is_none() {
                slot = entry.cv.wait(slot).expect("inflight slot poisoned");
            }
            return slot
                .clone()
                .expect("loop exits only once published")
                .map(|solution| (solution, Disposition::Coalesced));
        }

        let outcome = scenario::run_in(&sc, fidelity, &self.cache).map(Arc::new).map_err(|e| {
            let code = if e.message.starts_with("steady solve failed") { 500 } else { 422 };
            EngineError { code, message: e.to_string() }
        });
        // Unpublish before waking followers: a request arriving after the
        // removal starts a fresh solve instead of joining a finished one.
        self.inflight.lock().expect("inflight table poisoned").remove(&key);
        let mut slot = entry.result.lock().expect("inflight slot poisoned");
        *slot = Some(outcome.clone());
        entry.cv.notify_all();
        drop(slot);
        outcome.map(|solution| {
            let disposition = if solution.cache_hit { Disposition::Hit } else { Disposition::Miss };
            (solution, disposition)
        })
    }
}

/// Scales a power spec by `scale`, materializing the gcc map into explicit
/// per-block watts (the spec itself has no scale knob). `plan` is whichever
/// die carries the spec — the scenario's own, or one `[place]`'s.
fn scale_power_spec(power: &PowerSpec, plan_kind: PlanKind, scale: f64) -> PowerSpec {
    match power {
        PowerSpec::Uniform(w) => PowerSpec::Uniform(w * scale),
        PowerSpec::Blocks(blocks) => {
            PowerSpec::Blocks(blocks.iter().map(|(b, w)| (b.clone(), w * scale)).collect())
        }
        PowerSpec::Gcc => {
            let (plan, power) = match plan_kind {
                PlanKind::Ev6 => common::ev6_gcc(),
                PlanKind::Athlon64 => common::athlon_gcc(),
                // `parse` rejects gcc power on other plans.
                _ => unreachable!("gcc power needs a named plan"),
            };
            PowerSpec::Blocks(
                plan.blocks()
                    .iter()
                    .zip(power.values())
                    .map(|(block, w)| (block.name().to_owned(), w * scale))
                    .collect(),
            )
        }
    }
}

/// Renders the `200` solve report. `blocks` toggles the per-block
/// temperature listing (clients polling only headline numbers skip it).
pub fn solution_response(
    sc_name: &str,
    fidelity: FidelityTier,
    solution: &Solution,
    disposition: Disposition,
    blocks: bool,
) -> Json {
    let stats = &solution.solve_stats;
    let mut members = vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("code".to_owned(), Json::Num(200.0)),
        ("kind".to_owned(), Json::Str("solve".into())),
        ("scenario".to_owned(), Json::Str(sc_name.to_owned())),
        ("fidelity".to_owned(), Json::Str(fidelity.token().into())),
        ("cache".to_owned(), Json::Str(disposition.token().into())),
        ("total_power_w".to_owned(), Json::Num(solution.total_power_w)),
        ("silicon_max_c".to_owned(), Json::Num(solution.silicon_max_c)),
        ("silicon_mean_c".to_owned(), Json::Num(solution.silicon_mean_c)),
        ("global_max_c".to_owned(), Json::Num(solution.global_max_c)),
        ("global_min_c".to_owned(), Json::Num(solution.global_min_c)),
        ("energy_rel".to_owned(), Json::Num(solution.energy_rel)),
        (
            "solver".to_owned(),
            obj([
                ("method", Json::Str(stats.method.label().into())),
                ("iterations", Json::Num(stats.iterations as f64)),
                ("relative_residual", Json::Num(stats.relative_residual)),
                ("converged", Json::Bool(stats.converged)),
                ("threads", Json::Num(stats.threads as f64)),
                ("warm_start", Json::Bool(stats.warm_start)),
            ]),
        ),
    ];
    if blocks {
        members.push((
            "blocks".to_owned(),
            Json::Obj(
                solution.blocks.iter().map(|(name, t)| (name.clone(), Json::Num(*t))).collect(),
            ),
        ));
    }
    Json::Obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::thread;

    fn named(name: &str) -> SolveRequest {
        SolveRequest {
            scenario: ScenarioSource::Named(name.into()),
            fidelity: FidelityTier::Fast,
            power_scale: None,
            power_w: None,
            deadline_ms: None,
            blocks: true,
            solver: None,
        }
    }

    #[test]
    fn unknown_scenario_is_404_and_lists_shipped_names() {
        let engine = Engine::new(8);
        let e = engine.solve(&named("nope")).unwrap_err();
        assert_eq!(e.code, 404);
        assert!(e.message.contains("paper-oil"), "{e}");
    }

    #[test]
    fn inline_parse_error_is_422_with_line() {
        let engine = Engine::new(8);
        let mut req = named("x");
        req.scenario = ScenarioSource::Inline("[scenario]\nname = x\nwat = 1\n".into());
        let e = engine.solve(&req).unwrap_err();
        assert_eq!(e.code, 422);
        assert!(e.message.contains("line 3"), "{e}");
    }

    #[test]
    fn power_overrides_change_the_effective_scenario() {
        let engine = Engine::new(8);
        let mut req = named("paper-oil");
        req.power_w = Some(10.0);
        req.power_scale = Some(2.0);
        let (sc, _) = engine.resolve(&req).unwrap();
        assert_eq!(sc.power, PowerSpec::Uniform(20.0), "power_w then power_scale");
        let (sol, _) = engine.solve(&req).unwrap();
        assert!((sol.total_power_w - 20.0).abs() < 1e-9);
    }

    #[test]
    fn power_scale_materializes_gcc_blocks() {
        let engine = Engine::new(8);
        let mut req = named("paper-air");
        req.power_scale = Some(0.5);
        let (sc, _) = engine.resolve(&req).unwrap();
        let PowerSpec::Blocks(blocks) = &sc.power else {
            panic!("gcc scaled into explicit blocks, got {:?}", sc.power)
        };
        let (_, gcc) = common::ev6_gcc();
        let total: f64 = blocks.iter().map(|(_, w)| w).sum();
        assert!((total - gcc.total() * 0.5).abs() < 1e-9);
    }

    #[test]
    fn identical_solves_share_cached_circuits() {
        let engine = Engine::new(8);
        let (_, d1) = engine.solve(&named("paper-air")).unwrap();
        let (_, d2) = engine.solve(&named("paper-air")).unwrap();
        assert_eq!(d1, Disposition::Miss);
        assert_eq!(d2, Disposition::Hit);
        assert_eq!(engine.cache().counters().misses, 1);
    }

    #[test]
    fn concurrent_identical_requests_build_exactly_one_circuit() {
        const N: usize = 8;
        let engine = Arc::new(Engine::new(8));
        let barrier = Arc::new(Barrier::new(N));
        let dispositions: Vec<Disposition> = (0..N)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    let (sol, d) = engine.solve(&named("paper-oil")).unwrap();
                    assert!(sol.solve_stats.converged);
                    d
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        let c = engine.cache().counters();
        // Followers never touch the cache, and a thread arriving after the
        // leader published hits the now-warm cache instead of assembling —
        // so one miss is exactly one circuit build, however the N threads
        // interleave.
        assert_eq!(c.misses, 1, "exactly one build for {N} requests");
        let count = |d: Disposition| dispositions.iter().filter(|x| **x == d).count();
        assert_eq!(count(Disposition::Miss), 1, "one leader");
        assert_eq!(count(Disposition::Hit) + count(Disposition::Coalesced), N - 1);
        assert_eq!(c.hits as usize, count(Disposition::Hit));
        assert_eq!(engine.inflight_len(), 0, "in-flight table drains");
    }

    #[test]
    fn requested_solver_overrides_the_process_default() {
        let engine = Engine::with_process_solver(8, Some(SolverSpec::Cg));
        let (sol, _) = engine.solve(&named("bare-die-forced-air")).unwrap();
        assert_eq!(sol.solve_stats.method.label(), "cg", "process default applies");
        let mut req = named("bare-die-forced-air");
        req.solver = Some(SolverSpec::Spectral);
        let (sol, _) = engine.solve(&req).unwrap();
        assert_eq!(sol.solve_stats.method.label(), "spectral", "request wins");
        assert!(sol.solve_stats.converged);
    }

    #[test]
    fn spectral_on_an_ineligible_stack_is_422() {
        let engine = Engine::new(8);
        let mut req = named("paper-oil");
        req.solver = Some(SolverSpec::Spectral);
        let e = engine.solve(&req).unwrap_err();
        assert_eq!(e.code, 422, "{e}");
        assert!(e.message.contains("spectral solver ineligible"), "{e}");
    }

    #[test]
    fn board_scenario_solves_with_multigrid_and_caches() {
        let engine = Engine::new(8);
        let mut req = named("board-duo");
        req.solver = Some(SolverSpec::Multigrid);
        let (sol, d1) = engine.solve(&req).unwrap();
        assert_eq!(sol.solve_stats.method.label(), "mg-cg", "boards run the MG path");
        assert!(sol.solve_stats.converged);
        assert_eq!(sol.placements.len(), 2, "per-placement report rides along");
        assert_eq!(d1, Disposition::Miss);
        let (_, d2) = engine.solve(&req).unwrap();
        assert_eq!(d2, Disposition::Hit, "board circuits flow through the cache");
    }

    #[test]
    fn spectral_on_a_board_is_422_with_named_reason() {
        let engine = Engine::new(8);
        let mut req = named("board-qfn-vias");
        req.solver = Some(SolverSpec::Spectral);
        let e = engine.solve(&req).unwrap_err();
        assert_eq!(e.code, 422, "{e}");
        assert!(e.message.contains("spectral solver ineligible"), "{e}");
    }

    #[test]
    fn power_w_on_a_board_is_422_but_power_scale_applies() {
        let engine = Engine::new(8);
        let mut req = named("board-duo");
        req.power_w = Some(10.0);
        let e = engine.solve(&req).unwrap_err();
        assert_eq!(e.code, 422, "{e}");
        assert!(e.message.contains("per-[place]"), "{e}");

        let base = engine.solve(&named("board-duo")).unwrap().0;
        let mut scaled = named("board-duo");
        scaled.power_scale = Some(2.0);
        let (sol, _) = engine.solve(&scaled).unwrap();
        assert!((sol.total_power_w - 2.0 * base.total_power_w).abs() < 1e-9);
        assert!(sol.silicon_max_c > base.silicon_max_c + 1.0, "doubled power runs hotter");
    }

    #[test]
    fn different_requests_do_not_coalesce() {
        let engine = Engine::new(8);
        let mut scaled = named("paper-air");
        scaled.power_scale = Some(2.0);
        let (a, _) = engine.solve(&named("paper-air")).unwrap();
        let (b, _) = engine.solve(&scaled).unwrap();
        assert!(b.silicon_max_c > a.silicon_max_c + 1.0, "doubled power runs hotter");
        // Same stack, same grid: the circuit is shared even though the
        // solves are distinct.
        assert_eq!(engine.cache().counters().misses, 1);
        assert_eq!(engine.cache().counters().hits, 1);
    }
}
