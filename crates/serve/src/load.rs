//! Load driving: a blocking client, a seeded open-loop request generator,
//! and the latency report both the `loadgen` binary and the
//! `serve_throughput` bench print.
//!
//! The generator is *open-loop*: arrival times are fixed up front at
//! `i / rate` and each connection sends at its scheduled instants whether or
//! not earlier responses have returned — a slow server accumulates queueing
//! delay in the measured latencies instead of silently throttling the
//! offered load (the usual coordinated-omission trap).

use crate::json::{obj, Json};
use crate::protocol::{
    read_frame, write_frame, FidelityTier, FrameError, Request, ScenarioSource, SolveRequest,
    MAX_FRAME_BYTES,
};
use hotiron_bench::scenario::{SolverSpec, SHIPPED};
use rand::{Rng, SeedableRng, StdRng};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A blocking request/response client over one connection.
pub struct Client {
    stream: TcpStream,
}

/// A failed exchange, split by blame: transport failures versus responses
/// that were not valid protocol JSON.
#[derive(Debug)]
pub enum ClientError {
    /// Connect, framing or I/O failure.
    Transport(FrameError),
    /// The response frame was not a JSON object.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "transport: {e}"),
            Self::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl Client {
    /// Connects to the daemon.
    ///
    /// # Errors
    ///
    /// The underlying connect failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a non-JSON response.
    pub fn request(&mut self, req: &Request) -> Result<Json, ClientError> {
        let payload = req.to_json().render();
        write_frame(&mut self.stream, payload.as_bytes())
            .map_err(|e| ClientError::Transport(FrameError::Io(e)))?;
        let frame =
            read_frame(&mut self.stream, MAX_FRAME_BYTES).map_err(ClientError::Transport)?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| ClientError::BadResponse(format!("not utf-8: {e}")))?;
        Json::parse(text).map_err(|e| ClientError::BadResponse(e.to_string()))
    }
}

/// Open-loop run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, `host:port`.
    pub addr: String,
    /// Offered load, requests per second.
    pub rate: f64,
    /// Run length, seconds.
    pub seconds: f64,
    /// Client connections (arrivals are dealt round-robin).
    pub connections: usize,
    /// Mix seed; equal seeds replay the identical request sequence.
    pub seed: u64,
    /// Fraction of solves requesting `paper` fidelity (default 0: the
    /// serving tier under test is `fast`).
    pub paper_share: f64,
    /// Fraction of solves carrying a `power_scale` override.
    pub scale_share: f64,
    /// Fraction of solves shipping the scenario inline instead of by name.
    pub inline_share: f64,
    /// Fraction of solves pinned to the spectral backend. These target the
    /// qualifying `bare-die-forced-air` scenario (a spectral request against
    /// an ineligible stack is a `422`, which would read as load-mix noise).
    pub spectral_share: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            rate: 400.0,
            seconds: 5.0,
            connections: 8,
            seed: 0x0100_5EED,
            paper_share: 0.0,
            scale_share: 0.25,
            inline_share: 0.10,
            spectral_share: 0.0,
        }
    }
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// `200` solve responses.
    pub ok: u64,
    /// `503` shed responses (still clean protocol exchanges).
    pub shed: u64,
    /// Non-200/503 responses or undecodable response documents.
    pub protocol_errors: u64,
    /// Connect/framing/I-O failures.
    pub transport_errors: u64,
    /// Responses whose circuit came from the cache.
    pub cache_hits: u64,
    /// Responses whose circuit was assembled for them.
    pub cache_misses: u64,
    /// Responses that joined another request's in-flight solve.
    pub coalesced: u64,
    /// Responses solved by the spectral backend.
    pub spectral: u64,
    /// Per-request latencies, sorted ascending, nanoseconds (200s only).
    pub latencies_ns: Vec<u64>,
    /// Latencies split by service path, each sorted ascending, nanoseconds;
    /// indexed in [`PATH_TOKENS`] order (hit, miss, coalesced, spectral).
    pub path_latencies_ns: [Vec<u64>; 4],
    /// Wall-clock of the whole run, seconds.
    pub elapsed_s: f64,
}

/// Service-path labels for [`LoadReport::path_latencies_ns`], in index order.
pub const PATH_TOKENS: [&str; 4] = ["hit", "miss", "coalesced", "spectral"];

/// Histogram bucket upper bounds, milliseconds (the last is open-ended).
pub const BUCKET_BOUNDS_MS: [f64; 10] =
    [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, f64::INFINITY];

impl LoadReport {
    /// Completed-OK throughput, requests per second.
    pub fn achieved_rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.ok as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Latency percentile in nanoseconds (0 when no samples).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        percentile_of(&self.latencies_ns, p)
    }

    /// Renders the report (with the latency histogram) as JSON.
    pub fn to_json(&self) -> Json {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut counts = [0u64; BUCKET_BOUNDS_MS.len()];
        for &ns in &self.latencies_ns {
            let v = ms(ns);
            let slot = BUCKET_BOUNDS_MS.iter().position(|&b| v <= b).unwrap_or(counts.len() - 1);
            counts[slot] += 1;
        }
        let buckets = BUCKET_BOUNDS_MS
            .iter()
            .zip(counts)
            .map(|(&bound, n)| {
                obj([
                    (
                        "le_ms",
                        if bound.is_finite() { Json::Num(bound) } else { Json::Str("inf".into()) },
                    ),
                    ("count", Json::Num(n as f64)),
                ])
            })
            .collect();
        obj([
            ("sent", Json::Num(self.sent as f64)),
            ("ok", Json::Num(self.ok as f64)),
            ("shed", Json::Num(self.shed as f64)),
            ("protocol_errors", Json::Num(self.protocol_errors as f64)),
            ("transport_errors", Json::Num(self.transport_errors as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_misses", Json::Num(self.cache_misses as f64)),
            ("coalesced", Json::Num(self.coalesced as f64)),
            ("spectral", Json::Num(self.spectral as f64)),
            ("elapsed_s", Json::Num(self.elapsed_s)),
            ("achieved_rps", Json::Num(self.achieved_rps())),
            (
                "latency_ms",
                obj([
                    ("count", Json::Num(self.latencies_ns.len() as f64)),
                    ("p50", Json::Num(ms(self.percentile_ns(0.50)))),
                    ("p90", Json::Num(ms(self.percentile_ns(0.90)))),
                    ("p99", Json::Num(ms(self.percentile_ns(0.99)))),
                    ("max", Json::Num(ms(self.latencies_ns.last().copied().unwrap_or(0)))),
                ]),
            ),
            (
                "latency_by_path_ms",
                Json::Obj(
                    PATH_TOKENS
                        .iter()
                        .zip(&self.path_latencies_ns)
                        .map(|(&token, samples)| {
                            (
                                token.to_owned(),
                                obj([
                                    ("count", Json::Num(samples.len() as f64)),
                                    ("p50", Json::Num(ms(percentile_of(samples, 0.50)))),
                                    ("p99", Json::Num(ms(percentile_of(samples, 0.99)))),
                                    ("max", Json::Num(ms(samples.last().copied().unwrap_or(0)))),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// Percentile over an ascending-sorted sample slice (0 when empty).
fn percentile_of(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

/// Draws one solve request from the seeded mix.
fn draw_request(rng: &mut StdRng, cfg: &LoadConfig) -> Request {
    if rng.gen_bool(cfg.spectral_share.clamp(0.0, 1.0)) {
        // Spectral requests pin the one shipped scenario whose fast-tier
        // stack qualifies; mixing in ineligible stacks would only tally 422s.
        return Request::Solve(SolveRequest {
            scenario: ScenarioSource::Named("bare-die-forced-air".to_owned()),
            fidelity: FidelityTier::Fast,
            power_scale: None,
            power_w: None,
            deadline_ms: None,
            blocks: rng.gen_bool(0.5),
            solver: Some(SolverSpec::Spectral),
        });
    }
    let (name, text) = SHIPPED[rng.gen_range(0..SHIPPED.len())];
    let scenario = if rng.gen_bool(cfg.inline_share.clamp(0.0, 1.0)) {
        ScenarioSource::Inline(text.to_owned())
    } else {
        ScenarioSource::Named(name.to_owned())
    };
    let fidelity = if rng.gen_bool(cfg.paper_share.clamp(0.0, 1.0)) {
        FidelityTier::Paper
    } else {
        FidelityTier::Fast
    };
    let power_scale = rng
        .gen_bool(cfg.scale_share.clamp(0.0, 1.0))
        // A small palette, not a continuous draw: repeated scales keep the
        // effective-scenario space small enough for the cache and the
        // coalescer to see duplicates.
        .then(|| [0.5, 0.8, 1.0, 1.25, 1.5, 2.0][rng.gen_range(0..6usize)]);
    Request::Solve(SolveRequest {
        scenario,
        fidelity,
        power_scale,
        power_w: None,
        deadline_ms: None,
        blocks: rng.gen_bool(0.5),
        solver: None,
    })
}

/// Runs the open-loop load and merges every connection's tallies.
///
/// # Errors
///
/// Fails only when no connection could be established at all; per-request
/// failures are tallied in the report instead.
pub fn run_load(cfg: &LoadConfig) -> io::Result<LoadReport> {
    // Probe once so a wrong address fails fast with a real error.
    drop(Client::connect(&cfg.addr)?);
    let total = (cfg.rate * cfg.seconds).round().max(1.0) as u64;
    let connections = cfg.connections.max(1);
    let report = Arc::new(Mutex::new(LoadReport::default()));
    let sent = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut threads = Vec::new();
    for conn in 0..connections {
        let cfg = cfg.clone();
        let report = Arc::clone(&report);
        let sent = Arc::clone(&sent);
        threads.push(thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (conn as u64).wrapping_mul(0x9E37));
            let mut client = match Client::connect(&cfg.addr) {
                Ok(c) => c,
                Err(_) => {
                    report.lock().expect("report lock").transport_errors += 1;
                    return;
                }
            };
            let mut local = LoadReport::default();
            // This connection owns arrivals conn, conn+C, conn+2C, …
            let mut i = conn as u64;
            while i < total {
                let due = start + Duration::from_secs_f64(i as f64 / cfg.rate);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    thread::sleep(wait);
                }
                let req = draw_request(&mut rng, &cfg);
                local.sent += 1;
                sent.fetch_add(1, Ordering::Relaxed);
                let sent_at = Instant::now();
                match client.request(&req) {
                    Ok(resp) => {
                        let code = resp.get("code").and_then(Json::as_u64);
                        match code {
                            Some(200) => {
                                local.ok += 1;
                                let ns =
                                    sent_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                                local.latencies_ns.push(ns);
                                let spectral = resp
                                    .get("solver")
                                    .and_then(|s| s.get("method"))
                                    .and_then(Json::as_str)
                                    == Some("spectral");
                                if spectral {
                                    local.spectral += 1;
                                }
                                let cache = resp.get("cache").and_then(Json::as_str);
                                match cache {
                                    Some("hit") => local.cache_hits += 1,
                                    Some("miss") => local.cache_misses += 1,
                                    Some("coalesced") => local.coalesced += 1,
                                    _ => {}
                                }
                                // Latency-path order mirrors PATH_TOKENS;
                                // spectral wins over the cache disposition.
                                let path = match cache {
                                    _ if spectral => 3,
                                    Some("hit") => 0,
                                    Some("coalesced") => 2,
                                    _ => 1,
                                };
                                local.path_latencies_ns[path].push(ns);
                            }
                            Some(503) => local.shed += 1,
                            _ => local.protocol_errors += 1,
                        }
                    }
                    Err(ClientError::BadResponse(_)) => local.protocol_errors += 1,
                    Err(ClientError::Transport(_)) => {
                        local.transport_errors += 1;
                        // The stream may be out of frame alignment; start a
                        // fresh connection for the remaining arrivals.
                        match Client::connect(&cfg.addr) {
                            Ok(c) => client = c,
                            Err(_) => break,
                        }
                    }
                }
                i += connections as u64;
            }
            let mut merged = report.lock().expect("report lock");
            merged.sent += local.sent;
            merged.ok += local.ok;
            merged.shed += local.shed;
            merged.protocol_errors += local.protocol_errors;
            merged.transport_errors += local.transport_errors;
            merged.cache_hits += local.cache_hits;
            merged.cache_misses += local.cache_misses;
            merged.coalesced += local.coalesced;
            merged.spectral += local.spectral;
            merged.latencies_ns.extend(local.latencies_ns);
            for (into, from) in merged.path_latencies_ns.iter_mut().zip(local.path_latencies_ns) {
                into.extend(from);
            }
        }));
    }
    for t in threads {
        let _ = t.join();
    }
    let mut merged =
        Arc::try_unwrap(report).map(|m| m.into_inner().expect("report lock")).unwrap_or_default();
    merged.elapsed_s = start.elapsed().as_secs_f64();
    merged.latencies_ns.sort_unstable();
    for samples in &mut merged.path_latencies_ns {
        samples.sort_unstable();
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_percentiles_and_histogram() {
        let r = LoadReport {
            latencies_ns: (1..=100u64).map(|i| i * 1_000_000).collect(),
            ok: 100,
            elapsed_s: 2.0,
            ..LoadReport::default()
        };
        // Index round((n-1)*p) = 50 → the 51st sample.
        assert_eq!(r.percentile_ns(0.5), 51_000_000);
        assert_eq!(r.percentile_ns(0.99), 99_000_000);
        assert!((r.achieved_rps() - 50.0).abs() < 1e-9);
        let json = r.to_json().render();
        assert!(json.contains("\"p99\":99"), "{json}");
        assert!(json.contains("\"le_ms\":1,\"count\":1"), "{json}");
    }

    #[test]
    fn spectral_share_pins_the_qualifying_scenario() {
        let cfg = LoadConfig { spectral_share: 1.0, ..LoadConfig::default() };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let Request::Solve(req) = draw_request(&mut rng, &cfg) else {
                panic!("draw_request yields solves")
            };
            assert_eq!(req.scenario, ScenarioSource::Named("bare-die-forced-air".into()));
            assert_eq!(req.solver, Some(SolverSpec::Spectral));
        }
    }

    #[test]
    fn report_json_carries_per_path_latencies() {
        let mut r = LoadReport::default();
        r.path_latencies_ns[3] = vec![1_000_000, 2_000_000];
        r.spectral = 2;
        let json = r.to_json().render();
        assert!(json.contains("\"latency_by_path_ms\""), "{json}");
        assert!(json.contains("\"spectral\":{\"count\":2"), "{json}");
    }

    #[test]
    fn mix_is_deterministic_per_seed() {
        let cfg = LoadConfig { seed: 7, ..LoadConfig::default() };
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(draw_request(&mut a, &cfg), draw_request(&mut b, &cfg));
        }
    }
}
