//! `hotiron-serve`: a std-only TCP daemon that answers scenario solves.
//!
//! A request names a shipped scenario (or carries an inline `.scn` payload)
//! plus a fidelity tier and optional power overrides; the response is the
//! solve report — per-block temperatures, solver telemetry, and how the
//! request was satisfied (cache hit, fresh build, or coalesced onto another
//! request's in-flight solve). The daemon layers, bottom to top:
//!
//! 1. a bounded LRU of assembled circuits
//!    ([`hotiron_thermal::CircuitCache`]) with hit/miss/eviction counters;
//! 2. request coalescing ([`engine`]): concurrent identical requests share
//!    one solve, keyed by the lowered stack's content hash plus the
//!    effective scenario;
//! 3. overload shedding ([`server`]): a bounded solve queue sheds at
//!    admission, per-request deadlines shed at dispatch, and a `shutdown`
//!    request drains gracefully — every shed is an explicit `503` response,
//!    never a dropped connection;
//! 4. `/stats` ([`metrics`]): request counters, a p50/p99 latency ring,
//!    cache counters, shed counts and pool occupancy.
//!
//! The wire format ([`protocol`]) is 4-byte big-endian length-prefixed JSON
//! ([`json`] is a dependency-free parser/writer). [`load`] drives the daemon
//! for the `loadgen` binary and the `serve_throughput` bench.

pub mod engine;
pub mod json;
pub mod load;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use engine::{Disposition, Engine, EngineError};
pub use load::{run_load, Client, LoadConfig, LoadReport};
pub use protocol::{Request, SolveRequest};
pub use server::{spawn, ServerConfig, ServerHandle};
