//! The daemon binary: bind, print the bound address, serve until a
//! `shutdown` request drains the process.

use hotiron_serve::{spawn, ServerConfig};
use std::io::Write as _;
use std::process::ExitCode;

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache N] [--deadline-ms N]";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse::<usize>()
                    .map_err(|e| format!("--workers: {e}"))?
                    .max(1);
            }
            "--queue" => {
                config.queue_capacity =
                    value("--queue")?.parse::<usize>().map_err(|e| format!("--queue: {e}"))?.max(1);
            }
            "--cache" => {
                config.cache_capacity =
                    value("--cache")?.parse::<usize>().map_err(|e| format!("--cache: {e}"))?;
            }
            "--deadline-ms" => {
                config.default_deadline_ms = value("--deadline-ms")?
                    .parse::<u64>()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let summary = format!(
        "workers={} queue={} cache={} deadline={}ms",
        config.workers, config.queue_capacity, config.cache_capacity, config.default_deadline_ms
    );
    let handle = match spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The address line is machine-read by scripts waiting for readiness;
    // flush so it is visible before the first request arrives.
    println!("hotiron-serve listening on {} ({summary})", handle.addr());
    let _ = std::io::stdout().flush();
    handle.join();
    println!("hotiron-serve drained");
    ExitCode::SUCCESS
}
