//! Seeded open-loop load generator for the serve daemon.
//!
//! Drives a deterministic request mix over the shipped scenarios, prints a
//! human summary to stderr and the latency-histogram JSON to stdout (or
//! `--out`). Exit code 0 means every exchange was protocol-clean; 2 means
//! protocol or transport errors were observed; 1 is a usage/connect error.

use hotiron_bench::scenario::SolverSpec;
use hotiron_serve::json::{obj, Json};
use hotiron_serve::protocol::{FidelityTier, Request, ScenarioSource, SolveRequest};
use hotiron_serve::{run_load, Client, LoadConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: loadgen --addr HOST:PORT [--rate RPS] [--seconds S] \
                     [--connections N] [--seed N] [--paper-share F] [--scale-share F] \
                     [--inline-share F] [--spectral-share F] [--out FILE] [--stats] \
                     [--shutdown] [--probe SCENARIO [--probe-solver TOKEN]]";

struct Args {
    cfg: LoadConfig,
    out: Option<String>,
    stats: bool,
    shutdown: bool,
    probe: Option<String>,
    probe_solver: Option<SolverSpec>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        cfg: LoadConfig::default(),
        out: None,
        stats: false,
        shutdown: false,
        probe: None,
        probe_solver: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"));
        fn num<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--addr" => parsed.cfg.addr = value("--addr")?,
            "--rate" => parsed.cfg.rate = num("--rate", value("--rate")?)?,
            "--seconds" => parsed.cfg.seconds = num("--seconds", value("--seconds")?)?,
            "--connections" => {
                parsed.cfg.connections = num("--connections", value("--connections")?)?;
            }
            "--seed" => parsed.cfg.seed = num("--seed", value("--seed")?)?,
            "--paper-share" => {
                parsed.cfg.paper_share = num("--paper-share", value("--paper-share")?)?;
            }
            "--scale-share" => {
                parsed.cfg.scale_share = num("--scale-share", value("--scale-share")?)?;
            }
            "--inline-share" => {
                parsed.cfg.inline_share = num("--inline-share", value("--inline-share")?)?;
            }
            "--spectral-share" => {
                parsed.cfg.spectral_share = num("--spectral-share", value("--spectral-share")?)?;
            }
            "--probe" => parsed.probe = Some(value("--probe")?),
            "--probe-solver" => {
                let tok = value("--probe-solver")?;
                parsed.probe_solver = Some(
                    SolverSpec::from_token(&tok)
                        .ok_or_else(|| format!("unknown solver `{tok}`"))?,
                );
            }
            "--out" => parsed.out = Some(value("--out")?),
            "--stats" => parsed.stats = true,
            "--shutdown" => parsed.shutdown = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if parsed.cfg.addr.is_empty() {
        return Err(format!("--addr is required\n{USAGE}"));
    }
    let positive = |x: f64| x.is_finite() && x > 0.0;
    if !positive(parsed.cfg.rate) || !positive(parsed.cfg.seconds) {
        return Err("--rate and --seconds must be positive".to_owned());
    }
    Ok(parsed)
}

/// One-shot probe: a single named solve, its headline answer printed to
/// stdout for scripted assertions. Exit 0 iff the daemon answered 200.
fn run_probe(addr: &str, scenario: &str, solver: Option<SolverSpec>) -> ExitCode {
    let req = Request::Solve(SolveRequest {
        scenario: ScenarioSource::Named(scenario.to_owned()),
        fidelity: FidelityTier::Fast,
        power_scale: None,
        power_w: None,
        deadline_ms: None,
        blocks: false,
        solver,
    });
    let resp = match Client::connect(addr)
        .map_err(|e| e.to_string())
        .and_then(|mut c| c.request(&req).map_err(|e| e.to_string()))
    {
        Ok(resp) => resp,
        Err(e) => {
            eprintln!("loadgen: probe `{scenario}` failed: {e}");
            return ExitCode::from(2);
        }
    };
    let code = resp.get("code").and_then(Json::as_f64).unwrap_or(0.0) as u16;
    let method = resp
        .get("solver")
        .and_then(|s| s.get("method"))
        .and_then(Json::as_str)
        .unwrap_or("-")
        .to_owned();
    let cache = resp.get("cache").and_then(Json::as_str).unwrap_or("-").to_owned();
    println!("probe: scenario={scenario} code={code} method={method} cache={cache}");
    if code == 200 {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "loadgen: probe `{scenario}` answered {code}: {}",
            resp.get("message").and_then(Json::as_str).unwrap_or("(no message)")
        );
        ExitCode::from(2)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(scenario) = &args.probe {
        return run_probe(&args.cfg.addr, scenario, args.probe_solver);
    }
    let report = match run_load(&args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: cannot reach {}: {e}", args.cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    let mut document = report.to_json();

    if args.stats {
        match Client::connect(&args.cfg.addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.request(&Request::Stats).map_err(|e| e.to_string()))
        {
            Ok(stats) => {
                if let Json::Obj(members) = &mut document {
                    members.push(("server".to_owned(), stats));
                }
            }
            Err(e) => eprintln!("loadgen: stats fetch failed: {e}"),
        }
    }

    let mut drained = true;
    if args.shutdown {
        drained = Client::connect(&args.cfg.addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.request(&Request::Shutdown).map_err(|e| e.to_string()))
            .map(|resp| resp.get("ok").and_then(Json::as_bool) == Some(true))
            .unwrap_or(false);
        if !drained {
            eprintln!("loadgen: shutdown request was not acknowledged");
        }
        if let Json::Obj(members) = &mut document {
            members.push(("shutdown_ack".to_owned(), Json::Bool(drained)));
        }
    }

    let rendered = obj([("loadgen", document)]).render();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
                eprintln!("loadgen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => println!("{rendered}"),
    }
    eprintln!(
        "loadgen: sent={} ok={} shed={} protocol_errors={} transport_errors={} \
         hit={} miss={} coalesced={} spectral={} achieved={:.1} rps p50={:.2} ms p99={:.2} ms",
        report.sent,
        report.ok,
        report.shed,
        report.protocol_errors,
        report.transport_errors,
        report.cache_hits,
        report.cache_misses,
        report.coalesced,
        report.spectral,
        report.achieved_rps(),
        report.percentile_ns(0.50) as f64 / 1e6,
        report.percentile_ns(0.99) as f64 / 1e6,
    );
    if report.protocol_errors > 0 || report.transport_errors > 0 || !drained {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
