//! Wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary.
//!
//! # Frame format
//!
//! ```text
//! +----------------+---------------------+
//! | length: u32 BE | payload: JSON utf-8 |
//! +----------------+---------------------+
//! ```
//!
//! One frame carries one JSON document. The length counts payload bytes
//! only; frames longer than the server's configured bound are rejected with
//! a `413` error and the connection is closed (an oversized or garbage
//! prefix means the stream can no longer be trusted to be frame-aligned).
//!
//! # Requests
//!
//! ```json
//! {"kind": "solve", "scenario": "paper-oil", "fidelity": "fast",
//!  "power_scale": 1.25, "deadline_ms": 50}
//! {"kind": "solve", "scn": "[scenario]\nname = inline\n…"}
//! {"kind": "stats"}
//! {"kind": "shutdown"}
//! ```
//!
//! `scenario` names a shipped scenario; `scn` carries an inline scenario
//! file. Exactly one of the two must be present. `power_scale` multiplies
//! the scenario's power, `power_w` replaces it with a uniform total;
//! `deadline_ms` bounds queue wait — a request that cannot start solving in
//! time is shed with a `503` response instead of being served late.
//!
//! `solver` (`"auto"`, `"direct"`, `"cg"`, `"multigrid"`, `"spectral"`)
//! overrides the scenario's solver choice for this request; it also
//! overrides the process-wide `HOTIRON_SOLVER` default. Requesting
//! `"spectral"` against a stack that does not qualify answers `422` naming
//! the disqualifying layer.
//!
//! # Responses
//!
//! Every response carries `ok` and `code` (HTTP-flavored). Solve reports add
//! per-block temperatures, solver telemetry and the cache disposition
//! (`"hit"`, `"miss"` or `"coalesced"`); shed responses carry
//! `code = 503` and a `shed` reason (`"queue-full"` or `"deadline"`).

use crate::json::{obj, Json};
use hotiron_bench::scenario::SolverSpec;
use std::io::{self, Read, Write};

/// Default maximum frame payload: 1 MiB.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A framing failure while reading.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream before a length prefix (normal connection close).
    Closed,
    /// The peer declared a payload longer than the configured bound.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// The server's bound.
        max: usize,
    },
    /// The stream ended mid-frame.
    Truncated,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Oversized { declared, max } => {
                write!(f, "declared frame of {declared} bytes exceeds the {max}-byte bound")
            }
            Self::Truncated => write!(f, "stream ended mid-frame"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: 4-byte big-endian length + payload.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too long for u32"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing the `max` payload bound.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF before a prefix, [`FrameError::Io`]
/// for timeouts and transport failures, [`FrameError::Oversized`] /
/// [`FrameError::Truncated`] for malformed streams.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => return Err(if got == 0 { FrameError::Closed } else { FrameError::Truncated }),
            Ok(n) => got += n,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max {
        return Err(FrameError::Oversized { declared, max });
    }
    let mut payload = vec![0u8; declared];
    let mut filled = 0;
    while filled < declared {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(payload)
}

/// Which scenario a solve request runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioSource {
    /// A scenario shipped with the daemon, by name.
    Named(String),
    /// An inline `.scn` document.
    Inline(String),
}

/// Requested solve fidelity (mirrors the experiment harness' tiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityTier {
    /// Grid clamped to 16×16 — the sub-millisecond serving tier.
    Fast,
    /// The scenario's full grid.
    Paper,
}

impl FidelityTier {
    /// The wire token.
    pub fn token(self) -> &'static str {
        match self {
            Self::Fast => "fast",
            Self::Paper => "paper",
        }
    }
}

/// A solve request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Scenario to run.
    pub scenario: ScenarioSource,
    /// Fidelity tier (default fast).
    pub fidelity: FidelityTier,
    /// Multiplies the scenario's power map.
    pub power_scale: Option<f64>,
    /// Replaces the scenario's power with a uniform total (watts).
    pub power_w: Option<f64>,
    /// Queue-wait bound; `None` means the server default.
    pub deadline_ms: Option<u64>,
    /// Include the per-block temperature report (default true).
    pub blocks: bool,
    /// Per-request solver override; `None` falls back to the process-wide
    /// `HOTIRON_SOLVER` default and then the scenario's own choice.
    pub solver: Option<SolverSpec>,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or join) a scenario solve.
    Solve(SolveRequest),
    /// Metrics snapshot.
    Stats,
    /// Begin graceful drain: stop accepting, finish queued work, exit.
    Shutdown,
}

impl Request {
    /// Decodes a request from its JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field `kind`".to_owned())?;
        match kind {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "solve" => {
                let named = v.get("scenario").and_then(Json::as_str);
                let inline = v.get("scn").and_then(Json::as_str);
                let scenario = match (named, inline) {
                    (Some(n), None) => ScenarioSource::Named(n.to_owned()),
                    (None, Some(s)) => ScenarioSource::Inline(s.to_owned()),
                    (Some(_), Some(_)) => {
                        return Err("give `scenario` or `scn`, not both".to_owned())
                    }
                    (None, None) => return Err("missing `scenario` (or inline `scn`)".to_owned()),
                };
                let fidelity = match v.get("fidelity").and_then(Json::as_str) {
                    None | Some("fast") => FidelityTier::Fast,
                    Some("paper") => FidelityTier::Paper,
                    Some(other) => return Err(format!("unknown fidelity `{other}`")),
                };
                let power_scale = match v.get("power_scale") {
                    None => None,
                    Some(j) => Some(
                        j.as_f64()
                            .filter(|s| s.is_finite() && *s >= 0.0)
                            .ok_or_else(|| "bad `power_scale`".to_owned())?,
                    ),
                };
                let power_w = match v.get("power_w") {
                    None => None,
                    Some(j) => Some(
                        j.as_f64()
                            .filter(|w| w.is_finite() && *w >= 0.0)
                            .ok_or_else(|| "bad `power_w`".to_owned())?,
                    ),
                };
                let deadline_ms = match v.get("deadline_ms") {
                    None => None,
                    Some(j) => Some(j.as_u64().ok_or_else(|| "bad `deadline_ms`".to_owned())?),
                };
                let blocks = v.get("blocks").and_then(Json::as_bool).unwrap_or(true);
                let solver = match v.get("solver").and_then(Json::as_str) {
                    None => None,
                    Some(tok) => Some(
                        SolverSpec::from_token(tok)
                            .ok_or_else(|| format!("unknown solver `{tok}`"))?,
                    ),
                };
                Ok(Request::Solve(SolveRequest {
                    scenario,
                    fidelity,
                    power_scale,
                    power_w,
                    deadline_ms,
                    blocks,
                    solver,
                }))
            }
            other => Err(format!("unknown request kind `{other}`")),
        }
    }

    /// Encodes the request as a JSON document (the client side).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Stats => obj([("kind", Json::Str("stats".into()))]),
            Request::Shutdown => obj([("kind", Json::Str("shutdown".into()))]),
            Request::Solve(s) => {
                let mut members = vec![("kind".to_owned(), Json::Str("solve".into()))];
                match &s.scenario {
                    ScenarioSource::Named(n) => {
                        members.push(("scenario".to_owned(), Json::Str(n.clone())));
                    }
                    ScenarioSource::Inline(text) => {
                        members.push(("scn".to_owned(), Json::Str(text.clone())));
                    }
                }
                members.push(("fidelity".to_owned(), Json::Str(s.fidelity.token().into())));
                if let Some(scale) = s.power_scale {
                    members.push(("power_scale".to_owned(), Json::Num(scale)));
                }
                if let Some(w) = s.power_w {
                    members.push(("power_w".to_owned(), Json::Num(w)));
                }
                if let Some(d) = s.deadline_ms {
                    members.push(("deadline_ms".to_owned(), Json::Num(d as f64)));
                }
                if !s.blocks {
                    members.push(("blocks".to_owned(), Json::Bool(false)));
                }
                if let Some(spec) = s.solver {
                    members.push(("solver".to_owned(), Json::Str(spec.token().into())));
                }
                Json::Obj(members)
            }
        }
    }
}

/// Builds the error/shed response document.
pub fn error_response(code: u16, message: &str) -> Json {
    obj([
        ("ok", Json::Bool(false)),
        ("code", Json::Num(f64::from(code))),
        ("error", Json::Str(message.to_owned())),
    ])
}

/// Builds the `503` shed response; `reason` is `"queue-full"` or
/// `"deadline"`.
pub fn shed_response(reason: &str) -> Json {
    obj([
        ("ok", Json::Bool(false)),
        ("code", Json::Num(503.0)),
        ("shed", Json::Str(reason.to_owned())),
        ("error", Json::Str(format!("overloaded: {reason}"))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"kind\":\"stats\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap(), b"{\"kind\":\"stats\"}");
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap(), b"");
        assert!(matches!(read_frame(&mut r, MAX_FRAME_BYTES), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_declared_length_is_rejected_without_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 1024) {
            Err(FrameError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_detected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"half");
        assert!(matches!(read_frame(&mut Cursor::new(buf), 1024), Err(FrameError::Truncated)));
        // A lone partial prefix is also truncation, not a clean close.
        assert!(matches!(
            read_frame(&mut Cursor::new(vec![0u8, 0]), 1024),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = [
            Request::Stats,
            Request::Shutdown,
            Request::Solve(SolveRequest {
                scenario: ScenarioSource::Named("paper-oil".into()),
                fidelity: FidelityTier::Fast,
                power_scale: Some(1.25),
                power_w: None,
                deadline_ms: Some(50),
                blocks: true,
                solver: None,
            }),
            Request::Solve(SolveRequest {
                scenario: ScenarioSource::Inline("[scenario]\nname = x\n".into()),
                fidelity: FidelityTier::Paper,
                power_scale: None,
                power_w: Some(40.0),
                deadline_ms: None,
                blocks: false,
                solver: Some(SolverSpec::Spectral),
            }),
        ];
        for req in reqs {
            let round = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(req, round);
        }
    }

    #[test]
    fn bad_requests_name_the_field() {
        let e = Request::from_json(&Json::parse(r#"{"kind":"solve"}"#).unwrap()).unwrap_err();
        assert!(e.contains("scenario"), "{e}");
        let e = Request::from_json(
            &Json::parse(r#"{"kind":"solve","scenario":"x","deadline_ms":-3}"#).unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("deadline_ms"), "{e}");
        let e = Request::from_json(&Json::parse(r#"{"kind":"dance"}"#).unwrap()).unwrap_err();
        assert!(e.contains("dance"), "{e}");
        let e = Request::from_json(
            &Json::parse(r#"{"kind":"solve","scenario":"x","solver":"quantum"}"#).unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("quantum"), "{e}");
    }
}
