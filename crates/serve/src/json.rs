//! A minimal JSON value: parser and writer.
//!
//! The workspace is offline and std-only, so the daemon's wire format is
//! handled by this ~200-line recursive-descent parser instead of serde. It
//! supports the full JSON data model with two serving-oriented hardening
//! choices: nesting depth is capped (malicious `[[[[…` frames fail fast
//! instead of exhausting the stack) and numbers are f64 throughout.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`].
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 model).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset + description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64 (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    // JSON has no Inf/NaN; encode as null rather than emit
                    // an unparsable document.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds an object from key/value pairs (the ergonomic constructor the
/// protocol layer uses everywhere).
pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("bad number `{text}`") })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let text = r#"{"a":1.5,"b":[true,null,"x\n\"y"],"c":{"d":-2e3}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2000.0));
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_trailing_garbage_and_deep_nesting() {
        assert!(Json::parse("{} x").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
    }

    #[test]
    fn reports_offsets() {
        let e = Json::parse(r#"{"a": }"#).unwrap_err();
        assert_eq!(e.offset, 6);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
