//! Daemon telemetry: lock-free counters plus a bounded latency ring.
//!
//! The ring keeps the most recent [`RING_CAPACITY`] solve latencies;
//! percentiles are computed over that window on demand, so `/stats` costs
//! one sort of ≤4096 samples and the hot path costs one atomic store.

use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::Mutex;
use std::time::Instant;

/// Latency samples retained for percentile estimation.
pub const RING_CAPACITY: usize = 4096;

/// Most recent latency samples, overwritten oldest-first.
struct Ring {
    samples_ns: Vec<u64>,
    next: usize,
    filled: usize,
}

/// Counters and latency telemetry shared by every connection and worker.
pub struct Metrics {
    started: Instant,
    /// Frames decoded into a request (any kind).
    pub requests: AtomicU64,
    /// Solves answered `200` after running (or joining) a solve.
    pub solved: AtomicU64,
    /// Solves answered by joining another request's in-flight solve.
    pub coalesced: AtomicU64,
    /// Requests shed because the solve queue was full.
    pub shed_queue_full: AtomicU64,
    /// Requests shed because their deadline elapsed while queued.
    pub shed_deadline: AtomicU64,
    /// Frames rejected before reaching the engine (framing, JSON, fields).
    pub protocol_errors: AtomicU64,
    /// Solves that named an unknown shipped scenario.
    pub not_found: AtomicU64,
    /// Solves that reached the engine and failed (parse, stack, solver).
    pub failed: AtomicU64,
    /// Workers currently inside a solve.
    pub busy_workers: AtomicUsize,
    ring: Mutex<Ring>,
}

/// Point-in-time percentile summary of the latency ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples in the window.
    pub count: usize,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Worst sample in the window, nanoseconds.
    pub max_ns: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh telemetry with an empty ring.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            solved: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            not_found: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            busy_workers: AtomicUsize::new(0),
            ring: Mutex::new(Ring { samples_ns: vec![0; RING_CAPACITY], next: 0, filled: 0 }),
        }
    }

    /// Milliseconds since the metrics (and so the daemon) started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Records one end-to-end solve latency.
    pub fn record_latency_ns(&self, ns: u64) {
        let mut ring = self.ring.lock().expect("latency ring poisoned");
        let at = ring.next;
        ring.samples_ns[at] = ns;
        ring.next = (at + 1) % RING_CAPACITY;
        ring.filled = (ring.filled + 1).min(RING_CAPACITY);
    }

    /// Percentiles over the current window (zeros when empty).
    pub fn latency(&self) -> LatencySummary {
        let ring = self.ring.lock().expect("latency ring poisoned");
        if ring.filled == 0 {
            return LatencySummary { count: 0, p50_ns: 0, p99_ns: 0, max_ns: 0 };
        }
        let mut window: Vec<u64> = ring.samples_ns[..ring.filled].to_vec();
        drop(ring);
        window.sort_unstable();
        let pick = |p: f64| {
            let idx = ((window.len() as f64 - 1.0) * p).round() as usize;
            window[idx.min(window.len() - 1)]
        };
        LatencySummary {
            count: window.len(),
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
            max_ns: *window.last().expect("non-empty window"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_reports_zeros() {
        let m = Metrics::new();
        assert_eq!(m.latency(), LatencySummary { count: 0, p50_ns: 0, p99_ns: 0, max_ns: 0 });
    }

    #[test]
    fn percentiles_track_the_window() {
        let m = Metrics::new();
        for ns in 1..=100u64 {
            m.record_latency_ns(ns * 1_000);
        }
        let l = m.latency();
        assert_eq!(l.count, 100);
        // Index round((n-1)*p) = 50 → the 51st sample.
        assert_eq!(l.p50_ns, 51_000);
        assert_eq!(l.p99_ns, 99_000);
        assert_eq!(l.max_ns, 100_000);
    }

    #[test]
    fn ring_is_bounded_and_overwrites_oldest() {
        let m = Metrics::new();
        for _ in 0..RING_CAPACITY {
            m.record_latency_ns(1);
        }
        // A full window of fresh samples displaces every old one.
        for _ in 0..RING_CAPACITY {
            m.record_latency_ns(7);
        }
        let l = m.latency();
        assert_eq!(l.count, RING_CAPACITY);
        assert_eq!((l.p50_ns, l.p99_ns, l.max_ns), (7, 7, 7));
    }
}
