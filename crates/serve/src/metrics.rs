//! Daemon telemetry: lock-free counters plus bounded latency rings.
//!
//! Each ring keeps the most recent [`RING_CAPACITY`] solve latencies;
//! percentiles are computed over that window on demand, so `/stats` costs
//! one sort of ≤4096 samples and the hot path costs one atomic store.
//!
//! Latencies are recorded twice: once into the overall ring and once into a
//! per-path ring keyed by [`LatencyPath`]. A cache hit answers in tens of
//! microseconds while a cold 422-sized solve takes milliseconds; folding
//! both into one histogram made the p50 meaningless whenever the hit rate
//! moved, so `/stats` now reports each service path separately.

use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::Mutex;
use std::time::Instant;

/// Latency samples retained for percentile estimation (per ring).
pub const RING_CAPACITY: usize = 4096;

/// Which service path answered a solve, for per-path latency accounting.
///
/// `Spectral` is split out from hit/miss because the Green's-function path
/// has a distinct cost profile: a one-time response build, then
/// O(n log n) evaluations far cheaper than an iterative cold solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyPath {
    /// Solve ran the pipeline against a cached circuit.
    Hit,
    /// Solve assembled its circuit (cold).
    Miss,
    /// Solve joined another request's in-flight result.
    Coalesced,
    /// Solve was answered by the spectral backend (any cache disposition).
    Spectral,
}

impl LatencyPath {
    /// The wire/label token.
    pub fn token(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::Coalesced => "coalesced",
            Self::Spectral => "spectral",
        }
    }

    /// Every path, in the order `/stats` reports them.
    pub const ALL: [LatencyPath; 4] = [Self::Hit, Self::Miss, Self::Coalesced, Self::Spectral];

    fn index(self) -> usize {
        match self {
            Self::Hit => 0,
            Self::Miss => 1,
            Self::Coalesced => 2,
            Self::Spectral => 3,
        }
    }
}

/// Most recent latency samples, overwritten oldest-first.
struct Ring {
    samples_ns: Vec<u64>,
    next: usize,
    filled: usize,
}

impl Ring {
    fn new() -> Self {
        Self { samples_ns: vec![0; RING_CAPACITY], next: 0, filled: 0 }
    }

    fn record(&mut self, ns: u64) {
        let at = self.next;
        self.samples_ns[at] = ns;
        self.next = (at + 1) % RING_CAPACITY;
        self.filled = (self.filled + 1).min(RING_CAPACITY);
    }

    fn summary(&self) -> LatencySummary {
        if self.filled == 0 {
            return LatencySummary { count: 0, p50_ns: 0, p99_ns: 0, max_ns: 0 };
        }
        let mut window: Vec<u64> = self.samples_ns[..self.filled].to_vec();
        window.sort_unstable();
        let pick = |p: f64| {
            let idx = ((window.len() as f64 - 1.0) * p).round() as usize;
            window[idx.min(window.len() - 1)]
        };
        LatencySummary {
            count: window.len(),
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
            max_ns: *window.last().expect("non-empty window"),
        }
    }
}

/// Counters and latency telemetry shared by every connection and worker.
pub struct Metrics {
    started: Instant,
    /// Frames decoded into a request (any kind).
    pub requests: AtomicU64,
    /// Solves answered `200` after running (or joining) a solve.
    pub solved: AtomicU64,
    /// Solves answered by joining another request's in-flight solve.
    pub coalesced: AtomicU64,
    /// Solves answered `200` by the spectral backend.
    pub solved_spectral: AtomicU64,
    /// Requests shed because the solve queue was full.
    pub shed_queue_full: AtomicU64,
    /// Requests shed because their deadline elapsed while queued.
    pub shed_deadline: AtomicU64,
    /// Frames rejected before reaching the engine (framing, JSON, fields).
    pub protocol_errors: AtomicU64,
    /// Solves that named an unknown shipped scenario.
    pub not_found: AtomicU64,
    /// Solves that reached the engine and failed (parse, stack, solver).
    pub failed: AtomicU64,
    /// Workers currently inside a solve.
    pub busy_workers: AtomicUsize,
    ring: Mutex<Ring>,
    by_path: [Mutex<Ring>; 4],
}

/// Point-in-time percentile summary of a latency ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples in the window.
    pub count: usize,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Worst sample in the window, nanoseconds.
    pub max_ns: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh telemetry with empty rings.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            solved: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            solved_spectral: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            not_found: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            busy_workers: AtomicUsize::new(0),
            ring: Mutex::new(Ring::new()),
            by_path: [
                Mutex::new(Ring::new()),
                Mutex::new(Ring::new()),
                Mutex::new(Ring::new()),
                Mutex::new(Ring::new()),
            ],
        }
    }

    /// Milliseconds since the metrics (and so the daemon) started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Records one end-to-end solve latency into the overall ring only.
    pub fn record_latency_ns(&self, ns: u64) {
        self.ring.lock().expect("latency ring poisoned").record(ns);
    }

    /// Records one end-to-end solve latency into both the overall ring and
    /// the ring for `path`.
    pub fn record_path_latency_ns(&self, path: LatencyPath, ns: u64) {
        self.record_latency_ns(ns);
        self.by_path[path.index()].lock().expect("latency ring poisoned").record(ns);
    }

    /// Percentiles over the current overall window (zeros when empty).
    pub fn latency(&self) -> LatencySummary {
        self.ring.lock().expect("latency ring poisoned").summary()
    }

    /// Percentiles over the current window for one service path.
    pub fn path_latency(&self, path: LatencyPath) -> LatencySummary {
        self.by_path[path.index()].lock().expect("latency ring poisoned").summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_reports_zeros() {
        let m = Metrics::new();
        assert_eq!(m.latency(), LatencySummary { count: 0, p50_ns: 0, p99_ns: 0, max_ns: 0 });
        for path in LatencyPath::ALL {
            assert_eq!(m.path_latency(path).count, 0);
        }
    }

    #[test]
    fn percentiles_track_the_window() {
        let m = Metrics::new();
        for ns in 1..=100u64 {
            m.record_latency_ns(ns * 1_000);
        }
        let l = m.latency();
        assert_eq!(l.count, 100);
        // Index round((n-1)*p) = 50 → the 51st sample.
        assert_eq!(l.p50_ns, 51_000);
        assert_eq!(l.p99_ns, 99_000);
        assert_eq!(l.max_ns, 100_000);
    }

    #[test]
    fn ring_is_bounded_and_overwrites_oldest() {
        let m = Metrics::new();
        for _ in 0..RING_CAPACITY {
            m.record_latency_ns(1);
        }
        // A full window of fresh samples displaces every old one.
        for _ in 0..RING_CAPACITY {
            m.record_latency_ns(7);
        }
        let l = m.latency();
        assert_eq!(l.count, RING_CAPACITY);
        assert_eq!((l.p50_ns, l.p99_ns, l.max_ns), (7, 7, 7));
    }

    #[test]
    fn path_rings_separate_hit_and_cold_latencies() {
        let m = Metrics::new();
        // A fast hit path and a slow miss path no longer pollute each other.
        for _ in 0..10 {
            m.record_path_latency_ns(LatencyPath::Hit, 50_000);
        }
        m.record_path_latency_ns(LatencyPath::Miss, 5_000_000);
        assert_eq!(m.path_latency(LatencyPath::Hit).p50_ns, 50_000);
        assert_eq!(m.path_latency(LatencyPath::Miss).p50_ns, 5_000_000);
        assert_eq!(m.path_latency(LatencyPath::Coalesced).count, 0);
        assert_eq!(m.path_latency(LatencyPath::Spectral).count, 0);
        // The overall ring still sees every sample.
        assert_eq!(m.latency().count, 11);
        assert_eq!(m.latency().max_ns, 5_000_000);
    }
}
